#!/usr/bin/env python
"""Quickstart: the paper's Section 2 "smugglers" query, end to end.

Walks through the whole pipeline on a synthetic map:

1. state the Boolean constraint system (Figure 1);
2. compile it to the triangular solved form (Algorithm 1 / Figure 2);
3. look at the bounding-box plan (Algorithm 2, one range query per step);
4. execute, and compare the optimized plan against the naive join.

Run:  python examples/quickstart.py
"""

from repro import parse_system
from repro.datagen import make_map
from repro.engine import (
    SpatialQuery,
    answers_as_oid_tuples,
    compile_query,
    execute,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The query, in the paper's Figure 1 notation.
    #    C (country) and A (destination area) are given; find a border
    #    town T, a road R from T into A crossing no state boundary, and
    #    the state B the road runs through.
    # ------------------------------------------------------------------
    system = parse_system(
        """
        A <= C                 # the destination area is inside the country
        B <= C                 # the state is inside the country
        R <= A | B | T         # the road stays within area/state/town
        R & A != 0             # the road reaches the destination area
        R & T != 0             # the road starts at the town
        T !<= C                # the town straddles the border
        """
    )
    print("== constraint system (Figure 1) ==")
    print(system)

    # ------------------------------------------------------------------
    # 2. A synthetic world: country, 3x3 states, towns (some on the
    #    border), roads (some valid), destination area.
    # ------------------------------------------------------------------
    world = make_map(seed=11, n_towns=25, n_roads=25, states_grid=(3, 3))
    query = SpatialQuery(
        system=system,
        tables=world.tables(index="rtree"),
        bindings={"C": world.country, "A": world.area},
        order=["T", "R", "B"],  # the paper's "arbitrarily picked" order
    )

    # ------------------------------------------------------------------
    # 3. Compile: triangular form + bounding-box templates.
    # ------------------------------------------------------------------
    plan = compile_query(query)
    print("\n== triangular solved form (Algorithm 1) ==")
    print(plan.triangular.render())
    print("\n== bounding-box plan (Algorithm 2; one range query/step) ==")
    for step in plan.steps:
        print(f"-- step {step.variable} --")
        print(step.template.render())

    # ------------------------------------------------------------------
    # 4. Execute in three modes and compare work done.
    # ------------------------------------------------------------------
    print("\n== execution ==")
    reference = None
    for mode in ("naive", "exact", "boxplan"):
        answers, stats = execute(plan, mode)
        tuples = answers_as_oid_tuples(answers, ["T", "R", "B"])
        if reference is None:
            reference = tuples
        assert tuples == reference, "modes must agree!"
        print(stats.summary())

    print(f"\n{len(reference)} smuggling plan(s) found; first few:")
    for t, r, b in reference[:5]:
        print(f"  town #{t}, road #{r}, state #{b}")
    print(
        "\nground truth: border towns =",
        world.border_town_ids,
        "| engineered roads =",
        world.good_road_ids,
    )


if __name__ == "__main__":
    main()
