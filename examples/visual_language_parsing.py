#!/usr/bin/env python
"""Visual language parsing with spatial constraint queries.

The paper's introduction cites visual language parsers [7] (the authors'
own CHI'91 work): recognising diagram constructs means finding tuples of
picture elements satisfying spatial constraints.

We parse a toy "boxes-and-containment" diagram language: a **labelled
container** is a triple (outer box O, inner box I, label L) with

    I <= O            the inner box nests in the outer box
    L <= O            the label is inside the outer box
    L & I = 0         the label does not collide with the inner box
    L !<= I           (redundant with the above but shows rewriting)

The same grammar (constraint system) is reused across a stream of
diagrams — the symbolic compilation work (triangular form, Blake
canonical forms) depends only on the grammar, matching the paper's
query-compilation framing.

Run:  python examples/visual_language_parsing.py
"""

import random
from typing import List

from repro import Region, parse_system
from repro.boxes import Box
from repro.engine import SpatialQuery, compile_query, execute
from repro.spatial import SpatialTable

CANVAS = Box((0.0, 0.0), (120.0, 120.0))


def random_diagram(seed: int) -> List[Box]:
    """A scatter of boxes; some nest to form labelled containers."""
    rng = random.Random(seed)
    elements: List[Box] = []
    for _ in range(6):
        lo = (rng.uniform(0, 90), rng.uniform(0, 90))
        outer = Box(lo, (lo[0] + rng.uniform(18, 28), lo[1] + rng.uniform(18, 28)))
        elements.append(outer)
        if rng.random() < 0.7:
            # Nest an inner box and a label inside.
            inner = Box(
                (outer.lo[0] + 4, outer.lo[1] + 8),
                (outer.lo[0] + 12, outer.lo[1] + 16),
            )
            label = Box(
                (outer.lo[0] + 2, outer.lo[1] + 1),
                (outer.lo[0] + 10, outer.lo[1] + 4),
            )
            elements.extend([inner, label])
        if rng.random() < 0.4:
            lo2 = (rng.uniform(0, 110), rng.uniform(0, 110))
            elements.append(
                Box(lo2, (lo2[0] + rng.uniform(3, 8), lo2[1] + rng.uniform(3, 8)))
            )
    return elements


GRAMMAR = parse_system(
    """
    I <= O        # inner nests in outer
    L <= O        # label inside outer
    L & I = 0     # label avoids the inner box
    I != 0        # non-degenerate parts
    L != 0
    """
)


def parse_diagram(elements: List[Box]):
    """Run the construct-recognition query on one diagram.

    Returns ``(triples, stats)`` where each triple is (outer, inner,
    label) element ids.
    """
    table = SpatialTable("elements", 2, universe=CANVAS)
    for i, b in enumerate(elements):
        table.insert(i, Region.from_box(b))
    query = SpatialQuery(
        system=GRAMMAR,
        tables={"O": table, "I": table, "L": table},
        order=["O", "I", "L"],
    )
    plan = compile_query(query)
    answers, stats = execute(plan, "boxplan")
    triples = sorted(
        (a["O"].oid, a["I"].oid, a["L"].oid)
        for a in answers
        if len({a["O"].oid, a["I"].oid, a["L"].oid}) == 3
    )
    return triples, stats


def main() -> None:
    print("construct grammar:")
    print(GRAMMAR)
    print()
    total = 0
    for seed in range(4):
        elements = random_diagram(seed)
        triples, stats = parse_diagram(elements)
        total += len(triples)
        print(
            f"diagram {seed}: {len(elements):3d} elements -> "
            f"{len(triples):3d} labelled containers   [{stats.summary()}]"
        )
        for o, i, l in triples[:3]:
            print(f"    container: outer #{o}, inner #{i}, label #{l}")
    print(f"\nparsed {total} constructs across 4 diagrams")


if __name__ == "__main__":
    main()
