#!/usr/bin/env python
"""GIS site selection — a multi-constraint spatial query.

The paper's introduction cites geographic information systems as the
canonical application needing Boolean constraints over many variables.
This example plays a planning department: find a *parcel* P, a *flood
zone* F, and a *service district* D such that

    P <= D                 the parcel is served by the district
    P & F = 0              the parcel avoids every chosen flood zone
    P & GREEN != 0         the parcel touches the greenbelt (amenity)
    SCHOOL <= D            the district contains the school site
    F & D != 0             (the flood zone is relevant: it intersects D)

with bound constants GREEN (greenbelt) and SCHOOL.  The example shows:

* a query with three unknowns of different tables and two constants;
* the planner choosing a retrieval order automatically;
* per-step candidate statistics demonstrating the early pruning.

Run:  python examples/gis_site_selection.py
"""

import random

from repro import Region, parse_system
from repro.boxes import Box
from repro.datagen import grid_partition, random_box
from repro.engine import SpatialQuery, answers_as_oid_tuples, compile_query, execute
from repro.spatial import SpatialTable

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def build_world(seed: int = 7):
    """Parcels, flood zones and districts, plus the two constants."""
    rng = random.Random(seed)

    districts_regions = grid_partition(Box((0.0, 0.0), (100.0, 100.0)), (2, 2))
    districts = SpatialTable("districts", 2, universe=UNIVERSE)
    districts.bulk_insert(list(enumerate(districts_regions)))

    parcels = SpatialTable("parcels", 2, universe=UNIVERSE)
    for i in range(60):
        parcels.insert(i, Region.from_box(random_box(rng, UNIVERSE, 2.0, 6.0)))

    floods = SpatialTable("flood_zones", 2, universe=UNIVERSE)
    for i in range(8):
        floods.insert(i, Region.from_box(random_box(rng, UNIVERSE, 10.0, 30.0)))

    green = Region.from_box(Box((30.0, 30.0), (70.0, 70.0)))
    school = Region.from_box(Box((60.0, 60.0), (63.0, 63.0)))
    return parcels, floods, districts, green, school


def main() -> None:
    parcels, floods, districts, green, school = build_world()

    system = parse_system(
        """
        P <= D
        P & F = 0
        P & GREEN != 0
        SCHOOL <= D
        F & D != 0
        """
    )

    query = SpatialQuery(
        system=system,
        tables={"P": parcels, "F": floods, "D": districts},
        bindings={"GREEN": green, "SCHOOL": school},
        # no explicit order: let the planner decide
    )

    plan = compile_query(query)
    print("planner-chosen retrieval order:", ", ".join(plan.order))
    print("\n== triangular form ==")
    print(plan.triangular.render())

    answers, stats = execute(plan, "boxplan")
    print("\n== execution (boxplan) ==")
    print(stats.summary())

    _naive_answers, naive_stats = execute(plan, "naive")
    print(naive_stats.summary())
    assert answers_as_oid_tuples(answers, plan.order) == (
        answers_as_oid_tuples(_naive_answers, plan.order)
    )

    print(f"\n{len(answers)} qualifying (parcel, flood-zone, district) triples")
    for a in answers[:8]:
        print(
            "  parcel #{P}  avoiding flood zone #{F}  in district #{D}".format(
                P=a["P"].oid, F=a["F"].oid, D=a["D"].oid
            )
        )
    speedup = (
        naive_stats.region_ops / stats.region_ops
        if stats.region_ops
        else float("inf")
    )
    print(f"\nexact region ops: naive={naive_stats.region_ops} "
          f"boxplan={stats.region_ops} ({speedup:.1f}x fewer)")


if __name__ == "__main__":
    main()
