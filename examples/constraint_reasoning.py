#!/usr/bin/env python
"""Symbolic constraint reasoning — the paper's Section 3 as a library.

Beyond query compilation, the constraint layer is a little theorem
prover for spatial specifications over atomless algebras (the
measurable-regions model):

* satisfiability   — can this specification be realised at all?
* entailment       — does one specification imply another?
* witness building — produce an actual arrangement of regions.

Run:  python examples/constraint_reasoning.py
"""


from repro import IntervalAlgebra, parse_system
from repro.constraints import (
    build_witness,
    entails_atomless,
    equivalent_atomless,
    project,
    satisfiable_atomless,
    triangular_form,
)


def check(label: str, value: bool, expected: bool) -> None:
    status = "ok" if value == expected else "UNEXPECTED"
    print(f"  [{status}] {label}: {value}")


def main() -> None:
    print("== satisfiability over atomless algebras ==")
    floorplan = parse_system(
        """
        kitchen <= flat
        bath    <= flat
        kitchen & bath = 0        # rooms don't overlap
        kitchen != 0
        bath != 0
        flat !<= kitchen | bath   # there is space left for a hallway
        """
    )
    check("floorplan is realisable", satisfiable_atomless(floorplan), True)

    overfull = parse_system(
        """
        a <= c
        b <= c
        c <= a
        c !<= a
        """
    )
    check("contradictory spec rejected", satisfiable_atomless(overfull), False)

    print("\n== entailment ==")
    premises = parse_system("x <= y; y <= z; x != 0")
    check(
        "x<=y, y<=z, x!=0  entails  x<=z",
        entails_atomless(premises, parse_system("x <= z")),
        True,
    )
    check(
        "... entails z != 0",
        entails_atomless(premises, parse_system("z != 0")),
        True,
    )
    check(
        "... does NOT entail z <= x",
        entails_atomless(premises, parse_system("z <= x")),
        False,
    )
    check(
        "overlap is symmetric",
        equivalent_atomless(
            parse_system("x & y != 0"), parse_system("y & x != 0")
        ),
        True,
    )

    print("\n== the non-closure phenomenon (paper Example 1) ==")
    example1 = parse_system("x & y != 0; ~x & y != 0")
    projected = project(example1.normalize(), "x").subsume_disequations()
    print("  system:            x&y != 0  and  ~x&y != 0")
    print(f"  proj over x:       {projected}".replace("\n", "  and  "))
    print("  (the exact ∃x needs 'y splits in two' — not expressible)")

    print("\n== constructive witnesses (interval algebra on [0, 12)) ==")
    line = IntervalAlgebra(0, 12)
    env = build_witness(floorplan, line)
    for name in ("flat", "kitchen", "bath"):
        ivs = " u ".join(f"[{a},{b})" for a, b in env[name].intervals)
        print(f"  {name:8s} = {ivs or 'empty'}")
    assert floorplan.holds(line, env)
    print("  witness verified against the specification")

    print("\n== triangular form of the floorplan query ==")
    tri = triangular_form(floorplan, ["kitchen", "bath"])
    print(tri.render())


if __name__ == "__main__":
    main()
