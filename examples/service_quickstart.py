#!/usr/bin/env python
"""Snapshots & the query service: save, serve, and query over the wire.

The workflow a resident deployment uses:

1. build the smugglers workload once and ``Database.save`` it — rows,
   the packed R-tree's node arrays, statistics, and partitioning go
   into one versioned snapshot file;
2. ``Database.open`` that file (no STR rebuild, no statistics scan) and
   serve it from the asyncio query service;
3. run queries over HTTP with the blocking client — each reply carries
   the snapshot version it was answered from plus the full
   machine-independent ``ExecutionStats`` payload;
4. insert a row: the service rebuilds in the background and atomically
   swaps snapshots — readers never block, and the next query sees both
   the new snapshot version and the new row.

Run:  python examples/service_quickstart.py
"""

import os
import tempfile

from repro import Database
from repro.datagen import smugglers_query
from repro.engine.stats import ExecutionStats
from repro.service import QueryService, ServiceClient, serve_in_thread


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build once, snapshot to disk.
    # ------------------------------------------------------------------
    query, _world = smugglers_query(seed=11, n_towns=48, n_roads=48)
    system = str(query.system)
    db = Database.from_query(query)
    with tempfile.TemporaryDirectory() as workdir:
        path = os.path.join(workdir, "smugglers.snapshot.json")
        db.save(path, partitions=4)
        print(f"saved snapshot: {os.path.getsize(path)} bytes")

        # --------------------------------------------------------------
        # 2. Load the snapshot (warm indexes, no rebuild) and serve it.
        # --------------------------------------------------------------
        service = QueryService(Database.open(path), cache_size=256)
        server = serve_in_thread(service)  # ephemeral 127.0.0.1 port
        try:
            host, port = server.address
            client = ServiceClient(host, port)
            print(f"serving on {host}:{port} "
                  f"(snapshot v{client.health()['snapshot']})")

            # ----------------------------------------------------------
            # 3. The paper's query, over the wire.
            # ----------------------------------------------------------
            reply = client.run(system, bindings=["C", "A"])
            stats = ExecutionStats.from_dict(reply["stats"])
            print(f"answers: {reply['count']} "
                  f"(order {'-'.join(reply['order'])}, "
                  f"snapshot v{reply['snapshot']})")
            print(f"  partial tuples: {stats.partial_tuples}, "
                  f"region ops: {stats.region_ops}")
            first = reply["answers"][0]
            print(f"  e.g. town={first['T']} road={first['R']} "
                  f"state={first['B']}")

            # ----------------------------------------------------------
            # 4. Mutate: background rebuild + atomic snapshot swap.
            #    Clone an answering town under a new name so the new
            #    row provably joins the answer set.
            # ----------------------------------------------------------
            town = query.tables["T"].get(first["T"])
            boxes = [[list(b.lo), list(b.hi)] for b in town.region.boxes]
            swap = client.insert(
                "T", [{"oid": "new-town", "boxes": boxes}]
            )
            after = client.run(system, bindings=["C", "A"])
            print(f"after insert: snapshot v{swap['snapshot']}, "
                  f"{after['count']} answers "
                  f"({after['count'] - reply['count']} new)")

            served = client.stats()
            print(f"served {served['requests']} requests, "
                  f"{served['rebuilds']} rebuild(s), "
                  f"cache hit rate {served['cache']['hit_rate']:.0%}")
        finally:
            server.stop()


if __name__ == "__main__":
    main()
