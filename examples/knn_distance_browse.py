#!/usr/bin/env python
"""Distance browsing and aggregation over the smugglers map.

The engine's two newest workload families on the paper's own scenario:

1. **kNN / distance browsing** — "which towns are closest to the
   destination area?"  A :class:`~repro.engine.KNNStep` restricts the
   town variable to the ``k`` rows nearest an anchor point; the
   physical plan answers it with the R-tree's best-first browse
   (Hjaltason–Samet), reading only a sliver of the index, and streams
   the answers nearest-first.

2. **Aggregation** — "how many valid routes leave each border town?"
   An :class:`~repro.engine.AggregateSpec` folds the verified answer
   stream into per-group counts; a box-level COUNT (``exact=False``) is
   instead pushed down to the index's cached subtree entry counts.

Run:  python examples/knn_distance_browse.py
"""

import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
)

from repro.datagen import smugglers_query  # noqa: E402
from repro.engine import (  # noqa: E402
    AggregateSpec,
    KNNStep,
    SpatialQuery,
    build_physical_plan,
    compile_query,
)


def main() -> None:
    query, world = smugglers_query(seed=4, n_towns=40, n_roads=40)
    anchor = world.area.bounding_box().center()
    towns = query.tables["T"]

    print("== 1. distance browse: the 8 towns nearest the area ==")
    for dist, town in towns.nearest(anchor, 8):
        print(f"  town {town.oid:>3}  mindist {dist:6.2f}")
    reads = towns._rtree.stats.node_reads
    print(
        f"  (best-first read {reads} of the tree's "
        f"{towns._rtree.node_count()} nodes)\n"
    )

    print("== 2. the full query, T restricted to its 8 nearest towns ==")
    knn_query = SpatialQuery(
        system=query.system,
        tables=query.tables,
        bindings=query.bindings,
        order=query.order,
        knn=KNNStep(variable="T", k=8, point=anchor),
    )
    plan = compile_query(knn_query)
    pplan = build_physical_plan(plan, "boxplan")
    answers = list(pplan.execute_iter())
    for a in answers:
        print(
            f"  T={a['T'].oid:>3}  R={a['R'].oid:>3}  B={a['B'].oid:>2}"
            f"  (town dist {a['T'].box.mindist_point(anchor):5.2f})"
        )
    print()
    print(pplan.explain())
    print()

    print("== 3. aggregation: valid routes per border town ==")
    agg_query = SpatialQuery(
        system=query.system,
        tables=query.tables,
        bindings=query.bindings,
        order=query.order,
        aggregate=AggregateSpec(
            aggregates=(("count", None), ("max", "R")), group_by=("T",)
        ),
    )
    rows, stats = build_physical_plan(
        compile_query(agg_query), "boxplan", estimate=False
    ).run()
    for row in rows:
        print(f"  {row.as_dict()}")
    print(f"  [{stats.mode}] region_ops={stats.region_ops}")


if __name__ == "__main__":
    main()
