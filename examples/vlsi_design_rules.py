#!/usr/bin/env python
"""VLSI design-rule checking as Boolean constraint queries.

The paper's introduction cites VLSI design-rule checkers [15] as an
application.  Design rules are *integrity constraints*: a violation
report is the answer set of a constraint query.  We check two rules over
a synthetic two-layer layout:

Rule 1 (well containment):  every diffusion shape D must lie inside some
well W of the right type.  Violations are diffusion shapes for which the
query  ``D !<= W``  holds for EVERY well — we find witnesses by asking
for (D, W) pairs where  ``D & W != 0  and  D !<= W``  (a shape partially
in a well is the classic error).

Rule 2 (metal separation):  metal shapes M1, M2 from the same net class
must not overlap:  report pairs with  ``M1 & M2 != 0``.

The example demonstrates negative constraints doing real work — both
rules are *disequations*, the part of the language this paper added.

Run:  python examples/vlsi_design_rules.py
"""

import random

from repro import Region, parse_system
from repro.boxes import Box
from repro.engine import SpatialQuery, compile_query, execute
from repro.spatial import SpatialTable

DIE = Box((0.0, 0.0), (200.0, 200.0))


def build_layout(seed: int = 13):
    rng = random.Random(seed)

    wells = SpatialTable("wells", 2, universe=DIE)
    well_boxes = []
    for i in range(6):
        lo = (rng.uniform(0, 150), rng.uniform(0, 150))
        b = Box(lo, (lo[0] + rng.uniform(25, 45), lo[1] + rng.uniform(25, 45)))
        well_boxes.append(b)
        wells.insert(i, Region.from_box(b))

    diffusions = SpatialTable("diffusions", 2, universe=DIE)
    for i in range(40):
        if i % 4 == 0 and well_boxes:
            # Deliberately straddle a well edge: a Rule 1 violation.
            w = rng.choice(well_boxes)
            b = Box(
                (w.hi[0] - 4.0, w.lo[1] + 2.0),
                (w.hi[0] + 4.0, w.lo[1] + 6.0),
            )
        else:
            w = rng.choice(well_boxes)
            b = Box(
                (w.lo[0] + 2.0 + rng.uniform(0, 5), w.lo[1] + 2.0 + rng.uniform(0, 5)),
                (w.lo[0] + 8.0 + rng.uniform(0, 5), w.lo[1] + 8.0 + rng.uniform(0, 5)),
            )
        diffusions.insert(i, Region.from_box(b.meet(DIE)))

    metal = SpatialTable("metal", 2, universe=DIE)
    for i in range(50):
        lo = (rng.uniform(0, 190), rng.uniform(0, 190))
        b = Box(lo, (lo[0] + rng.uniform(2, 10), lo[1] + rng.uniform(2, 10)))
        metal.insert(i, Region.from_box(b))

    return wells, diffusions, metal


def rule1_well_containment(wells, diffusions) -> None:
    print("== Rule 1: diffusion straddling a well edge ==")
    system = parse_system(
        """
        D & W != 0     # the shape touches the well...
        D !<= W        # ...but is not contained in it
        """
    )
    query = SpatialQuery(
        system=system,
        tables={"D": diffusions, "W": wells},
        order=["W", "D"],
    )
    plan = compile_query(query)
    answers, stats = execute(plan, "boxplan")
    print(stats.summary())
    print(f"{len(answers)} straddle violations:")
    for a in answers[:10]:
        print(f"  diffusion #{a['D'].oid} straddles well #{a['W'].oid}")


def rule2_metal_overlap(metal) -> None:
    print("\n== Rule 2: overlapping metal shapes ==")
    system = parse_system("M1 & M2 != 0")
    query = SpatialQuery(
        system=system,
        tables={"M1": metal, "M2": metal},
        order=["M1", "M2"],
    )
    plan = compile_query(query)
    answers, stats = execute(plan, "boxplan")
    # Self-join: drop mirror and self pairs for the report.
    violations = sorted(
        {
            tuple(sorted((a["M1"].oid, a["M2"].oid)))
            for a in answers
            if a["M1"].oid != a["M2"].oid
        }
    )
    print(stats.summary())
    print(f"{len(violations)} overlapping metal pairs:")
    for m1, m2 in violations[:10]:
        print(f"  metal #{m1} overlaps metal #{m2}")


def main() -> None:
    wells, diffusions, metal = build_layout()
    rule1_well_containment(wells, diffusions)
    rule2_metal_overlap(metal)


if __name__ == "__main__":
    main()
