"""ExecutionStats consistency: every executor mode fills every counter.

The ISSUE-1 fix: ``index_probes`` and ``node_reads`` must aggregate
r-tree reads uniformly across all four executor modes (``boxonly`` and
``naive`` used to leave step counters partially unfilled).
"""

import pytest

from repro.datagen import smugglers_query
from repro.engine import (
    MODES,
    ExecutionStats,
    build_physical_plan,
    compile_query,
    execute,
)


@pytest.fixture(scope="module")
def plan():
    query, _world = smugglers_query(
        seed=5, n_towns=10, n_roads=10, states_grid=(2, 2)
    )
    return compile_query(query)


@pytest.mark.parametrize("mode", MODES)
def test_every_step_filled(plan, mode):
    _answers, stats = execute(plan, mode)
    assert stats.mode == mode
    assert len(stats.steps) == 3
    for step in stats.steps:
        assert step.variable
        assert step.index_probes >= 1
        assert step.node_reads >= 0
        assert step.survivors <= step.candidates


@pytest.mark.parametrize("mode", MODES)
def test_aggregates_are_step_sums(plan, mode):
    _answers, stats = execute(plan, mode)
    assert stats.index_probes == sum(s.index_probes for s in stats.steps)
    assert stats.node_reads == sum(s.node_reads for s in stats.steps)
    d = stats.as_dict()
    assert d["index_probes"] == stats.index_probes
    assert d["node_reads"] == stats.node_reads


def test_box_modes_read_index_nodes(plan):
    """The box modes probe the r-tree; the scan modes never touch it."""
    for mode in ("boxplan", "boxonly"):
        _answers, stats = execute(plan, mode)
        assert stats.node_reads > 0, mode
    for mode in ("naive", "exact"):
        _answers, stats = execute(plan, mode)
        assert stats.node_reads == 0, mode


def test_node_reads_match_table_deltas():
    """Executor-attributed reads equal the tables' own counters."""
    query, _world = smugglers_query(
        seed=7, n_towns=10, n_roads=10, states_grid=(2, 2)
    )
    plan = compile_query(query)
    for t in query.tables.values():
        t.reset_stats()
    _answers, stats = execute(plan, "boxplan")
    table_total = sum(
        t.index_read_count() for t in query.tables.values()
    )
    assert stats.node_reads == table_total


def test_probe_counts_per_mode(plan):
    """Scan modes issue one probe per step; box modes one per partial."""
    _answers, naive_stats = execute(plan, "naive")
    assert all(s.index_probes == 1 for s in naive_stats.steps)
    _answers, box_stats = execute(plan, "boxplan")
    # First step has no prefix: exactly one probe.
    assert box_stats.steps[0].index_probes == 1
    assert box_stats.index_probes >= 3


def test_serial_plans_report_no_exchange(plan):
    """Without workers the exchange fields stay at their zero values
    and the summary line omits the exchange clause entirely."""
    pplan = build_physical_plan(plan, "boxplan")
    pplan.run()
    stats = pplan.stats()
    assert stats.exchange_kind == "serial"
    assert stats.exchange_workers == 0
    assert stats.exchange_fallbacks == 0
    assert "exchange=" not in stats.summary()


def test_parallel_plans_surface_exchange(plan):
    """A parallel sharded plan reports its exchange geometry in
    stats(), the dict forms, and the summary string."""
    pplan = build_physical_plan(plan, "boxplan", shards=4, parallel=2)
    pplan.run()
    stats = pplan.stats()
    assert stats.exchange_kind == "thread"
    assert stats.exchange_workers == 2
    assert stats.exchange_fallbacks >= 0
    assert "exchange=threadx2" in stats.summary()
    for d in (stats.to_dict(), stats.as_dict()):
        assert d["exchange_kind"] == "thread"
        assert d["exchange_workers"] == 2
        assert d["exchange_fallbacks"] == stats.exchange_fallbacks


def test_exchange_fields_roundtrip_serialization(plan):
    """to_dict -> from_dict preserves the exchange fields exactly, and
    legacy payloads without them decode to the serial defaults."""
    pplan = build_physical_plan(plan, "boxplan", shards=2, parallel=2)
    pplan.run()
    stats = pplan.stats()
    decoded = ExecutionStats.from_dict(stats.to_dict())
    assert decoded.exchange_kind == stats.exchange_kind
    assert decoded.exchange_workers == stats.exchange_workers
    assert decoded.exchange_fallbacks == stats.exchange_fallbacks
    legacy = {
        k: v
        for k, v in stats.to_dict().items()
        if not k.startswith("exchange_")
    }
    old = ExecutionStats.from_dict(legacy)
    assert old.exchange_kind == "serial"
    assert old.exchange_workers == 0
    assert old.exchange_fallbacks == 0
