"""Tests for BoxQuery / StepTemplate and the solved-form conversion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boxes import (
    BOT,
    Box,
    BoxQuery,
    BoxVar,
    EMPTY_BOX,
    StepTemplate,
    TOP,
    bjoin,
    compile_solved_constraint,
)
from repro.constraints import (
    SMUGGLERS_ORDER,
    smugglers_system,
    triangular_form,
)
from tests.strategies import PLANE, boxes, nonempty_boxes

UNIVERSE = PLANE.universe_box


class TestBoxQuery:
    def test_inside(self):
        q = BoxQuery(inside=Box((0, 0), (4, 4)))
        assert q.matches(Box((1, 1), (2, 2)))
        assert not q.matches(Box((1, 1), (5, 5)))

    def test_covers(self):
        q = BoxQuery(covers=Box((1, 1), (2, 2)))
        assert q.matches(Box((0, 0), (4, 4)))
        assert not q.matches(Box((1.5, 1.5), (4, 4)))

    def test_overlap(self):
        q = BoxQuery(overlap=(Box((0, 0), (1, 1)), Box((2, 2), (3, 3))))
        assert q.matches(Box((0.5, 0.5), (2.5, 2.5)))
        assert not q.matches(Box((0.5, 0.5), (1.5, 1.5)))

    def test_unsatisfiable_empty_overlap(self):
        q = BoxQuery(overlap=(EMPTY_BOX,))
        assert q.is_unsatisfiable()

    def test_unsatisfiable_covers_not_in_inside(self):
        q = BoxQuery(inside=Box((0, 0), (1, 1)), covers=Box((2, 2), (3, 3)))
        assert q.is_unsatisfiable()

    def test_satisfiable_plain(self):
        q = BoxQuery(inside=Box((0, 0), (4, 4)), covers=Box((1, 1), (2, 2)))
        assert not q.is_unsatisfiable()

    def test_render(self):
        q = BoxQuery(inside=Box((0, 0), (4, 4)), overlap=(Box((1, 1), (2, 2)),))
        text = q.render()
        assert "<=" in text and "!= empty" in text
        assert BoxQuery().render() == "true"

    @given(boxes(), nonempty_boxes(), nonempty_boxes())
    @settings(max_examples=80)
    def test_matches_is_conjunction(self, target, inside, overlap):
        q = BoxQuery(inside=inside, overlap=(overlap,))
        expected = target.le(inside) and target.overlaps(overlap)
        assert q.matches(target) == expected


class TestStepTemplate:
    def test_instantiate_range(self):
        t = StepTemplate(
            variable="x",
            lower=BoxVar("a"),
            upper=bjoin(BoxVar("a"), BoxVar("b")),
        )
        env = {"a": Box((1, 1), (2, 2)), "b": Box((4, 4), (5, 5))}
        q = t.instantiate(env, UNIVERSE)
        assert q.covers == Box((1, 1), (2, 2))
        assert q.inside == Box((1, 1), (5, 5))

    def test_overlap_emitted_only_when_q_empty(self):
        from repro.boxes import OverlapTemplate

        t = StepTemplate(
            variable="x",
            lower=BOT,
            upper=TOP,
            overlaps=(
                OverlapTemplate(p_upper=BoxVar("p"), q_upper=BoxVar("q")),
            ),
        )
        env_q_empty = {"p": Box((0, 0), (1, 1)), "q": EMPTY_BOX}
        env_q_full = {"p": Box((0, 0), (1, 1)), "q": Box((2, 2), (3, 3))}
        q1 = t.instantiate(env_q_empty, UNIVERSE)
        q2 = t.instantiate(env_q_full, UNIVERSE)
        assert q1.overlap == (Box((0, 0), (1, 1)),)
        assert q2.overlap == ()  # "the trivial constraint true otherwise"

    def test_render(self):
        t = StepTemplate(variable="x", lower=BOT, upper=BoxVar("c"))
        assert "[x]" in t.render()

    def test_compile_rejects_non_solved(self):
        with pytest.raises(TypeError):
            compile_solved_constraint("nope")


class TestSmugglersConversion:
    """The Section 2 bounding-box system, regenerated (E1, second half)."""

    @pytest.fixture(scope="class")
    def templates(self):
        tri = triangular_form(smugglers_system(), SMUGGLERS_ORDER)
        return {
            c.variable: compile_solved_constraint(c) for c in tri.constraints
        }

    def test_step_T_is_trivial(self, templates):
        # Line 1 of the paper's box system: 0 ⊑ ⌈T⌉ (all other parts
        # trivial — U_{¬C} = TOP).
        t = templates["T"]
        assert t.lower == BOT
        assert t.upper == TOP
        assert len(t.overlaps) == 1
        assert t.overlaps[0].p_upper == TOP  # ⌈¬C⌉ approximated by TOP
        assert t.overlaps[0].q_upper == BOT

    def test_step_R_matches_paper(self, templates):
        # 0 ⊑ ⌈R⌉ ⊑ ⌈C⌉⊔⌈T⌉;  ⌈A⌉⊓⌈R⌉ ≠ ∅;  ⌈R⌉⊓⌈T⌉ ≠ ∅.
        t = templates["R"]
        assert t.lower == BOT
        assert t.upper == bjoin(BoxVar("C"), BoxVar("T"))
        ps = {o.p_upper for o in t.overlaps}
        assert ps == {BoxVar("A"), BoxVar("T")}
        for o in t.overlaps:
            assert o.q_upper == BOT

    def test_step_B_matches_paper(self, templates):
        # 0 ⊑ ⌈B⌉ ⊑ ⌈C⌉  (lower bound's L is empty: the bound R∧¬A∧¬T
        # contains no positive atom).
        t = templates["B"]
        assert t.lower == BOT
        assert t.upper == BoxVar("C")
        assert t.overlaps == ()

    def test_instantiated_step_R_query(self, templates):
        env = {
            "C": Box((1.0, 1.0), (12.0, 12.0)),
            "A": Box((8.0, 8.0), (11.0, 11.0)),
            "T": Box((0.5, 5.0), (1.5, 6.0)),
        }
        q = templates["R"].instantiate(env, UNIVERSE)
        assert q.inside == Box((0.5, 1.0), (12.0, 12.0))
        assert set(q.overlap) == {env["A"], env["T"]}
        # A road box satisfying the exact constraints must match.
        road_box = Box((1.0, 5.0), (9.0, 9.0))
        assert q.matches(road_box)
        # A road far from the town must not.
        assert not q.matches(Box((9.0, 9.0), (10.0, 10.0)))


class TestNecessityOfTemplates:
    """The compiled BoxQuery is a NECESSARY condition: every region value
    satisfying the exact solved constraint has a box matching the query."""

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_on_smugglers_level_R(self, data):
        from tests.strategies import region_elements

        tri = triangular_form(smugglers_system(), SMUGGLERS_ORDER)
        solved = tri.constraint_for("R")
        template = compile_solved_constraint(solved)

        env = {
            "C": data.draw(region_elements(), label="C"),
            "A": data.draw(region_elements(), label="A"),
            "T": data.draw(region_elements(), label="T"),
        }
        value = data.draw(region_elements(), label="R")
        if not solved.holds(PLANE, value, env):
            return
        box_env = {n: env[n].bounding_box() for n in env}
        q = template.instantiate(box_env, UNIVERSE)
        assert q.matches(value.bounding_box())
