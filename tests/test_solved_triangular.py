"""Tests for the solved form (Schröder/Boole) and Algorithm 1."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import FALSE, TRUE, Var, disj, evaluate
from repro.constraints import (
    ConstraintSystem,
    EquationalSystem,
    SolvedConstraint,
    nonempty,
    overlaps,
    solve_for,
    solved_to_system,
    subset,
    triangular_form,
    verify_necessity,
)
from tests.strategies import BITS8, bitvec_elements
from tests.test_boolean_semantics import formulas


class TestSchroder:
    """Theorem 10: f = 0  ⟺  f[x←0] ⊆ x ⊆ ¬f[x←1]."""

    @given(formulas(max_leaves=6), st.data())
    @settings(max_examples=100)
    def test_schroder_equivalence_bitvec(self, f, data):
        alg = BITS8
        system = EquationalSystem(f, [])
        solved, passed = solve_for(system, "x")
        assert passed == []
        names = sorted(system.variables() | {"x"})
        env = {n: data.draw(bitvec_elements(), label=n) for n in names}
        lhs = system.holds(alg, env)
        rhs = solved.holds(alg, env["x"], env)
        assert lhs == rhs


class TestBooleExpansion:
    """Theorem 11: g ≠ 0 ⟺ x∧g[x←1] ≠ 0 ∨ ¬x∧g[x←0] ≠ 0."""

    @given(formulas(max_leaves=6), st.data())
    @settings(max_examples=100)
    def test_disequation_equivalence_bitvec(self, g, data):
        alg = BITS8
        system = EquationalSystem(FALSE, [g])
        solved, passed = solve_for(system, "x")
        names = sorted(system.variables() | {"x"})
        env = {n: data.draw(bitvec_elements(), label=n) for n in names}
        lhs = system.holds(alg, env)
        rhs = solved.holds(alg, env["x"], env) and all(
            not alg.is_zero(evaluate(h, alg, env)) for h in passed
        )
        assert lhs == rhs


class TestSolvedRoundTrip:
    @given(formulas(max_leaves=6), formulas(max_leaves=6))
    @settings(max_examples=80, deadline=None)
    def test_solved_to_system_equivalent(self, f, g):
        from repro.constraints import entails_atomless

        system = EquationalSystem(f, [g] if g.mentions("x") else [g & Var("x") | g & ~Var("x")])
        solved, passed = solve_for(system, "x")
        rebuilt = solved_to_system(solved)
        merged = EquationalSystem(
            rebuilt.equation, list(rebuilt.disequations) + list(passed)
        )
        assert entails_atomless(system, merged)
        assert entails_atomless(merged, system)


class TestSolvedConstraintApi:
    def test_earlier_variables(self):
        c = SolvedConstraint(
            variable="x", lower=Var("a"), upper=Var("b") | Var("x")
        )
        assert c.earlier_variables() == frozenset({"a", "b"})

    def test_is_range_trivial(self):
        assert SolvedConstraint("x", FALSE, TRUE).is_range_trivial()
        assert not SolvedConstraint("x", Var("a"), TRUE).is_range_trivial()

    def test_render_mentions_parts(self):
        from repro.constraints import Disequation

        c = SolvedConstraint(
            "x",
            Var("a"),
            Var("b"),
            (Disequation(Var("p"), FALSE), Disequation(FALSE, Var("q"))),
        )
        text = c.render()
        assert "a <= x <= b" in text
        assert "x & (p) != 0" in text
        assert "~x & (q) != 0" in text


class TestTriangularAlgorithm:
    def test_duplicate_order_rejected(self):
        s = ConstraintSystem.build(subset("x", "y"))
        with pytest.raises(ValueError):
            triangular_form(s, ["x", "x"])

    def test_each_level_mentions_only_prefix(self):
        s = ConstraintSystem.build(
            subset("x", "y"), overlaps("y", "z"), nonempty("x")
        )
        tri = triangular_form(s, ["x", "y", "z"])
        seen = set()
        for c in tri.constraints:
            assert c.earlier_variables() <= seen
            seen.add(c.variable)

    def test_ground_is_constant_free_system(self):
        s = ConstraintSystem.build(
            subset("x", "C"), overlaps("x", "D"), nonempty("y")
        )
        tri = triangular_form(s, ["x", "y"])
        assert tri.ground.variables() <= {"C", "D"}

    def test_constraint_for(self):
        s = ConstraintSystem.build(subset("x", "y"))
        tri = triangular_form(s, ["x", "y"])
        assert tri.constraint_for("x").variable == "x"
        with pytest.raises(KeyError):
            tri.constraint_for("q")

    @given(
        formulas(max_leaves=6),
        formulas(max_leaves=5),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_necessity_on_solutions(self, f, g, data):
        """Any full solution of S satisfies every C_i (Theorem 9 chained)."""
        alg = BITS8
        system = EquationalSystem(f, [g])
        names = sorted(system.variables())
        if not names:
            return
        env = {n: data.draw(bitvec_elements(), label=n) for n in names}
        if not system.holds(alg, env):
            return
        tri = triangular_form(
            system, names, simplify_modulo_ground=False
        )
        assert verify_necessity(tri, alg, env)

    @given(
        formulas(max_leaves=6),
        formulas(max_leaves=5),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_necessity_with_constants(self, f, g, data):
        """Holds too when some variables stay as bound constants."""
        alg = BITS8
        system = EquationalSystem(f, [g])
        names = sorted(system.variables())
        if len(names) < 2:
            return
        order, consts = names[:-1], names[-1:]
        env = {n: data.draw(bitvec_elements(), label=n) for n in names}
        if not system.holds(alg, env):
            return
        tri = triangular_form(system, order, simplify_modulo_ground=False)
        assert verify_necessity(tri, alg, env)

    def test_exactness_of_last_level(self):
        """C_n together with the lower levels is equivalent to S itself
        (the final rewriting loses nothing)."""
        from repro.constraints import entails_atomless

        x, y = Var("x"), Var("y")
        system = EquationalSystem(x & ~y, [x & y])
        tri = triangular_form(system, ["x", "y"], simplify_modulo_ground=False)
        rebuilt_parts = []
        for c in tri.constraints:
            rb = solved_to_system(c)
            rebuilt_parts.append(rb)
        merged = EquationalSystem(
            disj(*[p.equation for p in rebuilt_parts]),
            [d for p in rebuilt_parts for d in p.disequations],
        )
        assert entails_atomless(system, merged)
        assert entails_atomless(merged, system)

    def test_render_contains_all_levels(self):
        s = ConstraintSystem.build(subset("x", "y"), nonempty("x"))
        tri = triangular_form(s, ["x", "y"])
        text = tri.render()
        assert "C[x]" in text and "C[y]" in text
