"""Tests for the constraint-system surface syntax."""

import pytest

from repro.boolean import Var, equivalent
from repro.constraints import (
    SMUGGLERS_ORDER,
    parse_constraint,
    parse_system,
    smugglers_system,
    triangular_form,
)
from repro.errors import ParseError


class TestParseConstraint:
    def test_subset(self):
        s = parse_constraint("A <= C")
        assert len(s.positives) == 1 and not s.negatives
        c = s.positives[0]
        assert c.lhs == Var("A") and c.rhs == Var("C")

    def test_not_subset(self):
        s = parse_constraint("T !<= C")
        assert len(s.negatives) == 1 and not s.positives

    def test_nonempty(self):
        s = parse_constraint("R & A != 0")
        assert len(s.negatives) == 1
        assert equivalent(
            s.negatives[0].as_nonzero_formula(), Var("R") & Var("A")
        )

    def test_empty(self):
        s = parse_constraint("R & A = 0")
        assert len(s.positives) == 1
        assert equivalent(
            s.positives[0].as_zero_equation(), Var("R") & Var("A")
        )

    def test_equality_expands(self):
        s = parse_constraint("x = y")
        assert len(s.positives) == 2

    def test_strict_subset(self):
        s = parse_constraint("x < y")
        assert len(s.positives) == 1 and len(s.negatives) == 1

    def test_complex_formulas(self):
        s = parse_constraint("R <= A | B | T")
        assert equivalent(
            s.positives[0].rhs, Var("A") | Var("B") | Var("T")
        )

    def test_general_disequality_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x != y")

    def test_empty_line_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("   ")

    def test_no_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_constraint("x & y")


class TestParseSystem:
    FIGURE1 = """
        # the paper's Figure 1
        A <= C
        B <= C
        R <= A | B | T
        R & A != 0
        R & T != 0
        T !<= C
    """

    def test_figure1_matches_builtin(self):
        parsed = parse_system(self.FIGURE1)
        builtin = smugglers_system()
        assert parsed.normalize().simplified() == (
            builtin.normalize().simplified()
        )

    def test_figure1_triangularises_identically(self):
        parsed = parse_system(self.FIGURE1)
        t1 = triangular_form(parsed, SMUGGLERS_ORDER)
        t2 = triangular_form(smugglers_system(), SMUGGLERS_ORDER)
        assert t1.render() == t2.render()

    def test_semicolon_separated(self):
        s = parse_system("x <= y; y != 0")
        assert len(s.positives) == 1 and len(s.negatives) == 1

    def test_comments_and_blanks_ignored(self):
        s = parse_system("# comment\n\n x <= y \n")
        assert len(s) == 1

    def test_empty_input_rejected(self):
        with pytest.raises(ParseError):
            parse_system("# only a comment")

    def test_parenthesised_formulas(self):
        s = parse_system("(x | y) & ~z <= w")
        assert len(s.positives) == 1
