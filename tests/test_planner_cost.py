"""Planner edge cases and cost-based order selection.

Covers the ISSUE-1 checklist: empty tables, a single unknown,
all-negative constraint systems, and agreement between the
histogram-estimated and greedy orders on the paper's Section 2 example.
"""

import pytest

from repro.algebra import Region
from repro.boxes import Box
from repro.constraints import ConstraintSystem, nonempty, overlaps, subset
from repro.datagen import smugglers_query
from repro.engine import (
    ORDER_STRATEGIES,
    SpatialQuery,
    best_order_by_estimate,
    choose_order,
    compile_query,
    estimate_order_cost_histogram,
    execute,
    plan_order,
)
from repro.spatial import SpatialTable

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def _table(name, boxes):
    t = SpatialTable(name, 2, universe=UNIVERSE)
    for i, b in enumerate(boxes):
        t.insert(i, Region.from_box(b))
    return t


def _measured_partials(query, order):
    plan = compile_query(query, order=order)
    _answers, stats = execute(plan, "boxplan")
    return stats.partial_tuples


class TestEdgeCases:
    def test_empty_table(self):
        empty = _table("empty", [])
        other = _table("other", [Box((1, 1), (5, 5))])
        q = SpatialQuery(
            system=ConstraintSystem.build(subset("x", "y")),
            tables={"x": empty, "y": other},
        )
        for strategy in ORDER_STRATEGIES:
            order = plan_order(q, strategy)
            assert sorted(order) == ["x", "y"]
        answers, stats = execute(
            compile_query(q, order=plan_order(q, "histogram")), "boxplan"
        )
        assert answers == []
        assert len(stats.steps) == 2

    def test_all_tables_empty(self):
        q = SpatialQuery(
            system=ConstraintSystem.build(overlaps("x", "y")),
            tables={"x": _table("a", []), "y": _table("b", [])},
        )
        for strategy in ORDER_STRATEGIES:
            assert sorted(plan_order(q, strategy)) == ["x", "y"]

    def test_single_unknown(self):
        t = _table("t", [Box((i, i), (i + 2, i + 2)) for i in range(10)])
        q = SpatialQuery(
            system=ConstraintSystem.build(nonempty("x")),
            tables={"x": t},
        )
        for strategy in ORDER_STRATEGIES:
            assert plan_order(q, strategy) == ("x",)
        assert estimate_order_cost_histogram(q, ("x",)) > 0

    def test_all_negative_system(self):
        boxes_a = [Box((i * 3, 0), (i * 3 + 2, 4)) for i in range(8)]
        boxes_b = [Box((0, i * 3), (4, i * 3 + 2)) for i in range(12)]
        q = SpatialQuery(
            system=ConstraintSystem.build(
                overlaps("x", "y"), nonempty("x"), nonempty("y")
            ),
            tables={"x": _table("a", boxes_a), "y": _table("b", boxes_b)},
        )
        greedy = plan_order(q, "greedy")
        hist = plan_order(q, "histogram")
        assert sorted(greedy) == sorted(hist) == ["x", "y"]
        assert _measured_partials(q, hist) <= _measured_partials(q, greedy)

    def test_unknown_strategy_rejected(self):
        t = _table("t", [Box((0, 0), (1, 1))])
        q = SpatialQuery(
            system=ConstraintSystem.build(nonempty("x")), tables={"x": t}
        )
        with pytest.raises(ValueError):
            plan_order(q, "oracle")
        with pytest.raises(ValueError):
            best_order_by_estimate(q, estimator="tarot")


class TestSection2Agreement:
    """The paper's Section 2 example: histogram vs greedy."""

    @pytest.mark.parametrize("seed", [0, 3, 21])
    def test_histogram_never_worse_than_greedy(self, seed):
        q, _world = smugglers_query(
            seed=seed, n_towns=12, n_roads=12, states_grid=(3, 3)
        )
        q2 = SpatialQuery(
            system=q.system, tables=q.tables, bindings=q.bindings
        )
        greedy = choose_order(q2)
        hist = plan_order(q2, "histogram")
        assert _measured_partials(q2, hist) <= _measured_partials(q2, greedy)

    def test_histogram_estimates_rank_orders(self):
        q, _world = smugglers_query(
            seed=21, n_towns=14, n_roads=14, states_grid=(3, 3)
        )
        q2 = SpatialQuery(
            system=q.system, tables=q.tables, bindings=q.bindings
        )
        from repro.engine import enumerate_orders

        costs = {
            o: estimate_order_cost_histogram(q2, o)
            for o in enumerate_orders(q2)
        }
        assert len(set(costs.values())) > 1
        # The paper's "arbitrary" town-first choice and the road-first
        # order are the two cheap ones; a state-first order is the
        # expensive end (states ⊆ C admits every state).
        worst = max(costs, key=costs.get)
        assert worst[0] == "B"

    def test_raw_estimator_still_available(self):
        q, _world = smugglers_query(seed=0, n_towns=6, n_roads=6)
        q2 = SpatialQuery(
            system=q.system, tables=q.tables, bindings=q.bindings
        )
        order = best_order_by_estimate(q2, estimator="raw")
        assert sorted(order) == ["B", "R", "T"]

    def test_histogram_all_strategies_same_answers(self):
        q, _world = smugglers_query(
            seed=2, n_towns=8, n_roads=8, states_grid=(2, 2)
        )
        q2 = SpatialQuery(
            system=q.system, tables=q.tables, bindings=q.bindings
        )
        from repro.engine import answers_as_oid_tuples

        reference = None
        for strategy in ORDER_STRATEGIES:
            plan = compile_query(q2, order=plan_order(q2, strategy))
            answers, _stats = execute(plan, "boxplan")
            got = answers_as_oid_tuples(answers, ["T", "R", "B"])
            if reference is None:
                reference = got
            assert got == reference, strategy
