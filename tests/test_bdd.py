"""Tests for the BDD engine and the simplifier built on it."""

import pytest
from hypothesis import given, settings

from repro.boolean import (
    FALSE,
    TRUE,
    Bdd,
    bdd_equivalent,
    bdd_implies,
    cover_to_formula,
    equivalent,
    equivalent_under,
    implies,
    simplify,
    simplify_under,
    variables,
)
from tests.test_boolean_semantics import formulas


class TestConstruction:
    def test_terminals(self):
        mgr = Bdd()
        assert mgr.from_formula(TRUE) == mgr.true
        assert mgr.from_formula(FALSE) == mgr.false

    def test_canonicity(self):
        x, y, z = variables("x", "y", "z")
        mgr = Bdd(["x", "y", "z"])
        lhs = mgr.from_formula(x & (y | z))
        rhs = mgr.from_formula((x & y) | (x & z))
        assert lhs == rhs

    def test_negation_involution(self):
        x, y = variables("x", "y")
        mgr = Bdd(["x", "y"])
        u = mgr.from_formula(x & ~y)
        assert mgr.apply_not(mgr.apply_not(u)) == u

    @given(formulas(), formulas())
    @settings(max_examples=100, deadline=None)
    def test_equivalence_matches_truth_tables(self, f, g):
        assert bdd_equivalent(f, g) == equivalent(f, g)

    @given(formulas(), formulas())
    @settings(max_examples=100, deadline=None)
    def test_implication_matches_truth_tables(self, f, g):
        assert bdd_implies(f, g) == implies(f, g)


class TestOperations:
    def setup_method(self):
        self.mgr = Bdd(["x", "y", "z"])
        self.x, self.y, self.z = variables("x", "y", "z")

    def test_restrict(self):
        f = (self.x & self.y) | (~self.x & self.z)
        u = self.mgr.from_formula(f)
        assert self.mgr.restrict(u, "x", True) == self.mgr.from_formula(self.y)
        assert self.mgr.restrict(u, "x", False) == self.mgr.from_formula(self.z)

    def test_exists_is_boole_elimination(self):
        # exists x. f  ==  f[x<-0] | f[x<-1]  (Theorem 2 in function form)
        f = (self.x & self.y) | (~self.x & self.z)
        u = self.mgr.from_formula(f)
        expected = self.mgr.from_formula(self.y | self.z)
        assert self.mgr.exists(u, ["x"]) == expected

    def test_forall(self):
        f = self.x | self.y
        u = self.mgr.from_formula(f)
        assert self.mgr.forall(u, ["x"]) == self.mgr.from_formula(self.y)

    def test_compose(self):
        f = self.x & self.y
        u = self.mgr.from_formula(f)
        composed = self.mgr.compose(u, "y", self.mgr.from_formula(self.z))
        assert composed == self.mgr.from_formula(self.x & self.z)

    def test_support(self):
        f = (self.x & self.y) | (self.x & ~self.y)  # == x
        u = self.mgr.from_formula(f)
        assert self.mgr.support(u) == ("x",)

    def test_sat_count(self):
        u = self.mgr.from_formula(self.x | self.y)
        assert self.mgr.sat_count(u, 3) == 6
        assert self.mgr.sat_count(self.mgr.true, 3) == 8
        assert self.mgr.sat_count(self.mgr.false, 3) == 0

    def test_pick_model(self):
        u = self.mgr.from_formula(self.x & ~self.y)
        model = self.mgr.pick_model(u)
        assert model["x"] is True and model["y"] is False
        assert self.mgr.pick_model(self.mgr.false) is None

    def test_iter_models(self):
        u = self.mgr.from_formula(self.x ^ self.y)
        models = list(self.mgr.iter_models(u))
        assert len(models) == 2
        for m in models:
            assert m["x"] != m["y"]


class TestConstrain:
    def test_agreement_on_care_set(self):
        x, y, z = variables("x", "y", "z")
        mgr = Bdd(["x", "y", "z"])
        f = mgr.from_formula((x & y) | z)
        care = mgr.from_formula(x)
        g = mgr.constrain(f, care)
        # g must agree with f wherever care holds.
        diff = mgr.apply_and(care, mgr.apply_xor(f, g))
        assert diff == mgr.false

    def test_rejects_empty_care(self):
        mgr = Bdd(["x"])
        with pytest.raises(ValueError):
            mgr.constrain(mgr.true, mgr.false)

    @given(formulas(max_leaves=6), formulas(max_leaves=6))
    @settings(max_examples=80, deadline=None)
    def test_constrain_agrees_on_care(self, f, c):
        names = sorted(f.variables() | c.variables())
        mgr = Bdd(names)
        cn = mgr.from_formula(c)
        if cn == mgr.false:
            return
        fn = mgr.from_formula(f)
        g = mgr.constrain(fn, cn)
        assert mgr.apply_and(cn, mgr.apply_xor(fn, g)) == mgr.false


class TestIsop:
    @given(formulas())
    @settings(max_examples=120, deadline=None)
    def test_isop_cover_denotes_f(self, f):
        mgr = Bdd(sorted(f.variables()))
        u = mgr.from_formula(f)
        cover = mgr.isop(u)
        assert equivalent(cover_to_formula(cover), f)

    @given(formulas())
    @settings(max_examples=80, deadline=None)
    def test_isop_terms_are_implicants(self, f):
        mgr = Bdd(sorted(f.variables()))
        for t in mgr.isop(mgr.from_formula(f)):
            assert implies(t.to_formula(), f)


class TestSimplify:
    def test_known_simplifications(self):
        x, y, z = variables("x", "y", "z")
        assert simplify((x & y) | (x & ~y)) == x
        assert simplify(x & (x | y)) == x
        assert simplify((x | y) & (x | ~y)) == x
        assert simplify(x & ~x) == FALSE
        assert simplify(x | ~x) == TRUE

    @given(formulas())
    @settings(max_examples=120, deadline=None)
    def test_simplify_preserves_function(self, f):
        assert equivalent(simplify(f), f)

    @given(formulas())
    @settings(max_examples=80, deadline=None)
    def test_simplify_never_grows_much(self, f):
        # ISOP covers are irredundant; the rebuilt formula should not be
        # dramatically larger than the input for these small formulas.
        assert simplify(f).size() <= 4 * f.size() + 4


class TestSimplifyUnder:
    def test_paper_section2_simplification(self):
        # Under the ground fact A <= C:  C | (~A & T)  simplifies to C | T.
        A, C, T = variables("A", "C", "T")
        care = ~(A & ~C)
        got = simplify_under(C | (~A & T), care)
        assert equivalent_under(care, got, C | T)
        assert got.size() <= (C | T).size()

    def test_unsatisfiable_care(self):
        x = variables("x")[0]
        assert simplify_under(x, x & ~x) == FALSE

    @given(formulas(max_leaves=6), formulas(max_leaves=6))
    @settings(max_examples=80, deadline=None)
    def test_agrees_on_care_set(self, f, care):
        got = simplify_under(f, care)
        assert equivalent_under(care, got, f)
