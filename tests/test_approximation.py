"""Tests for Algorithm 2 — best L/U bounding-box approximations.

Soundness is checked against the region algebra: for random regions
bound to the variables, ``L_f(⌈r⃗⌉) ⊑ ⌈f(r⃗)⌉ ⊑ U_f(⌈r⃗⌉)``.
Optimality is checked (a) on the paper's worked examples, (b) against
the naive syntactic transform (U_f must never be worse), and (c) against
alternative SOP covers (Theorem 17's representation independence).
"""

from hypothesis import given, settings, strategies as st

from repro.boolean import FALSE, TRUE, evaluate, formula_to_cover, variables
from repro.boxes import (
    BOT,
    Box,
    BoxVar,
    TOP,
    approximate,
    bjoin,
    bmeet,
    evaluate_boxfunc,
    lower_approximation,
    naive_transform,
    render_boxfunc,
    term_upper,
    upper_approximation,
    upper_approximation_sop,
)
from tests.strategies import PLANE, region_elements
from tests.test_boolean_semantics import formulas

UNIVERSE = PLANE.universe_box


def _region_env(data, names):
    return {
        n: data.draw(region_elements(), label=f"region[{n}]") for n in names
    }


class TestPaperExamples:
    def test_example_2_and_3(self):
        # f = x∧y ∨ ¬x∧(y ∨ z∧w):  L_f = ⌈y⌉,  U_f = ⌈y⌉ ⊔ (⌈z⌉⊓⌈w⌉).
        x, y, z, w = variables("x", "y", "z", "w")
        f = (x & y) | (~x & (y | (z & w)))
        ap = approximate(f)
        assert ap.lower == BoxVar("y")
        assert ap.upper == bjoin(BoxVar("y"), bmeet(BoxVar("z"), BoxVar("w")))

    def test_constants(self):
        assert lower_approximation(FALSE) == BOT
        assert upper_approximation(FALSE) == BOT
        assert lower_approximation(TRUE) == TOP
        assert upper_approximation(TRUE) == TOP

    def test_single_variable(self):
        (x,) = variables("x")
        assert lower_approximation(x) == BoxVar("x")
        assert upper_approximation(x) == BoxVar("x")

    def test_pure_negation(self):
        (x,) = variables("x")
        assert lower_approximation(~x) == BOT
        assert upper_approximation(~x) == TOP

    def test_conjunction(self):
        x, y = variables("x", "y")
        assert upper_approximation(x & y) == bmeet(BoxVar("x"), BoxVar("y"))
        # x∧y has no atom below it: L = EMPTY.
        assert lower_approximation(x & y) == BOT

    def test_disjunction_lower(self):
        x, y = variables("x", "y")
        assert lower_approximation(x | y) == bjoin(BoxVar("x"), BoxVar("y"))

    def test_hidden_atom_found_via_bcf(self):
        # f = (x∧y) ∨ (¬x∧y) == y: the naive SOP has no single-atom term,
        # but BCF reveals the atom y.
        x, y = variables("x", "y")
        f = (x & y) | (~x & y)
        assert lower_approximation(f) == BoxVar("y")
        assert upper_approximation(f) == BoxVar("y")

    def test_consensus_improves_upper(self):
        # f = x∧y ∨ ¬x∧z: BCF adds y∧z; U must absorb it (y∧z ⊑ ... no:
        # (⌈y⌉⊓⌈z⌉) is absorbed by neither, but IS redundant pointwise
        # below (⌈x⌉⊓⌈y⌉) ⊔ ... — check U is not WORSE than the SOP U.)
        x, y, z = variables("x", "y", "z")
        f = (x & y) | (~x & z)
        u_bcf = upper_approximation(f)
        u_sop = upper_approximation_sop(formula_to_cover(f))
        env = {
            "x": Box((0.0, 0.0), (4.0, 4.0)),
            "y": Box((2.0, 2.0), (6.0, 6.0)),
            "z": Box((8.0, 8.0), (9.0, 9.0)),
        }
        vb = evaluate_boxfunc(u_bcf, env, UNIVERSE)
        vs = evaluate_boxfunc(u_sop, env, UNIVERSE)
        assert vs.le(vb) or vb.le(vs)  # comparable on this instance


class TestSoundness:
    @given(formulas(max_leaves=6), st.data())
    @settings(max_examples=80, deadline=None)
    def test_lower_and_upper_bracket_the_box(self, f, data):
        names = sorted(f.variables())
        env = _region_env(data, names)
        value = evaluate(f, PLANE, env)
        fbox = value.bounding_box()
        box_env = {n: env[n].bounding_box() for n in names}
        lo = evaluate_boxfunc(lower_approximation(f), box_env, UNIVERSE)
        hi = evaluate_boxfunc(upper_approximation(f), box_env, UNIVERSE)
        assert lo.le(fbox), (
            f"L_f not below ⌈f⌉: {render_boxfunc(lower_approximation(f))}"
        )
        assert fbox.le(hi), (
            f"⌈f⌉ not below U_f: {render_boxfunc(upper_approximation(f))}"
        )

    @given(formulas(max_leaves=6), st.data())
    @settings(max_examples=60, deadline=None)
    def test_upper_never_worse_than_naive(self, f, data):
        """U_f (Algorithm 2) ⊑ naive transform, pointwise."""
        names = sorted(f.variables())
        env = _region_env(data, names)
        box_env = {n: env[n].bounding_box() for n in names}
        u = evaluate_boxfunc(upper_approximation(f), box_env, UNIVERSE)
        n = evaluate_boxfunc(naive_transform(f), box_env, UNIVERSE)
        assert u.le(n)

    @given(formulas(max_leaves=6), st.data())
    @settings(max_examples=60, deadline=None)
    def test_sop_route_also_sound(self, f, data):
        names = sorted(f.variables())
        env = _region_env(data, names)
        value = evaluate(f, PLANE, env)
        box_env = {n: env[n].bounding_box() for n in names}
        hi = evaluate_boxfunc(
            upper_approximation_sop(formula_to_cover(f)), box_env, UNIVERSE
        )
        assert value.bounding_box().le(hi)


class TestOptimality:
    def test_lower_is_tight_on_joins(self):
        """For f = x ∨ y the bound L_f = ⌈x⌉⊔⌈y⌉ is *achieved*."""
        x, y = variables("x", "y")
        rx = PLANE.box_region(Box((0.0, 0.0), (1.0, 1.0)))
        ry = PLANE.box_region(Box((4.0, 4.0), (5.0, 5.0)))
        env = {"x": rx, "y": ry}
        box_env = {n: env[n].bounding_box() for n in env}
        lo = evaluate_boxfunc(lower_approximation(x | y), box_env, UNIVERSE)
        assert lo == evaluate(x | y, PLANE, env).bounding_box()

    def test_upper_is_tight_on_meets_of_boxes(self):
        """For box-shaped regions, ⌈x∧y⌉ = ⌈x⌉⊓⌈y⌉ exactly."""
        x, y = variables("x", "y")
        rx = PLANE.box_region(Box((0.0, 0.0), (4.0, 4.0)))
        ry = PLANE.box_region(Box((2.0, 2.0), (6.0, 6.0)))
        env = {"x": rx, "y": ry}
        box_env = {n: env[n].bounding_box() for n in env}
        hi = evaluate_boxfunc(upper_approximation(x & y), box_env, UNIVERSE)
        assert hi == evaluate(x & y, PLANE, env).bounding_box()

    def test_lower_dominates_any_atom_below_f(self):
        """Theorem 15's shape: every atom x ≤ f contributes ⌈x⌉ ≤ L_f."""

        x, y, z = variables("x", "y", "z")
        f = y | (x & z) | (x & ~z)  # == y | x; atoms below: x, y
        lf = lower_approximation(f)
        assert lf == bjoin(BoxVar("x"), BoxVar("y"))

    def test_absorption_inside_upper(self):
        # U of y ∨ (y∧z) must be just ⌈y⌉ (the meet is absorbed).
        y, z = variables("y", "z")
        assert upper_approximation(y | (y & z)) == BoxVar("y")


class TestTermUpper:
    def test_positive_term(self):
        from repro.boolean import term

        assert term_upper(term("x", "y")) == bmeet(BoxVar("x"), BoxVar("y"))

    def test_negative_literals_dropped(self):
        from repro.boolean import term

        assert term_upper(term("x", "~y")) == BoxVar("x")

    def test_all_negative_term_is_top(self):
        from repro.boolean import term

        assert term_upper(term("~x", "~y")) == TOP
