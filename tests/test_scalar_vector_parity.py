"""Scalar-vs-vectorized parity regressions.

Two invariants the static-analysis PR audited and now pins:

1. **Bit-identical distances.**  The scalar :class:`Box` distance
   methods and the columnar kernels must agree to the last ulp — the
   KNN differential relies on exact float equality of priority-queue
   keys.  The historical regression: scalar code squared with ``x ** 2``
   and rooted with ``x ** 0.5``, which lower to libm ``pow`` — *not*
   correctly rounded on common platforms — while the array kernels use
   multiply and ``sqrt`` (single correctly-rounded IEEE ops).  At
   ~1-in-1200 per operand the results differed by one ulp, flipping
   nearest-neighbor tie-breaks between the scalar and vectorized paths.

2. **Identical billing counters.**  A vectorized run must report the
   same ``ExecutionStats`` as its scalar twin — candidates, survivors,
   probes, node reads — except the ``vectorized_*`` pair, which exists
   precisely to tell the runs apart.  This is repro-lint REPRO202's
   runtime counterpart.
"""

import math
import random

import pytest

from conftest import COLUMNAR_BACKENDS, make_workload

from repro.boxes import Box
from repro.constraints import ConstraintSystem, nonempty, overlaps, subset
from repro.engine import (
    SpatialQuery,
    build_physical_plan,
    compile_query,
)
from repro.spatial import ColumnStore, forced_backend

DIM = 2


def random_box(rng):
    """Boxes across magnitudes, to exercise the ulp-sensitive range."""
    scale = rng.choice((1e-3, 1.0, 1e3, 1e6))
    lo = [rng.uniform(-scale, scale) for _ in range(DIM)]
    hi = [v + abs(rng.gauss(0, scale / 3)) for v in lo]
    return Box(lo, hi)


def random_point(rng):
    scale = rng.choice((1e-3, 1.0, 1e3))
    return tuple(rng.uniform(-scale, scale) for _ in range(DIM))


@pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
@pytest.mark.parametrize("seed", [0, 746])
def test_distance_kernels_bit_identical_to_scalar(backend, seed):
    rng = random.Random(seed)
    empty = Box([0.0] * DIM, [0.0] * DIM)  # lo >= hi normalises to empty
    boxes = [random_box(rng) for _ in range(400)] + [empty]
    store = ColumnStore(DIM)
    for i, box in enumerate(boxes):
        store.append(box, i)

    with forced_backend(backend):
        for _ in range(25):
            point = random_point(rng)
            anchor = random_box(rng)
            by_point = list(store.mindist_point(point))
            by_box = list(store.mindist_box(anchor))
            minmax = list(store.minmaxdist_point(point))
            for i, box in enumerate(boxes):
                if box.is_empty():
                    assert by_point[i] == math.inf
                    assert by_box[i] == math.inf
                    assert minmax[i] == math.inf
                    continue
                # Exact equality on purpose: one ulp of divergence
                # reorders KNN heaps.
                assert by_point[i] == box.mindist_point(point)
                assert by_box[i] == box.mindist(anchor)
                assert minmax[i] == box.minmaxdist_point(point)


def test_scalar_distances_use_correctly_rounded_ops():
    """The fix itself: squaring by multiply, rooting by sqrt.

    ``x ** 0.5`` and ``x ** 2`` go through libm ``pow``, which is off
    by one ulp from the correctly-rounded result for ~1 in 1200 doubles
    on this class of platform.  The scalar methods must match the
    multiply/sqrt formulation exactly.
    """
    rng = random.Random(99)
    for _ in range(2000):
        p = rng.uniform(-50, 50)
        a = rng.uniform(-50, 50)
        lo, hi = min(a, a + 1), max(a, a + 1)
        box = Box([lo], [hi])
        d = lo - p if p < lo else (p - hi if p > hi else 0.0)
        assert box.mindist_point((p,)) == math.sqrt(d * d)


PARITY_SYSTEM = ConstraintSystem.build(
    overlaps("u", "v"),
    subset("w", "u"),
    nonempty("v"),
)

EXEMPT_STEP_FIELDS = {"vectorized_batches", "vectorized_candidates"}
STEP_FIELDS = (
    "variable",
    "candidates",
    "survivors",
    "index_probes",
    "node_reads",
    "cache_hits",
    "cache_misses",
)
TOP_FIELDS = (
    "tuples_emitted",
    "partial_tuples",
    "region_ops",
    "box_ops_estimate",
    "exchange_fallbacks",
)


@pytest.mark.parametrize("strategy", [None, "pbsm", "zorder"])
@pytest.mark.parametrize("seed", [3, 11, 99])
def test_vectorized_billing_matches_scalar(seed, strategy):
    tables, bindings = make_workload(
        seed, system=PARITY_SYSTEM, sizes=(6, 14)
    )
    query = SpatialQuery(
        system=PARITY_SYSTEM, tables=tables, bindings=bindings
    )
    plan = compile_query(query, order=sorted(tables))

    def run(vectorize, backend):
        with forced_backend(backend):
            pplan = build_physical_plan(
                plan,
                "boxplan",
                estimate=False,
                partitions=2,
                join_strategy=strategy,
                vectorize=vectorize,
            )
            answers = list(pplan.execute_iter())
            return answers, pplan.stats()

    scalar_answers, scalar = run(False, "off")
    assert scalar.vectorized_batches == 0

    for backend in COLUMNAR_BACKENDS:
        vec_answers, vec = run(True, backend)
        assert len(vec_answers) == len(scalar_answers)
        for name in TOP_FIELDS:
            assert getattr(vec, name) == getattr(scalar, name), (
                f"{name} diverged under {backend}/{strategy}"
            )
        assert len(vec.steps) == len(scalar.steps)
        for v_step, s_step in zip(vec.steps, scalar.steps):
            for name in STEP_FIELDS:
                assert getattr(v_step, name) == getattr(s_step, name), (
                    f"step {s_step.variable}.{name} diverged under "
                    f"{backend}/{strategy}"
                )
