"""Sharded scale-out execution: shards, shm, spill, pools, fallbacks.

The layer's contract is *bit-identity under every failure and transport
mode*: the coordinator join must return exactly the serial sweep's
pairs whether shards ship shared-memory segments, inline packed blobs,
or spill their probe buckets to disk, and whether the worker pool is
healthy, freshly recreated after a ``BrokenExecutor``, or so broken the
Exchange falls all the way back to serial.
"""

import random

import pytest

from repro.algebra import Region
from repro.boxes import Box, BoxQuery
from repro.spatial import (
    Exchange,
    ShardColumnBlock,
    ShardJoinStats,
    ShardedTable,
    SpatialTable,
    WorkerPool,
)
from repro.spatial.shard import _ATTACHED, _attach_boxes

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def _random_boxes(n, seed=0, span=92.0, max_side=8.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        lo = (rng.uniform(0, span), rng.uniform(0, span))
        out.append(
            Box(
                lo,
                (
                    lo[0] + rng.uniform(0.5, max_side),
                    lo[1] + rng.uniform(0.5, max_side),
                ),
            )
        )
    return out


def _table(n=120, seed=3, index="rtree"):
    t = SpatialTable("t", 2, index=index, universe=UNIVERSE)
    for i, b in enumerate(_random_boxes(n, seed=seed)):
        t.insert(i, Region.from_box(b))
    return t


def _probes(n=80, seed=11):
    return list(enumerate(_random_boxes(n, seed=seed, max_side=12.0)))


class TestShardedTableBuild:
    def test_rows_covered_exactly_once(self):
        t = _table(150)
        s = t.sharding(8)
        oids = sorted(o.oid for shard in s.shards for o in shard.table)
        assert oids == list(range(150))
        assert s.total_rows == 150

    def test_shards_share_parent_row_objects(self):
        t = _table(60)
        s = t.sharding(4)
        parent = {id(o) for o in t}
        for shard in s.shards:
            for obj in shard.table:
                assert id(obj) in parent  # identical instances, no copies

    def test_tags_are_parent_sequence_positions(self):
        t = _table(90)
        s = t.sharding(5)
        rows = [o for o in t if not o.box.is_empty()]
        for shard in s.shards:
            assert len(shard.tags) == len(shard.table._objects)
            for obj, tag in zip(shard.table, shard.tags):
                assert rows[tag] is obj
                assert s.seq_of(obj) == tag

    def test_mbrs_contain_their_rows(self):
        s = _table(100).sharding(6)
        for shard in s.shards:
            for obj in shard.table:
                assert obj.box.le(shard.mbr)

    def test_pruning_is_sound(self):
        t = _table(200, seed=9)
        s = t.sharding(9)
        rng = random.Random(4)
        for _ in range(30):
            lo = (rng.uniform(0, 90), rng.uniform(0, 90))
            probe = Box(lo, (lo[0] + rng.uniform(1, 15), lo[1] + 5.0))
            query = BoxQuery(overlap=(probe,))
            surviving = {shard.sid for shard in s.prune(query)}
            for shard in s.shards:
                if shard.sid in surviving:
                    continue
                assert not any(
                    query.matches(o.box) for o in shard.table
                )

    def test_cache_invalidated_by_mutation_and_closed(self):
        t = _table(30)
        s1 = t.sharding(4)
        assert t.sharding(4) is s1  # cached
        t.insert(999, Region.from_box(Box((1, 1), (2, 2))))
        s2 = t.sharding(4)
        assert s2 is not s1
        assert s1.closed  # the superseded sharding released its segments
        assert s2.total_rows == 31

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            ShardedTable.build(_table(5), 0)

    def test_from_row_groups_equals_build(self):
        t = _table(80, seed=7)
        built = t.sharding(5)
        groups = [list(shard.table) for shard in built.shards]
        rebuilt = ShardedTable.from_row_groups(t, 5, groups)
        assert len(rebuilt.shards) == len(built.shards)
        for a, b in zip(built.shards, rebuilt.shards):
            assert a.tags == b.tags
            assert a.mbr == b.mbr
            assert [o.oid for o in a.table] == [o.oid for o in b.table]
        probes = _probes()
        assert sorted(rebuilt.join_pairs(probes)) == sorted(
            built.join_pairs(probes)
        )
        rebuilt.close()


class TestSharedMemory:
    def test_publish_attach_roundtrip_bit_identical(self):
        t = _table(40)
        s = t.sharding(3)
        shard = s.shards[0]
        block = s.publish(shard)
        if block is None:
            pytest.skip("shared memory unavailable in this environment")
        try:
            boxes = _attach_boxes(block.name, block.count, s.dim)
            want = [o.box for o in shard.table]
            assert len(boxes) == len(want)
            for got, exp in zip(boxes, want):
                assert got.lo == exp.lo and got.hi == exp.hi
            # Attach is cached per segment name.
            assert _attach_boxes(block.name, block.count, s.dim) is boxes
        finally:
            _ATTACHED.pop(block.name, None)
            s.close()

    def test_publish_is_once_per_sharding(self):
        t = _table(30)
        s = t.sharding(2)
        shard = s.shards[0]
        first = s.publish(shard)
        assert s.publish(shard) is first
        if first is not None:
            assert s.shm_published == 1
            assert s.shm_bytes == first.nbytes
        s.close()
        assert s.closed
        s.close()  # idempotent
        with pytest.raises(RuntimeError):
            s.publish(shard)

    def test_block_close_is_idempotent(self):
        try:
            block = ShardColumnBlock.create(
                [Box((0.0, 0.0), (1.0, 1.0))], 2
            )
        except (ImportError, OSError, PermissionError):
            pytest.skip("shared memory unavailable in this environment")
        block.close()
        block.close()


class TestCoordinatorJoin:
    def _reference(self, sharding, probes):
        query_pairs = []
        rows = [
            (obj, tag)
            for shard in sharding.shards
            for obj, tag in zip(shard.table, shard.tags)
        ]
        for i, box in probes:
            for obj, tag in rows:
                if box.overlaps(obj.box):
                    query_pairs.append((i, tag))
        return sorted(query_pairs)

    def test_matches_bruteforce_every_shard_count(self):
        t = _table(140, seed=5)
        probes = _probes(90, seed=21)
        for n in (1, 2, 4, 8):
            s = t.sharding(n)
            assert sorted(s.join_pairs(probes)) == self._reference(
                s, probes
            )

    def test_spill_path_identical_and_engaged(self):
        t = _table(160, seed=6)
        probes = _probes(120, seed=22)
        s = t.sharding(6)
        plain_stats = ShardJoinStats()
        plain = sorted(s.join_pairs(probes, stats=plain_stats))
        spill_stats = ShardJoinStats()
        spilled = sorted(
            s.join_pairs(probes, stats=spill_stats, spill=16)
        )
        assert spilled == plain
        assert spill_stats.spilled_entries > 0
        assert spill_stats.spill_flushes > 0
        assert spill_stats.pairs == plain_stats.pairs
        assert spill_stats.pair_tests == plain_stats.pair_tests
        assert (
            spill_stats.semi_join_tests == plain_stats.semi_join_tests
        )

    def test_thread_exchange_identical(self):
        t = _table(130, seed=8)
        probes = _probes(100, seed=23)
        s = t.sharding(5)
        serial = sorted(s.join_pairs(probes))
        with WorkerPool(workers=2, kind="thread") as pool:
            exchange = Exchange(workers=2, kind="thread", pool=pool)
            got = sorted(s.join_pairs(probes, exchange=exchange))
        assert got == serial
        assert exchange.fallbacks == 0

    def test_semi_join_never_ships_nonoverlapping_probes(self):
        t = _table(100, seed=13)
        probes = _probes(60, seed=24)
        s = t.sharding(4)
        stats = ShardJoinStats()
        s.join_pairs(probes, stats=stats)
        shipped = sum(
            1
            for _i, box in probes
            for shard in s.shards
            if box.overlaps(shard.mbr)
        )
        assert stats.probes_shipped == shipped
        assert stats.semi_join_tests == len(probes) * len(s.shards)


class _BrokenOnce:
    """A fake executor whose first ``map`` raises ``BrokenExecutor``."""

    def __init__(self):
        self.calls = 0

    def map(self, fn, tasks):
        from concurrent.futures import BrokenExecutor

        self.calls += 1
        raise BrokenExecutor("worker died")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestWorkerPool:
    def test_map_preserves_order(self):
        with WorkerPool(workers=3, kind="thread") as pool:
            assert pool.map(lambda x: x * x, range(10)) == [
                x * x for x in range(10)
            ]

    def test_broken_executor_recreated_once(self):
        pool = WorkerPool(workers=2, kind="thread")
        pool._executor = _BrokenOnce()
        try:
            got = pool.map(lambda x: x + 1, [1, 2, 3])
            assert got == [2, 3, 4]
            assert pool.recreations == 1
        finally:
            pool.close()

    def test_second_break_propagates(self):
        from concurrent.futures import BrokenExecutor

        pool = WorkerPool(workers=2, kind="thread")
        pool._make_executor = _BrokenOnce  # every replacement is broken
        pool._executor = _BrokenOnce()
        try:
            with pytest.raises(BrokenExecutor):
                pool.map(lambda x: x, [1, 2])
            assert pool.recreations == 1
        finally:
            pool.close()

    def test_task_exception_propagates(self):
        def boom(x):
            if x == 2:
                raise ValueError("task failure")
            return x

        with WorkerPool(workers=2, kind="thread") as pool:
            with pytest.raises(ValueError, match="task failure"):
                pool.map(boom, [1, 2, 3])

    def test_closed_pool_rejects_use(self):
        pool = WorkerPool(workers=2, kind="thread")
        pool.close()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.map(lambda x: x, [1])

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=2, kind="fiber")


class TestExchangeFallback:
    def test_broken_pool_falls_back_bit_identically(self):
        """A pool whose every executor is broken: the Exchange retries
        once (recreation), gives up, and re-runs serially — with the
        exact pairs the healthy serial coordinator produces."""
        t = _table(110, seed=14)
        probes = _probes(80, seed=25)
        s = t.sharding(4)
        serial = sorted(s.join_pairs(probes))
        pool = WorkerPool(workers=2, kind="thread")
        pool._make_executor = _BrokenOnce
        try:
            exchange = Exchange(workers=2, kind="thread", pool=pool)
            got = sorted(s.join_pairs(probes, exchange=exchange))
        finally:
            pool.close()
        assert got == serial
        assert exchange.fallbacks >= 1
        assert pool.recreations >= 1

    def test_worker_exception_mid_map_propagates_through_run(self):
        def boom(x):
            if x == 1:
                raise ValueError("mid-map failure")
            return x

        with WorkerPool(workers=2, kind="thread") as pool:
            exchange = Exchange(workers=2, kind="thread", pool=pool)
            with pytest.raises(ValueError, match="mid-map failure"):
                exchange.run(boom, [0, 1, 2])
        # A genuine task error is not a fallback.
        assert exchange.fallbacks == 0

    def test_process_payload_form_identical_serially(self):
        """The pickled shm/blob task form, executed in-process by the
        serial fallback, sweeps to the same pairs as the native form."""
        t = _table(90, seed=15)
        probes = _probes(70, seed=26)
        s = t.sharding(3)
        serial = sorted(s.join_pairs(probes))
        pool = WorkerPool(workers=2, kind="process")
        pool._make_executor = _BrokenOnce
        try:
            exchange = Exchange(workers=2, kind="process", pool=pool)
            assert exchange.uses_processes(len(s.shards))
            got = sorted(s.join_pairs(probes, exchange=exchange))
        finally:
            for shard in s.shards:
                block = s._blocks.get(shard.sid)
                if block is not None:
                    _ATTACHED.pop(block.name, None)
            s.close()
            pool.close()
        assert got == serial
        assert exchange.fallbacks >= 1
