"""The unified ``Database``/``Session`` facade (ISSUE satellite 1/2/3).

Covers: parity with the low-level entry points, the uniform option
vocabulary, deprecation shims (warn **and** return identical results),
JSON round trips for the stats dataclasses, and the probe-cache purge
hook the service's snapshot swap relies on.
"""

import json

import pytest

from repro import BoxQuery, Database, Session
from repro.algebra import Region
from repro.boxes import Box
from repro.constraints.examples import SMUGGLERS_ORDER, smugglers_system
from repro.datagen import smugglers_query
from repro.engine import compile_query
from repro.engine.executor import (
    answers_as_oid_tuples,
    execute,
    first_k,
    run_query,
)
from repro.engine.stats import ExecutionStats
from repro.spatial import SpatialTable
from repro.spatial.gridfile import GridStats
from repro.spatial.rtree import RTreeStats
from repro.spatial.table import ProbeCache


@pytest.fixture()
def workload():
    return smugglers_query(seed=2)


@pytest.fixture()
def db(workload):
    query, map_ = workload
    database = Database(tables=query.tables, bindings=query.bindings)
    return database


def _baseline(query, mode="boxplan"):
    plan = compile_query(query)
    answers, stats = execute(plan, mode)
    return answers_as_oid_tuples(answers, plan.order), stats


# -- Database ------------------------------------------------------------------
def test_database_query_resolves_stored_bindings(db, workload):
    query, _map = workload
    built = db.query(str(query.system))
    assert set(built.tables) == set(query.tables)
    assert set(built.bindings) == set(query.bindings)
    assert built.order is None  # planned later, by the Session


def test_database_query_binding_override(db, workload):
    query, _map = workload
    tiny = Region.from_box(Box((0.0, 0.0), (0.5, 0.5)))
    built = db.query(str(query.system), bindings={"A": tiny})
    assert built.bindings["A"] == tiny
    assert built.bindings["C"] == query.bindings["C"]


def test_database_table_lookup_error_names_known(db):
    with pytest.raises(KeyError, match="known tables"):
        db.table("nope")


def test_create_attach_bind():
    database = Database()
    t = database.create_table("pts", 2, index="scan")
    assert database.table("pts") is t
    other = SpatialTable("other", 2, index="scan")
    database.attach(other)
    assert database.table("other") is other
    database.bind("Q", Region.from_box(Box((0, 0), (1, 1))))
    assert "Q" in database.bindings


def test_from_query_round_trip(workload):
    query, _map = workload
    database = Database.from_query(query)
    assert database.tables is not query.tables  # defensive copy
    assert database.tables == dict(query.tables)


# -- Session parity with execute() ---------------------------------------------
@pytest.mark.parametrize("mode", ["naive", "exact", "boxonly", "boxplan"])
def test_session_run_matches_execute(workload, mode):
    query, _map = workload
    expected, expected_stats = _baseline(query, mode)
    result = Session().run(query, mode=mode)
    assert result.oid_tuples() == expected
    assert result.stats.to_dict() == expected_stats.to_dict()
    assert result.total_s is not None and result.total_s >= 0


def test_session_text_query_matches_execute(db, workload):
    query, _map = workload
    result = db.session().run(str(query.system))
    # The session plans its own retrieval order; compare both runs in
    # the same fixed projection.
    expected = answers_as_oid_tuples(
        execute(compile_query(query), "boxplan")[0], SMUGGLERS_ORDER
    )
    assert result.oid_tuples(SMUGGLERS_ORDER) == expected


def test_session_result_unpacks_like_pair(workload):
    query, _map = workload
    answers, stats = Session().run(query)
    assert isinstance(stats, ExecutionStats)
    assert len(answers) == stats.tuples_emitted


def test_session_limit(workload):
    query, _map = workload
    full = Session().run(query)
    limited = Session().run(query, limit=2)
    assert len(limited.answers) == min(2, len(full.answers))
    assert set(limited.oid_tuples()) <= set(full.oid_tuples())


def test_session_defaults_and_override(workload):
    query, _map = workload
    session = Session(limit=1)
    assert len(session.run(query).answers) == 1
    assert len(session.run(query, limit=None).answers) >= 1


def test_session_rejects_unknown_option():
    with pytest.raises(TypeError, match="unknown session option"):
        Session(modee="boxplan")


def test_session_partitioned_matches_serial(workload):
    query, _map = workload
    expected, _stats = _baseline(query)
    for kwargs in (
        {"partitions": 4},
        {"partitions": 4, "parallel": 2},
        {"join_strategy": "pbsm", "partitions": 4},
    ):
        result = Session().run(query, **kwargs)
        assert result.oid_tuples() == expected, kwargs


def test_session_text_needs_db():
    with pytest.raises(ValueError, match="needs a Database"):
        Session().run("u sect v ~= 0;")


def test_session_explain_and_analyze(db, workload):
    query, _map = workload
    text = db.session().explain(str(query.system))
    assert "Probe" in text or "Scan" in text
    analyzed = db.session().explain(str(query.system), analyze=True)
    assert "actual" in analyzed


def test_session_bench_payload_round_trips(db, workload):
    query, _map = workload
    payload = db.session().bench(str(query.system))
    assert payload["answers"] == payload["counters"]["tuples_emitted"]
    # The counters block is the JSON-round-trippable ExecutionStats.
    restored = ExecutionStats.from_dict(
        json.loads(json.dumps(payload["counters"]))
    )
    assert restored.to_dict() == payload["counters"]
    assert set(payload["tables"]) == set(query.tables)


def test_session_aggregate_count(db, workload):
    query, _map = workload
    expected, _stats = _baseline(query)
    result = db.session().aggregate(str(query.system))
    assert result.answers[0].as_dict()["count"] == len(expected)


def test_session_nearest_matches_table(db, workload):
    query, _map = workload
    table = query.tables["T"]
    expected = table.nearest((1.0, 1.0), 3)
    got = db.session().nearest("T", (1.0, 1.0), 3)
    assert [(d, o.oid) for d, o in got] == [
        (d, o.oid) for d, o in expected
    ]
    with pytest.raises(ValueError, match="needs a Database"):
        Session().nearest("T", (1.0, 1.0), 3)


# -- deprecation shims ---------------------------------------------------------
def test_run_query_shim_warns_and_matches(workload):
    query, _map = workload
    expected, expected_stats = _baseline(query)
    with pytest.warns(DeprecationWarning, match="Session"):
        answers, stats = run_query(query, mode="boxplan")
    assert answers_as_oid_tuples(answers, query.order) == expected
    assert stats.to_dict() == expected_stats.to_dict()


def test_first_k_shim_warns_and_matches(workload):
    query, _map = workload
    plan = compile_query(query)
    with pytest.warns(DeprecationWarning, match="Session"):
        answers = first_k(plan, 2)
    assert answers == Session().run(plan, limit=2).answers


# -- stats JSON round trips ----------------------------------------------------
def test_execution_stats_round_trip(workload):
    query, _map = workload
    _answers, stats = execute(compile_query(query), "boxplan")
    data = json.loads(json.dumps(stats.to_dict()))
    restored = ExecutionStats.from_dict(data)
    assert restored.to_dict() == stats.to_dict()
    assert [s.variable for s in restored.steps] == [
        s.variable for s in stats.steps
    ]


def test_rtree_stats_round_trip(workload):
    query, _map = workload
    table = query.tables["T"]
    table.range_query(BoxQuery(overlap=(Box((0, 0), (32, 32)),)))
    stats = table._rtree.stats
    restored = RTreeStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert restored == stats
    assert restored.node_reads == stats.node_reads


def test_grid_stats_round_trip():
    query, _map = smugglers_query(index="grid", seed=2)
    table = query.tables["T"]
    table.range_query(BoxQuery(overlap=(Box((0, 0), (32, 32)),)))
    stats = table._grid.stats
    restored = GridStats.from_dict(json.loads(json.dumps(stats.to_dict())))
    assert restored == stats


# -- ProbeCache.purge_table (the swap hook) ------------------------------------
def test_purge_table_drops_only_that_table(workload):
    query, _map = workload
    cache = ProbeCache(maxsize=64)
    q = BoxQuery(overlap=(Box((0, 0), (32, 32)),))
    for table in query.tables.values():
        cache.store(table, q, list(table))
    assert len(cache) == len(query.tables)
    victim = query.tables["T"]
    cache.purge_table(victim)
    assert len(cache) == len(query.tables) - 1
    assert cache.lookup(victim, q) is None
    for var, table in query.tables.items():
        if table is not victim:
            assert cache.lookup(table, q) is not None, var


def test_purge_table_unknown_table_is_noop():
    cache = ProbeCache(maxsize=4)
    t = SpatialTable("t", 2, index="scan")
    cache.purge_table(t)  # never seen: no error, no effect
    assert len(cache) == 0


def test_session_probe_cache_hits(workload):
    query, _map = workload
    session = Session(probe_cache=128)
    first = session.run(query)
    second = session.run(query)
    assert second.oid_tuples() == first.oid_tuples()
    assert session.cache.hits > 0


# -- smugglers text round trip (the service's wire format) ---------------------
def test_system_text_round_trips_through_parser(db):
    from repro.constraints.parser import parse_system

    system = smugglers_system()
    assert str(parse_system(str(system))) == str(system)
