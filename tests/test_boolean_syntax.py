"""Unit tests for the formula AST (repro.boolean.syntax)."""

import pytest

from repro.boolean import (
    FALSE,
    TRUE,
    And,
    Const,
    Not,
    Var,
    conj,
    disj,
    formula,
    neg,
    rename,
    to_str,
    variables,
)


class TestConstructors:
    def test_var_identity(self):
        assert Var("x") == Var("x")
        assert Var("x") != Var("y")
        assert hash(Var("x")) == hash(Var("x"))

    def test_var_requires_name(self):
        with pytest.raises(TypeError):
            Var("")
        with pytest.raises(TypeError):
            Var(3)

    def test_constants_are_singleton_like(self):
        assert TRUE == Const(True)
        assert FALSE == Const(False)
        assert TRUE != FALSE

    def test_formula_coercion(self):
        assert formula("x") == Var("x")
        assert formula(True) == TRUE
        assert formula(0) == FALSE
        assert formula(1) == TRUE
        f = Var("x") & Var("y")
        assert formula(f) is f

    def test_formula_coercion_rejects_junk(self):
        with pytest.raises(TypeError):
            formula(3.5)
        with pytest.raises(TypeError):
            formula([Var("x")])

    def test_variables_helper(self):
        x, y = variables("x", "y")
        assert x == Var("x") and y == Var("y")


class TestSmartSimplification:
    def setup_method(self):
        self.x, self.y, self.z = variables("x", "y", "z")

    def test_conj_identity_and_absorbing(self):
        assert conj(self.x, TRUE) == self.x
        assert conj(self.x, FALSE) == FALSE
        assert conj() == TRUE

    def test_disj_identity_and_absorbing(self):
        assert disj(self.x, FALSE) == self.x
        assert disj(self.x, TRUE) == TRUE
        assert disj() == FALSE

    def test_duplicates_removed(self):
        assert conj(self.x, self.x) == self.x
        assert disj(self.y, self.y) == self.y

    def test_complement_pairs_collapse(self):
        assert conj(self.x, neg(self.x)) == FALSE
        assert disj(self.x, neg(self.x)) == TRUE

    def test_flattening(self):
        f = conj(self.x, conj(self.y, self.z))
        assert isinstance(f, And)
        assert len(f.args) == 3

    def test_argument_order_is_canonical(self):
        assert conj(self.x, self.y) == conj(self.y, self.x)
        assert disj(self.x, self.y) == disj(self.y, self.x)

    def test_double_negation(self):
        assert neg(neg(self.x)) == self.x
        assert neg(TRUE) == FALSE
        assert neg(FALSE) == TRUE

    def test_not_never_wraps_not(self):
        f = neg(neg(neg(self.x)))
        assert isinstance(f, Not)
        assert isinstance(f.arg, Var)


class TestOperators:
    def setup_method(self):
        self.x, self.y = variables("x", "y")

    def test_and_or_invert(self):
        assert (self.x & self.y) == conj(self.x, self.y)
        assert (self.x | self.y) == disj(self.x, self.y)
        assert (~self.x) == neg(self.x)

    def test_implication_operator(self):
        assert (self.x >> self.y) == disj(neg(self.x), self.y)

    def test_xor_operator(self):
        f = self.x ^ self.y
        assert f == disj(
            conj(self.x, neg(self.y)), conj(neg(self.x), self.y)
        )

    def test_difference_operator(self):
        assert (self.x - self.y) == conj(self.x, neg(self.y))


class TestStructure:
    def setup_method(self):
        self.x, self.y, self.z = variables("x", "y", "z")

    def test_variables_collected(self):
        f = (self.x & ~self.y) | self.z
        assert f.variables() == frozenset({"x", "y", "z"})

    def test_mentions(self):
        f = self.x & self.y
        assert f.mentions("x")
        assert not f.mentions("z")

    def test_size_and_depth(self):
        f = self.x & (self.y | ~self.z)
        assert f.size() == 6  # And, x, Or, y, Not, z
        assert f.depth() == 4  # And > Or > Not > z

    def test_walk_yields_all_nodes(self):
        f = self.x & (self.y | ~self.z)
        nodes = list(f.walk())
        assert f in nodes
        assert Var("z") in nodes

    def test_immutability(self):
        with pytest.raises(AttributeError):
            self.x.name = "q"
        with pytest.raises(AttributeError):
            (self.x & self.y).args = ()


class TestSubstitution:
    def setup_method(self):
        self.x, self.y, self.z = variables("x", "y", "z")

    def test_substitute_variable(self):
        f = self.x & self.y
        assert f.substitute({"x": self.z}) == (self.z & self.y)

    def test_substitute_constant_propagates(self):
        f = self.x & self.y
        assert f.substitute({"x": TRUE}) == self.y
        assert f.substitute({"x": FALSE}) == FALSE

    def test_substitution_is_simultaneous(self):
        f = self.x & self.y
        swapped = f.substitute({"x": self.y, "y": self.x})
        assert swapped == f  # symmetric formula

    def test_cofactor(self):
        f = (self.x & self.y) | (~self.x & self.z)
        assert f.cofactor("x", True) == self.y
        assert f.cofactor("x", False) == self.z

    def test_cofactors_pair(self):
        f = (self.x & self.y) | (~self.x & self.z)
        lo, hi = f.cofactors("x")
        assert lo == self.z and hi == self.y

    def test_rename(self):
        f = self.x & ~self.y
        g = rename(f, {"x": "a", "y": "b"})
        assert g == (Var("a") & ~Var("b"))


class TestPrinterRoundTrip:
    def test_simple(self):
        x, y, z = variables("x", "y", "z")
        from repro.boolean import parse

        for f in [
            x,
            ~x,
            x & y,
            x | y,
            ~(x & y),
            (x | y) & z,
            x & (y | z),
            TRUE,
            FALSE,
            (x & ~y) | (~x & z),
        ]:
            assert parse(to_str(f)) == f
