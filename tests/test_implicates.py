"""Tests for prime implicates — the dual of the Blake canonical form."""

import pytest
from hypothesis import given, settings

from repro.boolean import (
    FALSE,
    TRUE,
    Clause,
    blake_canonical_form,
    equivalent,
    implicates_formula,
    is_implicate,
    is_prime_implicate,
    lower_atoms_via_implicates,
    prime_implicates,
    variables,
)
from tests.test_boolean_semantics import formulas


class TestClause:
    def test_builder_and_polarity(self):
        c = Clause.of({"x": True, "y": False})
        assert c.polarity("x") is True
        assert c.polarity("y") is False
        assert c.polarity("z") is None
        assert len(c) == 2

    def test_to_formula(self):
        x, y = variables("x", "y")
        c = Clause.of({"x": True, "y": False})
        assert equivalent(c.to_formula(), x | ~y)

    def test_empty_clause_is_false(self):
        c = Clause.of({})
        assert equivalent(c.to_formula(), FALSE)
        assert c.to_str() == "0"

    def test_to_str(self):
        assert Clause.of({"x": True, "y": False}).to_str() == "x + y'"

    def test_equality_hash(self):
        a = Clause.of({"x": True})
        b = Clause.of({"x": True})
        assert a == b and hash(a) == hash(b)


class TestPrimeImplicates:
    def test_constants(self):
        assert prime_implicates(TRUE) == []
        got = prime_implicates(FALSE)
        assert len(got) == 1 and len(got[0]) == 0

    def test_conjunction(self):
        x, y = variables("x", "y")
        clauses = prime_implicates(x & y)
        assert {c.to_str() for c in clauses} == {"x", "y"}

    def test_consensus_dual(self):
        # (x∨y)(¬x∨z) has the resolvent implicate (y∨z).
        x, y, z = variables("x", "y", "z")
        f = (x | y) & (~x | z)
        clauses = prime_implicates(f)
        assert {c.to_str() for c in clauses} == {"x + y", "x' + z", "y + z"}

    @given(formulas(max_leaves=6))
    @settings(max_examples=80, deadline=None)
    def test_ccf_denotes_f(self, f):
        assert equivalent(implicates_formula(f), f)

    @given(formulas(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_every_clause_is_prime(self, f):
        for c in prime_implicates(f):
            assert is_prime_implicate(c, f)

    def test_is_implicate(self):
        x, y = variables("x", "y")
        assert is_implicate(Clause.of({"x": True, "y": True}), x)
        assert not is_implicate(Clause.of({"y": True}), x)


class TestDualLowerAtoms:
    """Theorem 15 cross-check through the dual canonical form."""

    def test_paper_example(self):
        x, y, z, w = variables("x", "y", "z", "w")
        f = (x & y) | (~x & (y | (z & w)))
        assert lower_atoms_via_implicates(f) == ["y"]

    def test_tautology_raises(self):
        with pytest.raises(ValueError):
            lower_atoms_via_implicates(TRUE)

    def test_zero_has_no_atoms(self):
        assert lower_atoms_via_implicates(FALSE) == []

    @given(formulas(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_bcf_route(self, f):
        from repro.boolean import is_tautology

        if is_tautology(f):
            return
        via_dual = set(lower_atoms_via_implicates(f))
        via_bcf = {
            next(iter(t.variables()))
            for t in blake_canonical_form(f)
            if len(t) == 1 and all(s for _v, s in t)
        }
        assert via_dual == via_bcf
