"""Tests for the printers and classical normal forms."""

import pytest
from hypothesis import given, settings

from repro.boolean import (
    FALSE,
    TRUE,
    equivalent,
    from_minterms,
    is_dnf,
    is_nnf,
    minterms,
    to_cnf,
    to_compact,
    to_dnf,
    to_nnf,
    to_str,
    to_unicode,
    variables,
)
from repro.boolean.normal_forms import common_refinement
from repro.boolean.terms import formula_to_cover
from tests.test_boolean_semantics import formulas


class TestPrinters:
    def setup_method(self):
        self.x, self.y, self.z = variables("x", "y", "z")

    def test_to_str_precedence(self):
        assert to_str(self.x & (self.y | self.z)) == "x & (y | z)"
        # canonical arg order puts plain variables before compounds
        assert to_str((self.x & self.y) | self.z) == "z | x & y"
        assert to_str(~(self.x & self.y)) == "~(x & y)"

    def test_to_unicode(self):
        assert to_unicode(self.x & ~self.y) == "x ∧ ¬y"
        assert to_unicode(self.x | self.y) == "x ∨ y"
        assert to_unicode(TRUE) == "1"

    def test_to_compact(self):
        assert to_compact(self.x & ~self.y) == "xy'"
        assert to_compact((self.x & self.y) | self.z) == "z + xy"
        assert to_compact(~(self.x | self.y)) == "(x + y)'"
        assert to_compact(FALSE) == "0"

    def test_compact_single_char_names_juxtapose(self):
        a, b = variables("a", "b")
        assert to_compact(a & b) == "ab"

    @given(formulas())
    @settings(max_examples=60)
    def test_printers_total(self, f):
        # Every printer renders every formula without crashing.
        assert to_str(f)
        assert to_unicode(f)
        assert to_compact(f)


class TestNNF:
    @given(formulas())
    @settings(max_examples=80)
    def test_nnf_equivalent_and_is_nnf(self, f):
        g = to_nnf(f)
        assert equivalent(f, g)
        assert is_nnf(g)

    def test_is_nnf_rejects(self):
        x, y = variables("x", "y")
        assert not is_nnf(~(x & y))
        assert is_nnf(~x & ~y)


class TestDNFCNF:
    @given(formulas())
    @settings(max_examples=80)
    def test_dnf_is_dnf_and_equivalent(self, f):
        g = to_dnf(f)
        assert equivalent(f, g)
        assert is_dnf(g)

    @given(formulas())
    @settings(max_examples=80)
    def test_cnf_equivalent(self, f):
        assert equivalent(to_cnf(f), f)

    def test_is_dnf_rejects(self):
        x, y, z = variables("x", "y", "z")
        assert not is_dnf(x & (y | z))
        assert is_dnf((x & y) | z)


class TestMinterms:
    def test_expansion(self):
        x, y = variables("x", "y")
        ms = minterms(x | y, ["x", "y"])
        assert len(ms) == 3
        for m in ms:
            assert m.variables() == frozenset({"x", "y"})

    def test_missing_variable_rejected(self):
        x, y = variables("x", "y")
        with pytest.raises(ValueError):
            minterms(x & y, ["x"])

    def test_from_minterms_roundtrip(self):
        x, y = variables("x", "y")
        f = x ^ y
        ms = minterms(f, ["x", "y"])
        indices = []
        for m in ms:
            idx = 0
            for k, name in enumerate(["x", "y"]):
                if m.polarity(name):
                    idx |= 1 << k
            indices.append(idx)
        assert equivalent(from_minterms(["x", "y"], indices), f)

    def test_common_refinement_property(self):
        x, y, z = variables("x", "y", "z")
        c1 = formula_to_cover(x & y)
        c2 = formula_to_cover(x | z)
        refined = common_refinement([c1, c2], ["x", "y", "z"])
        # Every refined term is a full minterm and implies one original.
        for m in refined:
            assert len(m) == 3
        # The refinement covers the union of the inputs exactly.
        from repro.boolean import cover_to_formula

        assert equivalent(
            cover_to_formula(refined), (x & y) | (x | z)
        )


class TestErrorsModule:
    def test_hierarchy(self):
        from repro.errors import (
            CompilationError,
            DimensionMismatchError,
            ParseError,
            ReproError,
            UnboundVariableError,
            UniverseMismatchError,
            UnsatisfiableError,
        )

        for exc in (
            ParseError,
            DimensionMismatchError,
            UniverseMismatchError,
            UnsatisfiableError,
            CompilationError,
            UnboundVariableError,
        ):
            assert issubclass(exc, ReproError)
        assert issubclass(UnboundVariableError, CompilationError)

    def test_parse_error_payload(self):
        from repro.errors import ParseError

        e = ParseError("bad", text="x $ y", position=2)
        assert e.text == "x $ y" and e.position == 2
