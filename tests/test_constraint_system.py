"""Tests for constraint systems and Theorem 1 normalization."""

import pytest
from hypothesis import given, settings

from repro.algebra import BitVectorAlgebra
from repro.boolean import FALSE, Var, conj, equivalent
from repro.constraints import (
    ConstraintSystem,
    EquationalSystem,
    Negative,
    Positive,
    disjoint,
    empty,
    equal,
    nonempty,
    not_subset,
    overlaps,
    strict_subset,
    subset,
)
from tests.strategies import BITS8, bitvec_elements


class TestConstructors:
    def test_subset(self):
        c = subset("x", "y")
        assert isinstance(c, Positive)
        assert equivalent(c.as_zero_equation(), Var("x") & ~Var("y"))

    def test_not_subset(self):
        c = not_subset("x", "y")
        assert isinstance(c, Negative)
        assert equivalent(c.as_nonzero_formula(), Var("x") & ~Var("y"))

    def test_equal_is_two_inclusions(self):
        s = equal("x", "y")
        assert len(s.positives) == 2 and not s.negatives

    def test_strict_subset(self):
        s = strict_subset("x", "y")
        assert len(s.positives) == 1 and len(s.negatives) == 1

    def test_nonempty_empty_overlap_disjoint(self):
        assert isinstance(nonempty("x"), Negative)
        assert isinstance(empty("x"), Positive)
        assert equivalent(
            overlaps("x", "y").as_nonzero_formula(), Var("x") & Var("y")
        )
        assert equivalent(
            disjoint("x", "y").as_zero_equation(), Var("x") & Var("y")
        )

    def test_build_rejects_junk(self):
        with pytest.raises(TypeError):
            ConstraintSystem.build("not a constraint")

    def test_build_flattens_systems(self):
        s = ConstraintSystem.build(equal("x", "y"), nonempty("z"))
        assert len(s.positives) == 2 and len(s.negatives) == 1

    def test_conjoin(self):
        s = ConstraintSystem.build(subset("x", "y")).conjoin(
            ConstraintSystem.build(nonempty("z"))
        )
        assert len(s) == 2
        assert s.variables() == frozenset({"x", "y", "z"})


class TestSemantics:
    def setup_method(self):
        self.alg = BitVectorAlgebra(4)

    def test_positive_holds(self):
        c = subset("x", "y")
        assert c.holds(self.alg, {"x": 0b0010, "y": 0b0110})
        assert not c.holds(self.alg, {"x": 0b1010, "y": 0b0110})

    def test_negative_holds(self):
        c = not_subset("x", "y")
        assert c.holds(self.alg, {"x": 0b1010, "y": 0b0110})
        assert not c.holds(self.alg, {"x": 0b0010, "y": 0b0110})

    def test_system_holds(self):
        s = ConstraintSystem.build(subset("x", "y"), nonempty("x"))
        assert s.holds(self.alg, {"x": 0b0010, "y": 0b0110})
        assert not s.holds(self.alg, {"x": 0, "y": 0b0110})

    @given(bitvec_elements(), bitvec_elements())
    @settings(max_examples=60)
    def test_normalization_preserves_semantics(self, xv, yv):
        s = ConstraintSystem.build(
            subset("x", "y"), not_subset("y", "x"), overlaps("x", "y")
        )
        env = {"x": xv, "y": yv}
        assert s.holds(BITS8, env) == s.normalize().holds(BITS8, env)

    @given(bitvec_elements(), bitvec_elements(), bitvec_elements())
    @settings(max_examples=60)
    def test_normalization_merges_positives(self, xv, yv, zv):
        s = ConstraintSystem.build(
            subset("x", "y"), subset("y", "z"), subset(conj("x", "z"), "y")
        )
        env = {"x": xv, "y": yv, "z": zv}
        assert s.holds(BITS8, env) == s.normalize().holds(BITS8, env)


class TestEquationalSystem:
    def test_structure(self):
        es = EquationalSystem(Var("x") & ~Var("y"), [Var("z")])
        assert es.variables() == frozenset({"x", "y", "z"})
        assert not es.has_false_disequation()
        assert EquationalSystem(FALSE, [FALSE]).has_false_disequation()

    def test_str_rendering(self):
        es = EquationalSystem(Var("x"), [Var("y")])
        text = str(es)
        assert "= 0" in text and "!= 0" in text

    def test_subsumption_drops_weaker(self):
        # y&~C != 0 subsumes y != 0.
        y, c = Var("y"), Var("C")
        es = EquationalSystem(FALSE, [y, y & ~c])
        kept = es.subsume_disequations()
        assert kept.disequations == (y & ~c,)

    def test_subsumption_keeps_one_of_equals(self):
        y = Var("y")
        es = EquationalSystem(FALSE, [y, y])
        assert len(es.subsume_disequations().disequations) == 1

    def test_subsumption_keeps_incomparable(self):
        x, y = Var("x"), Var("y")
        es = EquationalSystem(FALSE, [x, y])
        assert len(es.subsume_disequations().disequations) == 2

    def test_simplified(self):
        x, y = Var("x"), Var("y")
        es = EquationalSystem((x & y) | (x & ~y), [(y & x) | (y & ~x)])
        simp = es.simplified()
        assert simp.equation == x
        assert simp.disequations == (y,)

    def test_equality_and_hash(self):
        a = EquationalSystem(Var("x"), [Var("y")])
        b = EquationalSystem(Var("x"), [Var("y")])
        assert a == b and hash(a) == hash(b)
