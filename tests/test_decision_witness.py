"""Tests for the atomless decision procedure and witness construction.

The two directions of Theorems 7/8 are machine-checked end to end:

* ``satisfiable_atomless(S)`` ⟹ ``build_witness`` finds a model in the
  interval algebra (completeness of proj / constructive Independence);
* a model exists ⟹ ``satisfiable_atomless(S)`` (soundness).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import FALSE, TRUE, Var, neg
from repro.boxes import Box
from repro.constraints import (
    ConstraintSystem,
    EquationalSystem,
    WitnessError,
    build_witness,
    disjoint_representatives,
    entails_atomless,
    equivalent_atomless,
    ground_holds,
    nonempty,
    not_subset,
    overlaps,
    satisfiable_atomless,
    subset,
)
from tests.strategies import LINE, PLANE, interval_elements
from tests.test_boolean_semantics import formulas


class TestGroundHolds:
    def test_trivial_true(self):
        assert ground_holds(EquationalSystem(FALSE, [TRUE]))

    def test_failing_equation(self):
        assert not ground_holds(EquationalSystem(TRUE, []))

    def test_failing_disequation(self):
        assert not ground_holds(EquationalSystem(FALSE, [FALSE]))

    def test_variables_rejected(self):
        with pytest.raises(ValueError):
            ground_holds(EquationalSystem(FALSE, [Var("x")]))


class TestSatisfiability:
    def test_simple_sat(self):
        s = ConstraintSystem.build(subset("x", "y"), nonempty("x"))
        assert satisfiable_atomless(s)

    def test_simple_unsat(self):
        # x <= y, y <= x, x != y is unsatisfiable.
        from repro.constraints import equal

        s = ConstraintSystem.build(
            subset("x", "y"), subset("y", "x"), not_subset("x", "y")
        )
        assert not satisfiable_atomless(s)

    def test_empty_vs_nonempty(self):
        from repro.constraints import empty

        s = ConstraintSystem.build(empty("x"), nonempty("x"))
        assert not satisfiable_atomless(s)

    def test_example1_satisfiable_atomless(self):
        # x&y != 0 and ~x&y != 0: satisfiable over atomless algebras
        # (split y), even though unsatisfiable when y must be an atom.
        from repro.constraints import nonclosure_example

        assert satisfiable_atomless(nonclosure_example())

    def test_three_way_split_needs_atomless(self):
        # Three pairwise-disjoint nonzero parts of y.
        x1, x2, y = Var("x1"), Var("x2"), Var("y")
        s = ConstraintSystem.build(
            overlaps(x1 & ~x2, y),
            overlaps(x2 & ~x1, y),
            overlaps(neg(x1 | x2), y),
        )
        assert satisfiable_atomless(s)

    def test_smugglers_satisfiable(self):
        from repro.constraints import smugglers_system

        assert satisfiable_atomless(smugglers_system())


class TestEntailment:
    def test_subset_transitivity(self):
        s1 = ConstraintSystem.build(subset("x", "y"), subset("y", "z"))
        s2 = ConstraintSystem.build(subset("x", "z"))
        assert entails_atomless(s1, s2)
        assert not entails_atomless(s2, s1)

    def test_nonempty_propagates_up(self):
        s1 = ConstraintSystem.build(subset("x", "y"), nonempty("x"))
        s2 = ConstraintSystem.build(nonempty("y"))
        assert entails_atomless(s1, s2)

    def test_overlap_symmetric_equivalence(self):
        assert equivalent_atomless(
            ConstraintSystem.build(overlaps("x", "y")),
            ConstraintSystem.build(overlaps("y", "x")),
        )

    def test_disequation_entailment_needs_atomless_reasoning(self):
        # x&y != 0 entails y != 0 but not x = y.
        s1 = ConstraintSystem.build(overlaps("x", "y"))
        assert entails_atomless(s1, ConstraintSystem.build(nonempty("y")))
        from repro.constraints import equal

        assert not entails_atomless(s1, equal("x", "y"))

    def test_projection_is_entailed(self):
        """Theorem 9: S entails proj(S, x) for random systems."""
        from repro.constraints import project

        x, y, z = Var("x"), Var("y"), Var("z")
        system = EquationalSystem((x & ~y) | (z & ~x), [x & z, y & ~z])
        projected = project(system, "x")
        assert entails_atomless(system, projected)


class TestDisjointRepresentatives:
    def test_basic(self):
        alg = LINE
        a = alg.interval(0, 8)
        b = alg.interval(4, 12)
        c = alg.interval(0, 16)
        pieces = disjoint_representatives(alg, [a, b, c])
        assert len(pieces) == 3
        for i, (p, base) in enumerate(zip(pieces, [a, b, c])):
            assert not alg.is_zero(p)
            assert alg.le(p, base)
            for q in pieces[i + 1 :]:
                assert alg.is_zero(alg.meet(p, q))

    def test_stealing_path(self):
        # All bases identical: later ones must steal from earlier pieces.
        alg = LINE
        base = alg.interval(0, 1)
        pieces = disjoint_representatives(alg, [base] * 5)
        assert len(pieces) == 5
        for i, p in enumerate(pieces):
            assert not alg.is_zero(p)
            assert alg.le(p, base)
            for q in pieces[i + 1 :]:
                assert alg.is_zero(alg.meet(p, q))

    def test_zero_base_rejected(self):
        with pytest.raises(WitnessError):
            disjoint_representatives(LINE, [LINE.bot])

    def test_non_atomless_rejected(self):
        from tests.strategies import BITS8

        with pytest.raises(WitnessError):
            disjoint_representatives(BITS8, [BITS8.top])

    @given(st.lists(interval_elements().filter(lambda s: not s.is_empty()), min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_random_bases(self, bases):
        pieces = disjoint_representatives(LINE, bases)
        for i, (p, base) in enumerate(zip(pieces, bases)):
            assert not LINE.is_zero(p)
            assert LINE.le(p, base)
            for q in pieces[i + 1 :]:
                assert LINE.is_zero(LINE.meet(p, q))


class TestBuildWitness:
    def test_smugglers_witness(self):
        from repro.constraints import smugglers_system

        alg = PLANE
        # Bind the constants: a country with inside area.
        C = alg.box_region(Box((1.0, 1.0), (12.0, 12.0)))
        A = alg.box_region(Box((8.0, 8.0), (11.0, 11.0)))
        env = build_witness(
            smugglers_system(),
            alg,
            order=["T", "R", "B"],
            constants={"C": C, "A": A},
        )
        assert smugglers_system().holds(alg, env)

    def test_witness_fails_on_unsat(self):
        from repro.constraints import empty

        s = ConstraintSystem.build(empty("x"), nonempty("x"))
        with pytest.raises(WitnessError):
            build_witness(s, LINE)

    def test_witness_fails_on_bad_constants(self):
        # Constant constraint violated: A not inside C.
        s = ConstraintSystem.build(subset("A", "C"), nonempty("x"))
        A = LINE.interval(0, 8)
        C = LINE.interval(4, 6)
        with pytest.raises(WitnessError):
            build_witness(s, LINE, order=["x"], constants={"A": A, "C": C})

    @given(
        formulas(max_leaves=5),
        formulas(max_leaves=4),
        formulas(max_leaves=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_decision_witness_agreement(self, f, g1, g2):
        """The headline equivalence: symbolic satisfiability over atomless
        algebras coincides with constructibility of an interval model."""
        system = EquationalSystem(f, [g1, g2])
        sat = satisfiable_atomless(system)
        try:
            env = build_witness(system, LINE)
            built = True
        except WitnessError:
            built = False
        assert built == sat
        if built:
            assert system.holds(LINE, env)

    @given(formulas(max_leaves=5), formulas(max_leaves=4))
    @settings(max_examples=40, deadline=None)
    def test_witness_in_region_algebra(self, f, g):
        """Same over the 2-D region algebra."""
        system = EquationalSystem(f, [g])
        if not satisfiable_atomless(system):
            return
        env = build_witness(system, PLANE)
        assert system.holds(PLANE, env)
