"""Tests for spatial joins, constraint minimization, and the CLI."""

import random
import subprocess
import sys


from repro.boxes import Box
from repro.constraints import (
    ConstraintSystem,
    minimize_system,
    nonempty,
    redundant_constraints,
    subset,
)
from repro.spatial import (
    RTree,
    index_nested_loop_join,
    synchronized_rtree_join,
)


def _boxes(n, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        lo = (rng.uniform(0, 90), rng.uniform(0, 90))
        out.append(
            Box(lo, (lo[0] + rng.uniform(1, 8), lo[1] + rng.uniform(1, 8)))
        )
    return out


class TestSpatialJoins:
    def setup_method(self):
        self.left = _boxes(80, 1)
        self.right = _boxes(80, 2)
        self.expected = {
            (i, j)
            for i, a in enumerate(self.left)
            for j, b in enumerate(self.right)
            if a.overlaps(b)
        }
        self.lt = RTree(max_entries=6)
        self.rt = RTree(max_entries=6)
        for i, b in enumerate(self.left):
            self.lt.insert(b, i)
        for j, b in enumerate(self.right):
            self.rt.insert(b, j)

    def test_index_nested_loop(self):
        got = set(
            index_nested_loop_join(
                list(enumerate_boxes(self.left)), self.rt
            )
        )
        assert got == self.expected

    def test_synchronized(self):
        got = set(synchronized_rtree_join(self.lt, self.rt))
        assert got == self.expected

    def test_synchronized_empty_tree(self):
        empty = RTree()
        assert list(synchronized_rtree_join(self.lt, empty)) == []
        assert list(synchronized_rtree_join(empty, self.rt)) == []

    def test_synchronized_probes_fewer_than_nested(self):
        self.lt.stats.reset()
        self.rt.stats.reset()
        list(synchronized_rtree_join(self.lt, self.rt))
        sync_reads = self.lt.stats.node_reads + self.rt.stats.node_reads
        self.lt.stats.reset()
        self.rt.stats.reset()
        list(
            index_nested_loop_join(
                list(enumerate_boxes(self.left)), self.rt
            )
        )
        nested_reads = self.rt.stats.node_reads
        # Not asserted as strictly smaller (constants vary); just sane.
        assert sync_reads > 0 and nested_reads > 0


def enumerate_boxes(boxes):
    return ((b, i) for i, b in enumerate(boxes))


class TestMinimize:
    def test_transitive_redundancy(self):
        s = ConstraintSystem.build(
            subset("x", "y"), subset("y", "z"), subset("x", "z")
        )
        redundant = redundant_constraints(s)
        assert any(
            c.lhs.variables() == frozenset({"x"})
            and c.rhs.variables() == frozenset({"z"})
            for c in redundant
        )
        core, removed = minimize_system(s)
        assert len(core) == 2
        assert len(removed) == 1

    def test_nothing_redundant(self):
        s = ConstraintSystem.build(subset("x", "y"), nonempty("z"))
        assert redundant_constraints(s) == []
        core, removed = minimize_system(s)
        assert len(core) == 2 and removed == []

    def test_duplicate_constraints_collapse(self):
        s = ConstraintSystem.build(subset("x", "y"), subset("x", "y"))
        core, removed = minimize_system(s)
        assert len(core) == 1 and len(removed) == 1

    def test_negative_redundancy(self):
        # x&y != 0 entails y != 0.
        from repro.constraints import overlaps

        s = ConstraintSystem.build(overlaps("x", "y"), nonempty("y"))
        core, removed = minimize_system(s)
        assert len(core) == 1
        assert core.negatives[0].lhs.variables() == frozenset({"x", "y"})

    def test_core_equivalent(self):
        from repro.constraints import equivalent_atomless, overlaps

        s = ConstraintSystem.build(
            subset("x", "y"),
            subset("y", "z"),
            subset("x", "z"),
            overlaps("x", "z"),
            nonempty("x"),
        )
        core, _removed = minimize_system(s)
        assert equivalent_atomless(s, core)
        assert redundant_constraints(core) == []


FIGURE1 = "A <= C\nB <= C\nR <= A | B | T\nR & A != 0\nR & T != 0\nT !<= C\n"


def _cli(*args, stdin=""):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestCli:
    def test_compile(self):
        proc = _cli(
            "compile", "--order", "T,R,B", "--constants", "C,A", "-",
            stdin=FIGURE1,
        )
        assert proc.returncode == 0, proc.stderr
        assert "0 <= R <= C | T" in proc.stdout
        assert "([C] v [T])" in proc.stdout

    def test_compile_from_file(self, tmp_path):
        path = tmp_path / "q.txt"
        path.write_text(FIGURE1)
        proc = _cli("compile", "--constants", "C,A", str(path))
        assert proc.returncode == 0, proc.stderr

    def test_check_sat(self):
        proc = _cli("check", "-", stdin="x <= y\nx != 0\n")
        assert proc.returncode == 0
        assert "unsatisfiable" not in proc.stdout

    def test_check_unsat(self):
        proc = _cli("check", "-", stdin="x = 0\nx != 0\n")
        assert proc.returncode == 1
        assert "unsatisfiable" in proc.stdout

    def test_minimize(self):
        proc = _cli(
            "minimize", "-", stdin="x <= y\ny <= z\nx <= z\n"
        )
        assert proc.returncode == 0
        assert "# removed" in proc.stdout

    def test_bcf(self):
        proc = _cli("bcf", "x & y | ~x & (y | z & w)")
        assert proc.returncode == 0
        assert "L: [y]" in proc.stdout

    def test_bench_json(self):
        import json

        proc = _cli(
            "bench", "--workload", "smugglers", "--size", "6", "--json"
        )
        assert proc.returncode == 0, proc.stderr
        result = json.loads(proc.stdout)
        assert result["workload"] == "smugglers"
        assert result["packed"] is True
        assert sorted(result["order"]) == ["B", "R", "T"]
        assert "node_reads" in result["counters"]
        assert result["tables"]["T"]["kind"] == "rtree"

    def test_bench_no_pack_rstar(self):
        proc = _cli(
            "bench", "--workload", "chain", "--size", "10",
            "--no-pack", "--split", "rstar",
        )
        assert proc.returncode == 0, proc.stderr
        assert "order (histogram):" in proc.stdout

    def test_bench_grid_backend_default_pack(self):
        """Regression: grid/scan workload builds must not forward an
        explicit pack=True to backends that reject it."""
        for index in ("grid", "scan"):
            proc = _cli(
                "bench", "--workload", "smugglers", "--size", "6",
                "--index", index,
            )
            assert proc.returncode == 0, proc.stderr

    def test_bench_partitioned_parallel(self):
        import json

        proc = _cli(
            "bench", "--workload", "smugglers", "--size", "8",
            "--partitions", "4", "--parallel", "2", "--json",
        )
        assert proc.returncode == 0, proc.stderr
        result = json.loads(proc.stdout)
        assert result["partitions"] == 4
        assert result["parallel"] == 2
        assert len(result["joins"]) == 3

    def test_explain_partitioned_join(self):
        proc = _cli(
            "explain", "--workload", "smugglers", "--size", "8",
            "--partitions", "4", "--join", "pbsm", "--analyze",
        )
        assert proc.returncode == 0, proc.stderr
        assert "PartitionedSpatialJoin" in proc.stdout
        assert "joins: " in proc.stdout
