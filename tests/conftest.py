"""Shared test fixtures: the seeded differential-testing workload factory.

The differential property tests (``test_differential.py``,
``test_random_queries.py``) all need the same ingredients: random
constraint systems over a fixed variable vocabulary, random little
spatial databases, and random constant bindings — reproducible from a
seed so failures replay.  This module is the single home for those
generators (they used to live ad hoc inside ``test_random_queries.py``).

CI's property-test job runs the suite under a seed matrix: the
``REPRO_TEST_SEED`` environment variable shifts every factory seed, so
each matrix entry exercises a disjoint family of workloads while any
single failure stays reproducible by exporting the same value locally.
"""

import os
import random

from hypothesis import strategies as st

from repro.algebra import Region
from repro.boxes import Box
from repro.boxes.bconstraints import BoxQuery
from repro.constraints import (
    ConstraintSystem,
    nonempty,
    not_subset,
    overlaps,
    subset,
)
from repro.spatial import HAVE_NUMPY, SpatialTable

#: The shared universe of every generated workload.
UNIVERSE = Box((0.0, 0.0), (32.0, 32.0))

#: Unknown (table-backed) variables random systems draw from.
VARS = ("u", "v", "w")

#: Constant (bound) variables random systems draw from.
CONSTS = ("P", "Q")

#: CI seed-matrix shift: each matrix entry explores disjoint workloads.
SEED_OFFSET = int(os.environ.get("REPRO_TEST_SEED", "0")) * 10_007

#: Columnar backends the differential tests force in turn: the pure-
#: stdlib fallback always, NumPy only where the accelerator is
#: installed (the no-numpy CI job then still covers the fallback).
COLUMNAR_BACKENDS = ("numpy", "array") if HAVE_NUMPY else ("array",)

#: A duplicate-rich coordinate pool for edge-case boxes: repeated
#: values make degenerate sides and shared edges likely.
EDGE_COORDS = (0.0, 1.0, 1.0, 2.5, 2.5, 7.0, 16.0, 31.0, 32.0)


def shifted_seed(seed: int) -> int:
    """A test seed shifted by the CI matrix offset."""
    return seed + SEED_OFFSET


@st.composite
def constraint_systems(draw):
    """Random systems over u,v,w (unknowns) and P,Q (constants)."""
    names = list(VARS) + list(CONSTS)
    n = draw(st.integers(2, 5))
    constraints = []
    used = set()
    for _ in range(n):
        kind = draw(
            st.sampled_from(["subset", "overlap", "notsubset", "nonempty"])
        )
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names))
        if kind == "subset":
            constraints.append(subset(a, b))
        elif kind == "overlap":
            constraints.append(overlaps(a, b))
        elif kind == "notsubset":
            constraints.append(not_subset(a, b))
        else:
            constraints.append(nonempty(a))
        used.update({a, b} if kind != "nonempty" else {a})
    # Every unknown must appear somewhere; pad with nonempty.
    for v in VARS:
        if v not in used:
            constraints.append(nonempty(v))
    return ConstraintSystem.build(*constraints)


@st.composite
def edge_boxes(draw):
    """Boxes rich in kernel edge cases.

    Coordinates come from :data:`EDGE_COORDS`, so degenerate boxes
    (``lo == hi`` in some dimension — empty by the strict-properness
    invariant), inverted (empty) intervals, point-thin sides, and
    duplicated coordinates across boxes are all likely.
    """
    c = st.sampled_from(EDGE_COORDS)
    return Box((draw(c), draw(c)), (draw(c), draw(c)))


@st.composite
def edge_query_boxes(draw):
    """:func:`edge_boxes`, sometimes with unbounded (infinite) sides."""
    box = draw(edge_boxes())
    if draw(st.booleans()):
        lo = tuple(
            -float("inf") if draw(st.booleans()) else c for c in box.lo
        )
        hi = tuple(
            float("inf") if draw(st.booleans()) else c for c in box.hi
        )
        box = Box(lo, hi)
    return box


@st.composite
def edge_box_queries(draw):
    """Random :class:`BoxQuery` values over edge-case constraint boxes:
    absent/empty/unbounded sides in every combination."""
    inside = draw(st.one_of(st.none(), edge_query_boxes()))
    covers = draw(st.one_of(st.none(), edge_query_boxes()))
    overlap = tuple(draw(st.lists(edge_query_boxes(), max_size=2)))
    return BoxQuery(inside=inside, covers=covers, overlap=overlap)


def random_table(
    name: str,
    rng: random.Random,
    n_rows: int,
    index: str = "rtree",
) -> SpatialTable:
    """A little random table of box-shaped regions inside UNIVERSE."""
    t = SpatialTable(name, 2, index=index, universe=UNIVERSE)
    for i in range(n_rows):
        lo = (rng.uniform(0, 28), rng.uniform(0, 28))
        size = (rng.uniform(1, 8), rng.uniform(1, 8))
        t.insert(
            i,
            Region.from_box(
                Box(lo, (lo[0] + size[0], lo[1] + size[1])).meet(UNIVERSE)
            ),
        )
    return t


def random_binding(rng: random.Random) -> Region:
    """A random constant region (a box) for one of CONSTS."""
    lo = (rng.uniform(0, 24), rng.uniform(0, 24))
    return Region.from_box(
        Box(lo, (lo[0] + rng.uniform(2, 10), lo[1] + rng.uniform(2, 10)))
    )


def make_workload(seed: int, system=None, sizes=(2, 5), index="rtree"):
    """The seeded workload factory: ``(tables, bindings)``.

    Generates a table per unknown in :data:`VARS` (row count drawn from
    ``sizes``) and a binding per constant in :data:`CONSTS`, then — when
    a ``system`` is given — restricts both to the variables the system
    actually mentions (matching the historical ad-hoc generators).  The
    seed is shifted by the CI matrix offset, so the same test module
    covers a different workload family per matrix entry.
    """
    rng = random.Random(shifted_seed(seed))
    tables = {
        v: random_table(v, rng, rng.randint(*sizes), index=index)
        for v in VARS
    }
    bindings = {c: random_binding(rng) for c in CONSTS}
    if system is not None:
        sys_vars = system.variables()
        tables = {v: t for v, t in tables.items() if v in sys_vars}
        bindings = {c: r for c, r in bindings.items() if c in sys_vars}
    return tables, bindings
