"""Columnar storage unit tests: backends, kernels, and mirrors.

Query- and engine-level bit-identity lives in ``test_differential.py``;
this module pins down the pieces underneath: backend forcing and
resolution, the packed-float codec, the batched box-filter and distance
kernels against their per-object :class:`~repro.boxes.box.Box` oracles,
the R-tree's columnar entry mirror, the vectorized PBSM tile sweep (and
its packed process-pool payloads), and batched z-order key computation.
Every comparison is exact — the vectorized kernels promise the same
floats, not approximately the same.
"""

import random

import pytest

from repro.boxes import Box
from repro.boxes.bconstraints import BoxQuery
from repro.spatial import (
    BACKENDS,
    HAVE_NUMPY,
    ColumnStore,
    Exchange,
    JoinStats,
    SpatialTable,
    active_backend,
    forced_backend,
    pack_floats,
    pbsm_join,
    unpack_floats,
)
from repro.spatial.columnar import resolve
from repro.spatial.partition import (
    _pack_tile_task,
    _sweep_tile,
    _sweep_tile_packed,
    TileGrid,
)
from repro.spatial.zorder import ZGrid, ZOrderIndex
from tests.conftest import COLUMNAR_BACKENDS, UNIVERSE, random_table

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


def _random_boxes(seed, n, allow_empty=True):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        if allow_empty and rng.random() < 0.15:
            out.append(Box((8.0, 8.0), (8.0, 8.0)))  # degenerate = empty
            continue
        lo = (rng.uniform(0, 28), rng.uniform(0, 28))
        out.append(
            Box(lo, (lo[0] + rng.uniform(0.5, 6), lo[1] + rng.uniform(0.5, 6)))
        )
    return out


class TestBackends:
    def test_active_backend_is_known(self):
        assert active_backend() in BACKENDS

    def test_forced_backend_round_trip(self):
        with forced_backend("array"):
            assert active_backend() == "array"
            with forced_backend("off"):
                assert active_backend() == "off"
            assert active_backend() == "array"

    def test_forced_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            with forced_backend("simd"):
                pass  # pragma: no cover

    @pytest.mark.skipif(HAVE_NUMPY, reason="only without numpy")
    def test_forcing_numpy_without_numpy_raises(self):
        with pytest.raises(ValueError):
            with forced_backend("numpy"):
                pass  # pragma: no cover

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "array")
        assert active_backend() == "array"
        monkeypatch.setenv("REPRO_COLUMNAR", "off")
        assert active_backend() == "off"

    def test_resolve_semantics(self):
        with forced_backend("array"):
            assert resolve(None) is True
            assert resolve(True) is True
            assert resolve(False) is False
        with forced_backend("off"):
            assert resolve(None) is False
            # An explicit request cannot overrule a disabled backend.
            assert resolve(True) is False
            assert resolve(False) is False


class TestPackedFloats:
    def test_round_trip_is_bit_exact(self):
        values = (
            0.0,
            -0.0,
            1.5,
            -2.25,
            3.141592653589793,
            5e-324,
            1.7976931348623157e308,
            float("inf"),
            -float("inf"),
        )
        out = unpack_floats(pack_floats(values))
        assert len(out) == len(values)
        for a, b in zip(values, out):
            assert a == b
            # -0.0 == 0.0 compares equal; pin the sign bit too.
            assert str(a) == str(b)

    def test_empty(self):
        assert unpack_floats(pack_floats(())) == ()


class TestMatchKernels:
    @pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
    def test_match_positions_equals_oracle(self, backend):
        boxes = _random_boxes(11, 60)
        queries = [
            BoxQuery(inside=Box((2.0, 2.0), (26.0, 30.0))),
            BoxQuery(covers=Box((10.0, 10.0), (11.0, 11.0))),
            BoxQuery(overlap=(Box((5.0, 5.0), (20.0, 20.0)),)),
            BoxQuery(
                inside=Box((0.0, 0.0), (32.0, 32.0)),
                overlap=(
                    Box((5.0, 5.0), (20.0, 20.0)),
                    Box((8.0, 1.0), (30.0, 28.0)),
                ),
            ),
            BoxQuery(overlap=(Box((3.0, 3.0), (3.0, 9.0)),)),  # empty c
            BoxQuery(),  # unconstrained: every nonempty row
        ]
        with forced_backend(backend):
            store = ColumnStore(2)
            for i, b in enumerate(boxes):
                store.append(b, i)
            for query in queries:
                oracle = [
                    i
                    for i, b in enumerate(boxes)
                    if not b.is_empty() and query.matches(b)
                ]
                assert store.match_positions(query) == oracle

    @pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
    def test_distance_kernels_equal_box_methods(self, backend):
        boxes = _random_boxes(13, 50)
        rng = random.Random(14)
        point = (rng.uniform(-4, 36), rng.uniform(-4, 36))
        anchor = Box((9.0, 4.0), (13.0, 7.5))
        inf = float("inf")
        with forced_backend(backend):
            store = ColumnStore(2)
            for i, b in enumerate(boxes):
                store.append(b, i)
            mind_p = store.mindist_point(point)
            mind_b = store.mindist_box(anchor)
            minmax = store.minmaxdist_point(point)
            for i, b in enumerate(boxes):
                if b.is_empty():
                    assert mind_p[i] == inf
                    assert mind_b[i] == inf
                    assert minmax[i] == inf
                    continue
                # Exact float equality: same recipe, same doubles.
                assert mind_p[i] == b.mindist_point(point)
                assert mind_b[i] == b.mindist(anchor)
                assert minmax[i] == b.minmaxdist_point(point)

    @pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
    def test_distance_to_empty_anchor_is_inf(self, backend):
        boxes = _random_boxes(15, 10, allow_empty=False)
        with forced_backend(backend):
            store = ColumnStore(2)
            for i, b in enumerate(boxes):
                store.append(b, i)
            dists = store.distances_to(Box((1.0, 1.0), (1.0, 5.0)))
            assert all(d == float("inf") for d in dists)


class TestRTreeColumnarMirror:
    @needs_numpy
    def test_search_columnar_matches_scalar_search(self):
        table = random_table("t", random.Random(21), 120)
        tree = table._rtree
        queries = [
            BoxQuery(overlap=(Box((4.0, 4.0), (18.0, 18.0)),)),
            BoxQuery(inside=Box((0.0, 0.0), (16.0, 32.0))),
            BoxQuery(covers=Box((10.0, 10.0), (10.5, 10.5))),
            BoxQuery(),
        ]
        for query in queries:
            tree.stats.reset()
            want = [obj for _b, obj in tree.search(query)]
            scalar = (tree.stats.node_reads, tree.stats.entry_tests)
            tree.stats.reset()
            with forced_backend("numpy"):
                got = [obj for _b, obj in tree.search_columnar(query)]
            vectorized = (tree.stats.node_reads, tree.stats.entry_tests)
            # Same rows, same order, same billed index work.
            assert got == want
            assert vectorized == scalar

    @needs_numpy
    def test_vectorized_nearest_preserves_node_reads(self):
        table = random_table("t", random.Random(22), 150)
        tree = table._rtree
        point = (11.0, 23.0)
        tree.stats.reset()
        want = tree.nearest(point, k=7)
        scalar_reads = tree.stats.node_reads
        tree.stats.reset()
        with forced_backend("numpy"):
            got = tree.nearest(point, k=7, vectorize=True)
        assert [(d, o) for d, _b, o in got] == [
            (d, o) for d, _b, o in want
        ]
        assert tree.stats.node_reads == scalar_reads


class TestTableMirror:
    @pytest.mark.parametrize("index", ["rtree", "grid", "scan"])
    def test_insert_keeps_mirror_aligned(self, index):
        table = SpatialTable("t", 2, index=index, universe=UNIVERSE)
        boxes = _random_boxes(31, 40)
        from repro.algebra import Region

        for i, b in enumerate(boxes):
            table.insert(
                i, Region.from_box(b) if not b.is_empty() else Region.empty()
            )
        store = table.column_store(vectorize=True)
        assert store is not None and len(store) == len(boxes)
        for slot, obj in enumerate(table):
            assert store.rows[slot] is obj

    def test_column_store_respects_off(self):
        table = random_table("t", random.Random(33), 5)
        with forced_backend("off"):
            assert table.column_store() is None
            assert table.column_store(vectorize=True) is None
        assert table.column_store(vectorize=False) is None


class TestVectorizedSweep:
    def _tile_inputs(self, seed):
        rng = random.Random(seed)
        left = [
            (b, i)
            for i, b in enumerate(_random_boxes(seed, 40, allow_empty=False))
        ]
        right = [
            (b, i)
            for i, b in enumerate(
                _random_boxes(seed + 1, 40, allow_empty=False)
            )
        ]
        del rng
        return left, right

    @pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
    def test_pbsm_join_matches_scalar(self, backend):
        left, right = self._tile_inputs(41)
        with forced_backend("off"):
            want_stats = JoinStats()
            want = pbsm_join(left, right, n_tiles=9, stats=want_stats)
        with forced_backend(backend):
            got_stats = JoinStats()
            got = pbsm_join(left, right, n_tiles=9, stats=got_stats)
        assert got == want
        assert got_stats.pair_tests == want_stats.pair_tests
        assert got_stats.dedup_skipped == want_stats.dedup_skipped
        assert got_stats.pairs == want_stats.pairs

    def test_packed_tile_task_round_trips(self):
        left, right = self._tile_inputs(43)
        grid = TileGrid.build(
            [b for b, _t in left] + [b for b, _t in right], n_tiles=9
        )
        assert grid is not None
        for tile in grid.tiles_overlapping(grid.extent):
            task = (
                grid,
                tile,
                [e for e in left if tile in grid.tiles_overlapping(e[0])],
                [e for e in right if tile in grid.tiles_overlapping(e[0])],
            )
            assert _sweep_tile_packed(_pack_tile_task(task)) == _sweep_tile(
                task
            )

    def test_process_pool_pbsm_matches_serial(self):
        left, right = self._tile_inputs(47)
        serial_stats = JoinStats()
        serial = pbsm_join(
            left, right, n_tiles=9, stats=serial_stats,
            exchange=Exchange(workers=0, kind="serial"),
        )
        pool_stats = JoinStats()
        pool = pbsm_join(
            left, right, n_tiles=9, stats=pool_stats,
            exchange=Exchange(workers=4, kind="process"),
        )
        assert pool == serial
        assert pool_stats.pair_tests == serial_stats.pair_tests
        assert pool_stats.dedup_skipped == serial_stats.dedup_skipped


class TestZOrderBatch:
    @pytest.mark.parametrize("backend", COLUMNAR_BACKENDS)
    def test_insert_batch_equals_sequential(self, backend):
        boxes = _random_boxes(51, 80) + [
            Box((0.5, 0.5), (0.5001, 0.5001)),  # single-cell tiny box
            Box((-5.0, -5.0), (40.0, 40.0)),  # straddles the universe
        ]
        grid = ZGrid(Box((0.0, 0.0), (32.0, 32.0)), levels=5)
        with forced_backend("off"):
            seq = ZOrderIndex(grid)
            for i, b in enumerate(boxes):
                seq.insert(b, i)
        with forced_backend(backend):
            batch = ZOrderIndex(grid)
            batch.insert_batch([(b, i) for i, b in enumerate(boxes)])
        assert len(batch) == len(seq)
        assert [
            (r.lo, r.hi, r.value) for r in batch.ranges()
        ] == [(r.lo, r.hi, r.value) for r in seq.ranges()]
