"""The partitioning subsystem: STR tiles, PBSM, Exchange, operators."""

import random

import pytest

from repro.algebra import Region
from repro.boxes import Box, BoxQuery
from repro.datagen import overlay_query, smugglers_query
from repro.engine import (
    Catalog,
    PartitionScan,
    PartitionedSpatialJoin,
    ZOrderJoin,
    answers_as_oid_tuples,
    build_physical_plan,
    choose_join_strategies,
    compile_query,
    execute,
    rollout_step_estimates,
)
from repro.spatial import (
    Exchange,
    JoinStats,
    SpatialTable,
    TileGrid,
    mbr_may_match,
    pbsm_join,
    probe_box,
    str_partition,
)

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def _random_boxes(n, seed=0, span=92.0, max_side=8.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        lo = (rng.uniform(0, span), rng.uniform(0, span))
        out.append(
            Box(
                lo,
                (
                    lo[0] + rng.uniform(0.5, max_side),
                    lo[1] + rng.uniform(0.5, max_side),
                ),
            )
        )
    return out


def _table(n=120, seed=3, index="rtree"):
    t = SpatialTable("t", 2, index=index, universe=UNIVERSE)
    for i, b in enumerate(_random_boxes(n, seed=seed)):
        t.insert(i, Region.from_box(b))
    return t


class TestStrPartition:
    def test_rows_covered_exactly_once(self):
        t = _table(150)
        p = t.partitioning(8)
        oids = sorted(o.oid for part in p.partitions for o in part.rows)
        assert oids == list(range(150))
        assert p.total_rows == 150

    def test_mbrs_contain_their_rows(self):
        p = _table(100).partitioning(6)
        for part in p.partitions:
            for obj in part.rows:
                assert obj.box.le(part.mbr)

    def test_pruning_is_sound(self):
        t = _table(200, seed=9)
        p = t.partitioning(9)
        rng = random.Random(4)
        for _ in range(30):
            lo = (rng.uniform(0, 90), rng.uniform(0, 90))
            probe = Box(lo, (lo[0] + rng.uniform(1, 15), lo[1] + 5.0))
            query = BoxQuery(overlap=(probe,))
            surviving = {part.pid for part in p.prune(query)}
            for part in p.partitions:
                if part.pid in surviving:
                    continue
                # Pruned partitions must hold no matching row.
                assert not any(query.matches(o.box) for o in part.rows)

    def test_cache_invalidated_by_mutation(self):
        t = _table(30)
        p1 = t.partitioning(4)
        assert t.partitioning(4) is p1  # cached
        t.insert(999, Region.from_box(Box((1, 1), (2, 2))))
        p2 = t.partitioning(4)
        assert p2 is not p1
        assert p2.total_rows == 31

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            str_partition(_table(5), 0)


class TestProbeBox:
    def test_single_constraints(self):
        a = Box((0, 0), (10, 10))
        assert probe_box(BoxQuery(inside=a), UNIVERSE) == a
        assert probe_box(BoxQuery(covers=a), UNIVERSE) == a
        assert probe_box(BoxQuery(overlap=(a,)), UNIVERSE) == a

    def test_picks_smallest(self):
        small = Box((0, 0), (1, 1))
        big = Box((0, 0), (50, 50))
        assert probe_box(
            BoxQuery(inside=big, overlap=(small,)), UNIVERSE
        ) == small

    def test_trivial_query_degrades_to_extent(self):
        assert probe_box(BoxQuery(), UNIVERSE) == UNIVERSE

    def test_necessary_condition(self):
        """Any box matching the query overlaps its probe box."""
        rng = random.Random(8)
        boxes = _random_boxes(80, seed=2)
        for trial in range(25):
            lo = (rng.uniform(0, 80), rng.uniform(0, 80))
            probe = Box(lo, (lo[0] + rng.uniform(2, 20), lo[1] + 10.0))
            query = rng.choice(
                [
                    BoxQuery(overlap=(probe,)),
                    BoxQuery(inside=probe),
                    BoxQuery(inside=Box((0, 0), (60, 60)), overlap=(probe,)),
                ]
            )
            p = probe_box(query, UNIVERSE)
            for b in boxes:
                if query.matches(b):
                    assert b.overlaps(p)

    def test_mbr_may_match_sound(self):
        mbr = Box((0, 0), (40, 40))
        inside_q = BoxQuery(inside=Box((50, 50), (60, 60)))
        assert not mbr_may_match(mbr, inside_q)
        assert mbr_may_match(mbr, BoxQuery(overlap=(Box((30, 30), (45, 45)),)))
        assert not mbr_may_match(mbr, BoxQuery(covers=Box((0, 0), (45, 45))))


class TestTileGrid:
    def test_shape_and_count(self):
        grid = TileGrid.build([UNIVERSE], 16)
        assert grid.tile_count == 16
        assert grid.shape == (4, 4)

    def test_build_empty(self):
        assert TileGrid.build([], 8) is None

    def test_reference_point_tile_is_among_overlapping(self):
        grid = TileGrid.build([UNIVERSE], 9)
        for b in _random_boxes(50, seed=6):
            tiles = grid.tiles_overlapping(b)
            assert tiles
            assert grid.tile_of_point(b.lo) in tiles


class TestPBSMJoin:
    def _sides(self, n, seeds=(1, 2)):
        return (
            [(b, i) for i, b in enumerate(_random_boxes(n, seed=seeds[0]))],
            [(b, j) for j, b in enumerate(_random_boxes(n, seed=seeds[1]))],
        )

    def test_matches_brute_force(self):
        left, right = self._sides(120)
        brute = sorted(
            (lv, rv)
            for lb, lv in left
            for rb, rv in right
            if lb.overlaps(rb)
        )
        for tiles in (1, 4, 16, 40):
            assert pbsm_join(left, right, n_tiles=tiles) == brute

    def test_no_boundary_duplicates(self):
        left, right = self._sides(150, seeds=(5, 6))
        stats = JoinStats()
        pairs = pbsm_join(left, right, n_tiles=25, stats=stats)
        assert len(pairs) == len(set(pairs))
        assert stats.dedup_skipped > 0  # replication really happened
        assert stats.pairs == len(pairs)

    def test_parallel_bit_identical(self):
        left, right = self._sides(140, seeds=(7, 8))
        serial = pbsm_join(left, right, n_tiles=16)
        threaded = pbsm_join(
            left, right, n_tiles=16, exchange=Exchange(workers=4)
        )
        assert threaded == serial

    def test_process_pool_identical(self):
        left, right = self._sides(60, seeds=(9, 10))
        serial = pbsm_join(left, right, n_tiles=9)
        try:
            procs = pbsm_join(
                left,
                right,
                n_tiles=9,
                exchange=Exchange(workers=2, kind="process"),
            )
        except (OSError, PermissionError):  # sandboxed environments
            pytest.skip("process pools unavailable")
        assert procs == serial

    def test_empty_sides(self):
        left, _right = self._sides(10)
        assert pbsm_join(left, [], n_tiles=4) == []
        assert pbsm_join([], left, n_tiles=4) == []

    def test_exchange_validation(self):
        with pytest.raises(ValueError):
            Exchange(kind="fleet")
        assert Exchange(workers=0).describe() == "serial"
        assert Exchange(workers=3, kind="thread").describe() == "threadx3"


class TestPartitionedOperators:
    """The partition-aware physical plans return the classic answers."""

    def _plan(self, index="rtree", size=18):
        query, _world = smugglers_query(
            seed=11, n_towns=size, n_roads=size, states_grid=(3, 3),
            index=index,
        )
        return compile_query(query)

    def test_all_strategies_agree(self):
        plan = self._plan()
        order = list(plan.order)
        reference = answers_as_oid_tuples(
            execute(plan, "boxplan")[0], order
        )
        assert reference  # non-trivial workload
        for strategy in ("partition", "pbsm", "zorder"):
            for parallel in (0, 3):
                pplan = build_physical_plan(
                    plan,
                    "boxplan",
                    estimate=False,
                    partitions=5,
                    parallel=parallel,
                    join_strategy=strategy,
                )
                answers, _stats = pplan.run()
                assert answers_as_oid_tuples(answers, order) == reference, (
                    strategy,
                    parallel,
                )

    def test_parallel_stream_bit_identical(self):
        plan = self._plan()
        serial = [
            tuple(a[v].oid for v in plan.order)
            for a in build_physical_plan(
                plan, "boxplan", estimate=False,
                partitions=6, join_strategy="pbsm",
            ).execute_iter()
        ]
        threaded = [
            tuple(a[v].oid for v in plan.order)
            for a in build_physical_plan(
                plan, "boxplan", estimate=False,
                partitions=6, parallel=4, join_strategy="pbsm",
            ).execute_iter()
        ]
        assert threaded == serial

    def test_partition_scan_replaces_scan_backend_lowering(self):
        plan = self._plan(index="scan", size=12)
        pplan = build_physical_plan(
            plan, "boxplan", estimate=False, partitions=4
        )
        kinds = [op.kind for op in pplan.operators()]
        assert "PartitionScan" in kinds
        assert "TableScan" not in kinds
        order = list(plan.order)
        reference = answers_as_oid_tuples(execute(plan, "boxplan")[0], order)
        answers, stats = pplan.run()
        assert answers_as_oid_tuples(answers, order) == reference
        # Pruning actually skipped partitions somewhere in the chain.
        pruned = sum(
            op.stats.partitions_pruned
            for op in pplan.operators()
            if isinstance(op, PartitionScan)
        )
        assert pruned > 0

    def test_explain_renders_partition_operators(self):
        plan = self._plan(size=10)
        pplan = build_physical_plan(
            plan, "boxplan", partitions=4, parallel=2, join_strategy="pbsm"
        )
        pplan.run()
        text = pplan.explain()
        assert "PartitionedSpatialJoin" in text
        assert "tiles=4" in text
        assert "exchange=threadx2" in text
        assert "partitions=4" in text

    def test_boxonly_mode_supports_strategies(self):
        plan = self._plan(size=10)
        order = list(plan.order)
        reference = answers_as_oid_tuples(execute(plan, "boxonly")[0], order)
        for strategy in ("pbsm", "zorder", "partition"):
            answers, _ = execute(
                plan, "boxonly", partitions=4, join_strategy=strategy
            )
            assert answers_as_oid_tuples(answers, order) == reference

    def test_unknown_strategy_rejected(self):
        plan = self._plan(size=8)
        with pytest.raises(ValueError):
            build_physical_plan(plan, "boxplan", join_strategy="hashjoin")

    def test_explicit_strategy_rejected_in_nonbox_modes(self):
        plan = self._plan(size=8)
        for mode in ("naive", "exact"):
            with pytest.raises(ValueError, match="box modes"):
                build_physical_plan(plan, mode, join_strategy="pbsm")
            # The delegating 'auto' (and None) degrade quietly.
            build_physical_plan(plan, mode, join_strategy="auto")
            build_physical_plan(plan, mode, partitions=4)

    def test_misshapen_strategy_options_rejected(self):
        plan = self._plan(size=8)  # three retrieval steps
        with pytest.raises(ValueError, match="3 retrieval steps"):
            build_physical_plan(
                plan, "boxplan", join_strategy=["pbsm", "zorder"]
            )
        with pytest.raises(ValueError, match="unknown variables"):
            build_physical_plan(
                plan, "boxplan", join_strategy={"NOPE": "pbsm"}
            )
        # A partial per-variable mapping is fine: the rest default.
        first = plan.order[0]
        pplan = build_physical_plan(
            plan, "boxplan", join_strategy={first: "pbsm"}
        )
        assert pplan.join_strategies[0] == "pbsm"
        assert set(pplan.join_strategies[1:]) == {"probe"}

    def test_operator_classes_exported(self):
        assert PartitionedSpatialJoin.kind == "PartitionedSpatialJoin"
        assert ZOrderJoin.kind == "ZOrderJoin"


class TestPlannerIntegration:
    def test_catalog_partition_statistics(self):
        t = _table(90, seed=12)
        stats = t.statistics(partitions=6)
        assert stats.partitions
        assert sum(p.count for p in stats.partitions) == 90
        probe = BoxQuery(overlap=(Box((0, 0), (10, 10)),))
        assert 0.0 <= stats.pruned_count(probe) <= stats.count
        # A query touching everything prunes nothing.
        assert stats.pruned_count(BoxQuery()) == stats.count

    def test_rollout_estimates_carry_pruned_candidates(self):
        query = overlay_query(n_left=60, n_right=60, seed=2)
        ests = rollout_step_estimates(
            query, ["x", "y"], partitions=8
        )
        assert len(ests) == 2
        for e in ests:
            assert e.pruned_candidates >= 0.0
        # Pruning can only reduce the scan fanout.
        assert ests[1].pruned_candidates <= ests[1].scan_candidates + 1e-9

    def test_choose_join_strategies_shape_and_fallback(self):
        query = overlay_query(n_left=80, n_right=80, seed=3)
        chosen = choose_join_strategies(
            query, ["x", "y"], catalog=Catalog(), partitions=16
        )
        assert len(chosen) == 2
        assert all(
            s in ("probe", "partition", "pbsm", "zorder") for s in chosen
        )
        # Step 1 has a single probing tuple: bulk joins cannot win.
        assert chosen[0] in ("probe", "partition")

    def test_bulk_join_picked_for_large_fanout(self):
        """Many outer tuples probing a large table → a bulk join wins."""
        query = overlay_query(n_left=400, n_right=400, seed=5)
        chosen = choose_join_strategies(query, ["x", "y"], partitions=32)
        assert chosen[1] in ("pbsm", "zorder")
