"""The resident query service (tentpole): snapshot isolation, the
atomic swap, proactive probe-cache purge, and the HTTP front end.

The concurrency tests pin readers to the *old* snapshot while a rebuild
swaps in a new one — their answers must stay bit-identical to a serial
baseline on that snapshot — and the stale-probe regression warms the
cache, mutates, and asserts the post-swap answer reflects the mutation
with the superseded table's entries gone from the cache.
"""

import json
import threading

import pytest

from repro import BoxQuery, Database, Session
from repro.algebra import Region
from repro.boxes import Box
from repro.datagen import smugglers_query
from repro.engine.stats import ExecutionStats
from repro.errors import ServiceError
from repro.service import QueryService, ServiceClient, serve_in_thread


def _make_service(seed=2, cache_size=1024):
    query, _map = smugglers_query(seed=seed)
    db = Database(tables=query.tables, bindings=query.bindings)
    return QueryService(db, cache_size=cache_size), str(query.system)


@pytest.fixture(scope="module")
def served():
    service, system = _make_service()
    handle = serve_in_thread(service)
    host, port = handle.address
    client = ServiceClient(host, port, timeout=30.0)
    yield service, client, system
    handle.stop()


_ORDER = ("T", "R", "B")


def _local_tuples(db, system, cache=None):
    """The answer set as oid tuples in a fixed projection (a set: the
    post-mutation snapshots mix int and str oids, which don't sort)."""
    result = Session(db=db, cache=cache).run(system)
    return {
        tuple(a[v].oid for v in _ORDER) for a in result.answers
    }, result


# -- SnapshotStore -------------------------------------------------------------
def test_store_swap_bumps_version_and_keeps_old_db():
    service, system = _make_service(seed=7)
    db_old, v1 = service.store.current()
    baseline, _res = _local_tuples(db_old, system)
    v2 = service.apply_insert(
        "T", [("extra", Region.from_box(Box((1, 1), (2, 2))))]
    )
    assert v2 == v1 + 1
    db_new, v_now = service.store.current()
    assert v_now == v2 and db_new is not db_old
    # The old snapshot is untouched: same rows, same answers.
    assert len(db_old.table("T")) + 1 == len(db_new.table("T"))
    assert _local_tuples(db_old, system)[0] == baseline


def test_insert_unknown_table_is_service_error():
    service, _system = _make_service(seed=7)
    with pytest.raises(ServiceError, match="known tables"):
        service.apply_insert(
            "nope", [("x", Region.from_box(Box((0, 0), (1, 1))))]
        )


def test_swap_purges_only_superseded_tables():
    service, _system = _make_service(seed=7)
    db, _v = service.store.current()
    q = BoxQuery(overlap=(Box((0, 0), (32, 32)),))
    for table in db.tables.values():
        service.cache.store(table, q, list(table))
    assert len(service.cache) == len(db.tables)
    old_t = db.table("T")
    service.apply_insert(
        "T", [("extra", Region.from_box(Box((1, 1), (2, 2))))]
    )
    # Only T was rebuilt: its old entries are gone, R's and B's remain.
    assert service.cache.lookup(old_t, q) is None
    assert len(service.cache) == len(db.tables) - 1
    for key in db.tables:
        if key != "T":
            assert service.cache.lookup(db.table(key), q) is not None


def test_stale_probe_regression_post_swap_query_sees_mutation():
    """A query after the swap must never be served a stale probe."""
    service, system = _make_service(seed=2)
    db_old, _v = service.store.current()
    baseline, _res = _local_tuples(db_old, system, cache=service.cache)
    assert service.cache.misses > 0  # the warm-up populated the cache

    # Insert a town with the exact region of an answering town: the new
    # oid must join the answer set — a stale cached probe would hide it.
    answer_town = Session(db=db_old).run(system).answers[0]["T"]
    service.apply_insert("T", [("stale-check", answer_town.region)])
    db_new, _v = service.store.current()
    after, _res = _local_tuples(db_new, system, cache=service.cache)
    assert after != baseline
    assert any("stale-check" in t for t in after)


def test_rebuild_preserves_index_configuration():
    query, _map = smugglers_query(seed=4, node_capacity=4)
    service = QueryService(Database.from_query(query))
    service.apply_insert(
        "T", [("x", Region.from_box(Box((1, 1), (2, 2))))]
    )
    new_t = service.store.current()[0].table("T")
    old_t = query.tables["T"]
    assert new_t.index_kind == old_t.index_kind
    assert new_t.node_capacity == old_t.node_capacity
    assert new_t.universe == old_t.universe
    # The rebuild ships a warm catalog (no first-query stats stall).
    assert new_t._stats_version == new_t._version


# -- concurrent readers during rebuild + swap ----------------------------------
def test_concurrent_queries_during_rebuild_bit_identical():
    service, system = _make_service(seed=3)
    db_old, _v = service.store.current()
    baseline, _res = _local_tuples(db_old, system, cache=service.cache)

    errors, results = [], []
    start = threading.Barrier(5)

    def reader():
        try:
            start.wait(timeout=10)
            for _ in range(3):
                # Pinned to the captured snapshot, exactly as a request
                # in flight across the swap would be.
                results.append(
                    _local_tuples(db_old, system, cache=service.cache)[0]
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def writer():
        try:
            start.wait(timeout=10)
            for i in range(3):
                service.apply_insert(
                    "T",
                    [(f"w{i}", Region.from_box(Box((1, 1), (2, 2))))],
                )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    threads.append(threading.Thread(target=writer))
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert len(results) == 12
    assert all(r == baseline for r in results)
    assert service.store.version == 4  # three swaps happened


# -- HTTP front end ------------------------------------------------------------
def test_health_and_stats(served):
    _service, client, _system = served
    health = client.health()
    assert health["ok"] is True and health["snapshot"] >= 1
    stats = client.stats()
    assert set(stats["tables"]) == {"T", "R", "B"}
    assert stats["bindings"] == ["A", "C"]
    assert "cache" in stats


def test_run_over_the_wire_matches_local(served):
    service, client, system = served
    db, _v = service.store.current()
    local, result = _local_tuples(db, system)
    reply = client.run(system, bindings=["C", "A"])
    # Project the wire answers into the same fixed variable order so
    # the two answer sets compare tuple-for-tuple.
    wire = {tuple(a[v] for v in _ORDER) for a in reply["answers"]}
    assert wire == local
    assert reply["count"] == len(local)
    # The stats payload round-trips through the dataclass.
    restored = ExecutionStats.from_dict(reply["stats"])
    assert restored.tuples_emitted == reply["count"]


def test_run_uniform_options_over_the_wire(served):
    _service, client, system = served
    full = client.run(system)
    limited = client.run(system, limit=1, mode="exact", partitions=2)
    assert limited["count"] == min(1, full["count"])


def test_explain_over_the_wire(served):
    _service, client, system = served
    reply = client.explain(system)
    assert "Probe" in reply["plan"] or "Scan" in reply["plan"]
    analyzed = client.explain(system, analyze=True)
    assert "actual" in analyzed["plan"]


def test_bench_over_the_wire(served):
    _service, client, system = served
    report = client.bench(system)
    assert report["answers"] == report["counters"]["tuples_emitted"]
    assert set(report["tables"]) == {"T", "R", "B"}
    assert report["snapshot"] >= 1


def test_nearest_over_the_wire(served):
    service, client, system = served
    db, _v = service.store.current()
    expected = db.table("T").nearest((1.0, 1.0), 3)
    reply = client.nearest("T", k=3, point=(1.0, 1.0))
    assert [r["oid"] for r in reply["results"]] == [
        o.oid for _d, o in expected
    ]
    assert [r["distance"] for r in reply["results"]] == [
        d for d, _o in expected
    ]


def test_aggregate_over_the_wire(served):
    _service, client, system = served
    full = client.run(system)
    reply = client.run(system, aggregate={"aggregates": [["count", None]]})
    assert reply["answers"][0]["count"] == full["count"]


def test_inline_binding_regions_over_the_wire(served):
    service, client, system = served
    # Ad-hoc constant regions (inline box lists) instead of stored
    # binding names: reuse the stored regions' own boxes, so the reply
    # must match the named-bindings run exactly.
    db, _v = service.store.current()
    inline = {
        name: [[list(b.lo), list(b.hi)] for b in region.boxes]
        for name, region in db.bindings.items()
    }
    named = client.run(system, bindings=["C", "A"])
    adhoc = client.run(system, bindings=inline)
    assert adhoc["count"] == named["count"]
    assert sorted(map(str, adhoc["answers"])) == sorted(
        map(str, named["answers"])
    )
    # A degenerate (empty) area makes the ground constraints
    # unsatisfiable — reported as a client error, not a 500.
    with pytest.raises(ServiceError, match="unsatisfiable") as exc_info:
        client.run(
            system,
            bindings=dict(inline, A=[[[0.0, 0.0], [0.0, 0.0]]]),
        )
    assert exc_info.value.status == 400


def test_error_mapping(served):
    _service, client, system = served
    with pytest.raises(ServiceError, match="no route"):
        client._request("GET", "/nope", None)
    with pytest.raises(ServiceError, match="unknown binding"):
        client.run(system, bindings=["Z"])
    with pytest.raises(ServiceError, match="needs a 'system'"):
        client._post("/run", {})
    with pytest.raises(ServiceError, match="ParseError"):
        client.run("this is not the Figure-1 syntax")
    try:
        client.run(system, bindings=["Z"])
    except ServiceError as exc:
        assert exc.status == 400


def test_insert_over_the_wire_bumps_snapshot(served):
    service, client, system = served
    before = client.health()["snapshot"]
    count_before = client.run(system)["count"]
    # Clone an answering town's region under a new oid: the new town
    # must appear in the post-swap answers.
    db, _v = service.store.current()
    answer_town = Session(db=db).run(system).answers[0]["T"]
    reply = client.insert(
        "T",
        [
            {
                "oid": "wire-town",
                "boxes": [
                    [list(b.lo), list(b.hi)]
                    for b in answer_town.region.boxes
                ],
            }
        ],
    )
    assert reply["snapshot"] == before + 1
    assert reply["inserted"] == 1
    after = client.run(system)
    assert after["snapshot"] == before + 1
    assert after["count"] > count_before
    assert any("wire-town" in a.values() for a in after["answers"])


def test_concurrent_clients_during_wire_insert(served):
    service, client, system = served
    host, port = client.host, client.port
    errors, counts = [], []
    start = threading.Barrier(4)

    def requester():
        c = ServiceClient(host, port, timeout=30.0)
        try:
            start.wait(timeout=10)
            for _ in range(3):
                counts.append(c.run(system)["count"])
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    def inserter():
        c = ServiceClient(host, port, timeout=30.0)
        try:
            start.wait(timeout=10)
            c.insert(
                "B",
                [{"oid": "noise", "boxes": [[[30.0, 30.0], [31.0, 31.0]]]}],
            )
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=requester) for _ in range(3)]
    threads.append(threading.Thread(target=inserter))
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    # Every request succeeded; the off-area insert never changes the
    # smugglers answer, whichever snapshot served it.
    assert len(counts) == 9
    assert len(set(counts)) == 1


def test_stats_payload_is_json_serializable(served):
    _service, client, system = served
    reply = client.bench(system)
    json.dumps(reply)  # no TypeError — everything is plain JSON


# -- delta mutations & background repack ---------------------------------------
def test_small_inserts_stage_in_delta_not_rebuild():
    """The apply_insert fast path is O(delta): N small inserts stay
    staged in the published clone's write delta (no base rebuild, no
    repack) while every one is immediately visible to readers."""
    service, system = _make_service(seed=7)
    db0, _v = service.store.current()
    base_version = db0.table("T")._version
    n = 6
    for i in range(n):
        service.apply_insert(
            "T", [(f"tiny-{i}", Region.from_box(Box((1, 1), (2, 2))))]
        )
    service.drain_repacks()
    db, _v = service.store.current()
    t = db.table("T")
    assert t._version == base_version  # the packed base was never rebuilt
    assert t.delta_pending_ops == n
    assert service.repacks == 0
    assert {f"tiny-{i}" for i in range(n)} <= {o.oid for o in t}


def test_insert_burst_triggers_at_most_one_repack():
    """Crossing the repack threshold folds the delta exactly once, in
    the background; the published table comes out packed and clean."""
    service, system = _make_service(seed=7)
    service.repack_threshold = 8
    before = len(service.store.current()[0].table("T"))
    for i in range(8):
        service.apply_insert(
            "T", [(f"burst-{i}", Region.from_box(Box((1, 1), (2, 2))))]
        )
    service.drain_repacks()
    assert service.repacks == 1
    db, _v = service.store.current()
    t = db.table("T")
    assert len(t) == before + 8
    assert not t.delta_pending  # the fold consumed every staged op


def test_delete_endpoint_tombstones_and_is_idempotent():
    service, system = _make_service(seed=7)
    db0, _v = service.store.current()
    victim = next(iter(db0.table("T"))).oid
    version, deleted = service.apply_delete("T", [victim, victim, "nope"])
    assert deleted == 1
    db, v_now = service.store.current()
    assert v_now == version
    assert victim not in {o.oid for o in db.table("T")}
    # Idempotent: a second delete of the same oid is a no-op swap-free.
    version2, deleted2 = service.apply_delete("T", [victim])
    assert deleted2 == 0 and version2 == version


def test_readers_pinned_across_background_repack_stay_bit_identical():
    """Readers pinned to a pre-repack snapshot keep answering from the
    delta-overlay tables, bit-identically, while the background repack
    builds and swaps the packed form; mutations staged mid-repack are
    replayed onto the packed table."""
    service, system = _make_service(seed=7)
    service.repack_threshold = 5
    for i in range(4):
        service.apply_insert(
            "T", [(f"pin-{i}", Region.from_box(Box((1, 1), (2, 2))))]
        )
    db_old, _v = service.store.current()
    baseline, _res = _local_tuples(db_old, system, cache=service.cache)
    # The fifth insert crosses the threshold and kicks the repack; a
    # sixth lands while it may still be running (the replay path).
    for i in range(4, 6):
        service.apply_insert(
            "T", [(f"pin-{i}", Region.from_box(Box((1, 1), (2, 2))))]
        )
    for _ in range(3):
        assert (
            _local_tuples(db_old, system, cache=service.cache)[0]
            == baseline
        )
    service.drain_repacks()
    assert service.repacks == 1
    db_new, _v = service.store.current()
    t = db_new.table("T")
    assert {f"pin-{i}" for i in range(6)} <= {o.oid for o in t}
    # And the pinned snapshot still answers bit-identically afterwards.
    assert _local_tuples(db_old, system, cache=service.cache)[0] == baseline


def test_delete_over_the_wire(served):
    service, client, system = served
    db, _v = service.store.current()
    victim = next(iter(db.table("T"))).oid
    before = client.health()["snapshot"]
    reply = client.delete("T", [victim, "no-such-row"])
    assert reply["snapshot"] == before + 1
    assert reply["deleted"] == 1 and reply["missing"] == 1
    stats = client.stats()
    assert stats["tables"]["T"]["delta_pending"] >= 1
