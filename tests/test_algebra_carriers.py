"""Boolean-algebra law tests across every carrier.

The whole of Section 3 of the paper quantifies over Boolean algebras; the
carriers must actually *be* Boolean algebras.  Laws are checked with
hypothesis on random elements of each carrier.
"""

import pytest
from hypothesis import given, settings

from repro.algebra import (
    BitVectorAlgebra,
    FreeBooleanAlgebra,
    PowersetAlgebra,
    check_all_laws,
)
from repro.algebra.laws import (
    absorption,
    associativity,
    commutativity,
    complementation,
    de_morgan,
    distributivity,
    identity_elements,
    involution,
    le_is_partial_order,
    split_law,
)
from tests.strategies import (
    B2,
    BITS8,
    LINE,
    PLANE,
    SETS,
    bitvec_elements,
    interval_elements,
    powerset_elements,
    region_elements,
)


class TestTwoValued:
    def test_exhaustive_laws(self):
        check_all_laws(B2, B2.elements())

    def test_le(self):
        assert B2.le(False, True)
        assert not B2.le(True, False)

    def test_not_atomless(self):
        assert not B2.is_atomless()
        with pytest.raises(NotImplementedError):
            B2.split(True)


class TestBitVector:
    def test_constructor_validates(self):
        with pytest.raises(ValueError):
            BitVectorAlgebra(0)

    def test_exhaustive_small(self):
        alg = BitVectorAlgebra(3)
        check_all_laws(alg, list(alg.elements()))

    def test_atoms(self):
        alg = BitVectorAlgebra(4)
        assert list(alg.atoms()) == [1, 2, 4, 8]
        assert alg.is_atom(2)
        assert not alg.is_atom(3)
        assert not alg.is_atom(0)

    def test_split(self):
        alg = BitVectorAlgebra(4)
        lo, rest = alg.split(0b1010)
        assert lo | rest == 0b1010 and lo & rest == 0
        with pytest.raises(ValueError):
            alg.split(0b0100)

    @given(bitvec_elements(), bitvec_elements(), bitvec_elements())
    @settings(max_examples=60)
    def test_laws_random(self, a, b, c):
        assert associativity(BITS8, a, b, c)
        assert distributivity(BITS8, a, b, c)
        assert commutativity(BITS8, a, b)
        assert de_morgan(BITS8, a, b)
        assert complementation(BITS8, a)
        assert involution(BITS8, a)
        assert identity_elements(BITS8, a)
        assert absorption(BITS8, a, b)
        assert le_is_partial_order(BITS8, a, b)


class TestPowerset:
    def test_enumeration_guard(self):
        with pytest.raises(ValueError):
            list(PowersetAlgebra(range(20)).elements())

    def test_atoms_are_singletons(self):
        alg = PowersetAlgebra({"a", "b"})
        assert sorted(alg.atoms(), key=sorted) == [
            frozenset({"a"}),
            frozenset({"b"}),
        ]

    def test_split_atom_fails(self):
        with pytest.raises(ValueError):
            SETS.split(frozenset([0]))

    @given(powerset_elements(), powerset_elements(), powerset_elements())
    @settings(max_examples=60)
    def test_laws_random(self, a, b, c):
        assert associativity(SETS, a, b, c)
        assert distributivity(SETS, a, b, c)
        assert de_morgan(SETS, a, b)
        assert complementation(SETS, a)
        assert absorption(SETS, a, b)


class TestFreeAlgebra:
    def test_generators(self):
        alg = FreeBooleanAlgebra(["x", "y"])
        x, y = alg.generator("x"), alg.generator("y")
        assert not alg.eq(x, y)
        assert alg.is_zero(alg.meet(x, alg.complement(x)))
        assert alg.eq(alg.join(x, alg.complement(x)), alg.top)

    def test_unknown_generator(self):
        alg = FreeBooleanAlgebra(["x"])
        with pytest.raises(KeyError):
            alg.generator("q")

    def test_atoms_are_minterms(self):
        alg = FreeBooleanAlgebra(["x", "y"])
        x, y = alg.generator("x"), alg.generator("y")
        minterm = alg.meet(x, alg.complement(y))
        assert alg.is_atom(minterm)
        assert not alg.is_atom(x)

    def test_from_formula(self):
        from repro.boolean import variables

        x, y = variables("x", "y")
        alg = FreeBooleanAlgebra(["x", "y"])
        assert alg.eq(
            alg.from_formula(x & y), alg.meet(alg.generator("x"), alg.generator("y"))
        )
        with pytest.raises(KeyError):
            alg.from_formula(variables("q")[0])


class TestIntervalAlgebraLaws:
    @given(interval_elements(), interval_elements(), interval_elements())
    @settings(max_examples=80)
    def test_laws_random(self, a, b, c):
        assert associativity(LINE, a, b, c)
        assert distributivity(LINE, a, b, c)
        assert commutativity(LINE, a, b)
        assert de_morgan(LINE, a, b)
        assert complementation(LINE, a)
        assert involution(LINE, a)
        assert absorption(LINE, a, b)
        assert le_is_partial_order(LINE, a, b)

    @given(interval_elements())
    @settings(max_examples=60)
    def test_atomless_split(self, a):
        assert LINE.is_atomless()
        assert split_law(LINE, a)


class TestRegionAlgebraLaws:
    @given(region_elements(), region_elements(), region_elements())
    @settings(max_examples=50, deadline=None)
    def test_laws_random(self, a, b, c):
        assert associativity(PLANE, a, b, c)
        assert distributivity(PLANE, a, b, c)
        assert commutativity(PLANE, a, b)
        assert de_morgan(PLANE, a, b)
        assert complementation(PLANE, a)
        assert involution(PLANE, a)
        assert absorption(PLANE, a, b)
        assert le_is_partial_order(PLANE, a, b)

    @given(region_elements())
    @settings(max_examples=50, deadline=None)
    def test_atomless_split(self, a):
        assert PLANE.is_atomless()
        assert split_law(PLANE, a)


class TestOpCounters:
    def test_counting_and_reset(self):
        alg = BitVectorAlgebra(4)
        alg.meet(3, 5)
        alg.join(3, 5)
        alg.complement(3)
        assert alg.ops.meet == 1
        assert alg.ops.join == 1
        assert alg.ops.complement == 1
        assert alg.ops.total >= 3
        snap = alg.ops.snapshot()
        assert snap["meet"] == 1
        alg.ops.reset()
        assert alg.ops.total == 0
