"""Unit tests for the interval algebra (the 1-D atomless carrier)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.algebra import IntervalAlgebra, IntervalSet
from repro.errors import UniverseMismatchError
from tests.strategies import LINE, interval_elements


class TestIntervalSetCanonicalisation:
    def test_empty_pairs_dropped(self):
        assert IntervalSet([(3, 3), (5, 4)]).is_empty()

    def test_overlapping_merged(self):
        s = IntervalSet([(0, 2), (1, 3)])
        assert s.intervals == ((Fraction(0), Fraction(3)),)

    def test_adjacent_merged(self):
        s = IntervalSet([(0, 1), (1, 2)])
        assert s.intervals == ((Fraction(0), Fraction(2)),)

    def test_disjoint_kept_sorted(self):
        s = IntervalSet([(4, 5), (0, 1)])
        assert s.intervals == (
            (Fraction(0), Fraction(1)),
            (Fraction(4), Fraction(5)),
        )

    def test_equality_is_semantic(self):
        assert IntervalSet([(0, 1), (1, 2)]) == IntervalSet([(0, 2)])

    def test_hashable(self):
        assert hash(IntervalSet([(0, 1)])) == hash(IntervalSet([(0, 1)]))

    def test_measure(self):
        s = IntervalSet([(0, 1), (2, 4)])
        assert s.measure() == 3

    def test_bounding_interval(self):
        s = IntervalSet([(1, 2), (5, 6)])
        assert s.bounding_interval() == (1, 6)
        assert IntervalSet().bounding_interval() is None

    def test_contains_point_half_open(self):
        s = IntervalSet([(0, 1)])
        assert s.contains_point(0)
        assert s.contains_point(Fraction(1, 2))
        assert not s.contains_point(1)


class TestIntervalAlgebra:
    def test_universe_validation(self):
        with pytest.raises(ValueError):
            IntervalAlgebra(3, 3)

    def test_complement_of_middle(self):
        alg = IntervalAlgebra(0, 10)
        c = alg.complement(alg.interval(2, 5))
        assert c == IntervalSet([(0, 2), (5, 10)])

    def test_complement_rejects_outside_universe(self):
        alg = IntervalAlgebra(0, 1)
        with pytest.raises(UniverseMismatchError):
            alg.complement(IntervalSet([(0, 5)]))

    def test_meet_interleaved(self):
        alg = IntervalAlgebra(0, 10)
        a = alg.from_pairs([(0, 3), (5, 8)])
        b = alg.from_pairs([(2, 6)])
        assert alg.meet(a, b) == IntervalSet([(2, 3), (5, 6)])

    def test_join_merges(self):
        alg = IntervalAlgebra(0, 10)
        got = alg.join(alg.interval(0, 2), alg.interval(2, 5))
        assert got == IntervalSet([(0, 5)])

    def test_interval_clipped_to_universe(self):
        alg = IntervalAlgebra(0, 4)
        assert alg.interval(-5, 10) == alg.top

    def test_le(self):
        alg = IntervalAlgebra(0, 10)
        assert alg.le(alg.interval(1, 2), alg.interval(0, 5))
        assert not alg.le(alg.interval(0, 5), alg.interval(1, 2))

    def test_split_preserves_exactness(self):
        alg = IntervalAlgebra(0, 1)
        a = alg.interval(0, 1)
        for _ in range(50):  # repeated splitting never hits zero
            a, _rest = alg.split(a)
        assert not a.is_empty()
        assert a.measure() == Fraction(1, 2**50)

    def test_split_zero_rejected(self):
        with pytest.raises(ValueError):
            LINE.split(LINE.bot)

    @given(interval_elements())
    @settings(max_examples=60)
    def test_complement_involution(self, a):
        assert LINE.complement(LINE.complement(a)) == a

    @given(interval_elements(), interval_elements())
    @settings(max_examples=60)
    def test_measure_additivity(self, a, b):
        # |a| + |b| == |a ∨ b| + |a ∧ b|
        lhs = a.measure() + b.measure()
        rhs = LINE.join(a, b).measure() + LINE.meet(a, b).measure()
        assert lhs == rhs
