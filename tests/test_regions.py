"""Unit tests for boxes and the k-dimensional region algebra."""

import pytest
from hypothesis import given, settings

from repro.algebra import Region, RegionAlgebra, box_subtract
from repro.boxes import Box, EMPTY_BOX, enclose_all, meet_all
from repro.errors import DimensionMismatchError, UniverseMismatchError
from tests.strategies import PLANE, SPACE3, boxes, nonempty_boxes, region_elements


class TestBox:
    def test_empty_normalisation(self):
        assert Box((0, 0), (0, 1)).is_empty()
        assert Box((2,), (1,)).is_empty()
        assert EMPTY_BOX.is_empty()

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            Box((0,), (1, 2))
        with pytest.raises(DimensionMismatchError):
            Box((0,), (1,)).meet(Box((0, 0), (1, 1)))

    def test_volume_and_sides(self):
        b = Box((0, 0), (2, 3))
        assert b.volume() == 6
        assert b.sides() == (2, 3)
        assert EMPTY_BOX.volume() == 0

    def test_meet_is_intersection(self):
        a = Box((0, 0), (4, 4))
        b = Box((2, 2), (6, 6))
        assert a.meet(b) == Box((2, 2), (4, 4))
        assert a.meet(Box((5, 5), (6, 6))).is_empty()

    def test_enclose_is_minimal_enclosing(self):
        a = Box((0, 0), (1, 1))
        b = Box((3, 3), (4, 4))
        assert a.enclose(b) == Box((0, 0), (4, 4))

    def test_enclose_not_union(self):
        # Paper: "Note that ⊔ is not equivalent to set union."
        a = Box((0, 0), (1, 1))
        b = Box((3, 3), (4, 4))
        joined = a.enclose(b)
        assert joined.volume() > a.volume() + b.volume()

    def test_le_containment(self):
        inner = Box((1, 1), (2, 2))
        outer = Box((0, 0), (4, 4))
        assert inner.le(outer)
        assert not outer.le(inner)
        assert EMPTY_BOX.le(inner)
        assert not inner.le(EMPTY_BOX)

    def test_empty_is_bottom(self):
        b = Box((0, 0), (1, 1))
        assert b.meet(EMPTY_BOX).is_empty()
        assert b.enclose(EMPTY_BOX) == b

    def test_point_mapping_roundtrip(self):
        b = Box((1, 2), (3, 4))
        assert b.to_point() == (1, 2, 3, 4)
        assert Box.from_point((1, 2, 3, 4)) == b
        with pytest.raises(ValueError):
            EMPTY_BOX.to_point()
        with pytest.raises(DimensionMismatchError):
            Box.from_point((1, 2, 3))

    def test_contains_point_half_open(self):
        b = Box((0, 0), (1, 1))
        assert b.contains_point((0, 0))
        assert not b.contains_point((1, 0))

    def test_inflate_translate(self):
        b = Box((1, 1), (2, 2))
        assert b.inflate(1) == Box((0, 0), (3, 3))
        assert b.translate((1, -1)) == Box((2, 0), (3, 1))

    def test_helpers(self):
        assert enclose_all([]) == EMPTY_BOX
        a = Box((0, 0), (2, 2))
        b = Box((1, 1), (3, 3))
        assert enclose_all([a, b]) == Box((0, 0), (3, 3))
        assert meet_all([a, b]) == Box((1, 1), (2, 2))
        with pytest.raises(ValueError):
            meet_all([])

    @given(nonempty_boxes(), nonempty_boxes(), nonempty_boxes())
    @settings(max_examples=80)
    def test_lattice_laws(self, a, b, c):
        # ⊓/⊔ form a lattice under ⊑.
        assert a.meet(b).le(a) and a.meet(b).le(b)
        assert a.le(a.enclose(b)) and b.le(a.enclose(b))
        assert a.meet(b) == b.meet(a)
        assert a.enclose(b) == b.enclose(a)
        assert a.meet(b.meet(c)) == a.meet(b).meet(c)
        assert a.enclose(b.enclose(c)) == a.enclose(b).enclose(c)
        # Lemma 11: (f ⊓ g) ⊔ (f ⊓ h) ⊑ f ⊓ (g ⊔ h)
        lhs = a.meet(b).enclose(a.meet(c))
        rhs = a.meet(b.enclose(c))
        assert lhs.le(rhs)


class TestBoxSubtract:
    def test_disjoint_untouched(self):
        a = Box((0, 0), (1, 1))
        b = Box((5, 5), (6, 6))
        assert box_subtract(a, b) == [a]

    def test_full_cover_empties(self):
        a = Box((1, 1), (2, 2))
        b = Box((0, 0), (4, 4))
        assert box_subtract(a, b) == []

    def test_pieces_are_disjoint_and_exact(self):
        a = Box((0, 0), (4, 4))
        b = Box((1, 1), (3, 3))
        pieces = box_subtract(a, b)
        assert len(pieces) <= 4
        total = sum(p.volume() for p in pieces)
        assert total == a.volume() - b.volume()
        for i, p in enumerate(pieces):
            assert p.meet(b).is_empty()
            for q in pieces[i + 1 :]:
                assert p.meet(q).is_empty()

    @given(nonempty_boxes(), boxes())
    @settings(max_examples=100)
    def test_measure_law(self, a, b):
        pieces = box_subtract(a, b)
        inter = a.meet(b)
        assert sum(p.volume() for p in pieces) == pytest.approx(
            a.volume() - inter.volume()
        )


class TestRegion:
    def test_from_boxes_overlapping(self):
        r = Region.from_boxes([Box((0, 0), (2, 2)), Box((1, 1), (3, 3))])
        assert r.measure() == pytest.approx(7.0)  # 4 + 4 - 1

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(DimensionMismatchError):
            Region((Box((0,), (1,)), Box((0, 0), (1, 1))))

    def test_equality_semantic(self):
        r1 = Region.from_boxes([Box((0, 0), (2, 1)), Box((0, 1), (2, 2))])
        r2 = Region.from_box(Box((0, 0), (2, 2)))
        assert r1 == r2

    def test_region_unhashable(self):
        with pytest.raises(TypeError):
            hash(Region.empty())

    def test_bounding_box(self):
        r = Region.from_boxes([Box((0, 0), (1, 1)), Box((3, 3), (4, 5))])
        assert r.bounding_box() == Box((0, 0), (4, 5))
        assert Region.empty().bounding_box().is_empty()

    def test_contains_point(self):
        r = Region.from_boxes([Box((0, 0), (1, 1))])
        assert r.contains_point((0.5, 0.5))
        assert not r.contains_point((2, 2))

    def test_translate(self):
        r = Region.from_box(Box((0, 0), (1, 1))).translate((5, 5))
        assert r.bounding_box() == Box((5, 5), (6, 6))


class TestRegionAlgebra:
    def test_universe_validation(self):
        with pytest.raises(ValueError):
            RegionAlgebra(EMPTY_BOX)

    def test_complement(self):
        alg = RegionAlgebra(Box((0, 0), (4, 4)))
        inner = alg.box_region(Box((1, 1), (3, 3)))
        comp = alg.complement(inner)
        assert comp.measure() == pytest.approx(12.0)
        assert alg.is_zero(alg.meet(inner, comp))
        assert alg.eq(alg.join(inner, comp), alg.top)

    def test_complement_rejects_outside(self):
        alg = RegionAlgebra(Box((0, 0), (1, 1)))
        with pytest.raises(UniverseMismatchError):
            alg.complement(Region.from_box(Box((0, 0), (5, 5))))

    def test_diff_shortcut(self):
        alg = PLANE
        a = alg.box_region(Box((0, 0), (2, 2)))
        b = alg.box_region(Box((1, 0), (2, 2)))
        assert alg.diff(a, b).measure() == pytest.approx(2.0)

    def test_3d(self):
        alg = SPACE3
        cube = alg.box_region(Box((0, 0, 0), (2, 2, 2)))
        assert cube.measure() == pytest.approx(8.0)
        assert alg.complement(cube).measure() == pytest.approx(8**3 - 8)

    def test_split_3d(self):
        alg = SPACE3
        cube = alg.box_region(Box((0, 0, 0), (2, 2, 2)))
        p, q = alg.split(cube)
        assert p.measure() == pytest.approx(4.0)
        assert alg.is_zero(alg.meet(p, q))
        assert alg.eq(alg.join(p, q), cube)

    @given(region_elements(), region_elements())
    @settings(max_examples=50, deadline=None)
    def test_measure_additivity(self, a, b):
        lhs = a.measure() + b.measure()
        rhs = PLANE.join(a, b).measure() + PLANE.meet(a, b).measure()
        assert lhs == pytest.approx(rhs)

    @given(region_elements(), region_elements())
    @settings(max_examples=50, deadline=None)
    def test_bounding_box_is_monotone(self, a, b):
        # Lemma 10: ⌈f ∧ g⌉ ⊑ ⌈f⌉ ⊓ ⌈g⌉; and ⌈f ∨ g⌉ = ⌈f⌉ ⊔ ⌈g⌉.
        assert (
            PLANE.meet(a, b)
            .bounding_box()
            .le(a.bounding_box().meet(b.bounding_box()))
        )
        assert PLANE.join(a, b).bounding_box() == a.bounding_box().enclose(
            b.bounding_box()
        )
