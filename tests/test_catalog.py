"""Tests for the table-statistics catalog (engine/catalog.py)."""

import random

from repro.algebra import Region
from repro.boxes import Box, BoxQuery
from repro.engine import Catalog, Histogram, collect_statistics
from repro.spatial import SpatialTable

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def _table(boxes, name="t"):
    t = SpatialTable(name, 2, universe=UNIVERSE)
    for i, b in enumerate(boxes):
        t.insert(i, Region.from_box(b))
    return t


def _random_boxes(n, seed=0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        lo = (rng.uniform(0, 90), rng.uniform(0, 90))
        out.append(
            Box(lo, (lo[0] + rng.uniform(1, 9), lo[1] + rng.uniform(1, 9)))
        )
    return out


class TestHistogram:
    def test_empty(self):
        h = Histogram.from_values([])
        assert h.total == 0
        assert h.fraction_below(5.0) == 0.0
        assert h.fraction_at_least(5.0) == 1.0

    def test_point_population(self):
        h = Histogram.from_values([3.0] * 10)
        assert h.fraction_below(3.0) == 0.0
        assert h.fraction_at_most(3.0) == 1.0
        assert h.fraction_at_least(3.0) == 1.0
        assert h.fraction_at_least(3.5) == 0.0

    def test_uniform_interpolation(self):
        values = [i / 10 for i in range(1000)]
        h = Histogram.from_values(values, bins=16)
        for x in (10.0, 25.0, 50.0, 75.0):
            frac = h.fraction_below(x)
            exact = sum(1 for v in values if v < x) / len(values)
            assert abs(frac - exact) < 0.05

    def test_monotone(self):
        h = Histogram.from_values([1, 2, 2, 3, 8, 9, 20], bins=4)
        samples = [h.fraction_below(x) for x in range(0, 25)]
        assert samples == sorted(samples)
        assert samples[0] == 0.0 and samples[-1] == 1.0


class TestCollect:
    def test_empty_table(self):
        stats = collect_statistics(_table([]))
        assert stats.count == 0
        assert stats.mbr.is_empty()
        assert stats.sample == ()
        assert stats.sel_query(BoxQuery()) == 0.0

    def test_counts_and_mbr(self):
        boxes = _random_boxes(50)
        stats = collect_statistics(_table(boxes))
        assert stats.count == 50
        for b in boxes:
            assert b.le(stats.mbr)
        assert len(stats.lo_hists) == 2 and len(stats.hi_hists) == 2
        assert all(s > 0 for s in stats.avg_sides)

    def test_sample_bounded(self):
        stats = collect_statistics(_table(_random_boxes(200)), sample_size=16)
        assert len(stats.sample) == 16

    def test_selectivity_tracks_exact_fraction(self):
        boxes = _random_boxes(400, seed=3)
        stats = collect_statistics(_table(boxes))
        queries = [
            BoxQuery(inside=Box((0, 0), (50, 50))),
            BoxQuery(overlap=(Box((20, 20), (40, 40)),)),
            BoxQuery(overlap=(Box((70, 70), (90, 90)),)),
            BoxQuery(inside=Box((10, 10), (80, 80)),
                     overlap=(Box((30, 30), (60, 60)),)),
        ]
        for q in queries:
            exact = sum(1 for b in boxes if q.matches(b)) / len(boxes)
            est = stats.selectivity(q)
            assert abs(est - exact) < 0.15, (q, est, exact)

    def test_covers_selectivity(self):
        # Boxes all cover the center point box.
        boxes = [Box((40 - i, 40 - i), (60 + i, 60 + i)) for i in range(20)]
        stats = collect_statistics(_table(boxes))
        probe = Box((49, 49), (51, 51))
        assert stats.sel_covers(probe) > 0.8
        outside = Box((0, 0), (2, 2))
        assert stats.sel_covers(outside) < 0.2

    def test_unsatisfiable_query(self):
        stats = collect_statistics(_table(_random_boxes(20)))
        from repro.boxes.box import EMPTY_BOX

        q = BoxQuery(overlap=(EMPTY_BOX,))
        assert stats.sel_query(q) == 0.0
        assert stats.sampled_fraction(q) == 0.0


class TestCaching:
    def test_cached_until_mutation(self):
        t = _table(_random_boxes(30))
        s1 = t.statistics()
        s2 = t.statistics()
        assert s1 is s2
        t.insert(999, Region.from_box(Box((1, 1), (2, 2))))
        s3 = t.statistics()
        assert s3 is not s1
        assert s3.count == 31

    def test_reindex_invalidates(self):
        t = _table(_random_boxes(30))
        s1 = t.statistics()
        t.pack()
        assert t.statistics() is not s1

    def test_catalog_view(self):
        t = _table(_random_boxes(30))
        cat = Catalog(bins=8, sample_size=5)
        stats = cat.statistics(t)
        assert len(stats.sample) == 5
        assert len(stats.lo_hists[0].counts) <= 8
