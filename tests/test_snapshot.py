"""Snapshot save/load round-trips (ISSUE 6 satellite coverage).

Every backend must round-trip bit-identically: answer sets, catalog
statistics, and partitioning equal to the freshly built table's — and
for the r-tree, the reloaded node structure itself is compared
node-for-node (so node-read counts match too, not just answers).
"""

import json
import os

import pytest

from repro.algebra import Region
from repro.boxes import Box
from repro.database import Database
from repro.engine import compile_query
from repro.engine.executor import answers_as_oid_tuples, execute
from repro.engine.query import SpatialQuery
from repro.errors import SnapshotError
from repro.spatial import SpatialTable
from repro.spatial.snapshot import (
    FORMAT_VERSION,
    read_snapshot,
    table_from_jsonable,
    table_to_jsonable,
    write_snapshot,
)

from repro.datagen import smugglers_query

BACKENDS = ("rtree", "grid", "scan")


def _saved_loaded(tmp_path, index, seed=3):
    query, _map = smugglers_query(index=index, seed=seed)
    for table in query.tables.values():
        table.statistics()
        table.partitioning(4)
    path = str(tmp_path / "db.json")
    write_snapshot(path, query.tables, query.bindings)
    tables, bindings = read_snapshot(path)
    return query, tables, bindings, path


@pytest.mark.parametrize("index", BACKENDS)
class TestRoundTrip:
    def test_rows_bit_identical(self, tmp_path, index):
        query, tables, _b, _p = _saved_loaded(tmp_path, index)
        for key, orig in query.tables.items():
            loaded = tables[key]
            assert [o.oid for o in orig] == [o.oid for o in loaded]
            # Exact region representation, not merely set equality.
            assert [o.region.boxes for o in orig] == [
                o.region.boxes for o in loaded
            ]
            assert len(orig) == len(loaded)
            assert loaded.universe == orig.universe
            assert loaded._version == orig._version

    def test_answers_bit_identical(self, tmp_path, index):
        query, tables, bindings, _p = _saved_loaded(tmp_path, index)
        plan = compile_query(query)
        baseline, base_stats = execute(plan, "boxplan")
        reloaded = SpatialQuery(
            system=query.system,
            tables=tables,
            bindings=bindings,
            order=query.order,
        )
        answers, stats = execute(compile_query(reloaded), "boxplan")
        assert answers_as_oid_tuples(answers, plan.order) == (
            answers_as_oid_tuples(baseline, plan.order)
        )
        # Warm-index parity: the reloaded index costs exactly the same
        # probes and node reads as the freshly built one.
        assert stats.to_dict() == base_stats.to_dict()

    def test_statistics_bit_identical(self, tmp_path, index):
        query, tables, _b, _p = _saved_loaded(tmp_path, index)
        for key, orig in query.tables.items():
            # Served from the snapshot's cache — and equal to the
            # original's (TableStatistics compares histograms, MBR,
            # sample rows, and partition summaries).
            assert tables[key].statistics() == orig.statistics()

    def test_partitioning_bit_identical(self, tmp_path, index):
        query, tables, _b, _p = _saved_loaded(tmp_path, index)
        for key, orig in query.tables.items():
            po, pl = orig.partitioning(4), tables[key].partitioning(4)
            assert po.target == pl.target
            assert [
                (p.pid, p.mbr, tuple(o.oid for o in p.rows))
                for p in po.partitions
            ] == [
                (p.pid, p.mbr, tuple(o.oid for o in p.rows))
                for p in pl.partitions
            ]


def test_rtree_node_arrays_identical(tmp_path):
    """The reloaded tree is the same tree, node for node."""
    query, tables, _b, _p = _saved_loaded(tmp_path, "rtree")
    for key, orig in query.tables.items():
        loaded = tables[key]
        orig_rows = {id(o): i for i, o in enumerate(orig)}
        loaded_rows = {id(o): i for i, o in enumerate(loaded)}
        assert orig._rtree.to_node_arrays(
            lambda o: orig_rows[id(o)]
        ) == loaded._rtree.to_node_arrays(lambda o: loaded_rows[id(o)])


def test_loaded_table_accepts_mutation(tmp_path):
    _query, tables, _b, _p = _saved_loaded(tmp_path, "rtree")
    table = tables["T"]
    version = table._version
    obj = table.insert("new-town", Region.from_box(Box((1, 1), (2, 2))))
    assert table._version == version + 1
    q = __import__("repro").BoxQuery(overlap=(Box((0, 0), (3, 3)),))
    assert obj in table.range_query(q)


def test_oid_types_round_trip(tmp_path):
    t = SpatialTable("mixed", 2, index="scan")
    oids = ["a", 7, 2.5, ("pair", 3), None]
    for i, oid in enumerate(oids):
        t.insert(oid, Region.from_box(Box((i, i), (i + 1, i + 1))))
    path = str(tmp_path / "mixed.json")
    write_snapshot(path, {"m": t})
    loaded = read_snapshot(path)[0]["m"]
    assert [o.oid for o in loaded] == oids
    # A tuple oid stays a tuple (hashable), not a JSON list.
    assert loaded.get(("pair", 3)).oid == ("pair", 3)


def test_unserializable_oid_raises():
    t = SpatialTable("bad", 2, index="scan")
    t.insert(frozenset({1}), Region.from_box(Box((0, 0), (1, 1))))
    with pytest.raises(SnapshotError, match="oid"):
        table_to_jsonable(t)


def test_missing_file_raises(tmp_path):
    with pytest.raises(SnapshotError, match="cannot read"):
        read_snapshot(str(tmp_path / "nope.json"))


def test_malformed_json_raises(tmp_path):
    path = tmp_path / "trunc.json"
    path.write_text('{"format": "repro-snapsho')
    with pytest.raises(SnapshotError, match="not valid JSON"):
        read_snapshot(str(path))


def test_foreign_file_raises(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"hello": "world"}))
    with pytest.raises(SnapshotError, match="is not a repro-snapshot"):
        read_snapshot(str(path))


def test_future_version_raises(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(
        json.dumps(
            {
                "format": "repro-snapshot",
                "version": FORMAT_VERSION + 1,
                "tables": {},
            }
        )
    )
    with pytest.raises(SnapshotError, match="format version"):
        read_snapshot(str(path))


def test_write_is_atomic_no_tmp_left(tmp_path):
    query, _map = smugglers_query(seed=1)
    path = str(tmp_path / "db.json")
    write_snapshot(path, query.tables, query.bindings)
    write_snapshot(path, query.tables, query.bindings)  # overwrite OK
    assert os.listdir(tmp_path) == ["db.json"]


def test_empty_table_round_trip(tmp_path):
    for index in BACKENDS:
        t = SpatialTable(
            "empty", 2, index=index, universe=Box((0, 0), (10, 10))
        )
        data = table_to_jsonable(t)
        loaded = table_from_jsonable(json.loads(json.dumps(data)))
        assert len(loaded) == 0
        assert loaded.index_kind == index


def test_database_open_matches_save(tmp_path):
    query, _map = smugglers_query(seed=5)
    db = Database(tables=query.tables, bindings=query.bindings)
    path = str(tmp_path / "db.json")
    db.save(path, partitions=4)
    reopened = Database.open(path)
    assert set(reopened.tables) == set(db.tables)
    assert set(reopened.bindings) == set(db.bindings)
    # save() pre-warmed statistics and partitioning: the reopened
    # tables answer both without recomputation (cache keys match).
    for key, table in reopened.tables.items():
        assert table._stats_version == table._version
        assert table._partitioning_key == (table._version, 0, 4)
        assert table.statistics() == db.tables[key].statistics()
