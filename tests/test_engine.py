"""Tests for the query engine: compiler, executors, planner."""

import pytest

from repro.algebra import Region
from repro.boxes import Box
from repro.constraints import ConstraintSystem, nonempty, subset
from repro.datagen import (
    containment_chain_query,
    overlay_query,
    sandwich_query,
    smugglers_query,
)
from repro.engine import (
    MODES,
    SpatialQuery,
    answers_as_oid_tuples,
    best_order_by_estimate,
    choose_order,
    compile_query,
    enumerate_orders,
    estimate_order_cost,
    execute,
    run_query,
)
from repro.errors import (
    CompilationError,
    UnboundVariableError,
    UnsatisfiableError,
)
from repro.spatial import SpatialTable

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def _table(name, rows, index="rtree"):
    t = SpatialTable(name, 2, index=index, universe=UNIVERSE)
    t.bulk_insert(rows)
    return t


def _box_region(lo, hi):
    return Region.from_box(Box(lo, hi))


class TestSpatialQueryValidation:
    def test_unbound_variable(self):
        with pytest.raises(UnboundVariableError):
            SpatialQuery(
                system=ConstraintSystem.build(nonempty("x")),
                tables={},
            )

    def test_variable_both_bound_and_table(self):
        t = _table("t", [(0, _box_region((0, 0), (1, 1)))])
        with pytest.raises(CompilationError):
            SpatialQuery(
                system=ConstraintSystem.build(nonempty("x")),
                tables={"x": t},
                bindings={"x": _box_region((0, 0), (1, 1))},
            )

    def test_order_must_be_permutation(self):
        t = _table("t", [(0, _box_region((0, 0), (1, 1)))])
        with pytest.raises(CompilationError):
            SpatialQuery(
                system=ConstraintSystem.build(nonempty("x")),
                tables={"x": t},
                order=["x", "y"],
            )

    def test_universe_inference(self):
        t = SpatialTable("t", 2)  # no declared universe
        t.insert(0, _box_region((10, 10), (20, 20)))
        q = SpatialQuery(
            system=ConstraintSystem.build(nonempty("x")),
            tables={"x": t},
        )
        alg = q.algebra()
        assert _box_region((10, 10), (20, 20)).bounding_box().le(
            alg.universe_box
        )


class TestCompiler:
    def test_unsatisfiable_ground_raises(self):
        # Binding violates A ⊆ C.
        t = _table("towns", [(0, _box_region((0, 0), (1, 1)))])
        q = SpatialQuery(
            system=ConstraintSystem.build(
                subset("A", "C"), nonempty("x")
            ),
            tables={"x": t},
            bindings={
                "A": _box_region((0, 0), (50, 50)),
                "C": _box_region((10, 10), (20, 20)),
            },
        )
        with pytest.raises(UnsatisfiableError):
            compile_query(q)

    def test_plan_structure(self):
        q, _m = smugglers_query(seed=0, n_towns=6, n_roads=6)
        plan = compile_query(q)
        assert plan.order == ("T", "R", "B")
        assert [s.variable for s in plan.steps] == ["T", "R", "B"]
        assert plan.steps[0].table.name == "towns"
        text = plan.render()
        assert "step T" in text and "boxes:" in text

    def test_compile_respects_explicit_order(self):
        q, _m = smugglers_query(seed=0, n_towns=6, n_roads=6)
        plan = compile_query(q, order=["B", "R", "T"])
        assert plan.order == ("B", "R", "T")


class TestExecutorAgreement:
    """All modes must return identical answer sets."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_smugglers_modes_agree(self, seed):
        q, _m = smugglers_query(
            seed=seed, n_towns=8, n_roads=8, states_grid=(2, 2)
        )
        plan = compile_query(q)
        reference = None
        for mode in MODES:
            answers, stats = execute(plan, mode)
            got = answers_as_oid_tuples(answers, ["T", "R", "B"])
            if reference is None:
                reference = got
            assert got == reference, f"mode {mode} disagrees"
            assert stats.tuples_emitted == len(got)

    def test_answers_satisfy_system(self):
        q, _m = smugglers_query(seed=3, n_towns=8, n_roads=8)
        plan = compile_query(q)
        answers, _stats = execute(plan, "boxplan")
        alg = plan.algebra
        for a in answers:
            env = dict(q.bindings)
            env.update({k: v.region for k, v in a.items()})
            assert q.system.holds(alg, env)

    @pytest.mark.parametrize("index", ["rtree", "grid", "scan"])
    def test_index_backends_agree(self, index):
        q, _m = smugglers_query(
            seed=5, n_towns=10, n_roads=10, index=index
        )
        answers, _stats = run_query(q, "boxplan")
        q2, _m2 = smugglers_query(seed=5, n_towns=10, n_roads=10, index="scan")
        expected, _ = run_query(q2, "exact")
        assert answers_as_oid_tuples(
            answers, ["T", "R", "B"]
        ) == answers_as_oid_tuples(expected, ["T", "R", "B"])

    def test_overlay_modes_agree(self):
        q = overlay_query(n_left=30, n_right=30, seed=2)
        plan = compile_query(q)
        results = {}
        for mode in MODES:
            answers, _ = execute(plan, mode)
            results[mode] = answers_as_oid_tuples(answers, ["x", "y"])
        assert results["naive"] == results["boxplan"]
        assert results["exact"] == results["boxplan"]
        assert results["boxonly"] == results["boxplan"]
        assert results["naive"]  # nontrivial

    def test_sandwich_modes_agree(self):
        q = sandwich_query(n_items=40, seed=1)
        plan = compile_query(q)
        got = {m: answers_as_oid_tuples(execute(plan, m)[0], ["x"]) for m in MODES}
        assert got["naive"] == got["boxplan"] == got["exact"] == got["boxonly"]

    def test_unknown_mode_rejected(self):
        from repro.errors import UnknownModeError

        q = sandwich_query(n_items=5)
        plan = compile_query(q)
        with pytest.raises(UnknownModeError) as info:
            execute(plan, "warp")
        # The dedicated error is a ValueError naming every valid mode.
        assert isinstance(info.value, ValueError)
        message = str(info.value)
        assert "'warp'" in message
        for mode in MODES:
            assert f"'{mode}'" in message
        assert info.value.valid == MODES


class TestPruningEffect:
    """The optimization must actually prune (E5's qualitative claim)."""

    def test_boxplan_prunes_candidates(self):
        q, _m = smugglers_query(
            seed=7, n_towns=16, n_roads=16, states_grid=(2, 2)
        )
        plan = compile_query(q)
        _, naive_stats = execute(plan, "naive")
        _, box_stats = execute(plan, "boxplan")
        assert box_stats.total_candidates < naive_stats.total_candidates
        assert box_stats.region_ops < naive_stats.region_ops

    def test_boxplan_fewer_region_ops_than_exact(self):
        q, _m = smugglers_query(
            seed=7, n_towns=16, n_roads=16, states_grid=(2, 2)
        )
        plan = compile_query(q)
        _, exact_stats = execute(plan, "exact")
        _, box_stats = execute(plan, "boxplan")
        assert box_stats.region_ops <= exact_stats.region_ops

    def test_stats_accounting(self):
        q, _m = smugglers_query(seed=0, n_towns=6, n_roads=6)
        plan = compile_query(q)
        answers, stats = execute(plan, "boxplan")
        assert stats.mode == "boxplan"
        assert len(stats.steps) == 3
        assert stats.tuples_emitted == len(answers)
        d = stats.as_dict()
        assert d["tuples"] == len(answers)
        assert "steps=(" in stats.summary()
        for s in stats.steps:
            assert 0.0 <= s.filter_ratio <= 1.0


class TestPlanner:
    def test_choose_order_prefers_constant_connected(self):
        q, _m = smugglers_query(seed=0, n_towns=6, n_roads=6)
        q2 = SpatialQuery(
            system=q.system, tables=q.tables, bindings=q.bindings
        )
        order = choose_order(q2)
        # T (T ⊄ C) and R (R ∩ A ≠ ∅) are each directly grounded by the
        # constants; either is a sensible first pick.  B's only
        # constant-grounded constraint (B ⊆ C) is unselective and its
        # table is the largest, so it must not come first.
        assert sorted(order) == ["B", "R", "T"]
        assert order[0] in ("T", "R")

    def test_enumerate_orders(self):
        q, _m = smugglers_query(seed=0, n_towns=4, n_roads=4)
        orders = list(enumerate_orders(q))
        assert len(orders) == 6
        assert ("T", "R", "B") in orders

    def test_estimates_rank_orders(self):
        q, _m = smugglers_query(seed=0, n_towns=12, n_roads=12)
        costs = {o: estimate_order_cost(q, o) for o in enumerate_orders(q)}
        assert len(set(costs.values())) > 1  # estimates discriminate

    def test_best_order_runs(self):
        q, _m = smugglers_query(seed=0, n_towns=6, n_roads=6)
        best = best_order_by_estimate(q)
        assert sorted(best) == ["B", "R", "T"]

    def test_all_orders_same_answers(self):
        q, _m = smugglers_query(
            seed=2, n_towns=8, n_roads=8, states_grid=(2, 2)
        )
        reference = None
        for order in enumerate_orders(q):
            plan = compile_query(q, order=order)
            answers, _ = execute(plan, "boxplan")
            got = answers_as_oid_tuples(answers, ["T", "R", "B"])
            if reference is None:
                reference = got
            assert got == reference, f"order {order} disagrees"


class TestContainmentChain:
    def test_chain_modes_agree(self):
        q = containment_chain_query(n_per_table=20, depth=3, seed=4)
        plan = compile_query(q)
        got = {}
        for mode in ["naive", "boxplan"]:
            answers, _ = execute(plan, mode)
            got[mode] = answers_as_oid_tuples(answers, ["x1", "x2", "x3"])
        assert got["naive"] == got["boxplan"]
