"""Tests for the Figure 3 point-mapping reduction and the z-order join."""

import random

import pytest
from hypothesis import given, settings

from repro.boxes import Box, BoxQuery, EMPTY_BOX
from repro.spatial import (
    SpatialTable,
    ZGrid,
    ZOrderIndex,
    compile_range,
    figure3_rectangle,
    interleave,
    matches_via_point,
    zorder_join,
    zorder_overlap_query,
)
from repro.algebra import Region
from tests.strategies import nonempty_boxes

UNIVERSE = Box((0.0, 0.0), (64.0, 64.0))


def _grid_boxes(n, seed=0, span=60.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        lo = (rng.randrange(0, int(span)), rng.randrange(0, int(span)))
        size = (rng.randrange(1, 8), rng.randrange(1, 8))
        out.append(Box(lo, (lo[0] + size[0], lo[1] + size[1])))
    return out


class TestCompileRange:
    """Figure 3: the three constraint forms become ONE orthogonal range."""

    def test_inside_constraint(self):
        q = BoxQuery(inside=Box((0, 0), (4, 4)))
        pr = compile_range(q, 2)
        assert pr.contains(Box((1, 1), (2, 2)).to_point())
        assert not pr.contains(Box((1, 1), (5, 5)).to_point())

    def test_covers_constraint(self):
        q = BoxQuery(covers=Box((1, 1), (2, 2)))
        pr = compile_range(q, 2)
        assert pr.contains(Box((0, 0), (4, 4)).to_point())
        assert not pr.contains(Box((1.5, 0), (4, 4)).to_point())

    def test_overlap_constraint(self):
        q = BoxQuery(overlap=(Box((2, 2), (4, 4)),))
        pr = compile_range(q, 2)
        assert pr.contains(Box((3, 3), (5, 5)).to_point())
        assert not pr.contains(Box((4, 4), (6, 6)).to_point())  # touching

    def test_empty_overlap_gives_empty_range(self):
        q = BoxQuery(overlap=(EMPTY_BOX,))
        assert compile_range(q, 2).is_empty()

    def test_clip_finite(self):
        q = BoxQuery(overlap=(Box((2, 2), (4, 4)),))
        pr = compile_range(q, 2).clip_finite(UNIVERSE)
        assert all(v != float("-inf") for v in pr.lo)
        assert all(v != float("inf") for v in pr.hi)

    @given(nonempty_boxes(grid=1), nonempty_boxes(grid=1), nonempty_boxes(grid=1), nonempty_boxes(grid=1))
    @settings(max_examples=200)
    def test_point_mapping_equals_direct_evaluation(self, target, a, b, c):
        """The reduction is exact on integer-grid boxes: BoxQuery.matches
        agrees with membership of the 2k-point in the compiled range."""
        q = BoxQuery(inside=a, covers=b, overlap=(c,))
        assert matches_via_point(q, target) == q.matches(target)

    @given(nonempty_boxes(grid=1), nonempty_boxes(grid=1))
    @settings(max_examples=120)
    def test_single_constraints_roundtrip(self, target, probe):
        for q in [
            BoxQuery(inside=probe),
            BoxQuery(covers=probe),
            BoxQuery(overlap=(probe,)),
        ]:
            assert matches_via_point(q, target) == q.matches(target)


class TestFigure3:
    def test_rectangle_semantics(self):
        # a ⊑ x, x ⊑ b, x ⊓ c ≠ ∅ over the line.
        pr = figure3_rectangle(a=(4, 5), b=(0, 10), c=(7, 9))
        # x = [3, 8): contains [4,5), inside [0,10), overlaps [7,9).
        assert pr.contains((3.0, 8.0))
        # x = [4, 6): fails the overlap with [7,9).
        assert not pr.contains((4.0, 6.0))
        # x = [5, 8): fails to cover [4,5).
        assert not pr.contains((5.0, 8.0))
        # x = [-1, 11): not inside [0,10).
        assert not pr.contains((-1.0, 11.0))

    def test_rectangle_is_2d(self):
        pr = figure3_rectangle((4, 5), (0, 10), (7, 9))
        assert pr.dim == 2


class TestTableBackendsAgree:
    """The same BoxQuery must return the same rows on every backend."""

    def _tables(self):
        tables = {}
        for kind in ("rtree", "grid", "scan"):
            tables[kind] = SpatialTable(
                f"t_{kind}", dim=2, index=kind, universe=UNIVERSE
            )
        for i, b in enumerate(_grid_boxes(250, seed=4)):
            for t in tables.values():
                t.insert(i, Region.from_box(b))
        return tables

    def test_agreement_on_random_queries(self):
        tables = self._tables()
        rng = random.Random(9)
        for trial in range(30):
            lo = (rng.randrange(0, 50), rng.randrange(0, 50))
            probe = Box(lo, (lo[0] + rng.randrange(1, 12), lo[1] + rng.randrange(1, 12)))
            shape = rng.choice(["overlap", "inside", "combined"])
            if shape == "overlap":
                q = BoxQuery(overlap=(probe,))
            elif shape == "inside":
                q = BoxQuery(inside=probe)
            else:
                q = BoxQuery(
                    inside=Box((0, 0), (40, 40)), overlap=(probe,)
                )
            results = {
                kind: {o.oid for o in t.range_query(q)}
                for kind, t in tables.items()
            }
            assert results["rtree"] == results["scan"], f"trial {trial}"
            assert results["grid"] == results["scan"], f"trial {trial}"

    def test_probe_counters(self):
        tables = self._tables()
        t = tables["rtree"]
        t.reset_stats()
        t.range_query(BoxQuery(overlap=(Box((0, 0), (5, 5)),)))
        assert t.probes == 1
        assert t.index_stats()["kind"] == "rtree"


class TestZOrder:
    def test_interleave(self):
        # 2-D: x=0b11, y=0b01 -> bits x0,y0,x1,y1 = 1,1,1,0 -> 0b0111.
        assert interleave((0b11, 0b01), bits=2) == 0b0111

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            ZGrid(EMPTY_BOX)
        with pytest.raises(ValueError):
            ZGrid(UNIVERSE, levels=0)

    def test_decompose_full_universe_is_one_range(self):
        grid = ZGrid(UNIVERSE, levels=4)
        ranges = grid.decompose(UNIVERSE)
        assert len(ranges) == 1
        assert ranges[0].lo == 0
        assert ranges[0].hi == grid.cell_count()

    def test_decompose_small_box(self):
        grid = ZGrid(UNIVERSE, levels=5)
        ranges = grid.decompose(Box((0.0, 0.0), (2.0, 2.0)))
        assert ranges
        total = sum(r.hi - r.lo for r in ranges)
        assert total >= 1
        # Ranges are sorted and non-adjacent after coalescing.
        for r1, r2 in zip(ranges, ranges[1:]):
            assert r1.hi < r2.lo

    def test_decompose_outside_universe(self):
        grid = ZGrid(UNIVERSE, levels=4)
        assert grid.decompose(Box((100.0, 100.0), (110.0, 110.0))) == []
        assert grid.decompose(EMPTY_BOX) == []

    def test_join_agrees_with_nested_loop(self):
        grid = ZGrid(UNIVERSE, levels=6)
        left_boxes = _grid_boxes(60, seed=1)
        right_boxes = _grid_boxes(60, seed=2)
        left = ZOrderIndex(grid)
        right = ZOrderIndex(grid)
        for i, b in enumerate(left_boxes):
            left.insert(b, ("L", i))
        for j, b in enumerate(right_boxes):
            right.insert(b, ("R", j))
        got = {
            (a[1], b[1]) for a, b in zorder_join(left, right, exact=True)
        }
        expected = {
            (i, j)
            for i, lb in enumerate(left_boxes)
            for j, rb in enumerate(right_boxes)
            if lb.overlaps(rb)
        }
        assert got == expected

    def test_overlap_query_agrees_with_scan(self):
        grid = ZGrid(UNIVERSE, levels=6)
        items = _grid_boxes(120, seed=3)
        index = ZOrderIndex(grid)
        for i, b in enumerate(items):
            index.insert(b, i)
        probe = Box((10.0, 10.0), (20.0, 20.0))
        got = set(zorder_overlap_query(index, probe, exact=True))
        expected = {i for i, b in enumerate(items) if b.overlaps(probe)}
        assert got == expected


class TestZOrderEdgeCases:
    """Satellite coverage: non-square universes, degenerate one-cell
    boxes, and the coarsest (single-level) curves."""

    RECT = Box((0.0, 0.0), (64.0, 16.0))  # 4:1 aspect, non-square cells

    def test_non_square_universe_cell_geometry(self):
        grid = ZGrid(self.RECT, levels=3)
        # Full cover is still one contiguous range; cells are 8x2.
        ranges = grid.decompose(self.RECT)
        assert len(ranges) == 1 and ranges[0].hi == grid.cell_count()
        one_cell = grid.decompose(Box((0.0, 0.0), (8.0, 2.0)))
        assert len(one_cell) == 1
        assert one_cell[0].hi - one_cell[0].lo == 1

    def test_non_square_join_agrees_with_nested_loop(self):
        grid = ZGrid(self.RECT, levels=4)
        rng = random.Random(5)
        lefts, rights = [], []
        for n in range(40):
            lo = (rng.uniform(0, 60), rng.uniform(0, 14))
            lefts.append(Box(lo, (lo[0] + rng.uniform(1, 6), lo[1] + rng.uniform(0.5, 2))))
            lo = (rng.uniform(0, 60), rng.uniform(0, 14))
            rights.append(Box(lo, (lo[0] + rng.uniform(1, 6), lo[1] + rng.uniform(0.5, 2))))
        left = ZOrderIndex(grid)
        right = ZOrderIndex(grid)
        for i, b in enumerate(lefts):
            left.insert(b, i)
        for j, b in enumerate(rights):
            right.insert(b, j)
        got = set(zorder_join(left, right, exact=True))
        want = {
            (i, j)
            for i, lb in enumerate(lefts)
            for j, rb in enumerate(rights)
            if lb.overlaps(rb)
        }
        assert got == want

    def test_degenerate_one_cell_boxes(self):
        """Boxes smaller than (or equal to) one finest cell decompose to
        a single width-1 z-interval, wherever they sit."""
        grid = ZGrid(UNIVERSE, levels=4)  # 16x16 cells of 4x4
        tiny_inside = grid.decompose(Box((5.0, 5.0), (6.0, 6.0)))
        assert len(tiny_inside) == 1
        assert tiny_inside[0].hi - tiny_inside[0].lo == 1
        exact_cell = grid.decompose(Box((4.0, 8.0), (8.0, 12.0)))
        assert len(exact_cell) == 1
        assert exact_cell[0].hi - exact_cell[0].lo == 1
        # A sliver straddling a cell boundary covers exactly two cells.
        straddle = grid.decompose(Box((3.9, 5.0), (4.1, 6.0)))
        assert sum(r.hi - r.lo for r in straddle) == 2

    def test_single_level_curve(self):
        """levels=1 is the coarsest legal curve (2 cells per dimension);
        level 0 (a 1-cell "curve") is rejected by validation."""
        with pytest.raises(ValueError):
            ZGrid(UNIVERSE, levels=0)
        grid = ZGrid(UNIVERSE, levels=1)
        assert grid.cell_count() == 4
        quadrant = grid.decompose(Box((0.0, 0.0), (32.0, 32.0)))
        assert len(quadrant) == 1
        assert quadrant[0].hi - quadrant[0].lo == 1
        everything = grid.decompose(Box((1.0, 1.0), (63.0, 63.0)))
        assert sum(r.hi - r.lo for r in everything) == 4
        # The coarse join still agrees with the nested loop (more false
        # candidates, same verified pairs).
        index = ZOrderIndex(grid)
        items = _grid_boxes(30, seed=9)
        for i, b in enumerate(items):
            index.insert(b, i)
        probe = Box((20.0, 20.0), (40.0, 40.0))
        got = set(zorder_overlap_query(index, probe, exact=True))
        assert got == {i for i, b in enumerate(items) if b.overlaps(probe)}
