"""Tests for ``proj`` — Theorems 2, 4, 5, 7, 8, 9 of the paper.

The key properties:

* soundness on EVERY carrier: if an assignment (with some value for x)
  satisfies S, then the x-free part satisfies proj(S, x);
* exactness on atomless carriers: if an assignment satisfies proj(S, x),
  a value for x can be constructed (choose_value) making S hold;
* non-exactness on atomic carriers (paper Example 1).
"""

from hypothesis import given, settings, strategies as st

from repro.algebra import BitVectorAlgebra, IntervalAlgebra
from repro.boolean import FALSE, Var, equivalent
from repro.constraints import (
    EquationalSystem,
    eliminate_to_ground,
    exists_equation,
    nonclosure_example,
    project,
    project_disequation,
    solve_for,
)
from repro.constraints.witness import choose_value
from tests.strategies import BITS8, LINE, bitvec_elements, interval_elements
from tests.test_boolean_semantics import formulas


class TestExistsEquation:
    """Theorem 2: positive systems are closed under ∃."""

    def test_boole_formula(self):
        x, y = Var("x"), Var("y")
        f = (x & ~y) | (~x & y)  # x != y as an equation
        assert equivalent(exists_equation(f, "x"), y & ~y | ~y & y)

    @given(formulas(), bitvec_elements(), bitvec_elements(), bitvec_elements())
    @settings(max_examples=80)
    def test_exists_semantics_bitvec(self, f, a, b, c):
        """∃x (f=0) holds iff f0&f1 = 0, checked by brute force over a
        small atomic algebra (Theorem 2 holds in EVERY Boolean algebra)."""
        alg = BitVectorAlgebra(3)
        names = sorted(f.variables())
        if "x" not in names:
            names = ["x"] + names
        values = [a & 7, b & 7, c & 7, (a ^ b) & 7, (b ^ c) & 7]
        others = [n for n in names if n != "x"]
        env = dict(zip(others, values[: len(others)]))
        from repro.boolean import evaluate

        eliminated = exists_equation(f, "x")
        lhs = alg.is_zero(evaluate(eliminated, alg, env))
        rhs = any(
            alg.is_zero(evaluate(f, alg, {**env, "x": xv}))
            for xv in alg.elements()
        )
        assert lhs == rhs


class TestProjectDisequation:
    def test_passthrough_when_x_absent(self):
        f = Var("x") & Var("y")
        g = Var("z")
        assert project_disequation(f, g, "x") == g

    def test_theorem4_shape(self):
        # S: f=0 ∧ g≠0 with f = x&~t | ~x&s, g = x&p | ~x&q
        s, t, p, q, x = (Var(v) for v in "stpqx")
        f = (x & ~t) | (~x & s)
        g = (x & p) | (~x & q)
        got = project_disequation(f, g, "x")
        assert equivalent(got, (t & p) | (~s & q))


def _random_system(draw_formulas):
    f, g1, g2 = draw_formulas
    return EquationalSystem(f, [g1, g2])


class TestSoundnessEverywhere:
    """Theorem 9 direction: ∃x S ⟹ proj(S, x), on any carrier."""

    @given(
        formulas(max_leaves=6),
        formulas(max_leaves=6),
        formulas(max_leaves=6),
        st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_bitvec_soundness(self, f, g1, g2, data):
        alg = BITS8
        system = EquationalSystem(f, [g1, g2])
        names = sorted(system.variables() | {"x"})
        env = {
            n: data.draw(bitvec_elements(), label=f"val[{n}]") for n in names
        }
        if not system.holds(alg, env):
            return
        projected = project(system, "x")
        env_wo_x = {n: v for n, v in env.items() if n != "x"}
        env_wo_x["x"] = 0  # proj must not mention x; value irrelevant
        assert "x" not in projected.variables()
        assert projected.holds(alg, env_wo_x)

    @given(
        formulas(max_leaves=5),
        formulas(max_leaves=5),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_soundness(self, f, g1, data):
        alg = LINE
        system = EquationalSystem(f, [g1])
        names = sorted(system.variables() | {"x"})
        env = {
            n: data.draw(interval_elements(), label=f"val[{n}]")
            for n in names
        }
        if not system.holds(alg, env):
            return
        projected = project(system, "x")
        assert projected.holds(alg, env)


class TestExactnessAtomless:
    """Theorems 7/8: over atomless carriers proj is exact — a value for x
    can be constructed whenever the projected system holds."""

    @given(
        formulas(max_leaves=5),
        formulas(max_leaves=5),
        formulas(max_leaves=5),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_interval_completeness(self, f, g1, g2, data):
        alg = LINE
        system = EquationalSystem(f, [g1, g2])
        projected = project(system, "x")
        names = sorted(projected.variables() | system.variables() - {"x"})
        env = {
            n: data.draw(interval_elements(), label=f"val[{n}]")
            for n in names
        }
        if not projected.holds(alg, env):
            return
        solved, passed = solve_for(system, "x")
        value = choose_value(alg, solved, env)
        full_env = dict(env)
        full_env["x"] = value
        assert system.holds(alg, full_env), (
            f"prefix satisfies proj but chosen x fails:\n{system}\n"
            f"value={value!r}"
        )


class TestNonClosure:
    """Paper Example 1: proj is strictly weaker on atomic algebras."""

    def test_example1_projection_is_y_nonzero(self):
        norm = nonclosure_example().normalize()
        projected = project(norm, "x").subsume_disequations()
        assert projected.equation == FALSE
        assert projected.disequations == (Var("y"),)

    def test_example1_gap_on_two_valued(self):
        # In B2 (y an atom): proj holds with y=1, but no x satisfies S.
        from repro.algebra import TwoValuedAlgebra

        alg = TwoValuedAlgebra()
        norm = nonclosure_example().normalize()
        projected = project(norm, "x")
        assert projected.holds(alg, {"y": True, "x": False})
        assert not any(
            norm.holds(alg, {"y": True, "x": xv}) for xv in [False, True]
        )

    def test_example1_no_gap_on_atomless(self):
        # Over intervals any nonzero y splits, so S IS satisfiable.
        alg = IntervalAlgebra(0, 1)
        y = alg.interval(0, 1)
        lo, hi = alg.split(y)
        norm = nonclosure_example().normalize()
        assert norm.holds(alg, {"y": y, "x": lo})

    def test_example1_gap_requires_atom(self):
        # Over bitvectors: satisfiable iff y has >= 2 bits.
        alg = BitVectorAlgebra(4)
        norm = nonclosure_example().normalize()

        def sat_with(yv):
            return any(
                norm.holds(alg, {"y": yv, "x": xv}) for xv in alg.elements()
            )

        assert not sat_with(0b0001)  # atom: unsatisfiable
        assert sat_with(0b0011)  # two atoms: satisfiable


class TestEliminateToGround:
    def test_all_variables_removed(self):
        x, y = Var("x"), Var("y")
        system = EquationalSystem(x & ~y, [x & y])
        ground = eliminate_to_ground(system)
        assert ground.variables() == frozenset()

    def test_projection_chain_order_invariance_semantic(self):
        # Different elimination orders give equivalent ground systems.
        from repro.constraints import project_all, satisfiable_atomless

        x, y, z = Var("x"), Var("y"), Var("z")
        system = EquationalSystem(x & ~y | y & ~z, [x & z, ~x & y])
        g1 = project_all(system, ["x", "y", "z"])
        g2 = project_all(system, ["z", "y", "x"])
        assert satisfiable_atomless(
            EquationalSystem(g1.equation, g1.disequations)
        ) == satisfiable_atomless(
            EquationalSystem(g2.equation, g2.disequations)
        )
