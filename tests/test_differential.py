"""Differential property tests: kNN and aggregation vs brute force.

The new workload families both have trivially correct references —
sort-all-rows-by-distance for kNN, a Python fold over the naive answer
set for aggregation — so every optimized path is checked for *equality*
against them, across execution mode × join strategy × partition count
(the four-mode answer-set equality pattern extended to the new
subsystem).  Workloads come from the shared seeded factory in
``tests/conftest.py``; CI replays this module under a seed matrix.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.boxes import Box
from repro.engine import (
    MODES,
    AggregateSpec,
    KNNStep,
    SpatialQuery,
    answers_as_oid_tuples,
    build_physical_plan,
    compile_query,
    execute,
)
from repro.errors import UnsatisfiableError
from repro.spatial import ColumnStore, forced_backend
from tests.conftest import (
    COLUMNAR_BACKENDS,
    constraint_systems,
    edge_box_queries,
    edge_boxes,
    make_workload,
    random_table,
    shifted_seed,
)

STRATEGIES = (None, "pbsm", "partition", "zorder")


def _knn_reference_oids(table, anchor, k):
    """Brute-force kNN oid set (the deterministic selection)."""
    return {obj.oid for _d, obj in table.nearest_bruteforce(anchor, k)}


# ---------------------------------------------------------------------------
# Index-level: best-first == brute force for every backend and anchor
# ---------------------------------------------------------------------------


@given(
    st.integers(0, 10_000),
    st.integers(1, 40),
    st.booleans(),
)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_table_nearest_equals_bruteforce(seed, k, box_anchor):
    """`SpatialTable.nearest` == the sorted-scan reference for every
    sampled k, anchor (point or box), and dataset — including k > n."""
    rng = random.Random(shifted_seed(seed))
    table = random_table("t", rng, rng.randint(1, 30))
    if box_anchor:
        lo = (rng.uniform(-4, 30), rng.uniform(-4, 30))
        anchor = Box(lo, (lo[0] + rng.uniform(1, 6), lo[1] + rng.uniform(1, 6)))
    else:
        anchor = (rng.uniform(-4, 36), rng.uniform(-4, 36))
    want = table.nearest_bruteforce(anchor, k)
    for access in ("bestfirst", "auto", "scan"):
        got = table.nearest(anchor, k, access=access)
        assert [(round(d, 9), o.oid) for d, o in got] == [
            (round(d, 9), o.oid) for d, o in want
        ], f"access={access} diverged"


# ---------------------------------------------------------------------------
# Query-level: the kNN restriction across mode × strategy × partitions
# ---------------------------------------------------------------------------


@given(
    constraint_systems(),
    st.integers(0, 10_000),
    st.integers(1, 6),
    st.sampled_from(STRATEGIES),
    st.integers(1, 5),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_knn_query_differential(system, seed, k, strategy, n_partitions):
    """A kNN-restricted query returns, in every mode/strategy/partition
    configuration, exactly the plain query's answers whose kNN variable
    lies in the brute-force k-nearest set."""
    tables, bindings = make_workload(seed, system=system)
    if not tables:
        return
    rng = random.Random(shifted_seed(seed) + 1)
    order = sorted(tables)
    variable = rng.choice(order)
    use_ref = len(order) > 1 and rng.random() < 0.5 and variable != order[0]
    if use_ref:
        ref = rng.choice([v for v in order if v < variable])
        knn = KNNStep(variable=variable, k=k, ref=ref)
    else:
        point = (rng.uniform(0, 32), rng.uniform(0, 32))
        knn = KNNStep(variable=variable, k=k, point=point)
    query = SpatialQuery(
        system=system, tables=tables, bindings=bindings, knn=knn
    )
    plain = SpatialQuery(system=system, tables=tables, bindings=bindings)
    try:
        plan = compile_query(query, order=order)
        plain_plan = compile_query(plain, order=order)
    except UnsatisfiableError:
        return

    plain_answers, _ = execute(plain_plan, "naive")
    if use_ref:
        expected = sorted(
            tuple(a[v].oid for v in order)
            for a in plain_answers
            if a[variable].oid
            in _knn_reference_oids(tables[variable], a[knn.ref].box, k)
        )
    else:
        knn_oids = _knn_reference_oids(tables[variable], knn.point, k)
        expected = sorted(
            tuple(a[v].oid for v in order)
            for a in plain_answers
            if a[variable].oid in knn_oids
        )

    for mode in MODES:
        answers, _ = execute(plan, mode)
        got = answers_as_oid_tuples(answers, order)
        assert got == expected, f"mode {mode} diverged for:\n{system}"
    for mode in ("boxplan", "boxonly"):
        pplan = build_physical_plan(
            plan,
            mode,
            estimate=False,
            partitions=n_partitions,
            join_strategy=strategy,
        )
        got = answers_as_oid_tuples(list(pplan.execute_iter()), order)
        assert got == expected, (
            f"{mode}/{strategy}/partitions={n_partitions} diverged"
        )


# ---------------------------------------------------------------------------
# Aggregation: engine fold == Python fold over the naive answer set
# ---------------------------------------------------------------------------


def _python_aggregate(answers, spec):
    """The Python reference: fold the answer dicts directly.

    Mirrors SQL's empty-input rule: an ungrouped aggregate of nothing
    is one row (count 0, min/max None), a grouped one is no rows.
    """
    if not answers and not spec.group_by:
        return {
            (): {
                label: (0 if op == "count" else None)
                for label, (op, _t) in zip(spec.labels(), spec.aggregates)
            }
        }
    groups = {}
    for a in answers:
        key = tuple(a[v].oid for v in spec.group_by)
        acc = groups.setdefault(key, {})
        for label, (op, target) in zip(spec.labels(), spec.aggregates):
            if op == "count":
                acc[label] = acc.get(label, 0) + 1
                continue
            measure = a[target].box.volume()
            if label not in acc:
                acc[label] = measure
            else:
                acc[label] = (
                    min(acc[label], measure)
                    if op == "min"
                    else max(acc[label], measure)
                )
    return {
        key: {
            k: (round(v, 9) if v is not None else None)
            for k, v in acc.items()
        }
        for key, acc in groups.items()
    }


@given(
    constraint_systems(),
    st.integers(0, 10_000),
    st.sampled_from(STRATEGIES),
    st.integers(1, 5),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_aggregate_differential(system, seed, strategy, n_partitions):
    """Aggregate rows equal the Python fold over the naive answers in
    every mode, join strategy, and partition count."""
    tables, bindings = make_workload(seed, system=system)
    if not tables:
        return
    rng = random.Random(shifted_seed(seed) + 2)
    order = sorted(tables)
    target = rng.choice(order)
    group_by = tuple(
        v for v in order if rng.random() < 0.4
    )
    spec = AggregateSpec(
        aggregates=(("count", None), ("min", target), ("max", target)),
        group_by=group_by,
    )
    query = SpatialQuery(
        system=system, tables=tables, bindings=bindings, aggregate=spec
    )
    plain = SpatialQuery(system=system, tables=tables, bindings=bindings)
    try:
        plan = compile_query(query, order=order)
        plain_plan = compile_query(plain, order=order)
    except UnsatisfiableError:
        return

    plain_answers, _ = execute(plain_plan, "naive")
    expected = _python_aggregate(plain_answers, spec)

    def check(rows, label):
        got = {
            tuple(oid for _v, oid in row.group): {
                k: (round(v, 9) if v is not None else None)
                for k, v in row.values.items()
            }
            for row in rows
        }
        assert got == expected, f"{label} diverged for:\n{system}"

    for mode in MODES:
        rows, stats = execute(plan, mode)
        check(rows, f"mode {mode}")
        assert stats.tuples_emitted == len(expected)
    for mode in ("boxplan", "boxonly"):
        pplan = build_physical_plan(
            plan,
            mode,
            estimate=False,
            partitions=n_partitions,
            join_strategy=strategy,
        )
        check(
            list(pplan.execute_iter()),
            f"{mode}/{strategy}/partitions={n_partitions}",
        )


@given(st.integers(0, 10_000), st.booleans())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_box_count_pushdown_differential(seed, use_overlap):
    """The box-level COUNT (exact=False) equals a Python count of the
    rows whose box matches the step's compiled template — on the r-tree
    pushdown path and the scan fallback alike."""
    from repro.constraints import ConstraintSystem, overlaps, subset
    from tests.conftest import random_binding

    rng = random.Random(shifted_seed(seed) + 3)
    bindings = {"P": random_binding(rng)}
    system = ConstraintSystem.build(
        overlaps("u", "P") if use_overlap else subset("u", "P")
    )
    results = {}
    for index in ("rtree", "scan"):
        rng_t = random.Random(shifted_seed(seed) + 4)
        table = random_table("u", rng_t, rng_t.randint(1, 25), index=index)
        query = SpatialQuery(
            system=system,
            tables={"u": table},
            bindings=bindings,
            aggregate=AggregateSpec(exact=False),
        )
        plan = compile_query(query)
        pplan = build_physical_plan(plan, "boxplan", estimate=False)
        rows, _stats = pplan.run()
        assert len(rows) == 1 and rows[0].group == ()
        results[index] = rows[0].values["count"]

        template = plan.steps[0].template
        env = {"P": bindings["P"].bounding_box()}
        box_query = template.instantiate(env, plan.algebra.universe_box)
        expected = sum(
            1
            for obj in table
            if not obj.box.is_empty() and box_query.matches(obj.box)
        )
        assert results[index] == expected, f"{index} pushdown diverged"
    assert results["rtree"] == results["scan"]


# ---------------------------------------------------------------------------
# Columnar kernels: vectorized execution == per-object oracle, per backend
# ---------------------------------------------------------------------------


@given(
    constraint_systems(),
    st.integers(0, 10_000),
    st.sampled_from(STRATEGIES),
    st.integers(1, 5),
    st.sampled_from(("rtree", "scan", "grid")),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_vectorized_execution_differential(
    system, seed, strategy, n_partitions, index
):
    """Vectorized plans return exactly the per-object plans' answers in
    every mode × join strategy × partition count × index backend, under
    both columnar backends.  This drives every engine-level kernel:
    batched scan filters, columnar R-tree descent, the PBSM tile sweep,
    partition-pruned batch matching, and batched z-order keys."""
    tables, bindings = make_workload(seed, system=system, index=index)
    if not tables:
        return
    order = sorted(tables)
    query = SpatialQuery(system=system, tables=tables, bindings=bindings)
    try:
        plan = compile_query(query, order=order)
    except UnsatisfiableError:
        return
    for mode in ("boxplan", "boxonly"):
        with forced_backend("off"):
            oracle_plan = build_physical_plan(
                plan,
                mode,
                estimate=False,
                partitions=n_partitions,
                join_strategy=strategy,
            )
            expected = answers_as_oid_tuples(
                list(oracle_plan.execute_iter()), order
            )
            assert oracle_plan.stats().vectorized_batches == 0
        for backend in COLUMNAR_BACKENDS:
            with forced_backend(backend):
                pplan = build_physical_plan(
                    plan,
                    mode,
                    estimate=False,
                    partitions=n_partitions,
                    join_strategy=strategy,
                    vectorize=True,
                )
                got = answers_as_oid_tuples(
                    list(pplan.execute_iter()), order
                )
            assert got == expected, (
                f"{mode}/{strategy}/partitions={n_partitions}/"
                f"{index}/{backend} diverged for:\n{system}"
            )


SHARD_STRATEGIES = (None, "shardscan", "shardjoin")


@given(
    constraint_systems(),
    st.integers(0, 10_000),
    st.sampled_from(SHARD_STRATEGIES),
    st.integers(1, 6),
    st.sampled_from((0, 2)),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_sharded_execution_differential(
    system, seed, strategy, n_shards, workers
):
    """Sharded plans return exactly the unsharded serial plans' answers
    in every box mode × shard strategy (auto, shard scan, coordinator
    join) × shard count × worker count, on both the in-memory and the
    bounded-memory spill paths — the scale-out layer may change the
    wall clock, never the answer stream."""
    tables, bindings = make_workload(seed, system=system)
    if not tables:
        return
    order = sorted(tables)
    query = SpatialQuery(system=system, tables=tables, bindings=bindings)
    try:
        plan = compile_query(query, order=order)
    except UnsatisfiableError:
        return
    for mode in ("boxplan", "boxonly"):
        reference = answers_as_oid_tuples(
            list(build_physical_plan(plan, mode).execute_iter()), order
        )
        for spill in (None, 8):
            pplan = build_physical_plan(
                plan,
                mode,
                shards=n_shards,
                join_strategy=strategy,
                parallel=workers,
                spill=spill,
            )
            got = answers_as_oid_tuples(
                list(pplan.execute_iter()), order
            )
            assert got == reference, (
                f"{mode}/{strategy}/shards={n_shards}/"
                f"workers={workers}/spill={spill} diverged "
                f"for:\n{system}"
            )


@given(
    st.lists(edge_boxes(), min_size=1, max_size=30),
    edge_box_queries(),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_columnar_match_oracle_edge_cases(boxes, query):
    """The batched box filter admits exactly the per-object oracle's
    rows on edge-case inputs — degenerate/point boxes, inverted
    (empty) intervals, unbounded query sides, duplicate coordinates —
    under both backends, on the full-store and candidate-subset paths."""
    oracle = [
        i
        for i, b in enumerate(boxes)
        if not b.is_empty() and query.matches(b)
    ]
    hits = set(oracle)
    candidates = list(range(0, len(boxes), 2))
    want_subset = [p for p, i in enumerate(candidates) if i in hits]
    for backend in COLUMNAR_BACKENDS:
        with forced_backend(backend):
            store = ColumnStore(2)
            for i, b in enumerate(boxes):
                store.append(b, i)
            assert store.match_positions(query) == oracle, backend
            assert (
                store.match_positions(query, candidates=candidates)
                == want_subset
            ), backend
            assert store.match_rows(query) == oracle, backend


@given(st.integers(0, 10_000), st.integers(1, 12), st.booleans())
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_vectorized_nearest_differential(seed, k, box_anchor):
    """`SpatialTable.nearest` returns bit-identical distance/oid
    rankings with vectorized kernels on and off, for point and box
    anchors, on indexed and scan tables, under both backends."""
    rng = random.Random(shifted_seed(seed) + 5)
    if box_anchor:
        lo = (rng.uniform(-4, 30), rng.uniform(-4, 30))
        anchor = Box(
            lo, (lo[0] + rng.uniform(1, 6), lo[1] + rng.uniform(1, 6))
        )
    else:
        anchor = (rng.uniform(-4, 36), rng.uniform(-4, 36))
    for index in ("rtree", "scan"):
        rng_t = random.Random(shifted_seed(seed) + 6)
        table = random_table("t", rng_t, rng_t.randint(1, 30), index=index)
        with forced_backend("off"):
            want = table.nearest(anchor, k, vectorize=False)
        for backend in COLUMNAR_BACKENDS:
            with forced_backend(backend):
                got = table.nearest(anchor, k, vectorize=True)
            assert [(d, o.oid) for d, o in got] == [
                (d, o.oid) for d, o in want
            ], f"{index}/{backend} diverged"


# ---------------------------------------------------------------------------
# Delta overlay: staged and repacked tables answer exactly like fresh ones
# ---------------------------------------------------------------------------


#: Physical layouts the delta differential sweeps: serial, partitioned
#: (threaded PBSM), and sharded — including the bounded-memory spill
#: and the process-pool shared-memory paths.
DELTA_LAYOUTS = (
    {},
    {"partitions": 3, "join_strategy": "pbsm"},
    {"partitions": 3, "join_strategy": "pbsm", "parallel": 2},
    {"shards": 3, "join_strategy": "shardscan"},
    {"shards": 3, "join_strategy": "shardjoin", "spill": 8},
    {
        "shards": 3,
        "join_strategy": "shardjoin",
        "parallel": 2,
        "parallel_kind": "process",
    },
)


def _staged_copy(table, rng):
    """The same live rows as ``table``, but half of them staged in a
    write delta, plus a couple of tombstoned ghost rows — answers must
    be indistinguishable from the directly built original."""
    from repro.algebra import Region
    from repro.spatial import SpatialTable

    from tests.conftest import UNIVERSE

    rows = list(table)
    split = len(rows) // 2
    copy = SpatialTable(
        table.name, table.dim, index=table.index_kind, universe=table.universe
    )
    for obj in rows[:split]:
        copy.insert(obj.oid, obj.region)
    ghosts = []
    for j in range(2):
        lo = (rng.uniform(0, 24), rng.uniform(0, 24))
        oid = f"ghost-{j}"
        copy.insert(
            oid,
            Region.from_box(
                Box(lo, (lo[0] + 6.0, lo[1] + 6.0)).meet(UNIVERSE)
            ),
        )
        ghosts.append(oid)
    for obj in rows[split:]:
        copy.stage_insert(obj.oid, obj.region)
    for oid in ghosts:
        copy.delete(oid)
    return copy


@given(
    constraint_systems(),
    st.integers(0, 10_000),
    st.integers(0, len(DELTA_LAYOUTS) - 1),
)
@settings(
    max_examples=18,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_delta_staged_execution_differential(system, seed, layout_index):
    """A delta-staged table (half its rows in the write delta, ghosts
    tombstoned) and its post-repack form return exactly the fresh
    table's answer sets, in every box mode x physical layout (serial,
    partitioned, sharded, spilled, process-pool) x columnar backend."""
    layout = DELTA_LAYOUTS[layout_index]
    tables, bindings = make_workload(seed, system=system)
    if not tables:
        return
    order = sorted(tables)
    rng = random.Random(shifted_seed(seed) + 7)
    staged = {name: _staged_copy(t, rng) for name, t in tables.items()}
    repacked = {name: _staged_copy(t, rng) for name, t in tables.items()}
    for t in repacked.values():
        t.repack()
        assert not t.delta_pending
    for name, t in staged.items():
        assert t.delta_pending, name  # the overlay path is actually hit
    variants = {"fresh": tables, "staged": staged, "repacked": repacked}
    for mode in ("boxplan", "boxonly"):
        reference = None
        for vname, vtables in variants.items():
            query = SpatialQuery(
                system=system, tables=vtables, bindings=bindings
            )
            try:
                plan = compile_query(query, order=order)
            except UnsatisfiableError:
                return
            for backend in COLUMNAR_BACKENDS + ("off",):
                with forced_backend(backend):
                    pplan = build_physical_plan(plan, mode, **layout)
                    got = answers_as_oid_tuples(
                        list(pplan.execute_iter()), order
                    )
                if reference is None:
                    reference = got
                assert got == reference, (
                    f"{mode}/{vname}/{backend}/layout={layout} diverged "
                    f"for:\n{system}"
                )
