"""Randomized integration testing: the optimizer is answer-preserving.

The single most important property of the whole pipeline: for ANY
constraint system, tables and retrieval order, the optimized box plan
returns exactly the answers of the naive cross-product evaluation.
Hypothesis generates random systems over random little databases drawn
from the shared seeded workload factory (``tests/conftest.py``).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engine import (
    SpatialQuery,
    answers_as_oid_tuples,
    compile_query,
    execute,
)
from repro.errors import UnsatisfiableError
from tests.conftest import constraint_systems, make_workload


@given(constraint_systems(), st.integers(0, 10_000))
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_boxplan_equals_naive_on_random_queries(system, seed):
    tables, bindings = make_workload(seed, system=system)
    if not tables:
        return
    query = SpatialQuery(system=system, tables=tables, bindings=bindings)
    order = sorted(tables)
    try:
        plan = compile_query(query, order=order)
    except UnsatisfiableError:
        # Compiler proved no answers; verify against naive evaluation.
        plan = compile_query(query, order=order, check_ground=False)
        naive_answers, _ = execute(plan, "naive")
        assert naive_answers == []
        return
    for mode in ("boxplan", "exact", "boxonly"):
        answers, _ = execute(plan, mode)
        naive_answers, _ = execute(plan, "naive")
        assert answers_as_oid_tuples(answers, order) == (
            answers_as_oid_tuples(naive_answers, order)
        ), f"mode {mode} diverged for system:\n{system}"


@given(constraint_systems(), st.integers(0, 10_000))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_streaming_equals_batch_on_random_queries(system, seed):
    from repro.engine import execute_iter

    tables, bindings = make_workload(seed, system=system, sizes=(2, 4))
    if not tables:
        return
    query = SpatialQuery(system=system, tables=tables, bindings=bindings)
    order = sorted(tables)
    try:
        plan = compile_query(query, order=order)
    except UnsatisfiableError:
        return
    batch, _ = execute(plan, "boxplan")
    streamed = list(execute_iter(plan, "boxplan"))
    assert answers_as_oid_tuples(streamed, order) == (
        answers_as_oid_tuples(batch, order)
    )


@given(
    constraint_systems(),
    st.integers(0, 10_000),
    st.integers(1, 7),
    st.sampled_from(["pbsm", "partition", "zorder"]),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_partitioned_plans_agree_with_all_modes(
    system, seed, n_partitions, strategy
):
    """The partitioned-plan extension of the four-mode equality: for any
    partition count and join strategy, serial and parallel partitioned
    plans return exactly the answer set of the classic modes, with
    boundary duplicates deduplicated — and the parallel stream is
    bit-identical to the serial one."""
    from repro.engine import build_physical_plan

    tables, bindings = make_workload(seed, system=system)
    if not tables:
        return
    query = SpatialQuery(system=system, tables=tables, bindings=bindings)
    order = sorted(tables)
    try:
        plan = compile_query(query, order=order)
    except UnsatisfiableError:
        return
    reference, _ = execute(plan, "naive")
    reference_t = answers_as_oid_tuples(reference, order)
    for mode in ("boxplan", "boxonly"):
        streams = {}
        for parallel in (0, 3):
            pplan = build_physical_plan(
                plan,
                mode,
                estimate=False,
                partitions=n_partitions,
                parallel=parallel,
                join_strategy=strategy,
            )
            answers = list(pplan.execute_iter())
            streams[parallel] = [
                tuple(a[v].oid for v in order) for a in answers
            ]
            got = answers_as_oid_tuples(answers, order)
            assert got == reference_t, (
                f"{mode}/{strategy}/partitions={n_partitions}/"
                f"parallel={parallel} diverged for:\n{system}"
            )
            assert len(streams[parallel]) == len(set(streams[parallel])), (
                "boundary duplicates leaked"
            )
        assert streams[3] == streams[0], "parallel stream != serial stream"


@given(
    constraint_systems(),
    st.integers(0, 10_000),
    st.integers(1, 4),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_all_modes_agree_with_and_without_limit(system, seed, k):
    """The operator engine: all four modes are plan configurations over
    the same operator set, so answer sets must coincide — and a
    ``limit=k`` stream must be a prefix of the unlimited stream (plans
    are deterministic for fixed tables and order)."""
    from repro.engine import MODES, execute_iter

    tables, bindings = make_workload(seed, system=system, sizes=(2, 4))
    if not tables:
        return
    query = SpatialQuery(system=system, tables=tables, bindings=bindings)
    order = sorted(tables)
    try:
        plan = compile_query(query, order=order)
    except UnsatisfiableError:
        return
    reference = None
    for mode in MODES:
        answers, stats = execute(plan, mode)
        got = answers_as_oid_tuples(answers, order)
        if reference is None:
            reference = got
        assert got == reference, f"mode {mode} diverged for:\n{system}"
        assert stats.tuples_emitted == len(got)
        full = [
            tuple(a[v].oid for v in order)
            for a in execute_iter(plan, mode)
        ]
        limited = [
            tuple(a[v].oid for v in order)
            for a in execute_iter(plan, mode, limit=k)
        ]
        assert limited == full[:k], f"mode {mode} limit={k} not a prefix"
