"""Tests for the R-tree and grid file, incl. backend agreement."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import Region
from repro.boxes import Box, BoxQuery, EMPTY_BOX
from repro.errors import DimensionMismatchError
from repro.spatial import GridFile, RTree, SpatialTable


def _random_boxes(n, seed=0, span=100.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        lo = (rng.uniform(0, span), rng.uniform(0, span))
        size = (rng.uniform(0.5, 10), rng.uniform(0.5, 10))
        out.append(Box(lo, (lo[0] + size[0], lo[1] + size[1])))
    return out


class TestRTreeStructure:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RTree(max_entries=1)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=0)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_insert_grows_and_invariants_hold(self):
        tree = RTree(max_entries=4)
        for i, b in enumerate(_random_boxes(200)):
            tree.insert(b, i)
        assert len(tree) == 200
        tree.check_invariants()
        assert tree.height() >= 3

    def test_all_entries_roundtrip(self):
        tree = RTree(max_entries=4)
        items = _random_boxes(50)
        for i, b in enumerate(items):
            tree.insert(b, i)
        got = sorted(v for _b, v in tree.all_entries())
        assert got == list(range(50))

    def test_delete(self):
        tree = RTree(max_entries=4)
        items = _random_boxes(60)
        for i, b in enumerate(items):
            tree.insert(b, i)
        for i in range(0, 60, 2):
            assert tree.delete(items[i], i)
        assert len(tree) == 30
        tree.check_invariants()
        got = sorted(v for _b, v in tree.all_entries())
        assert got == list(range(1, 60, 2))
        assert not tree.delete(items[0], 0)  # already gone

    def test_delete_to_empty(self):
        tree = RTree(max_entries=4)
        items = _random_boxes(20)
        for i, b in enumerate(items):
            tree.insert(b, i)
        for i, b in enumerate(items):
            assert tree.delete(b, i)
        assert len(tree) == 0
        assert list(tree.all_entries()) == []


class TestRTreeSearch:
    def setup_method(self):
        self.items = _random_boxes(300, seed=7)
        self.tree = RTree(max_entries=6)
        for i, b in enumerate(self.items):
            self.tree.insert(b, i)

    def _scan(self, query):
        return {
            i for i, b in enumerate(self.items) if query.matches(b)
        }

    def test_overlap_query(self):
        q = BoxQuery(overlap=(Box((20, 20), (40, 40)),))
        got = {v for _b, v in self.tree.search(q)}
        assert got == self._scan(q)
        assert got  # non-trivial

    def test_containment_query(self):
        q = BoxQuery(inside=Box((0, 0), (50, 50)))
        got = {v for _b, v in self.tree.search(q)}
        assert got == self._scan(q)

    def test_covers_query(self):
        target = self.items[13]
        inner = Box(
            tuple(c + 0.1 for c in target.lo),
            tuple(c - 0.1 for c in target.hi),
        )
        q = BoxQuery(covers=inner)
        got = {v for _b, v in self.tree.search(q)}
        assert 13 in got
        assert got == self._scan(q)

    def test_combined_query(self):
        q = BoxQuery(
            inside=Box((0, 0), (60, 60)),
            overlap=(Box((10, 10), (30, 30)), Box((5, 5), (50, 50))),
        )
        got = {v for _b, v in self.tree.search(q)}
        assert got == self._scan(q)

    def test_unsatisfiable_short_circuits(self):
        self.tree.stats.reset()
        q = BoxQuery(overlap=(EMPTY_BOX,))
        assert list(self.tree.search(q)) == []
        assert self.tree.stats.node_reads == 0

    def test_search_reads_fewer_nodes_than_scan(self):
        self.tree.stats.reset()
        q = BoxQuery(overlap=(Box((20, 20), (22, 22)),))
        list(self.tree.search(q))
        # A selective query must not visit every leaf entry.
        assert self.tree.stats.node_reads < len(self.items) / 2

    @given(st.integers(0, 2**30))
    @settings(max_examples=20, deadline=None)
    def test_random_queries_agree_with_scan(self, seed):
        rng = random.Random(seed)
        lo = (rng.uniform(0, 90), rng.uniform(0, 90))
        hi = (lo[0] + rng.uniform(1, 30), lo[1] + rng.uniform(1, 30))
        probe = Box(lo, hi)
        kind = rng.choice(["overlap", "inside", "covers"])
        if kind == "overlap":
            q = BoxQuery(overlap=(probe,))
        elif kind == "inside":
            q = BoxQuery(inside=probe)
        else:
            q = BoxQuery(covers=Box(lo, (lo[0] + 0.2, lo[1] + 0.2)))
        got = {v for _b, v in self.tree.search(q)}
        assert got == self._scan(q)


class TestGridFile:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GridFile(0)
        with pytest.raises(ValueError):
            GridFile(2, bucket_capacity=1)

    def test_insert_and_exact_search(self):
        g = GridFile(2, bucket_capacity=4)
        g.insert((1.0, 2.0), "a")
        g.insert((1.0, 2.0), "b")
        g.insert((3.0, 4.0), "c")
        assert sorted(g.exact_search((1.0, 2.0))) == ["a", "b"]
        assert list(g.exact_search((9.0, 9.0))) == []

    def test_dimension_checked(self):
        g = GridFile(2)
        with pytest.raises(DimensionMismatchError):
            g.insert((1.0,), "a")
        with pytest.raises(DimensionMismatchError):
            list(g.range_search((0,), (1,)))

    def test_splits_maintain_invariants(self):
        rng = random.Random(3)
        g = GridFile(2, bucket_capacity=4)
        pts = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(300)]
        for i, p in enumerate(pts):
            g.insert(p, i)
        g.check_invariants()
        assert len(g) == 300
        assert g.stats.splits > 0
        shape = g.directory_shape()
        assert all(s >= 2 for s in shape)

    def test_duplicate_points_dont_livelock(self):
        g = GridFile(2, bucket_capacity=2)
        for i in range(20):
            g.insert((5.0, 5.0), i)
        assert len(g) == 20
        assert sorted(g.exact_search((5.0, 5.0))) == list(range(20))

    def test_degenerate_bucket_records_skipped_splits(self):
        """All-duplicate points leave one oversized bucket: the silent
        `_split_bucket` give-up is now counted, and queries stay
        correct over the oversized bucket."""
        g = GridFile(2, bucket_capacity=4)
        for i in range(30):
            g.insert((7.0, 7.0), i)
        assert g.stats.skipped_splits > 0
        assert g.stats.splits == 0  # nothing separable, ever
        # The single bucket is oversized but addressing is intact.
        g.check_invariants()
        assert sorted(g.exact_search((7.0, 7.0))) == list(range(30))
        got = {v for _p, v in g.range_search((6.0, 6.0), (8.0, 8.0))}
        assert got == set(range(30))
        assert list(g.range_search((8.5, 8.5), (9.0, 9.0))) == []

    def test_skipped_splits_with_mixed_population(self):
        """A separable dimension is still found when one exists — the
        skip counter only fires when every dimension is degenerate."""
        g = GridFile(2, bucket_capacity=2)
        for i in range(8):
            g.insert((1.0, float(i)), i)  # dim 0 degenerate, dim 1 fine
        assert g.stats.splits > 0
        got = {v for _p, v in g.range_search((0.0, 0.0), (2.0, 3.0))}
        assert got == {0, 1, 2, 3}
        g.stats.reset()
        assert g.stats.skipped_splits == 0

    def test_delete(self):
        g = GridFile(2, bucket_capacity=4)
        g.insert((1.0, 1.0), "a")
        assert g.delete((1.0, 1.0), "a")
        assert not g.delete((1.0, 1.0), "a")
        assert len(g) == 0

    def test_range_search_agrees_with_scan(self):
        rng = random.Random(11)
        g = GridFile(2, bucket_capacity=8)
        pts = [(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(400)]
        for i, p in enumerate(pts):
            g.insert(p, i)
        for _ in range(25):
            lo = (rng.uniform(0, 45), rng.uniform(0, 45))
            hi = (lo[0] + rng.uniform(0, 20), lo[1] + rng.uniform(0, 20))
            got = {v for _p, v in g.range_search(lo, hi)}
            expected = {
                i
                for i, p in enumerate(pts)
                if lo[0] <= p[0] <= hi[0] and lo[1] <= p[1] <= hi[1]
            }
            assert got == expected

    def test_grid_table_requires_universe(self):
        """The documented contract is now enforced: a grid-backed table
        without a universe box is a construction error."""
        with pytest.raises(ValueError, match="universe"):
            SpatialTable("t", 2, index="grid")
        t = SpatialTable(
            "t", 2, index="grid", universe=Box((0, 0), (50, 50))
        )
        t.insert(0, Region.from_box(Box((1, 1), (2, 2))))
        got = t.range_query(BoxQuery(overlap=(Box((0, 0), (5, 5)),)))
        assert [o.oid for o in got] == [0]

    def test_range_search_visits_subset_of_cells(self):
        rng = random.Random(5)
        g = GridFile(2, bucket_capacity=4)
        for i in range(500):
            g.insert((rng.uniform(0, 100), rng.uniform(0, 100)), i)
        g.stats.reset()
        list(g.range_search((10, 10), (12, 12)))
        total_cells = 1
        for s in g.directory_shape():
            total_cells *= s
        assert g.stats.cell_visits < total_cells


class TestBulkInsertContract:
    """`SpatialTable.bulk_insert`: pack validation and failure paths."""

    UNIVERSE = Box((0.0, 0.0), (50.0, 50.0))

    def _rows(self, n=10, seed=2):
        rng = random.Random(seed)
        out = []
        for i in range(n):
            lo = (rng.uniform(0, 40), rng.uniform(0, 40))
            out.append(
                (i, Region.from_box(Box(lo, (lo[0] + 3, lo[1] + 3))))
            )
        return out

    @pytest.mark.parametrize("index", ["grid", "scan"])
    def test_explicit_pack_raises_on_unsupported_backends(self, index):
        t = SpatialTable("t", 2, index=index, universe=self.UNIVERSE)
        with pytest.raises(ValueError, match="rtree"):
            t.bulk_insert(self._rows(), pack=True)
        assert len(t) == 0  # rejected before any row landed

    @pytest.mark.parametrize("index", ["grid", "scan"])
    def test_default_pack_resolves_to_insertion(self, index):
        t = SpatialTable("t", 2, index=index, universe=self.UNIVERSE)
        t.bulk_insert(self._rows())
        assert len(t) == 10
        got = t.range_query(BoxQuery(overlap=(self.UNIVERSE,)))
        assert sorted(o.oid for o in got) == list(range(10))

    def test_rtree_pack_still_default(self):
        t = SpatialTable("t", 2, universe=self.UNIVERSE)
        t.bulk_insert(self._rows())
        assert len(t) == 10
        t.bulk_insert([(100, Region.from_box(Box((1, 1), (2, 2))))],
                      pack=False)
        assert len(t) == 11

    def test_mid_failure_leaves_partial_rows_indexed(self):
        """A failing row aborts the bulk insert, but the `finally`
        rebuild must index every row that made it in."""
        t = SpatialTable("t", 2, universe=self.UNIVERSE)
        rows = self._rows(6)
        poisoned = rows[:3] + [(0, rows[3][1])] + rows[4:]  # dup oid 0
        with pytest.raises(ValueError, match="duplicate"):
            t.bulk_insert(poisoned, pack=True)
        assert len(t) == 3
        got = t.range_query(BoxQuery(overlap=(self.UNIVERSE,)))
        assert sorted(o.oid for o in got) == [0, 1, 2]
        # The rebuilt index is a packed, consistent r-tree.
        t._rtree.check_invariants()

    def test_mid_failure_unpacked_path(self):
        t = SpatialTable("t", 2, universe=self.UNIVERSE)
        rows = self._rows(5)
        poisoned = rows[:2] + [(1, rows[2][1])]
        with pytest.raises(ValueError, match="duplicate"):
            t.bulk_insert(poisoned, pack=False)
        got = t.range_query(BoxQuery(overlap=(self.UNIVERSE,)))
        assert sorted(o.oid for o in got) == [0, 1]


class TestRTreeDeleteStats:
    """Regression: delete must instrument and maintain caches like the
    insert/search paths do (it used to traverse silently)."""

    def _tree(self, n=60, seed=3):
        tree = RTree(max_entries=4)
        items = _random_boxes(n, seed=seed)
        for i, b in enumerate(items):
            tree.insert(b, i)
        return tree, items

    def test_delete_counts_node_reads_and_deletes(self):
        tree, items = self._tree()
        tree.stats.reset()
        assert tree.delete(items[10], 10)
        assert tree.stats.deletes == 1
        assert tree.stats.node_reads > 0, "FindLeaf descent went unbilled"
        assert tree.stats.entry_tests > 0
        # A failed delete still pays its traversal but counts no delete.
        reads_before = tree.stats.node_reads
        assert not tree.delete(items[10], 10)
        assert tree.stats.deletes == 1
        assert tree.stats.node_reads > reads_before

    def test_reset_zeroes_delete_counters(self):
        tree, items = self._tree(n=20)
        tree.delete(items[0], 0)
        tree.nearest((0.0, 0.0), 3)
        assert tree.stats.deletes == 1
        tree.stats.reset()
        assert tree.stats.deletes == 0
        assert tree.stats.pruned_subtrees == 0

    def test_interleaved_insert_delete_search_invariants(self):
        """Interleave inserts, deletes and searches; counters stay
        consistent, the height never lies, and the cached subtree
        counts (the COUNT pushdown) track every mutation."""
        rng = random.Random(11)
        tree = RTree(max_entries=4)
        live = {}
        boxes = _random_boxes(300, seed=5)
        next_id = 0
        for step in range(400):
            action = rng.random()
            if action < 0.55 or not live:
                b = boxes[next_id % len(boxes)]
                tree.insert(b, next_id)
                live[next_id] = b
                next_id += 1
            elif action < 0.85:
                victim = rng.choice(sorted(live))
                assert tree.delete(live.pop(victim), victim)
            else:
                probe = boxes[rng.randrange(len(boxes))]
                got = {v for _b, v in tree.search(BoxQuery(overlap=(probe,)))}
                want = {
                    v for v, b in live.items() if b.overlaps(probe)
                }
                assert got == want
            if step % 50 == 0:
                assert len(tree) == len(live)
                tree.check_invariants()
                # height() must reflect the real single-path depth.
                depths = set()

                def walk(node, d):
                    if node.leaf:
                        depths.add(d)
                        return
                    for _b, child in node.entries:
                        walk(child, d + 1)

                walk(tree._root, 1)
                assert depths == {tree.height()}, "leaves off-depth"
                # Subtree counts follow deletions (the pushdown cache).
                universe = Box((-1000.0, -1000.0), (1000.0, 1000.0))
                assert tree.count(BoxQuery(inside=universe)) == len(live)
        assert tree.stats.inserts > 0 and tree.stats.deletes > 0

    def test_delete_keeps_count_cache_fresh(self):
        tree, items = self._tree(n=40, seed=9)
        universe = Box((-1000.0, -1000.0), (1000.0, 1000.0))
        assert tree.count(BoxQuery(inside=universe)) == 40
        for i in range(0, 40, 2):
            assert tree.delete(items[i], i)
        assert tree.count(BoxQuery(inside=universe)) == 20
        assert tree.height() >= 1
        tree.check_invariants()


class TestDeltaTombstoneIndexInvariants:
    """Delta tombstones over a packed r-tree (the LSM write path).

    Extends the interleaved-mutation invariants above to the table's
    delta: tombstones must never touch the base tree's cached subtree
    ``count()``/``node_count()`` (readers of the base stay consistent),
    the overlay-corrected ``count_range`` must track the live view, and
    a pure-delete repack below the purge bound must go through
    :meth:`RTree.delete` — keeping the packed structure and its count
    cache fresh instead of rebuilding.
    """

    UNIVERSE = Box((-1000.0, -1000.0), (1000.0, 1000.0))

    def _table(self, n=80, seed=13):
        t = SpatialTable("t", 2, index="rtree", delta_threshold=10_000)
        boxes = _random_boxes(n, seed=seed)
        t.bulk_insert(
            [(i, Region.from_box(b)) for i, b in enumerate(boxes)]
        )
        return t, boxes

    def test_tombstones_leave_base_tree_counts_untouched(self):
        t, boxes = self._table()
        base_count = t._rtree.count(BoxQuery(inside=self.UNIVERSE))
        base_nodes = t._rtree.node_count()
        for i in range(0, 30, 3):
            t.delete(i)
        # The packed base is immutable under the delta: same tree, same
        # cached subtree counts, no hidden structural mutation.
        assert t._rtree.count(BoxQuery(inside=self.UNIVERSE)) == base_count
        assert t._rtree.node_count() == base_nodes
        t._rtree.check_invariants()
        # The live count subtracts tombstones without probing the base
        # rows one by one.
        assert t.count_range(BoxQuery(inside=self.UNIVERSE)) == len(t)

    def test_interleaved_delta_mutations_track_live_counts(self):
        rng = random.Random(17)
        t, boxes = self._table(n=60, seed=21)
        live = {i: b for i, b in enumerate(boxes)}
        next_id = len(boxes)
        for step in range(200):
            action = rng.random()
            if action < 0.45:
                b = _random_boxes(1, seed=1000 + next_id)[0]
                t.stage_insert(next_id, Region.from_box(b))
                live[next_id] = b
                next_id += 1
            elif action < 0.75 and live:
                victim = rng.choice(sorted(live))
                del live[victim]
                t.delete(victim)
            else:
                probe = boxes[rng.randrange(len(boxes))]
                q = BoxQuery(overlap=(probe,))
                want = {v for v, b in live.items() if b.overlaps(probe)}
                assert {o.oid for o in t.range_query(q)} == want
                assert t.count_range(q) == len(want)
            if step % 40 == 0:
                assert len(t) == len(live)
                t._rtree.check_invariants()
        # Folding the delta must land exactly on the live view, with a
        # fresh tree whose cached counts match.
        t.repack()
        assert len(t) == len(live)
        assert t._rtree.count(BoxQuery(inside=self.UNIVERSE)) == len(
            [b for b in live.values() if not b.is_empty()]
        )
        t._rtree.check_invariants()

    def test_pure_delete_repack_purges_in_place(self):
        """A small all-tombstone delta folds via targeted RTree.delete
        calls (the purge shortcut): the tree object survives, its
        delete counter moves, and the count cache stays exact."""
        t, _boxes = self._table(n=80)
        tree_before = t._rtree
        deletes_before = tree_before.stats.deletes
        for i in range(5):
            t.delete(i)
        assert t.repack()
        assert t._rtree is tree_before, "purge path should not rebuild"
        assert tree_before.stats.deletes == deletes_before + 5
        assert t._rtree.count(BoxQuery(inside=self.UNIVERSE)) == len(t)
        t._rtree.check_invariants()

    def test_large_delete_fraction_repacks_by_rebuild(self):
        t, _boxes = self._table(n=24)
        tree_before = t._rtree
        for i in range(12):  # 12 * 8 > 12 remaining: purge bound exceeded
            t.delete(i)
        assert t.repack()
        assert t._rtree is not tree_before, "should STR-rebuild, not purge"
        assert t._rtree.count(BoxQuery(inside=self.UNIVERSE)) == 12
        t._rtree.check_invariants()

    def test_staged_insert_repack_always_rebuilds(self):
        t, _boxes = self._table(n=20)
        tree_before = t._rtree
        t.stage_insert(999, Region.from_box(Box((0.0, 0.0), (1.0, 1.0))))
        t.delete(0)
        assert t.repack()
        assert t._rtree is not tree_before
        assert t._rtree.count(BoxQuery(inside=self.UNIVERSE)) == 20
        t._rtree.check_invariants()


class TestGridFileSkippedSplitPaths:
    """The remaining `_split_bucket` give-up paths (satellite coverage)."""

    def test_existing_scale_coordinate_is_skipped(self):
        """A bucket whose only viable cut is already a scale coordinate
        gives up (the `median in scales` branch) instead of looping."""
        g = GridFile(1, bucket_capacity=2)
        for i in range(3):
            g.insert((1.0,), i)  # first overflow: cut above the low run
        for i in range(3, 9):
            g.insert((0.0,), i)
        # The (0.0, 1.0) bucket can only cut at 1.0 — already a scale.
        assert g.stats.skipped_splits > 0
        g.check_invariants()
        assert sorted(g.exact_search((0.0,))) == list(range(3, 9))
        assert sorted(g.exact_search((1.0,))) == [0, 1, 2]

    def test_reset_clears_skipped_splits(self):
        g = GridFile(2, bucket_capacity=2)
        for i in range(6):
            g.insert((3.0, 3.0), i)
        assert g.stats.skipped_splits > 0
        g.stats.reset()
        assert g.stats.skipped_splits == 0 and g.stats.splits == 0
