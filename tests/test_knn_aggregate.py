"""Unit tests for the nearest-neighbor & aggregation subsystem.

Deterministic edge cases the differential harness (``test_differential.
py``) does not pin down: the distance metrics' geometry, the best-first
traversal's bounds and pruning counters, logical-node validation, the
planner's strategy choices, order repair, and the CLI flags.
"""

import random
import subprocess
import sys

import pytest
from hypothesis import given, settings

from repro.algebra import Region
from repro.boxes import Box, BoxQuery, EMPTY_BOX
from repro.engine import (
    AggregateSpec,
    KNNStep,
    SpatialQuery,
    build_physical_plan,
    choose_aggregate_strategy,
    choose_knn_access,
    compile_query,
)
from repro.errors import CompilationError, DimensionMismatchError
from repro.constraints import ConstraintSystem, nonempty, overlaps
from repro.spatial import RTree, SpatialTable
from tests.conftest import UNIVERSE, random_table
from tests.strategies import nonempty_boxes


class TestDistanceMetrics:
    def test_mindist_point_geometry(self):
        b = Box((2.0, 2.0), (4.0, 4.0))
        assert b.mindist_point((3.0, 3.0)) == 0.0  # inside
        assert b.mindist_point((3.0, 6.0)) == 2.0  # axis gap
        assert b.mindist_point((0.0, 0.0)) == pytest.approx(8 ** 0.5)

    def test_box_mindist(self):
        b = Box((2.0, 2.0), (4.0, 4.0))
        assert b.mindist(Box((6.0, 2.0), (8.0, 4.0))) == 2.0
        assert b.mindist(Box((3.0, 3.0), (9.0, 9.0))) == 0.0  # overlap
        assert b.mindist(Box((6.0, 6.0), (7.0, 7.0))) == pytest.approx(
            8 ** 0.5
        )
        # A shrinking box converges to the point metric; the zero-eps
        # point box is empty (half-open) and hence infinitely far.
        assert b.mindist(
            Box.point_box((0.0, 0.0), eps=1e-9)
        ) == pytest.approx(b.mindist_point((0.0, 0.0)), abs=1e-6)
        assert b.mindist(Box.point_box((0.0, 0.0))) == float("inf")

    def test_empty_box_is_infinitely_far(self):
        assert EMPTY_BOX.mindist_point((0.0, 0.0)) == float("inf")
        assert EMPTY_BOX.maxdist_point((0.0, 0.0)) == float("inf")
        assert EMPTY_BOX.minmaxdist_point((0.0, 0.0)) == float("inf")
        assert Box((0.0,), (1.0,)).mindist(EMPTY_BOX) == float("inf")

    def test_dimension_mismatch_raises(self):
        b = Box((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(DimensionMismatchError):
            b.mindist_point((1.0,))
        with pytest.raises(DimensionMismatchError):
            b.minmaxdist_point((1.0, 2.0, 3.0))
        with pytest.raises(DimensionMismatchError):
            b.mindist(Box((0.0,), (1.0,)))

    @given(nonempty_boxes(), nonempty_boxes())
    @settings(max_examples=120, deadline=None)
    def test_minmaxdist_sandwich(self, box, anchor):
        """MINDIST <= MINMAXDIST <= MAXDIST for every box and point."""
        p = anchor.center()
        lo = box.mindist_point(p)
        mid = box.minmaxdist_point(p)
        hi = box.maxdist_point(p)
        assert lo <= mid + 1e-9
        assert mid <= hi + 1e-9

    @given(nonempty_boxes(), nonempty_boxes())
    @settings(max_examples=120, deadline=None)
    def test_mindist_bounds_any_contained_point(self, box, anchor):
        """mindist is a sound optimistic bound: the distance to the
        box's nearest corner/center never beats it."""
        p = anchor.center()
        for q in (box.center(), box.lo, tuple(v - 1e-9 for v in box.hi)):
            d = sum((a - b) ** 2 for a, b in zip(p, q)) ** 0.5
            if box.contains_point(q):
                assert box.mindist_point(p) <= d + 1e-9


class TestRTreeNearest:
    def _tree(self, n=200, seed=1):
        rng = random.Random(seed)
        tree = RTree(max_entries=6)
        entries = []
        for i in range(n):
            lo = (rng.uniform(0, 100), rng.uniform(0, 100))
            b = Box(lo, (lo[0] + rng.uniform(0.5, 5), lo[1] + rng.uniform(0.5, 5)))
            tree.insert(b, i)
            entries.append((b, i))
        return tree, entries

    def test_empty_tree_and_k_edge_cases(self):
        tree = RTree()
        assert tree.nearest((0.0, 0.0), 3) == []
        assert tree.nearest((0.0, 0.0), 0) == []
        tree.insert(Box((0.0, 0.0), (1.0, 1.0)), "a")
        assert [v for _d, _b, v in tree.nearest((5.0, 5.0), 10)] == ["a"]

    def test_empty_box_entries_never_surface(self):
        tree = RTree()
        tree.insert(EMPTY_BOX, "ghost")
        tree.insert(Box((1.0, 1.0), (2.0, 2.0)), "real")
        assert [v for _d, _b, v in tree.nearest((0.0, 0.0), 5)] == ["real"]
        assert [v for _d, _b, v in tree.distance_browse((0.0, 0.0))] == [
            "real"
        ]

    def test_browse_is_sorted_and_complete(self):
        tree, entries = self._tree()
        out = list(tree.distance_browse((40.0, 60.0)))
        assert len(out) == len(entries)
        dists = [d for d, _b, _v in out]
        assert dists == sorted(dists)

    def test_nearest_reads_fewer_nodes_and_counts_pruning(self):
        tree, _entries = self._tree()
        tree.stats.reset()
        tree.nearest((50.0, 50.0), 5)
        assert tree.stats.node_reads < tree.node_count() // 2
        assert tree.stats.pruned_subtrees > 0

    def test_count_matches_search_on_all_forms(self):
        tree, _entries = self._tree(n=120, seed=4)
        rng = random.Random(7)
        for _ in range(40):
            lo = (rng.uniform(0, 70), rng.uniform(0, 70))
            big = Box(lo, (lo[0] + rng.uniform(5, 30), lo[1] + rng.uniform(5, 30)))
            small = Box(lo, (lo[0] + 2, lo[1] + 2))
            for query in (
                BoxQuery(inside=big),
                BoxQuery(overlap=(small,)),
                BoxQuery(covers=small),
                BoxQuery(inside=big, overlap=(small,)),
            ):
                assert tree.count(query) == len(list(tree.search(query)))
        assert tree.count(BoxQuery(overlap=(EMPTY_BOX,))) == 0

    def test_count_pushdown_reads_fewer_nodes(self):
        tree, _entries = self._tree(n=300, seed=8)
        query = BoxQuery(inside=Box((-10.0, -10.0), (120.0, 120.0)))
        tree.count(query)  # warm the subtree-count cache
        tree.stats.reset()
        assert tree.count(query) == len(tree)
        assert tree.stats.node_reads < tree.node_count()
        assert tree.stats.pruned_subtrees > 0


class TestTableNearest:
    def test_access_validation(self):
        t = SpatialTable("t", 2, index="scan", universe=UNIVERSE)
        with pytest.raises(ValueError, match="rtree backend"):
            t.nearest((0.0, 0.0), 1, access="bestfirst")
        with pytest.raises(ValueError, match="unknown kNN access"):
            t.nearest((0.0, 0.0), 1, access="warp")

    def test_non_rtree_backends_scan(self):
        rng = random.Random(2)
        for index in ("scan", "grid"):
            t = random_table("t", rng, 12, index=index)
            got = t.nearest((10.0, 10.0), 4)
            want = t.nearest_bruteforce((10.0, 10.0), 4)
            assert [o.oid for _d, o in got] == [o.oid for _d, o in want]

    def test_counts_probes(self):
        rng = random.Random(3)
        t = random_table("t", rng, 10)
        t.reset_stats()
        t.nearest((5.0, 5.0), 3)
        t.nearest_bruteforce((5.0, 5.0), 3)
        assert t.probes == 2
        assert t.candidates_returned == 6


class TestLogicalValidation:
    def _query(self, **kwargs):
        rng = random.Random(0)
        tables = {"u": random_table("u", rng, 4)}
        return SpatialQuery(
            system=ConstraintSystem.build(nonempty("u")),
            tables=tables,
            **kwargs,
        )

    def test_knn_step_validation(self):
        with pytest.raises(CompilationError, match="not a table"):
            self._query(knn=KNNStep("x", k=1, point=(0.0, 0.0)))
        with pytest.raises(CompilationError, match="k >= 1"):
            self._query(knn=KNNStep("u", k=0, point=(0.0, 0.0)))
        with pytest.raises(CompilationError, match="exactly one"):
            self._query(knn=KNNStep("u", k=1))
        with pytest.raises(CompilationError, match="exactly one"):
            self._query(knn=KNNStep("u", k=1, point=(0.0, 0.0), ref="P"))
        with pytest.raises(CompilationError, match="dims"):
            self._query(knn=KNNStep("u", k=1, point=(0.0, 0.0, 0.0)))
        with pytest.raises(CompilationError, match="own variable"):
            self._query(knn=KNNStep("u", k=1, ref="u"))
        with pytest.raises(CompilationError, match="neither"):
            self._query(knn=KNNStep("u", k=1, ref="zzz"))

    def test_aggregate_spec_validation(self):
        with pytest.raises(CompilationError, match="at least one"):
            AggregateSpec(aggregates=())
        with pytest.raises(CompilationError, match="unknown aggregate"):
            AggregateSpec(aggregates=(("sum", "u"),))
        with pytest.raises(CompilationError, match="no target"):
            AggregateSpec(aggregates=(("count", "u"),))
        with pytest.raises(CompilationError, match="needs a target"):
            AggregateSpec(aggregates=(("min", None),))
        with pytest.raises(CompilationError, match="not a table"):
            self._query(aggregate=AggregateSpec(group_by=("nope",)))
        with pytest.raises(CompilationError, match="not a table"):
            self._query(
                aggregate=AggregateSpec(aggregates=(("max", "nope"),))
            )
        assert AggregateSpec().labels() == ("count",)
        assert AggregateSpec(
            aggregates=(("count", None), ("min", "u"))
        ).labels() == ("count", "min(u)")
        # Duplicate ops would share one accumulator label and silently
        # double-count; the spec rejects them up front.
        with pytest.raises(CompilationError, match="duplicate"):
            AggregateSpec(aggregates=(("count", None), ("count", None)))
        with pytest.raises(CompilationError, match="duplicate"):
            AggregateSpec(aggregates=(("min", "u"), ("min", "u")))

    def test_order_repair_and_explicit_violation(self):
        rng = random.Random(1)
        tables = {
            "u": random_table("u", rng, 4),
            "v": random_table("v", rng, 4),
        }
        system = ConstraintSystem.build(overlaps("u", "v"))
        query = SpatialQuery(
            system=system, tables=tables, knn=KNNStep("u", k=2, ref="v")
        )
        # Planner-chosen orders are silently repaired...
        plan = compile_query(query)
        assert plan.order.index("v") < plan.order.index("u")
        # ...explicit ones that violate the anchoring raise.
        with pytest.raises(CompilationError, match="anchored"):
            compile_query(query, order=("u", "v"))


class TestStrategyChoice:
    def test_knn_access_choice(self):
        rng = random.Random(5)
        big = random_table("big", rng, 400)
        assert choose_knn_access(big, 3) == "bestfirst"
        assert choose_knn_access(big, 400) == "scan"
        small_scan = random_table("s", rng, 10, index="scan")
        assert choose_knn_access(small_scan, 2) == "scan"
        empty = SpatialTable("e", 2, universe=UNIVERSE)
        assert choose_knn_access(empty, 1) == "scan"

    def test_aggregate_strategy_choice_and_errors(self):
        rng = random.Random(6)
        tables = {"u": random_table("u", rng, 6)}
        system = ConstraintSystem.build(nonempty("u"))
        exact = compile_query(
            SpatialQuery(
                system=system, tables=tables, aggregate=AggregateSpec()
            )
        )
        assert choose_aggregate_strategy(exact, "boxplan") == "stream"
        boxed = compile_query(
            SpatialQuery(
                system=system,
                tables=tables,
                aggregate=AggregateSpec(exact=False),
            )
        )
        assert choose_aggregate_strategy(boxed, "boxplan") == "pushdown"
        with pytest.raises(CompilationError, match="no box layer"):
            build_physical_plan(boxed, "exact")
        grouped = compile_query(
            SpatialQuery(
                system=system,
                tables=tables,
                aggregate=AggregateSpec(exact=False, group_by=("u",)),
            )
        )
        with pytest.raises(CompilationError, match="group-by"):
            build_physical_plan(grouped, "boxplan")

    def test_knn_streams_nearest_first(self):
        """Distance browsing at the query level: a kNN plan extends in
        nondecreasing anchor distance, so limit=j prefixes are the j
        nearest answers."""
        rng = random.Random(9)
        table = random_table("u", rng, 25)
        query = SpatialQuery(
            system=ConstraintSystem.build(nonempty("u")),
            tables={"u": table},
            knn=KNNStep("u", k=10, point=(16.0, 16.0)),
        )
        plan = compile_query(query)
        pplan = build_physical_plan(plan, "boxplan", estimate=False)
        answers = list(pplan.execute_iter())
        dists = [
            a["u"].box.mindist_point((16.0, 16.0)) for a in answers
        ]
        assert dists == sorted(dists)
        limited = [
            a["u"].oid
            for a in build_physical_plan(
                plan, "boxplan", estimate=False
            ).execute_iter(limit=3)
        ]
        assert limited == [a["u"].oid for a in answers[:3]]

    def test_ungrouped_aggregate_of_nothing_is_one_zero_row(self):
        """SQL empty-input semantics — and strategy agreement: the
        exact stream fold and the COUNT pushdown both emit one row
        (count 0) for the same empty logical query; a grouped
        aggregate emits no rows."""
        from repro.constraints import subset

        rng = random.Random(12)
        table = random_table("u", rng, 6)
        binding = {"P": Region.from_box(Box((90.0, 90.0), (91.0, 91.0)))}
        system = ConstraintSystem.build(subset("u", "P"))  # no matches

        def rows_for(spec):
            query = SpatialQuery(
                system=system,
                tables={"u": table},
                bindings=binding,
                aggregate=spec,
            )
            pplan = build_physical_plan(
                compile_query(query), "boxplan", estimate=False
            )
            return pplan.run()[0]

        exact = rows_for(
            AggregateSpec(aggregates=(("count", None), ("min", "u")))
        )
        assert len(exact) == 1 and exact[0].group == ()
        assert exact[0].values == {"count": 0, "min(u)": None}
        pushdown = rows_for(AggregateSpec(exact=False))
        assert [r.values["count"] for r in pushdown] == [
            exact[0].values["count"]
        ]
        grouped = rows_for(AggregateSpec(group_by=("u",)))
        assert grouped == []

    def test_knn_ref_equal_to_variable_fails_cleanly(self):
        """Regression: the CLI's order repair used to crash with a raw
        ValueError when the kNN variable defaulted to its own anchor;
        validation must reject it (and repair_knn_order must not
        touch such an order)."""
        from repro.engine import repair_knn_order

        proc = _cli(
            "run", "--workload", "smugglers", "--size", "6",
            "--knn", "3", "--knn-var", "T", "--knn-ref", "T",
        )
        assert proc.returncode != 0
        assert "cannot anchor on its own variable" in proc.stderr
        assert "ValueError" not in proc.stderr
        bad = KNNStep("u", k=1, ref="u")
        assert repair_knn_order(("u", "v"), bad, {"u": None, "v": None}) == (
            "u",
            "v",
        )

    def test_distance_join_memoizes_repeated_anchors(self):
        """With an unrelated variable between the anchor and the kNN
        step, every anchor box repeats across the fan-out; the join
        must probe once per *distinct* anchor, not per tuple."""
        from repro.engine import DistanceJoin

        rng = random.Random(13)
        tables = {
            "a": random_table("a", rng, 3),
            "m": random_table("m", rng, 6),
            "z": random_table("z", rng, 30),
        }
        system = ConstraintSystem.build(
            nonempty("a"), nonempty("m"), nonempty("z")
        )
        query = SpatialQuery(
            system=system, tables=tables, knn=KNNStep("z", k=2, ref="a")
        )
        plan = compile_query(query, order=("a", "m", "z"))
        pplan = build_physical_plan(plan, "boxplan", estimate=False)
        list(pplan.execute_iter())
        join = next(
            op for op in pplan.operators() if isinstance(op, DistanceJoin)
        )
        assert join.stats.rows_in == len(tables["a"]) * len(tables["m"])
        assert join.stats.probes == len(tables["a"])  # distinct anchors

    def test_explain_mentions_knn_and_aggregate(self):
        rng = random.Random(10)
        table = random_table("u", rng, 8)
        query = SpatialQuery(
            system=ConstraintSystem.build(nonempty("u")),
            tables={"u": table},
            knn=KNNStep("u", k=2, point=(1.0, 1.0)),
            aggregate=AggregateSpec(),
        )
        plan = compile_query(query)
        text = plan.physical("boxplan").explain()
        assert "KNNProbe" in text and "Aggregate" in text
        assert "knn(u, k=2" in text and "agg(count)" in text


def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestCliFlags:
    def test_run_knn(self):
        proc = _cli(
            "run", "--workload", "overlay", "--size", "10",
            "--knn", "3", "--knn-var", "y", "--knn-ref", "x",
        )
        assert proc.returncode == 0, proc.stderr

    def test_run_aggregate(self):
        proc = _cli(
            "run", "--workload", "overlay", "--size", "10",
            "--agg", "count,min:y", "--group-by", "x",
        )
        assert proc.returncode == 0, proc.stderr
        assert "count" in proc.stdout and "min(y)" in proc.stdout

    def test_bench_box_count_json(self):
        import json

        proc = _cli(
            "bench", "--workload", "sandwich", "--size", "12", "--json",
            "--agg", "count", "--agg-box",
            "--order-strategy", "greedy",
        )
        assert proc.returncode == 0, proc.stderr
        result = json.loads(proc.stdout)
        assert result["agg"] == "count"
        assert result["answers"] == 1  # one aggregate row

    def test_explain_knn(self):
        proc = _cli(
            "explain", "--workload", "overlay", "--size", "10",
            "--knn", "2", "--analyze",
        )
        assert proc.returncode == 0, proc.stderr
        assert "KNNProbe" in proc.stdout
