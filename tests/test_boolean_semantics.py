"""Tests for two-valued semantics, truth tables and parsing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boolean import (
    FALSE,
    TRUE,
    Var,
    conj,
    count_satisfying,
    disj,
    equivalent,
    equivalent_under,
    eval_bool,
    implies,
    is_contradiction,
    is_tautology,
    neg,
    parse,
    satisfying_assignments,
    to_str,
    truth_table,
    variables,
)
from repro.errors import ParseError

# ---------------------------------------------------------------------------
# Random formula strategy shared across test modules
# ---------------------------------------------------------------------------

NAMES = ["x", "y", "z", "w", "v"]


def formulas(names=NAMES, max_leaves=8):
    """Hypothesis strategy producing random formulas over ``names``."""
    leaf = st.one_of(
        st.sampled_from([Var(n) for n in names]),
        st.sampled_from([TRUE, FALSE]),
    )

    def extend(children):
        return st.one_of(
            st.builds(lambda a: neg(a), children),
            st.builds(lambda a, b: conj(a, b), children, children),
            st.builds(lambda a, b: disj(a, b), children, children),
        )

    return st.recursive(leaf, extend, max_leaves=max_leaves)


class TestEvalBool:
    def test_basic_connectives(self):
        x, y = variables("x", "y")
        env = {"x": True, "y": False}
        assert eval_bool(x, env) is True
        assert eval_bool(y, env) is False
        assert eval_bool(x & y, env) is False
        assert eval_bool(x | y, env) is True
        assert eval_bool(~y, env) is True
        assert eval_bool(TRUE, {}) is True
        assert eval_bool(FALSE, {}) is False

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            eval_bool(Var("q"), {})


class TestTruthTables:
    def test_var_pattern(self):
        x, y = variables("x", "y")
        # Order (x, y): assignments 00, 10, 01, 11 -> bits 0..3.
        assert truth_table(x, ["x", "y"]) == 0b1010
        assert truth_table(y, ["x", "y"]) == 0b1100
        assert truth_table(x & y, ["x", "y"]) == 0b1000
        assert truth_table(x | y, ["x", "y"]) == 0b1110

    def test_too_many_variables_guarded(self):
        f = conj(*[Var(f"v{i}") for i in range(30)])
        with pytest.raises(ValueError):
            truth_table(f, [f"v{i}" for i in range(30)])

    @given(formulas())
    @settings(max_examples=150)
    def test_truth_table_matches_eval(self, f):
        order = sorted(f.variables()) or ["x"]
        tt = truth_table(f, order)
        for i in range(1 << len(order)):
            env = {name: bool((i >> k) & 1) for k, name in enumerate(order)}
            assert bool((tt >> i) & 1) == eval_bool(f, env)


class TestJudgements:
    def setup_method(self):
        self.x, self.y, self.z = variables("x", "y", "z")

    def test_tautology(self):
        assert is_tautology(self.x | ~self.x)
        assert not is_tautology(self.x)
        assert is_tautology(TRUE)

    def test_contradiction(self):
        assert is_contradiction(self.x & ~self.x)
        assert is_contradiction(FALSE)
        assert not is_contradiction(self.x)

    def test_equivalent_distribution(self):
        lhs = self.x & (self.y | self.z)
        rhs = (self.x & self.y) | (self.x & self.z)
        assert equivalent(lhs, rhs)

    def test_equivalent_de_morgan(self):
        assert equivalent(~(self.x & self.y), ~self.x | ~self.y)

    def test_implies(self):
        assert implies(self.x & self.y, self.x)
        assert not implies(self.x, self.x & self.y)
        assert implies(FALSE, self.x)
        assert implies(self.x, TRUE)

    def test_equivalent_under_hypothesis(self):
        # Under A <= C, the bounds C | (~A & T) and C | T agree — the exact
        # simplification the paper applies in Section 2.
        A, C, T = variables("A", "C", "T")
        hyp = ~(A & ~C)  # A <= C as a formula identity
        assert equivalent_under(hyp, C | (~A & T), C | T)
        assert not equivalent(C | (~A & T), C | T)

    @given(formulas(), formulas())
    @settings(max_examples=100)
    def test_implies_is_conjunction_order(self, f, g):
        assert implies(f, g) == is_contradiction(f & ~g)


class TestModelEnumeration:
    def test_satisfying_assignments(self):
        x, y = variables("x", "y")
        models = list(satisfying_assignments(x & ~y))
        assert models == [{"x": True, "y": False}]

    def test_count_satisfying(self):
        x, y, z = variables("x", "y", "z")
        assert count_satisfying(x | y, ["x", "y"]) == 3
        assert count_satisfying(x, ["x", "y", "z"]) == 4
        assert count_satisfying(FALSE, ["x"]) == 0

    @given(formulas())
    @settings(max_examples=60)
    def test_models_satisfy(self, f):
        order = sorted(f.variables())
        for env in satisfying_assignments(f, order):
            assert eval_bool(f, env)


class TestParser:
    def test_precedence(self):
        x, y, z = variables("x", "y", "z")
        assert parse("x | y & z") == disj(x, conj(y, z))
        assert parse("~x & y") == conj(neg(x), y)
        assert parse("~(x & y)") == neg(conj(x, y))

    def test_constants(self):
        assert parse("0") == FALSE
        assert parse("1") == TRUE

    def test_whitespace_insensitive(self):
        assert parse(" x&y ") == parse("x & y")

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as exc:
            parse("x & $")
        assert exc.value.position == 4

    def test_error_on_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("x y")

    def test_error_on_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse("(x & y")

    def test_error_on_empty(self):
        with pytest.raises(ParseError):
            parse("")

    @given(formulas())
    @settings(max_examples=100)
    def test_round_trip(self, f):
        assert parse(to_str(f)) == f
