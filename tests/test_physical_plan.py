"""Tests for the physical operator engine, EXPLAIN, and the probe cache."""

import pytest

from repro.algebra import Region
from repro.boxes import Box
from repro.boxes.bconstraints import BoxQuery
from repro.constraints import ConstraintSystem, overlaps, subset
from repro.datagen import smugglers_query
from repro.engine import (
    MODES,
    CrossProduct,
    ExactFilter,
    IndexProbe,
    ProbeCache,
    SpatialQuery,
    TableScan,
    answers_as_oid_tuples,
    build_physical_plan,
    compile_query,
    execute,
)
from repro.errors import UnknownModeError
from repro.spatial import SpatialTable, forced_backend


@pytest.fixture()
def plan():
    q, _world = smugglers_query(
        seed=5, n_towns=10, n_roads=10, states_grid=(2, 2)
    )
    return compile_query(q)


class TestPlanShapes:
    def test_boxplan_uses_index_probes(self, plan):
        pplan = build_physical_plan(plan, "boxplan")
        kinds = [op.kind for op in pplan.operators()]
        assert kinds.count("IndexProbe") == 3
        assert kinds.count("ExactFilter") == 3
        assert "CrossProduct" not in kinds

    def test_naive_is_cross_product_plus_final_filter(self, plan):
        pplan = build_physical_plan(plan, "naive")
        kinds = [op.kind for op in pplan.operators()]
        assert kinds.count("CrossProduct") == 3
        assert kinds.count("ExactFilter") == 1
        assert pplan.final_filter is not None

    def test_exact_scans_without_boxes(self, plan):
        pplan = build_physical_plan(plan, "exact")
        ops = pplan.operators()
        assert sum(isinstance(op, TableScan) for op in ops) == 3
        assert not any(isinstance(op, IndexProbe) for op in ops)
        assert not any(isinstance(op, CrossProduct) for op in ops)

    def test_boxonly_defers_the_exact_check(self, plan):
        pplan = build_physical_plan(plan, "boxonly")
        filters = [
            op for op in pplan.operators() if isinstance(op, ExactFilter)
        ]
        assert len(filters) == 1
        assert filters[0].system is not None

    def test_scan_backend_lowers_to_scan_plus_box_filter(self):
        q, _m = smugglers_query(seed=5, n_towns=8, n_roads=8, index="scan")
        plan = compile_query(q)
        with forced_backend("off"):
            pplan = build_physical_plan(plan, "boxplan")
            kinds = [op.kind for op in pplan.operators()]
            assert "IndexProbe" not in kinds
            assert kinds.count("TableScan") == 3
            assert kinds.count("BoxFilter") == 3
            answers, _ = pplan.run()
        expected, _ = execute(compile_query(q), "exact")
        assert answers_as_oid_tuples(answers, ["T", "R", "B"]) == (
            answers_as_oid_tuples(expected, ["T", "R", "B"])
        )

    def test_scan_backend_lowers_to_vectorized_probe(self):
        """With a columnar backend the scan+filter pair fuses."""
        q, _m = smugglers_query(seed=5, n_towns=8, n_roads=8, index="scan")
        plan = compile_query(q)
        pplan = build_physical_plan(plan, "boxplan")
        kinds = [op.kind for op in pplan.operators()]
        assert kinds.count("VectorizedScanProbe") == 3
        assert "BoxFilter" not in kinds and "TableScan" not in kinds
        answers, stats = pplan.run()
        assert stats.vectorized_batches > 0
        assert stats.vectorized_candidates > 0
        with forced_backend("off"):
            expected, off_stats = execute(compile_query(q), "boxplan")
        assert off_stats.vectorized_batches == 0
        assert answers_as_oid_tuples(answers, ["T", "R", "B"]) == (
            answers_as_oid_tuples(expected, ["T", "R", "B"])
        )

    def test_unknown_mode(self, plan):
        with pytest.raises(UnknownModeError):
            build_physical_plan(plan, "vectorized")


class TestExplain:
    def test_estimates_before_run(self, plan):
        pplan = build_physical_plan(plan, "boxplan")
        text = pplan.explain()
        assert "PhysicalPlan[boxplan]" in text
        assert "order: T, R, B" in text
        assert "IndexProbe" in text
        assert "est_rows≈" in text
        assert "actual:" not in text

    def test_actuals_after_run(self, plan):
        pplan = build_physical_plan(plan, "boxplan")
        answers, _stats = pplan.run()
        text = pplan.explain()
        assert "actual:" in text
        assert f"rows={len(answers)}" in text
        assert "probes=" in text and "node_reads=" in text

    def test_queryplan_explain_analyze(self, plan):
        text = plan.explain(mode="naive", analyze=True)
        assert "CrossProduct" in text
        assert "ExactFilter(system)" in text
        assert "actual:" in text

    def test_estimates_are_roughly_calibrated(self, plan):
        """Estimated output of each probe within 10x of the actual."""
        pplan = build_physical_plan(plan, "boxplan")
        pplan.run()
        for op in pplan.operators():
            if isinstance(op, IndexProbe) and op.est_rows:
                actual = max(1, op.stats.rows_out)
                assert 0.1 <= op.est_rows / actual <= 10.0


class TestStatsMapping:
    @pytest.mark.parametrize("mode", MODES)
    def test_physical_stats_match_execute(self, plan, mode):
        pplan = build_physical_plan(plan, mode)
        _answers, stats = pplan.run()
        _expected_answers, expected = execute(plan, mode)
        assert stats.as_dict() == expected.as_dict()

    def test_streaming_stats_are_partial(self, plan):
        pplan = build_physical_plan(plan, "boxplan")
        full_probes = pplan.run()[1].index_probes
        consumed = 0
        for _ in pplan.execute_iter(limit=1):
            consumed += 1
        assert consumed == 1
        assert 0 < pplan.stats().index_probes <= full_probes


class TestProbeCache:
    def test_repeated_execution_hits(self, plan):
        cache = ProbeCache(maxsize=512)
        answers1, stats1 = execute(plan, "boxplan", cache=cache)
        answers2, stats2 = execute(plan, "boxplan", cache=cache)
        assert answers_as_oid_tuples(answers2, ["T", "R", "B"]) == (
            answers_as_oid_tuples(answers1, ["T", "R", "B"])
        )
        assert stats1.cache_misses > 0
        assert stats2.cache_misses == 0
        assert stats2.cache_hits == stats1.cache_hits + stats1.cache_misses
        assert stats2.cache_hit_rate == 1.0
        assert stats2.node_reads == 0
        assert cache.hit_rate > 0.0

    def test_uncached_execution_reports_no_cache_traffic(self, plan):
        _answers, stats = execute(plan, "boxplan")
        assert stats.cache_hits == 0 and stats.cache_misses == 0

    def test_lru_bound(self):
        universe = Box((0.0, 0.0), (10.0, 10.0))
        t = SpatialTable("t", 2, universe=universe)
        t.insert(0, Region.from_box(Box((1, 1), (2, 2))))
        cache = ProbeCache(maxsize=3)
        for i in range(10):
            q = BoxQuery(overlap=(Box((0, 0), (i + 1, i + 1)),))
            t.range_query_cached(q, cache)
        assert len(cache) <= 3

    def test_mutation_invalidates(self):
        universe = Box((0.0, 0.0), (10.0, 10.0))
        t = SpatialTable("t", 2, universe=universe)
        t.insert(0, Region.from_box(Box((1, 1), (2, 2))))
        cache = ProbeCache()
        query = BoxQuery(overlap=(Box((0, 0), (10, 10)),))
        rows, hit = t.range_query_cached(query, cache)
        assert not hit and len(rows) == 1
        t.insert(1, Region.from_box(Box((3, 3), (4, 4))))
        rows, hit = t.range_query_cached(query, cache)
        assert not hit  # version changed → stale entry unreachable
        assert len(rows) == 2

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            ProbeCache(maxsize=0)

    def test_dropped_table_is_garbage_collected(self):
        """The cache holds no strong reference: a dropped table (and its
        rows) must be collectable, and its entries purged."""
        import gc
        import weakref

        universe = Box((0.0, 0.0), (10.0, 10.0))
        cache = ProbeCache()
        t = SpatialTable("ephemeral", 2, universe=universe)
        t.insert(0, Region.from_box(Box((1, 1), (2, 2))))
        rows, _hit = t.range_query_cached(
            BoxQuery(overlap=(Box((0, 0), (5, 5)),)), cache
        )
        assert len(cache) == 1
        ref = weakref.ref(t)
        del t, rows
        gc.collect()
        assert ref() is None, "ProbeCache pinned the table"
        assert len(cache) == 0, "dead table's entries were not purged"

    def test_superseded_version_entries_dropped_proactively(self):
        """Mutating a table drops its stale entries the next time the
        cache sees it — not merely once LRU churn reaches them."""
        universe = Box((0.0, 0.0), (10.0, 10.0))
        t = SpatialTable("t", 2, universe=universe)
        t.insert(0, Region.from_box(Box((1, 1), (2, 2))))
        cache = ProbeCache()
        q1 = BoxQuery(overlap=(Box((0, 0), (5, 5)),))
        q2 = BoxQuery(overlap=(Box((0, 0), (9, 9)),))
        t.range_query_cached(q1, cache)
        t.range_query_cached(q2, cache)
        assert len(cache) == 2
        t.insert(1, Region.from_box(Box((3, 3), (4, 4))))
        t.range_query_cached(q1, cache)
        # Both old-version entries are gone; only the fresh one remains.
        assert len(cache) == 1

    def test_two_tables_do_not_collide(self):
        universe = Box((0.0, 0.0), (10.0, 10.0))
        a = SpatialTable("same", 2, universe=universe)
        b = SpatialTable("same", 2, universe=universe)
        a.insert(0, Region.from_box(Box((1, 1), (2, 2))))
        b.insert(0, Region.from_box(Box((6, 6), (7, 7))))
        cache = ProbeCache()
        q = BoxQuery(overlap=(Box((0, 0), (10, 10)),))
        rows_a, _ = a.range_query_cached(q, cache)
        rows_b, hit = b.range_query_cached(q, cache)
        assert not hit  # same name+query, different table → distinct key
        assert rows_a is not rows_b
        assert len(cache) == 2


class TestBatchProbes:
    def _table(self):
        universe = Box((0.0, 0.0), (10.0, 10.0))
        t = SpatialTable("t", 2, universe=universe)
        for i in range(6):
            t.insert(i, Region.from_box(Box((i, i), (i + 1.5, i + 1.5))))
        return t

    def test_range_query_batch_dedups(self):
        t = self._table()
        q1 = BoxQuery(overlap=(Box((0, 0), (3, 3)),))
        q2 = BoxQuery(overlap=(Box((4, 4), (9, 9)),))
        t.reset_stats()
        results = t.range_query_batch([q1, q2, q1, q1])
        assert t.probes == 2  # duplicates answered once
        assert [sorted(o.oid for o in rows) for rows in results] == [
            sorted(o.oid for o in results[0]),
            sorted(o.oid for o in results[1]),
            sorted(o.oid for o in results[0]),
            sorted(o.oid for o in results[0]),
        ]
        assert results[0] and results[1]

    def test_rtree_search_batch(self):
        t = self._table()
        q1 = BoxQuery(overlap=(Box((0, 0), (3, 3)),))
        q2 = BoxQuery(overlap=(Box((4, 4), (9, 9)),))
        batched = t._rtree.search_batch([q1, q2, q1])
        assert [sorted(v.oid for _b, v in rows) for rows in batched] == [
            sorted(v.oid for _b, v in t._rtree.search(q1)),
            sorted(v.oid for _b, v in t._rtree.search(q2)),
            sorted(v.oid for _b, v in t._rtree.search(q1)),
        ]

    def test_join_probe_cache(self):
        from repro.spatial import index_nested_loop_join

        t = self._table()
        box = Box((0, 0), (5, 5))
        outer = [(box, "a"), (box, "b")]
        memo = {}
        t._rtree.stats.reset()
        pairs = list(index_nested_loop_join(outer, t._rtree, cache=memo))
        reads_cached = t._rtree.stats.node_reads
        t._rtree.stats.reset()
        expected = list(index_nested_loop_join(outer, t._rtree))
        reads_plain = t._rtree.stats.node_reads
        assert sorted((a, b.oid) for a, b in pairs) == sorted(
            (a, b.oid) for a, b in expected
        )
        assert reads_cached < reads_plain  # second outer row was free


class TestMultiTableScanBackendAgreement:
    """BoxFilter lowering agrees with IndexProbe on a fresh query."""

    def test_two_table_overlap(self):
        universe = Box((0.0, 0.0), (20.0, 20.0))
        import random

        def build(index):
            a = SpatialTable("a", 2, index=index, universe=universe)
            b = SpatialTable("b", 2, index=index, universe=universe)
            rng_local = random.Random(7)
            for i in range(15):
                lo = (rng_local.uniform(0, 16), rng_local.uniform(0, 16))
                box = Box(lo, (lo[0] + 3, lo[1] + 3))
                a.insert(i, Region.from_box(box))
                lo = (rng_local.uniform(0, 16), rng_local.uniform(0, 16))
                box = Box(lo, (lo[0] + 3, lo[1] + 3))
                b.insert(i, Region.from_box(box))
            return SpatialQuery(
                system=ConstraintSystem.build(
                    overlaps("x", "y"), subset("x", "W")
                ),
                tables={"x": a, "y": b},
                bindings={
                    "W": Region.from_box(Box((0.0, 0.0), (14.0, 14.0)))
                },
                order=["x", "y"],
            )

        got = {}
        for index in ("rtree", "scan", "grid"):
            q = build(index)
            answers, _ = execute(compile_query(q), "boxplan")
            got[index] = answers_as_oid_tuples(answers, ["x", "y"])
        assert got["rtree"] == got["scan"] == got["grid"]
        assert got["rtree"]
