"""Tests for the streaming (pipelined) executor and dimension coverage."""

import pytest

from repro.algebra import Region
from repro.boxes import Box
from repro.constraints import ConstraintSystem, nonempty, overlaps, subset
from repro.datagen import smugglers_query
from repro.engine import (
    SpatialQuery,
    answers_as_oid_tuples,
    compile_query,
    execute,
    execute_iter,
    first_k,
)
from repro.spatial import SpatialTable


class TestStreamingExecutor:
    def test_same_answer_set_as_batch(self):
        q, _m = smugglers_query(
            seed=9, n_towns=10, n_roads=10, states_grid=(2, 2)
        )
        plan = compile_query(q)
        batch, _ = execute(plan, "boxplan")
        streamed = list(execute_iter(plan, "boxplan"))
        assert answers_as_oid_tuples(streamed, ["T", "R", "B"]) == (
            answers_as_oid_tuples(batch, ["T", "R", "B"])
        )

    def test_exact_mode_streams_too(self):
        q, _m = smugglers_query(seed=9, n_towns=8, n_roads=8)
        plan = compile_query(q)
        batch, _ = execute(plan, "exact")
        streamed = list(execute_iter(plan, "exact"))
        assert answers_as_oid_tuples(streamed, ["T", "R", "B"]) == (
            answers_as_oid_tuples(batch, ["T", "R", "B"])
        )

    def test_all_four_modes_stream(self):
        q, _m = smugglers_query(seed=0, n_towns=6, n_roads=6)
        plan = compile_query(q)
        reference = None
        for mode in ("naive", "exact", "boxplan", "boxonly"):
            streamed = list(execute_iter(plan, mode))
            got = answers_as_oid_tuples(streamed, ["T", "R", "B"])
            if reference is None:
                reference = got
            assert got == reference, f"mode {mode} diverged"

    def test_unknown_mode(self):
        from repro.errors import UnknownModeError

        q, _m = smugglers_query(seed=0, n_towns=4, n_roads=4)
        plan = compile_query(q)
        with pytest.raises(UnknownModeError):
            list(execute_iter(plan, "warp"))

    def test_limit_is_prefix_of_unlimited(self):
        q, _m = smugglers_query(
            seed=11, n_towns=25, n_roads=25, states_grid=(3, 3)
        )
        plan = compile_query(q)
        full = [
            tuple(a[v].oid for v in ("T", "R", "B"))
            for a in execute_iter(plan, "boxplan")
        ]
        assert len(full) >= 2
        for k in (1, 2, len(full), len(full) + 5):
            limited = [
                tuple(a[v].oid for v in ("T", "R", "B"))
                for a in execute_iter(plan, "boxplan", limit=k)
            ]
            assert limited == full[: k]

    def test_limit_zero_and_negative_yield_nothing(self):
        q, _m = smugglers_query(seed=0, n_towns=4, n_roads=4)
        plan = compile_query(q)
        assert list(execute_iter(plan, "boxplan", limit=0)) == []
        assert list(execute_iter(plan, "boxplan", limit=-1)) == []

    def test_first_k_stops_early(self):
        q, _m = smugglers_query(
            seed=11, n_towns=25, n_roads=25, states_grid=(3, 3)
        )
        plan = compile_query(q)
        all_answers, _ = execute(plan, "boxplan")
        assert len(all_answers) >= 2
        got = first_k(plan, 2)
        assert len(got) == 2
        full = {
            t
            for t in answers_as_oid_tuples(all_answers, ["T", "R", "B"])
        }
        for a in got:
            assert (a["T"].oid, a["R"].oid, a["B"].oid) in full

    def test_first_k_touches_less_than_full_run(self):
        q, _m = smugglers_query(
            seed=11, n_towns=25, n_roads=25, states_grid=(3, 3)
        )
        plan = compile_query(q)
        for t in q.tables.values():
            t.reset_stats()
        first_k(plan, 1)
        probes_first = sum(t.probes for t in q.tables.values())
        for t in q.tables.values():
            t.reset_stats()
        list(execute_iter(plan, "boxplan"))
        probes_full = sum(t.probes for t in q.tables.values())
        assert probes_first < probes_full

    def test_answers_are_independent_dicts(self):
        q, _m = smugglers_query(seed=9, n_towns=8, n_roads=8)
        plan = compile_query(q)
        answers = list(execute_iter(plan, "boxplan"))
        if len(answers) >= 2:
            assert answers[0] is not answers[1]
            answers[0]["T"] = None
            assert answers[1]["T"] is not None


class TestOtherDimensions:
    """The engine is dimension-generic; exercise 1-D and 3-D."""

    def _run_1d(self, index):
        universe = Box((0.0,), (100.0,))
        segments = SpatialTable("segments", 1, index=index, universe=universe)
        data = [
            (0, (5.0, 15.0)),
            (1, (20.0, 45.0)),
            (2, (40.0, 60.0)),
            (3, (70.0, 72.0)),
        ]
        for oid, (a, b) in data:
            segments.insert(oid, Region.from_box(Box((a,), (b,))))
        window = Region.from_box(Box((18.0,), (65.0,)))
        q = SpatialQuery(
            system=ConstraintSystem.build(
                subset("x", "W"), nonempty("x")
            ),
            tables={"x": segments},
            bindings={"W": window},
            order=["x"],
        )
        plan = compile_query(q)
        answers, _ = execute(plan, "boxplan")
        return sorted(a["x"].oid for a in answers)

    @pytest.mark.parametrize("index", ["rtree", "grid", "scan"])
    def test_1d_interval_query(self, index):
        assert self._run_1d(index) == [1, 2]

    def test_3d_overlap_join(self):
        universe = Box((0.0, 0.0, 0.0), (50.0, 50.0, 50.0))
        import random

        rng = random.Random(3)
        a = SpatialTable("a", 3, universe=universe)
        b = SpatialTable("b", 3, universe=universe)
        boxes_a, boxes_b = [], []
        for i in range(25):
            lo = tuple(rng.uniform(0, 44) for _ in range(3))
            box = Box(lo, tuple(c + rng.uniform(1, 6) for c in lo))
            boxes_a.append(box)
            a.insert(i, Region.from_box(box))
        for j in range(25):
            lo = tuple(rng.uniform(0, 44) for _ in range(3))
            box = Box(lo, tuple(c + rng.uniform(1, 6) for c in lo))
            boxes_b.append(box)
            b.insert(j, Region.from_box(box))
        q = SpatialQuery(
            system=ConstraintSystem.build(overlaps("x", "y")),
            tables={"x": a, "y": b},
            order=["x", "y"],
        )
        plan = compile_query(q)
        answers, _ = execute(plan, "boxplan")
        got = {(ans["x"].oid, ans["y"].oid) for ans in answers}
        expected = {
            (i, j)
            for i, ba in enumerate(boxes_a)
            for j, bb in enumerate(boxes_b)
            if ba.overlaps(bb)
        }
        assert got == expected
