"""Stateful mutation testing of the LSM-style delta write path.

A Hypothesis :class:`RuleBasedStateMachine` drives an arbitrary
interleaving of inserts, deletes, range queries, kNN queries,
aggregates, explicit repacks, and snapshot save/load round trips
against a :class:`~repro.spatial.table.SpatialTable`, mirroring every
mutation into a brute-force shadow model (a plain insertion-ordered
``oid -> Region`` dict).  After every step the table must answer
bit-identically to the shadow — same oids, same float distances, same
iteration order — and the delta/MVCC counters must satisfy their
invariants (pending ops match the staged sets, ``delta_probes`` and the
watermark never go backwards within a delta generation).

One machine per index backend (rtree / grid / scan); range probes are
additionally checked under every columnar backend.  The delta threshold
is set low so sequences organically cross it and trigger inline
repacks, on top of the explicit repack rule.

CI runs this module inside the ``REPRO_TEST_SEED`` property-test
matrix: the seed shifts the prefill workload while any failure replays
locally by exporting the same value.
"""

import os
import random
import tempfile

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.algebra import Region
from repro.boxes import Box
from repro.boxes.bconstraints import BoxQuery
from repro.database import Database
from repro.spatial import SpatialTable, forced_backend

from tests.conftest import COLUMNAR_BACKENDS, UNIVERSE, shifted_seed

#: Step budget per example; kept modest — every step cross-checks the
#: full answer set against the shadow under every columnar backend.
STEP_SETTINGS = settings(
    max_examples=12,
    stateful_step_count=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

#: Coordinates drawn for rows and query boxes: a small duplicate-rich
#: pool makes shared edges, ties, and exact-hit deletes likely.
COORDS = st.sampled_from((0.0, 1.0, 2.0, 3.5, 7.0, 13.0, 21.0, 28.0, 31.0))


def _query_boxes(draw):
    box = Box((draw(COORDS), draw(COORDS)), (draw(COORDS), draw(COORDS)))
    return box


@st.composite
def row_regions(draw):
    """A non-empty box region inside the shared universe."""
    lo = (draw(COORDS) * 0.875, draw(COORDS) * 0.875)
    w = draw(st.sampled_from((0.5, 1.0, 3.0, 8.0)))
    h = draw(st.sampled_from((0.5, 1.0, 3.0, 8.0)))
    return Region.from_box(
        Box(lo, (lo[0] + w, lo[1] + h)).meet(UNIVERSE)
    )


@st.composite
def box_queries(draw):
    """Range predicates mixing inside/covers/overlap constraints."""
    inside = _query_boxes(draw) if draw(st.booleans()) else None
    covers = _query_boxes(draw) if draw(st.booleans()) else None
    overlap = tuple(
        _query_boxes(draw) for _ in range(draw(st.integers(0, 1)))
    )
    return BoxQuery(inside=inside, covers=covers, overlap=overlap)


class MutationMachine(RuleBasedStateMachine):
    """Interleaved mutations vs the brute-force shadow model."""

    INDEX = "rtree"

    def __init__(self):
        super().__init__()
        self.table = SpatialTable(
            "t", 2, index=self.INDEX, universe=UNIVERSE, delta_threshold=9
        )
        #: The shadow: oid -> Region in live insertion order (a delete
        #: removes; a re-insert appends) — exactly the table's live view.
        self.shadow = {}
        self.counter = 0
        self.watermark_seen = 0
        self.delta_gen = None  # id() of the delta the watermark belongs to
        self.delta_probes_seen = 0

    @initialize()
    def prefill(self):
        rng = random.Random(shifted_seed(4242))
        for _ in range(rng.randint(0, 12)):
            self._insert_row(
                Region.from_box(
                    Box(
                        (rng.uniform(0, 28), rng.uniform(0, 28)),
                        (rng.uniform(0, 28) + 1, rng.uniform(0, 28) + 1),
                    ).meet(UNIVERSE)
                ),
                staged=False,
            )

    # -- shadow-model reference answers ------------------------------------

    def _shadow_matches(self, query: BoxQuery):
        return [
            oid
            for oid, region in self.shadow.items()
            if not region.bounding_box().is_empty()
            and query.matches(region.bounding_box())
        ]

    def _shadow_nearest(self, point, k):
        ranked = sorted(
            (region.bounding_box().mindist_point(point), repr(oid))
            for oid, region in self.shadow.items()
            if not region.bounding_box().is_empty()
        )
        return ranked[:k]

    # -- mutation rules ----------------------------------------------------

    def _insert_row(self, region, staged):
        oid = f"r{self.counter}"
        self.counter += 1
        if staged:
            self.table.stage_insert(oid, region)
        else:
            # Routes through the delta while one is open, through the
            # direct base path otherwise — both must look identical.
            self.table.insert(oid, region)
        self.shadow[oid] = region

    @rule(region=row_regions(), staged=st.booleans())
    def insert(self, region, staged):
        self._insert_row(region, staged)

    @precondition(lambda self: self.shadow)
    @rule(data=st.data())
    def delete(self, data):
        oid = data.draw(st.sampled_from(sorted(self.shadow)))
        self.table.delete(oid)
        del self.shadow[oid]

    @rule()
    def delete_missing_is_refused(self):
        oid = f"never-{self.counter}"
        assert self.table.stage_delete(oid) is False
        try:
            self.table.delete(oid)
        except KeyError:
            pass
        else:  # pragma: no cover - failure path
            raise AssertionError("delete of a dead oid must raise")

    @rule()
    def repack(self):
        before = sorted(repr(oid) for oid in self.shadow)
        self.table.repack()
        assert not self.table.delta_pending
        assert sorted(repr(o.oid) for o in self.table) == before

    @rule()
    def save_load(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "snap.json")
            Database(tables={"t": self.table}).save(path)
            self.table = Database.open(path).table("t")
        assert not self.table.delta_pending
        self.delta_probes_seen = self.table.delta_probes

    # -- read rules (bit-identical to the shadow) --------------------------

    @rule(query=box_queries())
    def range_query(self, query):
        expected = sorted(repr(oid) for oid in self._shadow_matches(query))
        for backend in COLUMNAR_BACKENDS:
            with forced_backend(backend):
                got = self.table.range_query(query)
                assert sorted(repr(o.oid) for o in got) == expected

    @rule(query=box_queries())
    def aggregate_count(self, query):
        expected = len(self._shadow_matches(query))
        for backend in COLUMNAR_BACKENDS:
            with forced_backend(backend):
                assert self.table.count_range(query) == expected

    @rule(
        x=COORDS,
        y=COORDS,
        k=st.integers(1, 5),
        access=st.sampled_from(("auto", "scan")),
    )
    def knn(self, x, y, k, access):
        if self.INDEX != "rtree" and access == "auto":
            access = "scan"  # best-first browse needs the r-tree
        expected = self._shadow_nearest((x, y), k)
        for backend in COLUMNAR_BACKENDS:
            with forced_backend(backend):
                got = self.table.nearest((x, y), k, access=access)
                assert [(d, repr(o.oid)) for d, o in got] == expected
                brute = self.table.nearest_bruteforce((x, y), k)
                assert [(d, repr(o.oid)) for d, o in brute] == expected

    # -- invariants --------------------------------------------------------

    @invariant()
    def live_view_matches_shadow(self):
        assert len(self.table) == len(self.shadow)
        assert [o.oid for o in self.table] == list(self.shadow)
        for oid in self.shadow:
            assert self.table.get(oid).oid == oid

    @invariant()
    def delta_counters_consistent(self):
        d = self.table._delta
        if d is None:
            assert self.table.delta_pending_ops == 0
            assert self.table.delta_watermark == 0
            self.delta_gen = None
        else:
            assert (
                self.table.delta_pending_ops
                == len(d.inserts) + len(d.tombstones)
            )
            assert set(d.tombstones) <= set(self.table._objects)
            # The watermark is monotonic within one delta generation
            # (a repack — explicit or inline at the threshold — clears
            # the delta and the next write opens a fresh one).
            if self.delta_gen == id(d):
                assert d.watermark >= self.watermark_seen
            self.delta_gen = id(d)
            self.watermark_seen = d.watermark
        assert self.table.delta_probes >= self.delta_probes_seen
        self.delta_probes_seen = self.table.delta_probes
        # The inline threshold keeps the delta bounded on an unshared
        # table (repack fires at the threshold crossing).
        assert self.table.delta_pending_ops <= self.table.delta_threshold


class _RTreeMachine(MutationMachine):
    INDEX = "rtree"


class _GridMachine(MutationMachine):
    INDEX = "grid"


class _ScanMachine(MutationMachine):
    INDEX = "scan"


_RTreeMachine.TestCase.settings = STEP_SETTINGS
_GridMachine.TestCase.settings = STEP_SETTINGS
_ScanMachine.TestCase.settings = STEP_SETTINGS

TestMutationStatefulRTree = _RTreeMachine.TestCase
TestMutationStatefulGrid = _GridMachine.TestCase
TestMutationStatefulScan = _ScanMachine.TestCase
