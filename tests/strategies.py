"""Shared hypothesis strategies for algebra carriers, boxes and regions."""

from fractions import Fraction

from hypothesis import strategies as st

from repro.algebra import (
    BitVectorAlgebra,
    IntervalAlgebra,
    PowersetAlgebra,
    Region,
    RegionAlgebra,
    TwoValuedAlgebra,
)
from repro.boxes import Box

# ---------------------------------------------------------------------------
# Fixed algebra instances (hypothesis needs cheap, deterministic carriers)
# ---------------------------------------------------------------------------

B2 = TwoValuedAlgebra()
BITS8 = BitVectorAlgebra(8)
SETS = PowersetAlgebra(range(5))
LINE = IntervalAlgebra(0, 16)
PLANE = RegionAlgebra(Box((0.0, 0.0), (16.0, 16.0)))
SPACE3 = RegionAlgebra(Box((0.0, 0.0, 0.0), (8.0, 8.0, 8.0)))


def bitvec_elements(alg=BITS8):
    """Random elements of a bit-vector algebra."""
    return st.integers(min_value=0, max_value=alg.top)


def powerset_elements(alg=SETS):
    """Random elements of a powerset algebra."""
    return st.sets(st.sampled_from(sorted(alg.universe))).map(frozenset)


def interval_elements(alg=LINE, max_intervals=4):
    """Random interval sets with small rational endpoints."""
    lo, hi = alg.universe
    coord = st.integers(min_value=int(lo) * 4, max_value=int(hi) * 4).map(
        lambda n: Fraction(n, 4)
    )
    pair = st.tuples(coord, coord).map(lambda t: tuple(sorted(t)))
    return st.lists(pair, max_size=max_intervals).map(alg.from_pairs)


def boxes(dim=2, lo=0, hi=16, grid=4):
    """Random non-empty or empty boxes on a coarse rational grid."""
    coord = st.integers(min_value=lo * grid, max_value=hi * grid).map(
        lambda n: n / grid
    )

    def build(coords):
        los = coords[:dim]
        his = coords[dim:]
        return Box(
            tuple(min(a, b) for a, b in zip(los, his)),
            tuple(max(a, b) for a, b in zip(los, his)),
        )

    return st.lists(coord, min_size=2 * dim, max_size=2 * dim).map(build)


def nonempty_boxes(dim=2, lo=0, hi=16, grid=4):
    """Random boxes guaranteed non-empty."""
    return boxes(dim, lo, hi, grid).filter(lambda b: not b.is_empty())


def region_elements(alg=PLANE, max_boxes=3):
    """Random regions as unions of a few random boxes."""
    dim = alg.universe_box.dim
    lo = int(alg.universe_box.lo[0])
    hi = int(alg.universe_box.hi[0])
    return st.lists(boxes(dim, lo, hi), max_size=max_boxes).map(
        lambda bs: alg.meet(alg.top, Region.from_boxes(bs))
    )
