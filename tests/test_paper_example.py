"""Reproduction of the paper's Section 2 example, end to end (E1).

The paper derives, for the smugglers system of Figure 1 with constants
``C, A`` and retrieval order ``T, R, B``::

    (1)  0 ⊆ T ⊆ 1,           ¬C ∧ T ≠ 0
    (2)  0 ⊆ R ⊆ C ∨ T,       A ∧ R ≠ 0,  R ∧ T ≠ 0
    (3)  R ∧ ¬A ∧ ¬T ⊆ B ⊆ C

These tests assert our Algorithm 1 output is **semantically identical**
(and for the displayed simplification, syntactically equal after
rendering) to the paper's derivation, modulo the ground facts the paper
assumes (``A ⊆ C``).
"""

import pytest

from repro.algebra import RegionAlgebra
from repro.boolean import FALSE, TRUE, Var, equivalent, equivalent_under, neg
from repro.boxes import Box
from repro.constraints import (
    SMUGGLERS_ORDER,
    smugglers_system,
    triangular_form,
)

A, B, C, R, T = (Var(v) for v in "ABCRT")

#: The ground hypothesis under which the paper displays the triangle.
GROUND = neg(A & ~C)  # A ⊆ C


@pytest.fixture(scope="module")
def tri():
    return triangular_form(smugglers_system(), SMUGGLERS_ORDER)


@pytest.fixture(scope="module")
def tri_raw():
    """Without the display-time simplification modulo ground facts."""
    return triangular_form(
        smugglers_system(), SMUGGLERS_ORDER, simplify_modulo_ground=False
    )


class TestNormalization:
    def test_paper_rewriting(self):
        """Figure 1 rewrites to one equation and three disequations."""
        norm = smugglers_system().normalize()
        expected_eq = (A & ~C) | (B & ~C) | (R & ~A & ~B & ~T)
        assert equivalent(norm.equation, expected_eq)
        assert len(norm.disequations) == 3
        bodies = set()
        for g in norm.disequations:
            bodies.add(frozenset(g.variables()))
        assert bodies == {
            frozenset({"R", "A"}),
            frozenset({"R", "T"}),
            frozenset({"C", "T"}),
        }


class TestLevelT(object):
    def test_range_trivial(self, tri):
        c = tri.constraint_for("T")
        assert c.lower == FALSE
        assert c.upper == TRUE

    def test_single_disequation_not_c_and_t(self, tri):
        c = tri.constraint_for("T")
        assert len(c.disequations) == 1
        r = c.disequations[0]
        # r: T ∧ ¬C ≠ 0 (and no ¬T part).
        assert equivalent(r.p, ~C)
        assert equivalent(r.q, FALSE)


class TestLevelR:
    def test_range(self, tri):
        c = tri.constraint_for("R")
        assert c.lower == FALSE
        assert equivalent(c.upper, C | T)

    def test_range_without_ground_simplification(self, tri_raw):
        # Raw upper bound is C ∨ (¬A ∧ T); under A ⊆ C it equals C ∨ T.
        c = tri_raw.constraint_for("R")
        assert equivalent(c.upper, C | (~A & T))
        assert equivalent_under(GROUND, c.upper, C | T)

    def test_disequations(self, tri):
        c = tri.constraint_for("R")
        assert len(c.disequations) == 2
        for r in c.disequations:
            assert equivalent(r.q, FALSE)
        assert {frozenset(r.p.variables()) for r in c.disequations} == {
            frozenset({"A"}),
            frozenset({"T"}),
        }
        for r in c.disequations:
            if r.p.variables() == frozenset({"A"}):
                assert equivalent(r.p, A)
            else:
                assert equivalent(r.p, T)


class TestLevelB:
    def test_range_is_paper_line_3(self, tri):
        c = tri.constraint_for("B")
        assert equivalent(c.lower, R & ~A & ~T)
        assert equivalent(c.upper, C)

    def test_no_disequations(self, tri):
        assert tri.constraint_for("B").disequations == ()

    def test_raw_lower_bound_modulo_ground(self, tri_raw):
        c = tri_raw.constraint_for("B")
        assert equivalent(c.lower, (A & ~C) | (R & ~A & ~T))
        assert equivalent_under(GROUND, c.lower, R & ~A & ~T)


class TestGroundResidue:
    def test_ground_equation_is_A_subset_C(self, tri):
        assert equivalent(tri.ground.equation, A & ~C)

    def test_ground_disequations(self, tri):
        # Necessary conditions on the constants: A∩C ≠ ∅ (the road must
        # reach A inside C) and ¬C ≠ ∅ (there must be an outside for the
        # border town) — the latter computed as ¬A∧¬C, equal modulo A⊆C.
        bodies = [g for g in tri.ground.disequations]
        assert len(bodies) == 2
        for g in bodies:
            assert equivalent_under(GROUND, g, A & C) or equivalent_under(
                GROUND, g, ~C
            )

    def test_ground_accepts_paper_scenario(self, tri):
        alg = RegionAlgebra(Box((0.0, 0.0), (16.0, 16.0)))
        Cv = alg.box_region(Box((1.0, 1.0), (12.0, 12.0)))
        Av = alg.box_region(Box((8.0, 8.0), (11.0, 11.0)))
        assert tri.check_ground(alg, {"C": Cv, "A": Av})

    def test_ground_rejects_area_outside_country(self, tri):
        alg = RegionAlgebra(Box((0.0, 0.0), (16.0, 16.0)))
        Cv = alg.box_region(Box((1.0, 1.0), (12.0, 12.0)))
        Av = alg.box_region(Box((11.0, 11.0), (15.0, 15.0)))  # pokes out
        assert not tri.check_ground(alg, {"C": Cv, "A": Av})

    def test_ground_rejects_country_covering_universe(self, tri):
        # No outside => no border town can straddle the border.
        alg = RegionAlgebra(Box((0.0, 0.0), (16.0, 16.0)))
        Cv = alg.top
        Av = alg.box_region(Box((8.0, 8.0), (11.0, 11.0)))
        assert not tri.check_ground(alg, {"C": Cv, "A": Av})


class TestRenderMatchesPaperShape:
    def test_rendered_text(self, tri):
        text = tri.render()
        assert "0 <= T <= 1" in text
        assert "T & (~C) != 0" in text
        assert "0 <= R <= C | T" in text
        assert "R & (A) != 0" in text
        assert "R & (T) != 0" in text
        assert "R & ~A & ~T <= B <= C" in text


class TestEndToEndSolutions:
    """A concrete scenario: the triangle accepts exactly the paper's
    intended solutions."""

    def setup_method(self):
        self.alg = RegionAlgebra(Box((0.0, 0.0), (16.0, 16.0)))
        self.C = self.alg.box_region(Box((1.0, 1.0), (12.0, 12.0)))
        self.A = self.alg.box_region(Box((8.0, 8.0), (11.0, 11.0)))
        # A border town straddling the country boundary.
        self.town = self.alg.box_region(Box((0.5, 5.0), (1.5, 6.0)))
        # A road from the town into A (axis-aligned L shape).
        self.road = self.alg.region(
            [(1.0, 9.0), (5.0, 5.5)], [(8.5, 9.0), (5.0, 9.0)]
        )
        # A state containing the road's middle part.
        self.state = self.alg.box_region(Box((1.0, 1.0), (12.0, 12.0)))

    def _env(self, **kw):
        env = {"C": self.C, "A": self.A}
        env.update(kw)
        return env

    def test_scenario_satisfies_original_system(self):
        from repro.constraints import smugglers_system

        env = self._env(T=self.town, R=self.road, B=self.state)
        assert smugglers_system().holds(self.alg, env)

    def test_triangle_accepts_solution_prefixes(self):
        tri = triangular_form(smugglers_system(), SMUGGLERS_ORDER)
        env = self._env(T=self.town, R=self.road, B=self.state)
        assert tri.check_ground(self.alg, env)
        assert tri.check_prefix(self.alg, env, upto=1)
        assert tri.check_prefix(self.alg, env, upto=2)
        assert tri.check_prefix(self.alg, env)

    def test_triangle_rejects_inland_town_immediately(self):
        """The point of the optimization: a town fully inside C dies at
        level 1, before any join work."""
        tri = triangular_form(smugglers_system(), SMUGGLERS_ORDER)
        inland = self.alg.box_region(Box((5.0, 5.0), (6.0, 6.0)))
        env = self._env(T=inland)
        assert not tri.check_prefix(self.alg, env, upto=1)

    def test_triangle_rejects_road_missing_town(self):
        tri = triangular_form(smugglers_system(), SMUGGLERS_ORDER)
        far_road = self.alg.box_region(Box((9.0, 9.0), (10.0, 10.0)))
        env = self._env(T=self.town, R=far_road)
        assert not tri.check_prefix(self.alg, env, upto=2)
