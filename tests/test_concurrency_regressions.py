"""Regression tests for the lock-discipline fixes flagged by repro-lint.

Three shared-state classes had check-then-act races on their lazy
construction paths: ``WorkerPool.executor`` (two threads could each
build an executor, stranding one unclosed), ``Database.worker_pool``
(two sessions could each install a pool for the same shape), and
``ShardedTable.publish`` (two readers could both publish a shard's
shared-memory block, leaking whichever loses the dict store).  Each
test hammers the lazy path from many threads through a barrier and
asserts exactly-once construction.
"""

import threading

import pytest

from conftest import make_workload

from repro.database import Database
from repro.spatial.partition import WorkerPool
from repro.spatial.shard import ShardedTable

THREADS = 8


def hammer(fn):
    """Run ``fn`` from THREADS threads released together; return results."""
    barrier = threading.Barrier(THREADS)
    results = [None] * THREADS
    errors = []

    def worker(i):
        barrier.wait()
        try:
            results[i] = fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


def test_worker_pool_lazy_executor_is_created_once():
    pool = WorkerPool(workers=2, kind="thread")
    try:
        executors = hammer(pool.executor)
        assert all(ex is executors[0] for ex in executors)
    finally:
        pool.close()


def test_worker_pool_close_then_executor_raises():
    pool = WorkerPool(workers=2, kind="thread")
    pool.close()
    with pytest.raises(RuntimeError):
        pool.executor()


def test_database_worker_pool_get_or_create_is_atomic():
    db = Database()
    try:
        pools = hammer(lambda: db.worker_pool(2, kind="thread"))
        assert all(p is pools[0] for p in pools)
        assert len(db._pools) == 1
    finally:
        db.close()


def test_database_distinct_shapes_get_distinct_pools():
    db = Database()
    try:
        a = db.worker_pool(2, kind="thread")
        b = db.worker_pool(3, kind="thread")
        assert a is not b
        assert db.worker_pool(2, kind="thread") is a
    finally:
        db.close()


def test_sharded_table_publish_is_exactly_once():
    tables, _bindings = make_workload(7, sizes=(8, 12))
    table = next(iter(tables.values()))
    sharding = ShardedTable.build(table, 2)
    try:
        shard = sharding.shards[0]
        blocks = hammer(lambda: sharding.publish(shard))
        # Every caller sees the same block (possibly None when shared
        # memory is unavailable), and it was constructed exactly once.
        assert all(b is blocks[0] for b in blocks)
        assert sharding.shm_published + sharding.shm_failed == 1
    finally:
        sharding.close()


def test_sharded_table_close_is_idempotent_and_publish_after_raises():
    tables, _bindings = make_workload(9, sizes=(8, 12))
    table = next(iter(tables.values()))
    sharding = ShardedTable.build(table, 2)
    sharding.close()
    sharding.close()
    with pytest.raises(RuntimeError):
        sharding.publish(sharding.shards[0])
