"""Tests for R-tree variants: linear split and STR bulk loading."""

import random

import pytest

from repro.boxes import Box, BoxQuery
from repro.spatial import RTree


def _random_boxes(n, seed=0, span=100.0):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        lo = (rng.uniform(0, span), rng.uniform(0, span))
        out.append(
            Box(lo, (lo[0] + rng.uniform(0.5, 8), lo[1] + rng.uniform(0.5, 8)))
        )
    return out


class TestLinearSplit:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            RTree(split_method="cubic")

    def test_invariants_hold(self):
        tree = RTree(max_entries=4, split_method="linear")
        for i, b in enumerate(_random_boxes(250, seed=2)):
            tree.insert(b, i)
        tree.check_invariants()
        assert len(tree) == 250

    def test_search_agrees_with_quadratic(self):
        items = _random_boxes(300, seed=5)
        quad = RTree(max_entries=6, split_method="quadratic")
        lin = RTree(max_entries=6, split_method="linear")
        for i, b in enumerate(items):
            quad.insert(b, i)
            lin.insert(b, i)
        for seed in range(12):
            rng = random.Random(seed)
            lo = (rng.uniform(0, 90), rng.uniform(0, 90))
            probe = Box(lo, (lo[0] + 15, lo[1] + 15))
            q = BoxQuery(overlap=(probe,))
            got_q = {v for _b, v in quad.search(q)}
            got_l = {v for _b, v in lin.search(q)}
            expected = {i for i, b in enumerate(items) if q.matches(b)}
            assert got_q == expected
            assert got_l == expected


class TestRStarSplit:
    def test_invariants_hold(self):
        tree = RTree(max_entries=4, split_method="rstar")
        for i, b in enumerate(_random_boxes(250, seed=21)):
            tree.insert(b, i)
        tree.check_invariants()
        assert len(tree) == 250

    def test_forced_reinserts_fire(self):
        tree = RTree(max_entries=6, split_method="rstar")
        for i, b in enumerate(_random_boxes(300, seed=22)):
            tree.insert(b, i)
        assert tree.stats.reinserts > 0
        assert len(tree) == 300

    def test_search_agrees_with_quadratic(self):
        items = _random_boxes(300, seed=23)
        quad = RTree(max_entries=6, split_method="quadratic")
        rstar = RTree(max_entries=6, split_method="rstar")
        for i, b in enumerate(items):
            quad.insert(b, i)
            rstar.insert(b, i)
        for seed in range(12):
            rng = random.Random(seed)
            lo = (rng.uniform(0, 90), rng.uniform(0, 90))
            q = BoxQuery(overlap=(Box(lo, (lo[0] + 12, lo[1] + 12)),))
            expected = {i for i, b in enumerate(items) if q.matches(b)}
            assert {v for _b, v in rstar.search(q)} == expected
            assert {v for _b, v in quad.search(q)} == expected

    def test_rstar_reads_no_more_than_quadratic(self):
        """Forced reinserts + topological split: tighter clustering."""
        items = _random_boxes(600, seed=24)
        quad = RTree(max_entries=6, split_method="quadratic")
        rstar = RTree(max_entries=6, split_method="rstar")
        for i, b in enumerate(items):
            quad.insert(b, i)
            rstar.insert(b, i)
        quad.stats.reset()
        rstar.stats.reset()
        for seed in range(25):
            rng = random.Random(300 + seed)
            lo = (rng.uniform(0, 90), rng.uniform(0, 90))
            q = BoxQuery(overlap=(Box(lo, (lo[0] + 5, lo[1] + 5)),))
            list(quad.search(q))
            list(rstar.search(q))
        assert rstar.stats.node_reads <= quad.stats.node_reads

    def test_empty_boxes_legal(self):
        from repro.boxes.box import EMPTY_BOX

        tree = RTree(max_entries=4, split_method="rstar")
        for i in range(20):
            tree.insert(EMPTY_BOX, f"e{i}")
        for i, b in enumerate(_random_boxes(60, seed=25)):
            tree.insert(b, i)
        tree.check_invariants()
        assert len(tree) == 80

    def test_delete_after_rstar_build(self):
        items = _random_boxes(120, seed=26)
        tree = RTree(max_entries=4, split_method="rstar")
        for i, b in enumerate(items):
            tree.insert(b, i)
        assert tree.delete(items[5], 5)
        assert not tree.delete(items[5], 5)
        assert len(tree) == 119
        tree.check_invariants()


class TestBulkLoad:
    def test_empty_input(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0
        assert list(tree.all_entries()) == []

    def test_small_input_single_leaf(self):
        items = _random_boxes(5, seed=1)
        tree = RTree.bulk_load([(b, i) for i, b in enumerate(items)])
        assert len(tree) == 5
        assert tree.height() == 1
        tree.check_invariants()

    def test_invariants_and_contents(self):
        items = _random_boxes(400, seed=3)
        tree = RTree.bulk_load([(b, i) for i, b in enumerate(items)])
        tree.check_invariants()
        assert sorted(v for _b, v in tree.all_entries()) == list(range(400))

    def test_search_agrees_with_incremental(self):
        items = _random_boxes(350, seed=7)
        bulk = RTree.bulk_load([(b, i) for i, b in enumerate(items)])
        incr = RTree(max_entries=8)
        for i, b in enumerate(items):
            incr.insert(b, i)
        for seed in range(10):
            rng = random.Random(100 + seed)
            lo = (rng.uniform(0, 85), rng.uniform(0, 85))
            q = BoxQuery(overlap=(Box(lo, (lo[0] + 10, lo[1] + 10)),))
            assert {v for _b, v in bulk.search(q)} == {
                v for _b, v in incr.search(q)
            }

    def test_bulk_load_is_shallower_or_equal(self):
        items = _random_boxes(500, seed=9)
        bulk = RTree.bulk_load(
            [(b, i) for i, b in enumerate(items)], max_entries=8
        )
        incr = RTree(max_entries=8)
        for i, b in enumerate(items):
            incr.insert(b, i)
        assert bulk.height() <= incr.height()

    def test_bulk_load_probes_fewer_nodes(self):
        """STR packing's point: better clustering, fewer reads/query."""
        items = _random_boxes(600, seed=11)
        bulk = RTree.bulk_load(
            [(b, i) for i, b in enumerate(items)], max_entries=8
        )
        incr = RTree(max_entries=8)
        for i, b in enumerate(items):
            incr.insert(b, i)
        bulk.stats.reset()
        incr.stats.reset()
        for seed in range(20):
            rng = random.Random(200 + seed)
            lo = (rng.uniform(0, 90), rng.uniform(0, 90))
            q = BoxQuery(overlap=(Box(lo, (lo[0] + 5, lo[1] + 5)),))
            list(bulk.search(q))
            list(incr.search(q))
        assert bulk.stats.node_reads <= incr.stats.node_reads

    def test_bulk_load_supports_insert_after(self):
        items = _random_boxes(50, seed=13)
        tree = RTree.bulk_load([(b, i) for i, b in enumerate(items)])
        extra = Box((1, 1), (2, 2))
        tree.insert(extra, "extra")
        assert len(tree) == 51
        q = BoxQuery(overlap=(Box((0.5, 0.5), (1.5, 1.5)),))
        assert "extra" in {v for _b, v in tree.search(q)}

    def test_1d_bulk_load(self):
        rng = random.Random(4)
        items = [
            Box((rng.uniform(0, 100),), (rng.uniform(0, 100) + 1,))
            for _ in range(100)
        ]
        items = [Box((min(b.lo[0], b.hi[0] - 1),), (b.hi[0],)) for b in items]
        tree = RTree.bulk_load([(b, i) for i, b in enumerate(items)])
        tree.check_invariants()
        q = BoxQuery(overlap=(Box((20.0,), (30.0,)),))
        expected = {i for i, b in enumerate(items) if q.matches(b)}
        assert {v for _b, v in tree.search(q)} == expected
