"""Tests for the term layer, consensus, Blake canonical form and QMC.

Includes the paper's worked BCF computation (Section 4, Example 2):
``f = x y + x'(y + z w)`` has ``BCF(f) = y + x' z w``.
"""

import pytest
from hypothesis import given, settings

from repro.boolean import (
    Term,
    absorb,
    blake_canonical_form,
    blake_le,
    consensus,
    cover_to_formula,
    equivalent,
    formula_to_cover,
    implies,
    is_implicant,
    is_prime_implicant,
    prime_implicants_bruteforce,
    prime_implicants_qmc,
    syllogistic_le,
    term,
    to_dnf,
    variables,
)
from tests.test_boolean_semantics import formulas


class TestTerm:
    def test_builder_syntax(self):
        t = term("x", "~y", "z'")
        assert t.polarity("x") is True
        assert t.polarity("y") is False
        assert t.polarity("z") is False
        assert t.polarity("w") is None

    def test_builder_rejects_contradiction(self):
        with pytest.raises(ValueError):
            term("x", "~x")

    def test_empty_term_is_true(self):
        assert Term({}).is_true()
        assert Term({}).to_formula() == cover_to_formula([Term({})])

    def test_subterm_order(self):
        assert term("x").is_subterm_of(term("x", "y"))
        assert not term("x", "y").is_subterm_of(term("x"))
        assert not term("x").is_subterm_of(term("~x"))

    def test_conjoin(self):
        assert term("x").conjoin(term("y")) == term("x", "y")
        assert term("x").conjoin(term("~x")) is None

    def test_positive_negative_parts(self):
        t = term("x", "~y", "z")
        assert t.positive_part() == term("x", "z")
        assert t.negative_part() == term("~y")

    def test_without_and_with_literal(self):
        t = term("x", "y")
        assert t.without("x") == term("y")
        assert t.with_literal("z", False) == term("x", "y", "~z")
        assert t.with_literal("x", False) is None

    def test_to_str(self):
        assert term("x", "~y").to_str() == "x.y'"
        assert Term({}).to_str() == "1"

    def test_evaluate(self):
        t = term("x", "~y")
        assert t.evaluate({"x": True, "y": False})
        assert not t.evaluate({"x": True, "y": True})


class TestConsensus:
    def test_paper_rule(self):
        # x p, x' q -> p q
        t1 = term("x", "p")
        t2 = term("~x", "q")
        assert consensus(t1, t2) == term("p", "q")

    def test_no_opposition(self):
        assert consensus(term("x", "y"), term("x", "z")) is None

    def test_double_opposition(self):
        assert consensus(term("x", "y"), term("~x", "~y")) is None

    def test_contradictory_result(self):
        assert consensus(term("x", "y"), term("~x", "~y", "z")) is None

    def test_consensus_is_implied(self):
        t1, t2 = term("x", "y"), term("~x", "z")
        c = consensus(t1, t2)
        f = cover_to_formula([t1, t2])
        assert implies(c.to_formula(), f)


class TestAbsorb:
    def test_absorption_rule(self):
        # p + p q = p
        kept = absorb([term("p"), term("p", "q")])
        assert kept == [term("p")]

    def test_keeps_incomparable(self):
        kept = absorb([term("x", "y"), term("x", "z")])
        assert set(kept) == {term("x", "y"), term("x", "z")}

    def test_removes_duplicates(self):
        assert absorb([term("x"), term("x")]) == [term("x")]


class TestFormulaToCover:
    def test_distribution(self):
        x, y, z = variables("x", "y", "z")
        cover = formula_to_cover(x & (y | z))
        assert set(cover) == {term("x", "y"), term("x", "z")}

    def test_negation_pushed(self):
        x, y = variables("x", "y")
        cover = formula_to_cover(~(x | y))
        assert set(cover) == {term("~x", "~y")}

    def test_contradictions_dropped(self):
        x, y = variables("x", "y")
        cover = formula_to_cover(x & ~x)
        assert cover == []

    @given(formulas())
    @settings(max_examples=100)
    def test_cover_equivalent_to_formula(self, f):
        assert equivalent(cover_to_formula(formula_to_cover(f)), f)

    @given(formulas())
    @settings(max_examples=60)
    def test_to_dnf_equivalent(self, f):
        assert equivalent(to_dnf(f), f)


class TestBlake:
    def test_paper_example_2(self):
        x, y, z, w = variables("x", "y", "z", "w")
        f = (x & y) | (~x & (y | (z & w)))
        bcf = blake_canonical_form(f)
        assert set(bcf) == {term("y"), term("~x", "z", "w")}

    def test_constants(self):
        from repro.boolean import FALSE, TRUE

        assert blake_canonical_form(FALSE) == []
        assert blake_canonical_form(TRUE) == [Term({})]

    def test_classic_consensus_example(self):
        # x y + x' z has the consensus prime y z.
        x, y, z = variables("x", "y", "z")
        bcf = blake_canonical_form((x & y) | (~x & z))
        assert set(bcf) == {term("x", "y"), term("~x", "z"), term("y", "z")}

    def test_every_bcf_term_is_prime(self):
        x, y, z = variables("x", "y", "z")
        f = (x & y) | (~x & z) | (y & ~z)
        for t in blake_canonical_form(f):
            assert is_prime_implicant(t, f)

    @given(formulas(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_bcf_equals_bruteforce_primes(self, f):
        assert set(blake_canonical_form(f)) == set(
            prime_implicants_bruteforce(f)
        )

    @given(formulas(max_leaves=8))
    @settings(max_examples=80, deadline=None)
    def test_bcf_equals_qmc(self, f):
        assert set(blake_canonical_form(f)) == set(prime_implicants_qmc(f))

    @given(formulas())
    @settings(max_examples=80, deadline=None)
    def test_bcf_denotes_f(self, f):
        assert equivalent(cover_to_formula(blake_canonical_form(f)), f)


class TestTheorem18:
    """Blake: for SOP g, ``g <= f`` iff g is formally included in BCF(f)."""

    @given(formulas(max_leaves=6), formulas(max_leaves=6))
    @settings(max_examples=60, deadline=None)
    def test_syllogistic_matches_semantic(self, g, f):
        g_cover = formula_to_cover(g)
        assert blake_le(g_cover, f) == implies(
            cover_to_formula(g_cover), f
        )

    def test_syllogistic_le_direct(self):
        # x y << x
        assert syllogistic_le([term("x", "y")], [term("x")])
        assert not syllogistic_le([term("x")], [term("x", "y")])


class TestImplicantPredicates:
    def test_is_implicant(self):
        x, y = variables("x", "y")
        assert is_implicant(term("x", "y"), x)
        assert not is_implicant(term("y"), x)

    def test_is_prime_implicant(self):
        x, y = variables("x", "y")
        f = x | y
        assert is_prime_implicant(term("x"), f)
        assert not is_prime_implicant(term("x", "y"), f)
