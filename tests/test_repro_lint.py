"""Tests for the repro-lint static-analysis suite (``tools/analyze``).

Each pass gets fixture snippets reproducing its historical regression
class (known-bad triggers) plus known-good twins that must stay silent;
the suppression comments, the baseline, the JSON reporter schema, and
the CLI exit codes are pinned as well.
"""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.analyze.core import (  # noqa: E402
    Analyzer,
    Baseline,
    Module,
    SymbolTable,
)
from tools.analyze.passes import (  # noqa: E402
    ALL_PASSES,
    BillingPass,
    ConcurrencyPass,
    DeterminismPass,
    OperatorContractPass,
    PickleSafetyPass,
)
from tools.analyze.reporters import render_json  # noqa: E402


def run_pass(pass_obj, *sources_with_paths):
    """Run one pass over synthetic modules; returns the findings."""
    modules = [
        Module(path, textwrap.dedent(src)) for path, src in sources_with_paths
    ]
    symtab = SymbolTable()
    for m in modules:
        symtab.add_module(m)
    findings = []
    for m in modules:
        findings.extend(pass_obj.run(m, symtab))
    return findings


def rules_of(findings):
    return sorted({f.rule for f in findings})


# -- pass 1: determinism -------------------------------------------------------


def test_determinism_flags_unseeded_random():
    findings = run_pass(
        DeterminismPass(),
        (
            "src/repro/engine/sampler.py",
            """
            import random

            def jitter(rows):
                return rows[random.randint(0, 3):]

            def fresh():
                return random.Random()
            """,
        ),
    )
    assert rules_of(findings) == ["REPRO101"]
    assert len(findings) == 2


def test_determinism_allows_seeded_random():
    findings = run_pass(
        DeterminismPass(),
        (
            "src/repro/engine/sampler.py",
            """
            import random

            def jitter(rows, seed):
                rng = random.Random(seed)
                return rows[rng.randint(0, 3):]
            """,
        ),
    )
    assert findings == []


def test_determinism_flags_wall_clock_in_result_path():
    findings = run_pass(
        DeterminismPass(),
        (
            "src/repro/engine/pick.py",
            """
            import time

            def pick(rows):
                if time.time() % 2 > 1:
                    return rows[:1]
                return rows
            """,
        ),
    )
    assert rules_of(findings) == ["REPRO102"]


def test_determinism_allows_timing_bookkeeping():
    findings = run_pass(
        DeterminismPass(),
        (
            "src/repro/engine/timed.py",
            """
            import time

            def run(plan):
                started = time.perf_counter()
                out = list(plan)
                elapsed = time.perf_counter() - started
                return out, elapsed
            """,
        ),
    )
    assert findings == []


def test_determinism_flags_set_iteration_and_allows_sorted():
    findings = run_pass(
        DeterminismPass(),
        (
            "src/repro/spatial/merge.py",
            """
            def merge(parts):
                seen = set()
                for p in parts:
                    seen |= p
                out = []
                for x in seen:
                    out.append(x)
                good = [y for s in [seen] for y in sorted(seen)]
                return out + good
            """,
        ),
    )
    assert rules_of(findings) == ["REPRO103"]
    assert len(findings) == 1


def test_determinism_flags_id_ordering():
    findings = run_pass(
        DeterminismPass(),
        (
            "src/repro/spatial/order.py",
            """
            def order(rows):
                return sorted(rows, key=id)

            def tie(a, b):
                return a if id(a) < id(b) else b
            """,
        ),
    )
    assert rules_of(findings) == ["REPRO104"]
    assert len(findings) == 2


def test_determinism_ignores_files_outside_engine_and_spatial():
    findings = run_pass(
        DeterminismPass(),
        (
            "src/repro/datagen/shapes.py",
            """
            import random

            def noise():
                return random.random()
            """,
        ),
    )
    assert findings == []


# -- pass 2: counter billing ---------------------------------------------------

OPERATOR_PRELUDE = """
class PhysicalOperator:
    def __init__(self, child=None):
        self.child = child
        self.stats = object()
        self.est_rows = None

    def iterate(self, ctx):
        raise NotImplementedError

class ExtendStep(PhysicalOperator):
    def iterate(self, ctx):
        self.stats.executed = True
        yield from self._rows(ctx, None)

    def _rows(self, ctx, binding):
        raise NotImplementedError
"""


def test_billing_flags_unbilled_probe():
    findings = run_pass(
        BillingPass(),
        (
            "src/repro/engine/physical.py",
            OPERATOR_PRELUDE
            + """
class SilentProbe(ExtendStep):
    def _rows(self, ctx, binding):
        return self.table.probe(binding)
""",
        ),
    )
    assert rules_of(findings) == ["REPRO201"]


def test_billing_allows_billed_probe():
    findings = run_pass(
        BillingPass(),
        (
            "src/repro/engine/physical.py",
            OPERATOR_PRELUDE
            + """
class BilledProbe(ExtendStep):
    def _rows(self, ctx, binding):
        self.stats.probes += 1
        return self.table.probe(binding)
""",
        ),
    )
    assert findings == []


def test_billing_flags_scalar_vectorized_asymmetry():
    findings = run_pass(
        BillingPass(),
        (
            "src/repro/engine/physical.py",
            OPERATOR_PRELUDE
            + """
class Asym(ExtendStep):
    def _rows(self, ctx, binding):
        rows = self.table.probe(binding)
        self.stats.probes += 1
        if ctx.vectorize:
            self.stats.pair_tests += len(rows)
            self.stats.vectorized_batches += 1
        else:
            pass
        return rows
""",
        ),
    )
    assert rules_of(findings) == ["REPRO202"]
    assert "pair_tests" in findings[0].message


def test_billing_allows_symmetric_branches():
    findings = run_pass(
        BillingPass(),
        (
            "src/repro/engine/physical.py",
            OPERATOR_PRELUDE
            + """
class Sym(ExtendStep):
    def _rows(self, ctx, binding):
        rows = self.table.probe(binding)
        self.stats.probes += 1
        if ctx.vectorize:
            self.stats.pair_tests += len(rows)
            self.stats.vectorized_batches += 1
        else:
            for _r in rows:
                self.stats.pair_tests += 1
        return rows
""",
        ),
    )
    assert findings == []


# -- pass 3: concurrency -------------------------------------------------------

GUARDED_CLASS = """
import threading

class Cache:
    def __init__(self):
        self._lock = threading.RLock()
        self._entries = {}  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
"""


def test_concurrency_flags_unguarded_mutation():
    findings = run_pass(
        ConcurrencyPass(),
        (
            "src/repro/spatial/cache.py",
            GUARDED_CLASS
            + """
    def store(self, key, value):
        self._entries[key] = value

    def bump(self):
        self.hits += 1

    def drop(self, key):
        self._entries.pop(key, None)
""",
        ),
    )
    assert rules_of(findings) == ["REPRO301"]
    assert len(findings) == 3


def test_concurrency_allows_locked_mutation_and_conventions():
    findings = run_pass(
        ConcurrencyPass(),
        (
            "src/repro/spatial/cache.py",
            GUARDED_CLASS
            + """
    def store(self, key, value):
        with self._lock:
            self._entries[key] = value
            self.hits += 1

    def _evict_locked(self):
        self._entries.clear()

    def read(self, key):
        return self._entries.get(key)
""",
        ),
    )
    # __init__ itself, locked mutations, the _locked-suffix helper, and
    # plain reads are all allowed.
    assert findings == []


def test_concurrency_flags_mutation_in_nested_closure():
    findings = run_pass(
        ConcurrencyPass(),
        (
            "src/repro/spatial/cache.py",
            GUARDED_CLASS
            + """
    def deferred(self):
        with self._lock:
            def cb():
                self.hits += 1
            return cb
""",
        ),
    )
    # The closure runs later, when the lock is no longer held.
    assert rules_of(findings) == ["REPRO301"]


# -- pass 4: pickle safety -----------------------------------------------------


def test_pickle_safety_flags_box_graph_pool_submission():
    # The historical Box.__reduce__ regression: raw (grid, tile, Box...)
    # task graphs submitted to a process pool.
    findings = run_pass(
        PickleSafetyPass(),
        (
            "src/repro/spatial/join.py",
            """
            def sweep_all(exchange, grid, tiles):
                tasks = [(grid, t, t.boxes) for t in tiles]
                if exchange.uses_processes(len(tasks)):
                    return exchange.run(_sweep_tile, tasks)
                return exchange.run(_sweep_tile, tasks)
            """,
        ),
    )
    assert rules_of(findings) == ["REPRO401"]
    assert len(findings) == 1  # the else-branch dispatch is fine


def test_pickle_safety_allows_packed_forms_and_guarded_sites():
    findings = run_pass(
        PickleSafetyPass(),
        (
            "src/repro/spatial/join.py",
            """
            def sweep_all(exchange, grid, tiles):
                tasks = [(grid, t, t.boxes) for t in tiles]
                if exchange.uses_processes(len(tasks)):
                    packed = [_pack_tile_task(t) for t in tasks]
                    return exchange.run(_sweep_tile_packed, packed)
                return exchange.run(_sweep_tile, tasks)

            def generic(pool, fn, tasks):
                return pool.map(fn, tasks)
            """,
        ),
    )
    assert findings == []


def test_pickle_safety_flags_lambda_and_nested_workers():
    findings = run_pass(
        PickleSafetyPass(),
        (
            "src/repro/spatial/join.py",
            """
            def sweep(exchange, tasks):
                out = exchange.run(lambda t: t, tasks)

                def helper(t):
                    return t

                return out + exchange.run(helper, tasks)
            """,
        ),
    )
    assert rules_of(findings) == ["REPRO402"]
    assert len(findings) == 2


def test_pickle_safety_allows_thread_only_receivers():
    findings = run_pass(
        PickleSafetyPass(),
        (
            "src/repro/spatial/join.py",
            """
            def sweep(tasks):
                exchange = Exchange(4, kind="thread")
                return exchange.run(lambda t: t, tasks)
            """,
        ),
    )
    assert findings == []


# -- pass 5: operator contract -------------------------------------------------


def test_contract_flags_missing_iterate_and_hook():
    findings = run_pass(
        OperatorContractPass(),
        (
            "src/repro/engine/physical.py",
            OPERATOR_PRELUDE
            + """
class NoHook(ExtendStep):
    pass

class NoIterate(PhysicalOperator):
    def describe(self):
        return "broken"
""",
        ),
    )
    assert rules_of(findings) == ["REPRO501"]
    assert len(findings) == 2


def test_contract_flags_missing_super_init():
    findings = run_pass(
        OperatorContractPass(),
        (
            "src/repro/engine/physical.py",
            OPERATOR_PRELUDE
            + """
class BadInit(ExtendStep):
    def __init__(self, table):
        self.table = table

    def _rows(self, ctx, binding):
        return []
""",
        ),
    )
    assert rules_of(findings) == ["REPRO502"]


def test_contract_flags_missing_executed_mark():
    findings = run_pass(
        OperatorContractPass(),
        (
            "src/repro/engine/physical.py",
            OPERATOR_PRELUDE
            + """
class NoMark(PhysicalOperator):
    def iterate(self, ctx):
        yield from ()
""",
        ),
    )
    assert rules_of(findings) == ["REPRO503"]


def test_contract_accepts_well_formed_operators():
    findings = run_pass(
        OperatorContractPass(),
        (
            "src/repro/engine/physical.py",
            OPERATOR_PRELUDE
            + """
class Scan(ExtendStep):
    def __init__(self, child, table):
        super().__init__(child)
        self.table = table

    def _rows(self, ctx, binding):
        return iter(self.table)

class Custom(PhysicalOperator):
    def iterate(self, ctx):
        self.stats.executed = True
        yield from ()
""",
        ),
    )
    assert findings == []


# -- suppressions, baseline, reporters, CLI ------------------------------------


def test_inline_suppression_comment_is_honored():
    analyzer = Analyzer([DeterminismPass()])
    module = Module(
        "src/repro/engine/s.py",
        textwrap.dedent(
            """
            import random

            def jitter():
                return random.random()  # repro-lint: disable=REPRO101
            """
        ),
    )
    symtab = SymbolTable()
    symtab.add_module(module)
    findings = analyzer.run([module], symtab)
    assert findings == []
    assert analyzer.suppressed_inline == 1


def test_standalone_suppression_applies_to_next_line():
    analyzer = Analyzer([DeterminismPass()])
    module = Module(
        "src/repro/engine/s.py",
        textwrap.dedent(
            """
            import random

            def jitter():
                # repro-lint: disable=REPRO101
                return random.random()
            """
        ),
    )
    symtab = SymbolTable()
    symtab.add_module(module)
    assert analyzer.run([module], symtab) == []
    assert analyzer.suppressed_inline == 1


def test_file_level_suppression():
    analyzer = Analyzer([DeterminismPass()])
    module = Module(
        "src/repro/engine/s.py",
        "# repro-lint: disable-file=REPRO101\n"
        "import random\n\n"
        "def a():\n    return random.random()\n\n"
        "def b():\n    return random.random()\n",
    )
    symtab = SymbolTable()
    symtab.add_module(module)
    assert analyzer.run([module], symtab) == []
    assert analyzer.suppressed_inline == 2


def test_baseline_filters_by_rule_path_symbol_not_line(tmp_path):
    analyzer = Analyzer([DeterminismPass()])
    source = textwrap.dedent(
        """
        import random

        def jitter():
            return random.random()
        """
    )
    module = Module("src/repro/engine/s.py", source)
    symtab = SymbolTable()
    symtab.add_module(module)
    findings = analyzer.run([module], symtab)
    assert len(findings) == 1

    baseline_path = tmp_path / "baseline.json"
    Baseline.write(baseline_path, findings)
    baseline = Baseline.load(baseline_path)

    # Same finding at a different line (extra blank lines above) still
    # matches: the baseline keys on (rule, path, symbol).
    shifted = Module("src/repro/engine/s.py", "\n\n\n" + source)
    symtab2 = SymbolTable()
    symtab2.add_module(shifted)
    assert analyzer.run([shifted], symtab2, baseline=baseline) == []
    assert analyzer.baselined == 1


def test_json_reporter_schema_is_stable():
    analyzer = Analyzer([DeterminismPass()])
    module = Module(
        "src/repro/engine/s.py",
        "import random\n\ndef f():\n    return random.random()\n",
    )
    symtab = SymbolTable()
    symtab.add_module(module)
    findings = analyzer.run([module], symtab)
    payload = json.loads(render_json(findings, 0, 0))
    assert payload["tool"] == "repro-lint"
    assert payload["schema_version"] == 1
    assert set(payload) == {"tool", "schema_version", "findings", "summary"}
    assert set(payload["findings"][0]) == {
        "rule",
        "severity",
        "path",
        "line",
        "column",
        "symbol",
        "message",
        "fix_hint",
    }
    assert set(payload["summary"]) == {
        "total",
        "by_rule",
        "suppressed_inline",
        "baselined",
    }
    assert payload["summary"]["total"] == 1
    assert payload["summary"]["by_rule"] == {"REPRO101": 1}


def test_all_rule_ids_are_unique():
    analyzer = Analyzer([cls() for cls in ALL_PASSES])
    ids = [r.id for r in analyzer.all_rules()]
    assert len(ids) == len(set(ids))
    assert all(rid.startswith("REPRO") for rid in ids)


def test_cli_exits_zero_on_clean_tree_and_nonzero_on_findings(tmp_path):
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("def f():\n    return 1\n")
    dirty = tmp_path / "src" / "repro" / "engine"
    dirty.mkdir(parents=True)
    (dirty / "bad.py").write_text(
        "import random\n\ndef f():\n    return random.random()\n"
    )

    env_cmd = [sys.executable, "-m", "tools.analyze", "--no-baseline"]
    ok = subprocess.run(
        env_cmd + [str(clean)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert ok.returncode == 0, ok.stdout + ok.stderr

    bad = subprocess.run(
        env_cmd + ["--format", "json", str(tmp_path / "src")],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert bad.returncode == 1, bad.stdout + bad.stderr
    payload = json.loads(bad.stdout)
    assert payload["summary"]["by_rule"] == {"REPRO101": 1}


def test_real_tree_is_clean():
    """The acceptance gate: the shipped tree has no findings."""
    result = subprocess.run(
        [sys.executable, "-m", "tools.analyze", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
