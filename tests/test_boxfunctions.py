"""Tests for bounding-box function ASTs (repro.boxes.functions)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.boxes import (
    BOT,
    Box,
    BoxConst,
    BoxMeet,
    BoxVar,
    EMPTY_BOX,
    TOP,
    bjoin,
    bmeet,
    evaluate_boxfunc,
    is_monotone_instance,
    naive_transform,
    render_boxfunc,
)
from tests.strategies import boxes

UNIVERSE = Box((0.0, 0.0), (16.0, 16.0))


def boxfuncs(names=("x", "y", "z"), max_leaves=6):
    """Random bounding-box functions over the given variables."""
    leaf = st.one_of(
        st.sampled_from([BoxVar(n) for n in names]),
        st.just(TOP),
        st.just(BOT),
    )

    def extend(children):
        return st.one_of(
            st.builds(lambda a, b: bmeet(a, b), children, children),
            st.builds(lambda a, b: bjoin(a, b), children, children),
        )

    return st.recursive(leaf, extend, max_leaves=max_leaves)


def env_strategy(names=("x", "y", "z")):
    return st.fixed_dictionaries({n: boxes() for n in names})


class TestSmartConstructors:
    def test_meet_identity(self):
        x = BoxVar("x")
        assert bmeet(x, TOP) == x
        assert bmeet(x, BOT) == BOT
        assert bmeet() == TOP

    def test_join_identity(self):
        x = BoxVar("x")
        assert bjoin(x, BOT) == x
        assert bjoin(x, TOP) == TOP
        assert bjoin() == BOT

    def test_flatten_and_dedup(self):
        x, y, z = BoxVar("x"), BoxVar("y"), BoxVar("z")
        f = bmeet(x, bmeet(y, z), x)
        assert isinstance(f, BoxMeet)
        assert len(f.args) == 3

    def test_commutative_canonical(self):
        x, y = BoxVar("x"), BoxVar("y")
        assert bmeet(x, y) == bmeet(y, x)
        assert bjoin(x, y) == bjoin(y, x)

    def test_empty_const_collapses_meet(self):
        assert bmeet(BoxVar("x"), BoxConst(EMPTY_BOX)) == BOT

    def test_variables(self):
        f = bjoin(BoxVar("x"), bmeet(BoxVar("y"), BoxVar("z")))
        assert f.variables() == frozenset({"x", "y", "z"})

    def test_var_name_validation(self):
        with pytest.raises(TypeError):
            BoxVar("")


class TestEvaluation:
    def test_var_lookup(self):
        b = Box((0, 0), (1, 1))
        assert evaluate_boxfunc(BoxVar("x"), {"x": b}) == b

    def test_top_resolution_with_universe(self):
        assert evaluate_boxfunc(TOP, {}, UNIVERSE) == UNIVERSE

    def test_top_resolution_without_universe(self):
        env = {"x": Box((0, 0), (2, 2)), "y": Box((4, 4), (6, 6))}
        assert evaluate_boxfunc(TOP, env) == Box((0, 0), (6, 6))

    def test_meet_join_semantics(self):
        a, b = Box((0, 0), (4, 4)), Box((2, 2), (6, 6))
        env = {"x": a, "y": b}
        f = bmeet(BoxVar("x"), BoxVar("y"))
        g = bjoin(BoxVar("x"), BoxVar("y"))
        assert evaluate_boxfunc(f, env) == a.meet(b)
        assert evaluate_boxfunc(g, env) == a.enclose(b)

    def test_callable_sugar(self):
        f = bmeet(BoxVar("x"), BoxVar("y"))
        env = {"x": Box((0, 0), (4, 4)), "y": Box((2, 2), (6, 6))}
        assert f(env) == Box((2, 2), (4, 4))

    @given(boxfuncs(), env_strategy(), env_strategy())
    @settings(max_examples=100)
    def test_monotonicity(self, f, env1, env2):
        """Every bounding-box function is monotone w.r.t. pointwise ⊑."""
        env_small = {n: env1[n].meet(env2[n]) for n in env1}
        env_big = {n: env1[n].enclose(env2[n]) for n in env1}
        assert is_monotone_instance(f, env_small, env_big, UNIVERSE)


class TestRender:
    def test_render_shapes(self):
        f = bjoin(bmeet(BoxVar("x"), BoxVar("y")), BoxVar("z"))
        text = render_boxfunc(f)
        assert "[x]" in text and "^" in text and "v" in text
        assert render_boxfunc(TOP) == "TOP"
        assert render_boxfunc(BOT) == "EMPTY"


class TestNaiveTransform:
    def test_paper_representation_dependence(self):
        """(x∧y)∨(x∧z) and x∧(y∨z) denote the same Boolean function but
        different box functions under the naive transform (paper §4)."""
        from repro.boolean import variables

        x, y, z = variables("x", "y", "z")
        f1 = naive_transform((x & y) | (x & z))
        f2 = naive_transform(x & (y | z))
        # y and z are far apart; x sits in the gap: the meets are empty
        # but x is inside the enclosure of y and z.
        env = {
            "x": Box((0.0, 4.0), (1.0, 6.0)),
            "y": Box((0.0, 0.0), (1.0, 1.0)),
            "z": Box((0.0, 9.0), (1.0, 10.0)),
        }
        v1 = evaluate_boxfunc(f1, env, UNIVERSE)
        v2 = evaluate_boxfunc(f2, env, UNIVERSE)
        assert v1 != v2
        assert v1.le(v2)  # the SOP version is tighter here

    def test_negation_maps_to_top(self):
        from repro.boolean import variables

        (x,) = variables("x")
        assert naive_transform(~x) == TOP

    def test_constants(self):
        from repro.boolean import FALSE, TRUE

        assert naive_transform(TRUE) == TOP
        assert naive_transform(FALSE) == BOT
