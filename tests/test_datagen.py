"""Tests for the synthetic map and workload generators."""

import random

import pytest

from repro.algebra import RegionAlgebra
from repro.boxes import Box
from repro.datagen import (
    grid_partition,
    make_map,
    overlay_query,
    random_axis_path,
    random_box,
    random_region,
    sandwich_query,
    smugglers_query,
    thick_polyline,
)


class TestShapes:
    def test_random_box_inside_universe(self):
        rng = random.Random(0)
        universe = Box((0.0, 0.0), (50.0, 50.0))
        for _ in range(100):
            b = random_box(rng, universe)
            assert b.le(universe)
            assert not b.is_empty()

    def test_grid_partition_covers_exactly(self):
        universe = Box((0.0, 0.0), (12.0, 12.0))
        cells = grid_partition(universe, (3, 4))
        assert len(cells) == 12
        alg = RegionAlgebra(universe)
        union = alg.join_all(cells)
        assert alg.eq(union, alg.top)
        for i, a in enumerate(cells):
            for b in cells[i + 1 :]:
                assert alg.is_zero(alg.meet(a, b))

    def test_grid_partition_validates_dims(self):
        with pytest.raises(ValueError):
            grid_partition(Box((0.0,), (1.0,)), (2, 2))

    def test_thick_polyline(self):
        r = thick_polyline([(0, 0), (10, 0), (10, 10)], thickness=1.0)
        assert not r.is_empty()
        assert r.contains_point((5, 0))
        assert r.contains_point((10, 5))
        assert not r.contains_point((5, 5))

    def test_thick_polyline_rejects_diagonals(self):
        with pytest.raises(ValueError):
            thick_polyline([(0, 0), (5, 5)])

    def test_random_axis_path_is_axis_aligned(self):
        rng = random.Random(1)
        path = random_axis_path(rng, (0, 0), (20, 20))
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            assert x1 == x2 or y1 == y2

    def test_random_region(self):
        rng = random.Random(2)
        universe = Box((0.0, 0.0), (50.0, 50.0))
        r = random_region(rng, universe, pieces=4)
        assert r.bounding_box().le(universe)


class TestSmugglersMap:
    def test_determinism(self):
        m1 = make_map(seed=42, n_towns=10, n_roads=10)
        m2 = make_map(seed=42, n_towns=10, n_roads=10)
        assert m1.border_town_ids == m2.border_town_ids
        assert m1.good_road_ids == m2.good_road_ids
        assert [t.bounding_box() for t in m1.towns] == [
            t.bounding_box() for t in m2.towns
        ]

    def test_shape_counts(self):
        m = make_map(seed=0, n_towns=15, n_roads=12, states_grid=(2, 3))
        assert len(m.towns) == 15
        assert len(m.roads) == 12
        assert len(m.states) == 6

    def test_border_towns_straddle(self):
        alg = RegionAlgebra(Box((0.0, 0.0), (100.0, 100.0)))
        m = make_map(seed=1, n_towns=20, n_roads=5)
        outside = alg.complement(m.country)
        for i in m.border_town_ids:
            town = m.towns[i]
            assert not alg.is_zero(alg.meet(town, outside)), i
        interior = [
            i for i in range(len(m.towns)) if i not in m.border_town_ids
        ]
        for i in interior:
            assert alg.le(m.towns[i], m.country), i

    def test_states_partition_country(self):
        alg = RegionAlgebra(Box((0.0, 0.0), (100.0, 100.0)))
        m = make_map(seed=3, states_grid=(3, 3))
        union = alg.join_all(m.states)
        assert alg.eq(union, m.country)

    def test_area_inside_country(self):
        alg = RegionAlgebra(Box((0.0, 0.0), (100.0, 100.0)))
        m = make_map(seed=4)
        assert alg.le(m.area, m.country)

    def test_good_roads_yield_answers(self):
        from repro.engine import run_query

        q, m = smugglers_query(
            seed=6, n_towns=12, n_roads=12, states_grid=(2, 2)
        )
        answers, _ = run_query(q, "boxplan")
        if m.good_road_ids and m.border_town_ids:
            assert answers
            road_ids = {a["R"].oid for a in answers}
            assert road_ids <= set(m.good_road_ids)

    def test_tables(self):
        m = make_map(seed=0, n_towns=5, n_roads=5)
        tables = m.tables()
        assert set(tables) == {"T", "R", "B"}
        assert len(tables["T"]) == 5


class TestWorkloads:
    def test_overlay_query_valid(self):
        q = overlay_query(n_left=10, n_right=10, seed=0)
        assert set(q.unknowns) == {"x", "y"}

    def test_sandwich_query_valid(self):
        q = sandwich_query(n_items=10, seed=0)
        assert q.unknowns == ("x",)
        assert set(q.constants) == {"HI", "LO"}

    def test_containment_chain(self):
        from repro.datagen import containment_chain_query

        q = containment_chain_query(n_per_table=10, depth=4, seed=0)
        assert len(q.unknowns) == 4
