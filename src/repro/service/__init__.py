"""The resident query service (snapshot isolation over asyncio HTTP).

See :mod:`repro.service.server` for the architecture — lock-free
snapshot reads, background rebuild, atomic swap with probe-cache purge
— and :mod:`repro.service.client` for the matching blocking client.
"""

from .client import ServiceClient
from .server import (
    QueryService,
    ServiceServer,
    SnapshotStore,
    serve_in_thread,
)

__all__ = [
    "QueryService",
    "ServiceClient",
    "ServiceServer",
    "SnapshotStore",
    "serve_in_thread",
]
