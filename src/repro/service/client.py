"""A small blocking client for the query service (stdlib ``http.client``).

Mirrors the server's endpoints one method each; payload/response shapes
are documented on :class:`repro.service.server.QueryService`.  Errors
reported by the server raise :class:`~repro.errors.ServiceError` with
the server's message and HTTP status.

>>> client = ServiceClient("127.0.0.1", 8080)   # doctest: +SKIP
>>> reply = client.run(str(smugglers_system()), bindings=["C", "A"])
>>> stats = ExecutionStats.from_dict(reply["stats"])
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Sequence, Union

from ..errors import ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """One service endpoint per method; connections are per-request."""

    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, method: str, path: str, payload: Optional[dict]) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = (
                json.dumps(payload).encode("utf-8")
                if payload is not None
                else None
            )
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8"))
            if response.status != 200:
                raise ServiceError(
                    data.get("error", f"HTTP {response.status}"),
                    status=response.status,
                )
            return data
        finally:
            conn.close()

    def _post(self, path: str, payload: dict) -> dict:
        return self._request("POST", path, payload)

    # -- endpoints -------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/health", None)

    def stats(self) -> dict:
        return self._request("GET", "/stats", None)

    def _query_payload(
        self,
        system: str,
        bindings: Union[Sequence[str], Dict, None],
        **options: Any,
    ) -> dict:
        payload = {"system": system}
        if bindings is not None:
            payload["bindings"] = (
                list(bindings)
                if not isinstance(bindings, dict)
                else bindings
            )
        payload.update(
            {k: v for k, v in options.items() if v is not None}
        )
        return payload

    def run(
        self,
        system: str,
        bindings: Union[Sequence[str], Dict, None] = None,
        **options: Any,
    ) -> dict:
        """Execute constraint text; options are the uniform Session
        keywords (``mode=``, ``join_strategy=``, ``partitions=``,
        ``parallel=``, ``limit=``) plus ``order``/``knn``/``aggregate``
        payloads."""
        return self._post(
            "/run", self._query_payload(system, bindings, **options)
        )

    def explain(
        self,
        system: str,
        bindings: Union[Sequence[str], Dict, None] = None,
        analyze: bool = False,
        **options: Any,
    ) -> dict:
        return self._post(
            "/explain",
            self._query_payload(
                system, bindings, analyze=analyze or None, **options
            ),
        )

    def bench(
        self,
        system: str,
        bindings: Union[Sequence[str], Dict, None] = None,
        **options: Any,
    ) -> dict:
        return self._post(
            "/bench", self._query_payload(system, bindings, **options)
        )

    def nearest(
        self,
        table: str,
        k: int = 1,
        point: Optional[Sequence[float]] = None,
        box: Any = None,
        access: str = "auto",
    ) -> dict:
        payload: dict = {"table": table, "k": k, "access": access}
        if point is not None:
            payload["point"] = list(point)
        if box is not None:
            payload["box"] = box
        return self._post("/nearest", payload)

    def insert(self, table: str, rows: Sequence[dict]) -> dict:
        """Append rows (``{"oid": ..., "boxes": [[lo, hi], ...]}``);
        returns the post-swap snapshot version."""
        return self._post("/insert", {"table": table, "rows": list(rows)})

    def delete(self, table: str, oids: Sequence[Any]) -> dict:
        """Delete rows by oid (idempotent — non-live oids are counted
        as ``missing``); returns the post-swap snapshot version."""
        return self._post("/delete", {"table": table, "oids": list(oids)})
