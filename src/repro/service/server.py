"""The resident query service: snapshot isolation over asyncio HTTP.

The execution engine is synchronous and CPU-bound; what a long-lived
server adds is *snapshot isolation*:

* every request captures the current :class:`~repro.database.Database`
  with a single attribute read (:meth:`SnapshotStore.current`) — no
  reader lock — and executes entirely against that immutable snapshot;
* a mutation (``POST /insert`` / ``POST /delete``) never touches served
  tables: it publishes an O(delta) :meth:`SpatialTable.with_staged`
  clone — shared packed base, the mutation staged in a write delta,
  statistics pre-warmed incrementally — through
  :meth:`SnapshotStore.swap`'s single atomic reference assignment.
  In-flight readers keep their old snapshot and finish bit-identically;
  new requests see the new one.  Past the repack threshold a background
  thread folds the accumulated delta into freshly packed structures
  *off* the rebuild lock and publishes the result with a second swap,
  replaying any mutations staged while it ran;
* at swap time the superseded tables are proactively purged from the
  shared :class:`~repro.spatial.table.ProbeCache` — the old objects are
  never looked up again, so without the purge their entries would
  squat in the LRU until eviction or garbage collection.

The HTTP layer is a deliberately small stdlib-only HTTP/1.1 loop over
``asyncio.start_server`` (the engine has no third-party dependencies —
see ``pyproject.toml``); query execution runs in the default thread
pool via ``run_in_executor`` so slow queries do not stall the accept
loop.  Endpoints: ``GET /health``, ``GET /stats``, and ``POST
/run | /explain | /bench | /nearest | /insert | /delete`` with JSON
bodies (see
:class:`QueryService` for payload shapes and
:mod:`repro.service.client` for a matching client).
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..algebra.regions import Region
from ..boxes.box import box_from_jsonable
from ..database import SESSION_OPTIONS, Database, Session
from ..engine.query import AggregateSpec, KNNStep, SpatialQuery
from ..errors import ReproError, ServiceError
from ..spatial.snapshot import (
    _decode_oid,
    _encode_oid,
    region_from_jsonable,
)
from ..spatial.table import ProbeCache, SpatialTable

__all__ = ["QueryService", "ServiceServer", "SnapshotStore", "serve_in_thread"]


class SnapshotStore:
    """Lock-free-reader holder of the current database snapshot.

    Readers call :meth:`current` — one attribute read under the GIL, no
    lock.  Writers serialize on a mutex, publish with a single
    reference assignment, and purge the replaced tables from the shared
    probe cache (the fix for the stale-entry squat described in the
    module docstring).
    """

    def __init__(
        self, db: Database, cache: Optional[ProbeCache] = None
    ) -> None:
        # Writers only: readers see _current/_version through the
        # lock-free current() (single reference reads under the GIL).
        self._current = db  # guarded-by: _swap_lock
        self._cache = cache
        self._version = 1  # guarded-by: _swap_lock
        self._swap_lock = threading.Lock()

    def current(self) -> Tuple[Database, int]:
        """The live ``(database, version)`` pair (atomic, lock-free)."""
        # Read the reference before the version: a concurrent swap can
        # at worst pair the old database with the old version.
        db = self._current
        return db, self._version

    @property
    def version(self) -> int:
        return self._version

    def swap(self, new_db: Database) -> int:
        """Atomically publish ``new_db``; purge superseded cache entries.

        Returns the new snapshot version.  In-flight readers holding
        the old database object are unaffected — its tables are intact,
        only the cache entries keyed on them are dropped (they would
        never be hit again; dropping them is the proactive fix).
        """
        with self._swap_lock:
            old_db = self._current
            self._version += 1
            self._current = new_db
            version = self._version
        kept = {id(t) for t in new_db.tables.values()}
        for table in old_db.tables.values():
            if id(table) in kept:
                continue
            if self._cache is not None:
                self._cache.purge_table(table)
            # A superseded table's shards are never probed again;
            # release their shared-memory columns now rather than at GC.
            if table._sharding_cache is not None:
                table._sharding_cache.close()
                table._sharding_cache = None
                table._sharding_key = None
        return version


class QueryService:
    """Request handlers over a :class:`SnapshotStore`.

    All handlers are synchronous (the HTTP layer offloads them to the
    thread pool) and act on the snapshot captured at entry.  ``run``
    payloads carry the query as constraint text in the Figure-1 syntax;
    binding *names* resolve against the snapshot's stored bindings, or
    inline ``name -> [[lo, hi], ...]`` box lists define ad-hoc ones.
    """

    def __init__(
        self,
        db: Database,
        cache_size: int = 1024,
        repack_threshold: Optional[int] = None,
    ) -> None:
        self.cache = ProbeCache(maxsize=cache_size) if cache_size else None
        self.store = SnapshotStore(db, cache=self.cache)
        self._rebuild_lock = threading.Lock()
        # requests is bumped only on the HTTP server's event loop
        # thread, so it needs no lock; rebuilds/repacks are written by
        # the handlers, which serialize on the rebuild mutex.
        self.requests = 0
        self.rebuilds = 0  # guarded-by: _rebuild_lock
        self.repacks = 0  # guarded-by: _rebuild_lock
        #: Pending delta ops past which a mutation kicks a background
        #: repack; ``None`` defers to each table's own threshold.
        self.repack_threshold = repack_threshold
        self._repack_thread: Optional[threading.Thread] = None  # guarded-by: _rebuild_lock

    # -- payload decoding ------------------------------------------------------
    @staticmethod
    def _decode_bindings(
        db: Database, data: Any
    ) -> Optional[Dict[str, Region]]:
        if data is None:
            return None
        if isinstance(data, list):
            missing = [name for name in data if name not in db.bindings]
            if missing:
                raise ServiceError(
                    f"unknown binding name(s) {missing}; stored bindings: "
                    f"{sorted(db.bindings)}"
                )
            return {name: db.bindings[name] for name in data}
        return {
            name: region_from_jsonable(region_data)
            for name, region_data in data.items()
        }

    @staticmethod
    def _decode_knn(data: Any) -> Optional[KNNStep]:
        if data is None:
            return None
        return KNNStep(
            variable=str(data["variable"]),
            k=int(data["k"]),
            point=tuple(data["point"]) if data.get("point") else None,
            ref=data.get("ref"),
        )

    @staticmethod
    def _decode_aggregate(data: Any) -> Optional[AggregateSpec]:
        if data is None:
            return None
        return AggregateSpec(
            aggregates=tuple(
                (op, target) for op, target in data["aggregates"]
            ),
            group_by=tuple(data.get("group_by", ())),
            exact=bool(data.get("exact", True)),
        )

    def _session(self, db: Database, payload: Dict[str, Any]) -> Session:
        options = {
            name: payload[name]
            for name in SESSION_OPTIONS
            if name in payload
        }
        return Session(db=db, cache=self.cache, **options)

    def _query(self, db: Database, payload: Dict[str, Any]) -> SpatialQuery:
        try:
            system = payload["system"]
        except KeyError:
            raise ServiceError(
                "payload needs a 'system' (constraint text)"
            ) from None
        return db.query(
            system,
            bindings=self._decode_bindings(db, payload.get("bindings")),
            order=payload.get("order"),
            knn=self._decode_knn(payload.get("knn")),
            aggregate=self._decode_aggregate(payload.get("aggregate")),
        )

    # -- endpoints -------------------------------------------------------------
    def health(self) -> dict:
        _db, version = self.store.current()
        return {"ok": True, "snapshot": version}

    def stats(self) -> dict:
        db, version = self.store.current()
        out = {
            "snapshot": version,
            "requests": self.requests,
            "rebuilds": self.rebuilds,
            "repacks": self.repacks,
            "tables": {
                key: {
                    "name": t.name,
                    "rows": len(t),
                    "index": t.index_kind,
                    "delta_pending": t.delta_pending_ops,
                }
                for key, t in db.tables.items()
            },
            "bindings": sorted(db.bindings),
        }
        if self.cache is not None:
            out["cache"] = {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
            }
        return out

    def run(self, payload: dict) -> dict:
        db, version = self.store.current()
        result = self._session(db, payload).run(self._query(db, payload))
        if result.answers and hasattr(result.answers[0], "as_dict"):
            answers = [row.as_dict() for row in result.answers]
        else:
            answers = [
                {var: _encode_oid(obj.oid) for var, obj in answer.items()}
                for answer in result.answers
            ]
        return {
            "snapshot": version,
            "order": list(result.order),
            "count": len(answers),
            "answers": answers,
            "stats": result.stats.to_dict(),
            "time_to_first_s": result.time_to_first_s,
            "total_s": result.total_s,
        }

    def explain(self, payload: dict) -> dict:
        db, version = self.store.current()
        session = self._session(db, payload)
        text = session.explain(
            self._query(db, payload),
            analyze=bool(payload.get("analyze", False)),
        )
        return {"snapshot": version, "plan": text}

    def bench(self, payload: dict) -> dict:
        db, version = self.store.current()
        session = self._session(db, payload)
        report = session.bench(self._query(db, payload))
        report["snapshot"] = version
        return report

    def nearest(self, payload: dict) -> dict:
        db, version = self.store.current()
        try:
            table = db.table(str(payload["table"]))
        except KeyError as exc:
            raise ServiceError(str(exc)) from exc
        if "point" in payload:
            anchor = tuple(float(c) for c in payload["point"])
        elif "box" in payload:
            anchor = box_from_jsonable(payload["box"])
        else:
            raise ServiceError("nearest needs a 'point' or a 'box' anchor")
        results = table.nearest(
            anchor,
            int(payload.get("k", 1)),
            access=str(payload.get("access", "auto")),
        )
        return {
            "snapshot": version,
            "results": [
                {"distance": dist, "oid": _encode_oid(obj.oid)}
                for dist, obj in results
            ],
        }

    def insert(self, payload: dict) -> dict:
        """Apply an insert via the delta write path + atomic swap.

        ``rows`` is a list of ``{"oid": ..., "boxes": [[lo, hi], ...]}``
        objects appended to ``table``.  Served tables are never mutated:
        an O(delta) shared-base clone with the rows staged is swapped in
        (see :meth:`apply_insert`).
        """
        try:
            key = str(payload["table"])
            rows = [
                (
                    _decode_oid(row["oid"]),
                    Region.from_boxes(
                        box_from_jsonable(b) for b in row["boxes"]
                    ),
                )
                for row in payload["rows"]
            ]
        except (KeyError, TypeError, IndexError) as exc:
            raise ServiceError(f"malformed insert payload: {exc}") from exc
        version = self.apply_insert(key, rows)
        return {"snapshot": version, "inserted": len(rows)}

    def delete(self, payload: dict) -> dict:
        """Apply deletes via delta tombstones + atomic swap.

        ``oids`` is a list of row ids to delete from ``table``; ids that
        are not live are reported, not errors (deletes are idempotent
        over the wire).
        """
        try:
            key = str(payload["table"])
            oids = [_decode_oid(o) for o in payload["oids"]]
        except (KeyError, TypeError) as exc:
            raise ServiceError(f"malformed delete payload: {exc}") from exc
        version, deleted = self.apply_delete(key, oids)
        return {
            "snapshot": version,
            "deleted": deleted,
            "missing": len(oids) - deleted,
        }

    # -- mutation --------------------------------------------------------------
    def apply_insert(
        self, key: str, rows: List[Tuple[object, Region]]
    ) -> int:
        """Stage ``rows`` into ``key``'s delta and swap — O(delta)."""
        return self._apply_mutation(key, inserts=rows)[0]

    def apply_delete(
        self, key: str, oids: List[object]
    ) -> Tuple[int, int]:
        """Tombstone ``oids`` in ``key``'s delta and swap.

        Returns ``(snapshot version, rows actually deleted)`` — ids that
        are not live are skipped rather than raising.
        """
        return self._apply_mutation(key, deletes=oids)

    def _apply_mutation(
        self,
        key: str,
        inserts: List[Tuple[object, Region]] = (),
        deletes: List[object] = (),
    ) -> Tuple[int, int]:
        """Publish an O(delta) shared-base clone with the writes staged.

        The served table is never touched: :meth:`SpatialTable.
        with_staged` clones it around a copied delta (shared packed
        base), the catalog is pre-warmed incrementally, and one atomic
        swap publishes the clone.  Past the repack threshold a
        background repack is kicked (never inline — the mutation stays
        O(delta)).
        """
        with self._rebuild_lock:
            db, _version = self.store.current()
            try:
                old = db.table(key)
            except KeyError as exc:
                raise ServiceError(str(exc)) from exc
            # Dedup and drop non-live oids: wire deletes are idempotent.
            live, seen = [], set()
            for oid in deletes:
                if oid in seen:
                    continue
                seen.add(oid)
                try:
                    old.get(oid)
                except KeyError:
                    continue
                live.append(oid)
            applied = len(live)
            if not inserts and not live:
                return self.store.version, 0
            new_table = old.with_staged(inserts=inserts, deletes=live)
            new_table.statistics()  # warm delta-adjusted catalog
            self.rebuilds += 1
            version = self.store.swap(self._republish(db, key, new_table))
            if self._repack_due(new_table):
                self._start_repack_locked(key)
            return version, applied

    @staticmethod
    def _republish(db: Database, key: str, table: SpatialTable) -> Database:
        """A new snapshot database with ``key`` replaced by ``table``."""
        tables = dict(db.tables)
        tables[key] = table
        new_db = Database(tables=tables, bindings=dict(db.bindings))
        # The worker pools are the service's, not the snapshot's: hand
        # the same pool registry (and the lock guarding it — one dict
        # must have one lock) to the new database so warm workers
        # survive the swap.
        new_db._pools = db._pools
        new_db._pool_lock = db._pool_lock
        return new_db

    # -- background repack -----------------------------------------------------
    def _repack_due(self, table: SpatialTable) -> bool:
        threshold = (
            self.repack_threshold
            if self.repack_threshold is not None
            else table.delta_threshold
        )
        return table.delta_pending_ops >= threshold

    def _start_repack_locked(self, key: str) -> None:
        # Callers hold _rebuild_lock.  One repack at a time: a mutation
        # landing mid-repack is replayed by the worker, and the next
        # threshold crossing starts a fresh one.
        if self._repack_thread is not None and self._repack_thread.is_alive():
            return
        thread = threading.Thread(
            target=self._repack_worker,
            args=(key,),
            name=f"repro-repack-{key}",
            daemon=True,
        )
        self._repack_thread = thread
        thread.start()

    def _repack_worker(self, key: str) -> None:
        """Fold ``key``'s delta off-lock and publish the packed table.

        Readers are never blocked or perturbed: the expensive STR
        rebuild runs on a private shared-base clone while requests keep
        hitting the delta-overlay snapshot; mutations staged meanwhile
        are replayed from the delta's op log (the published clone chain
        keeps the build snapshot's ops as a prefix) before the second
        swap publishes the packed table.
        """
        with self._rebuild_lock:
            db, _version = self.store.current()
            current = db.tables.get(key)
            if current is None or not current.delta_pending:
                return
            packed = current.with_staged()
            ops_seen = len(current._delta.ops)
        # The expensive part — STR bulk load + fresh statistics — runs
        # off the lock, against structures only this thread can see.
        packed.repack()
        packed.statistics()
        with self._rebuild_lock:
            db, _version = self.store.current()
            current = db.tables.get(key)
            if current is None:
                return
            delta = current._delta
            if delta is not None:
                for op, arg in delta.ops[ops_seen:]:
                    if op == "insert":
                        packed.stage_insert(arg.oid, arg.region)
                    else:
                        packed.stage_delete(arg)
            self.repacks += 1
            self.store.swap(self._republish(db, key, packed))

    def drain_repacks(self, timeout: float = 30.0) -> None:
        """Block until no background repack is in flight (tests)."""
        thread = self._repack_thread
        if thread is not None:
            thread.join(timeout=timeout)
            if thread.is_alive():  # pragma: no cover - hang guard
                raise RuntimeError("background repack did not finish")


# -- HTTP layer ----------------------------------------------------------------
_ROUTES = {
    ("GET", "/health"): "health",
    ("GET", "/stats"): "stats",
    ("POST", "/run"): "run",
    ("POST", "/explain"): "explain",
    ("POST", "/bench"): "bench",
    ("POST", "/nearest"): "nearest",
    ("POST", "/insert"): "insert",
    ("POST", "/delete"): "delete",
}

_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error"}


class ServiceServer:
    """The asyncio HTTP/1.1 front end of a :class:`QueryService`."""

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves ``port=0`` after start)."""
        return self.host, self.port

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- request loop ----------------------------------------------------------
    async def _serve_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or not request_line.strip():
                    break
                try:
                    method, path, _proto = (
                        request_line.decode("latin-1").split(" ", 2)
                    )
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"}
                    )
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if not line.strip():
                        break
                    name, _sep, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                body = await reader.readexactly(length) if length else b""
                status, response = await self._dispatch(method, path, body)
                await self._respond(writer, status, response)
                if headers.get("connection", "").lower() == "close":
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - peer reset
                pass

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        self.service.requests += 1
        handler_name = _ROUTES.get((method, path.rstrip("/") or path))
        if handler_name is None:
            return 404, {"error": f"no route {method} {path}"}
        if body:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as exc:
                return 400, {"error": f"body is not valid JSON: {exc}"}
        else:
            payload = {}
        handler = getattr(self.service, handler_name)
        loop = asyncio.get_running_loop()
        try:
            if method == "GET":
                result = await loop.run_in_executor(None, handler)
            else:
                result = await loop.run_in_executor(None, handler, payload)
        except ServiceError as exc:
            return exc.status, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # pragma: no cover - defensive
            return 500, {"error": f"{type(exc).__name__}: {exc}"}
        return 200, result

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        data = json.dumps(payload, default=str).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()


class _ThreadedServer:
    """A :class:`ServiceServer` running in a daemon thread (tests/CLI)."""

    def __init__(
        self,
        server: ServiceServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> Tuple[str, int]:
        return self.server.address

    def stop(self) -> None:
        async def _shutdown() -> None:
            await self.server.stop()

        if self._loop.is_running():
            asyncio.run_coroutine_threadsafe(
                _shutdown(), self._loop
            ).result(timeout=10)
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


def serve_in_thread(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> _ThreadedServer:
    """Start a server on a background event loop; returns a stoppable
    handle whose ``address`` carries the bound ephemeral port."""
    server = ServiceServer(service, host=host, port=port)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout=10):  # pragma: no cover - startup hang
        raise RuntimeError("service failed to start within 10s")
    return _ThreadedServer(server, loop, thread)
