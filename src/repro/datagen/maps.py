"""Synthetic maps for the smugglers scenario (paper Section 2).

The paper's motivating query runs over a geographic database: a country
``C``, internal states partitioning it, border towns, roads, and a
destination area ``A``.  :func:`make_map` generates such a world with
controllable sizes, as exact regions:

* the **country** is a rectangle strictly inside the universe (so there
  is an "outside" for border towns to straddle);
* **states** partition the country in a grid;
* **towns** are small boxes; a controllable fraction are *border towns*
  straddling the country boundary (the query's only valid T's);
* **roads** are thickened axis-aligned staircases; a controllable
  fraction connect a border town to the destination area while staying
  inside one state (the query's only valid R's), the rest are decoys;
* the **destination area** ``A`` sits inside one state.

The generator aims for *topological* control (which objects satisfy
which constraints) rather than cartographic realism — the optimizer only
ever sees containment/overlap structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..algebra.regions import Region
from ..boxes.box import Box
from ..spatial.table import SpatialTable
from .shapes import grid_partition, random_box, thick_polyline


@dataclass
class SmugglersMap:
    """A generated world for the Section 2 query."""

    universe: Box
    country: Region
    area: Region
    states: List[Region]
    towns: List[Region]
    roads: List[Region]
    #: Indices of towns that straddle the border (ground truth).
    border_town_ids: List[int] = field(default_factory=list)
    #: Indices of roads engineered to be valid for some border town.
    good_road_ids: List[int] = field(default_factory=list)

    def tables(
        self,
        index: str = "rtree",
        pack: Optional[bool] = None,
        split_method: str = "quadratic",
        node_capacity: int = 8,
    ) -> Dict[str, SpatialTable]:
        """Build ``T``/``R``/``B`` tables with the chosen index backend.

        ``pack=None`` (the default) STR-packs r-tree tables — the map is
        a static workload; ``pack=False`` keeps the insertion-built
        baseline for the index benchmarks.
        """
        out: Dict[str, SpatialTable] = {}
        for key, name, regions in (
            ("T", "towns", self.towns),
            ("R", "roads", self.roads),
            ("B", "states", self.states),
        ):
            t = SpatialTable(
                name,
                2,
                index=index,
                universe=self.universe,
                split_method=split_method,
                node_capacity=node_capacity,
            )
            t.bulk_insert(list(enumerate(regions)), pack=pack)
            out[key] = t
        return out


def make_map(
    seed: int = 0,
    n_towns: int = 20,
    n_roads: int = 20,
    states_grid: Tuple[int, int] = (3, 3),
    border_fraction: float = 0.3,
    good_road_fraction: float = 0.25,
    universe_side: float = 100.0,
) -> SmugglersMap:
    """Generate a smugglers world.

    Parameters control the instance size and the selectivities the
    optimizer exploits (fraction of border towns, fraction of
    constraint-satisfying roads).
    """
    rng = random.Random(seed)
    universe = Box((0.0, 0.0), (universe_side, universe_side))
    margin = universe_side * 0.12
    country_box = Box(
        (margin, margin), (universe_side - margin, universe_side - margin)
    )
    country = Region.from_box(country_box)
    states = grid_partition(country_box, list(states_grid))

    # Destination area inside the last state, clear of its edges.
    target_state_box = states[-1].bounding_box()
    area_box = Box(
        tuple(l + (h - l) * 0.3 for l, h in zip(target_state_box.lo, target_state_box.hi)),
        tuple(l + (h - l) * 0.7 for l, h in zip(target_state_box.lo, target_state_box.hi)),
    )
    area = Region.from_box(area_box)

    towns: List[Region] = []
    border_ids: List[int] = []
    for i in range(n_towns):
        if rng.random() < border_fraction:
            # Straddle the border: center on a country edge.
            edge = rng.randrange(4)
            size = rng.uniform(1.5, 3.0)
            if edge == 0:  # west
                cx, cy = country_box.lo[0], rng.uniform(
                    country_box.lo[1] + 5, country_box.hi[1] - 5
                )
            elif edge == 1:  # east
                cx, cy = country_box.hi[0], rng.uniform(
                    country_box.lo[1] + 5, country_box.hi[1] - 5
                )
            elif edge == 2:  # south
                cx, cy = (
                    rng.uniform(country_box.lo[0] + 5, country_box.hi[0] - 5),
                    country_box.lo[1],
                )
            else:  # north
                cx, cy = (
                    rng.uniform(country_box.lo[0] + 5, country_box.hi[0] - 5),
                    country_box.hi[1],
                )
            box = Box(
                (cx - size / 2, cy - size / 2), (cx + size / 2, cy + size / 2)
            )
            border_ids.append(i)
        else:
            # Fully interior town.
            inner = country_box.inflate(-4.0)
            box = random_box(rng, inner, 1.0, 3.0)
        towns.append(Region.from_box(box.meet(universe)))

    roads: List[Region] = []
    good_ids: List[int] = []
    area_center = area_box.center()
    for j in range(n_roads):
        if border_ids and rng.random() < good_road_fraction:
            # A valid road: from a border town into the area, inside the
            # target state (pre-clipped to country ∩ state ∪ town ∪ area).
            t_id = rng.choice(border_ids)
            t_box = towns[t_id].bounding_box()
            start = t_box.center()
            # L-shaped path: horizontal then vertical.
            mid = (area_center[0], start[1])
            path = [start, mid, area_center]
            raw = thick_polyline(path, thickness=1.0)
            # Keep the road within town ∪ target-state ∪ area so the
            # containment constraint R ⊆ A∪B∪T can hold.
            from ..algebra.regions import RegionAlgebra

            alg = RegionAlgebra(universe)
            allowed = alg.join(
                alg.join(towns[t_id], states[-1]), area
            )
            road = alg.meet(raw, allowed)
            if not road.is_empty():
                good_ids.append(j)
            roads.append(road)
        else:
            # Decoy road: random staircase anywhere in the country.
            a = random_box(rng, country_box, 1.0, 2.0).center()
            b = random_box(rng, country_box, 1.0, 2.0).center()
            path = [a, (b[0], a[1]), b]
            roads.append(thick_polyline(path, thickness=1.0))

    return SmugglersMap(
        universe=universe,
        country=country,
        area=area,
        states=states,
        towns=towns,
        roads=roads,
        border_town_ids=border_ids,
        good_road_ids=good_ids,
    )
