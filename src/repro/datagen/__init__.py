"""Synthetic spatial data and benchmark workloads."""

from .maps import SmugglersMap, make_map
from .shapes import (
    grid_partition,
    random_axis_path,
    random_box,
    random_box_cloud,
    random_region,
    thick_polyline,
)
from .workloads import (
    containment_chain_query,
    overlay_query,
    sandwich_query,
    smugglers_query,
)

__all__ = [
    "SmugglersMap",
    "containment_chain_query",
    "grid_partition",
    "make_map",
    "overlay_query",
    "random_axis_path",
    "random_box",
    "random_box_cloud",
    "random_region",
    "sandwich_query",
    "smugglers_query",
    "thick_polyline",
]
