"""Benchmark workload builders.

Each builder returns ready-to-run :class:`~repro.engine.query.
SpatialQuery` objects (and any ground-truth bookkeeping the benchmark
needs).  Centralising them keeps examples/benchmarks/tests on identical
workloads.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..algebra.regions import Region
from ..boxes.box import Box
from ..constraints.examples import SMUGGLERS_ORDER, smugglers_system
from ..constraints.system import (
    ConstraintSystem,
    nonempty,
    overlaps,
    subset,
)
from ..engine.query import SpatialQuery
from ..spatial.table import SpatialTable
from .maps import SmugglersMap, make_map
from .shapes import random_box


def smugglers_query(
    map_: Optional[SmugglersMap] = None,
    index: str = "rtree",
    seed: int = 0,
    pack: Optional[bool] = None,
    split_method: str = "quadratic",
    node_capacity: int = 8,
    **map_kwargs,
) -> Tuple[SpatialQuery, SmugglersMap]:
    """The paper's Section 2 query over a generated map (E1/E5).

    ``pack``/``split_method``/``node_capacity`` configure the r-tree
    build (STR-packed by default; ``pack=False`` gives the
    insertion-built baseline).
    """
    if map_ is None:
        map_ = make_map(seed=seed, **map_kwargs)
    query = SpatialQuery(
        system=smugglers_system(),
        tables=map_.tables(
            index=index,
            pack=pack,
            split_method=split_method,
            node_capacity=node_capacity,
        ),
        bindings={"C": map_.country, "A": map_.area},
        order=list(SMUGGLERS_ORDER),
    )
    return query, map_


def overlay_query(
    n_left: int = 100,
    n_right: int = 100,
    seed: int = 0,
    index: str = "rtree",
    universe_side: float = 100.0,
) -> SpatialQuery:
    """A binary overlay join ``x ∧ y ≠ 0`` (the PROBE-comparable query, E8)."""
    rng = random.Random(seed)
    universe = Box((0.0, 0.0), (universe_side, universe_side))
    left = SpatialTable("left", 2, index=index, universe=universe)
    right = SpatialTable("right", 2, index=index, universe=universe)
    for i in range(n_left):
        left.insert(i, Region.from_box(random_box(rng, universe)))
    for j in range(n_right):
        right.insert(j, Region.from_box(random_box(rng, universe)))
    left.pack()
    right.pack()
    return SpatialQuery(
        system=ConstraintSystem.build(overlaps("x", "y")),
        tables={"x": left, "y": right},
        order=["x", "y"],
    )


def containment_chain_query(
    n_per_table: int = 60,
    depth: int = 3,
    seed: int = 0,
    index: str = "rtree",
    universe_side: float = 100.0,
) -> SpatialQuery:
    """A chain ``x_1 ⊆ x_2 ⊆ … ⊆ x_depth`` with nonempty x_1 (E9 ablation).

    Tables hold nested box populations so the chain has solutions; the
    retrieval order strongly affects intermediate sizes.
    """
    rng = random.Random(seed)
    universe = Box((0.0, 0.0), (universe_side, universe_side))
    tables: Dict[str, SpatialTable] = {}
    constraints = [nonempty("x1")]
    for level in range(1, depth + 1):
        name = f"x{level}"
        t = SpatialTable(name, 2, index=index, universe=universe)
        # Bigger boxes at higher levels so containments exist.
        min_side = 2.0 * level
        max_side = 6.0 * level
        for i in range(n_per_table):
            t.insert(i, Region.from_box(
                random_box(rng, universe, min_side, max_side)
            ))
        t.pack()
        tables[name] = t
        if level > 1:
            constraints.append(subset(f"x{level - 1}", f"x{level}"))
    return SpatialQuery(
        system=ConstraintSystem.build(*constraints),
        tables=tables,
    )


def sandwich_query(
    n_items: int = 80,
    seed: int = 0,
    index: str = "rtree",
    universe_side: float = 100.0,
) -> SpatialQuery:
    """``lo ⊆ x ⊆ hi`` with bound lo/hi regions — a pure range workload
    isolating the Schröder machinery (used by E3/E10)."""
    rng = random.Random(seed)
    universe = Box((0.0, 0.0), (universe_side, universe_side))
    t = SpatialTable("items", 2, index=index, universe=universe)
    for i in range(n_items):
        t.insert(i, Region.from_box(random_box(rng, universe, 2.0, 20.0)))
    t.pack()
    hi_box = Box((20.0, 20.0), (80.0, 80.0))
    lo_box = Box((45.0, 45.0), (50.0, 50.0))
    return SpatialQuery(
        system=ConstraintSystem.build(
            subset("LO", "x"), subset("x", "HI")
        ),
        tables={"x": t},
        bindings={
            "LO": Region.from_box(lo_box),
            "HI": Region.from_box(hi_box),
        },
        order=["x"],
    )
