"""Random region generators (seeded, deterministic).

All generators take an explicit :class:`random.Random` so benchmarks are
reproducible.  Regions are built from axis-parallel boxes, matching the
region algebra's carrier.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..algebra.regions import Region
from ..boxes.box import Box


def random_box(
    rng: random.Random,
    universe: Box,
    min_side: float = 0.5,
    max_side: float = 8.0,
) -> Box:
    """A random box inside ``universe`` with sides in the given range."""
    lo: List[float] = []
    hi: List[float] = []
    for d in range(universe.dim):
        span = universe.hi[d] - universe.lo[d]
        side = rng.uniform(min_side, min(max_side, span))
        start = rng.uniform(universe.lo[d], universe.hi[d] - side)
        lo.append(start)
        hi.append(start + side)
    return Box(tuple(lo), tuple(hi))


def random_box_cloud(
    rng: random.Random,
    universe: Box,
    count: int,
    min_side: float = 0.5,
    max_side: float = 8.0,
) -> List[Box]:
    """``count`` independent random boxes."""
    return [
        random_box(rng, universe, min_side, max_side) for _ in range(count)
    ]


def random_region(
    rng: random.Random,
    universe: Box,
    pieces: int = 3,
    min_side: float = 0.5,
    max_side: float = 6.0,
) -> Region:
    """A random region as the union of a few random boxes."""
    return Region.from_boxes(
        random_box_cloud(rng, universe, pieces, min_side, max_side)
    )


def grid_partition(universe: Box, cells_per_dim: Sequence[int]) -> List[Region]:
    """Partition the universe box into an axis-aligned grid of regions.

    Used for the "states" of the smugglers scenario: the grid cells are
    pairwise disjoint and exactly cover the universe.
    """
    if len(cells_per_dim) != universe.dim:
        raise ValueError("cells_per_dim must match the universe dimension")
    regions: List[Region] = []

    def recurse(d: int, lo: List[float], hi: List[float]) -> None:
        if d == universe.dim:
            regions.append(Region.from_box(Box(tuple(lo), tuple(hi))))
            return
        n = cells_per_dim[d]
        span = (universe.hi[d] - universe.lo[d]) / n
        for i in range(n):
            lo2, hi2 = list(lo), list(hi)
            lo2.append(universe.lo[d] + i * span)
            hi2.append(universe.lo[d] + (i + 1) * span)
            recurse(d + 1, lo2, hi2)

    recurse(0, [], [])
    return regions


def thick_polyline(
    points: Sequence[Tuple[float, float]], thickness: float = 0.5
) -> Region:
    """An axis-aligned polyline thickened into a 2-D region.

    Consecutive points must differ in exactly one coordinate (the roads
    of the smugglers scenario are axis-aligned, like the region algebra).
    """
    boxes: List[Box] = []
    h = thickness / 2
    for (x1, y1), (x2, y2) in zip(points, points[1:]):
        if x1 != x2 and y1 != y2:
            raise ValueError(
                "polyline segments must be axis-aligned; "
                f"got {(x1, y1)} -> {(x2, y2)}"
            )
        lo = (min(x1, x2) - h, min(y1, y2) - h)
        hi = (max(x1, x2) + h, max(y1, y2) + h)
        boxes.append(Box(lo, hi))
    return Region.from_boxes(boxes)


def random_axis_path(
    rng: random.Random,
    start: Tuple[float, float],
    end: Tuple[float, float],
    jitter: float = 3.0,
    segments: int = 4,
) -> List[Tuple[float, float]]:
    """An axis-aligned staircase path from ``start`` to ``end``."""
    points = [start]
    x, y = start
    ex, ey = end
    for i in range(segments - 1):
        if i % 2 == 0:
            x = x + (ex - x) * rng.uniform(0.3, 0.9) + rng.uniform(
                -jitter, jitter
            )
            points.append((x, y))
        else:
            y = y + (ey - y) * rng.uniform(0.3, 0.9) + rng.uniform(
                -jitter, jitter
            )
            points.append((x, y))
    # Close with an L to the endpoint.
    points.append((ex, y))
    points.append((ex, ey))
    return points
