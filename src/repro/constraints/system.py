"""Systems of positive and negative Boolean constraints (paper §1, §3).

The paper's query language:

* a **positive constraint** is an inclusion ``f ⊆ g``;
* a **negative constraint** is its denial ``f ⊄ g``;
* a **system** is a conjunction of both kinds.

Derived predicates (paper Section 1)::

    x = y   ≡   x ⊆ y ∧ y ⊆ x
    x ≠ y   ≡   ¬(x ⊆ y) ∨ ¬(y ⊆ x)      (not expressible as ONE constraint;
                                          we expose the common one-sided uses)
    x ⊂ y   ≡   x ⊆ y ∧ y ⊄ x

Theorem 1: every system can be rewritten into the *normal form*

    f = 0  ∧  g_1 ≠ 0  ∧ … ∧  g_m ≠ 0

since ``f ⊆ g`` iff ``f ∧ ¬g = 0`` (Boole) and ``f ⊄ g`` iff
``f ∧ ¬g ≠ 0``, and positive constraints conjoin by disjunction of their
left-hand sides.  :class:`EquationalSystem` is that normal form and is
what the projection/triangularisation algorithms consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Mapping, Tuple

from ..boolean.semantics import evaluate
from ..boolean.simplify import simplify
from ..boolean.syntax import FALSE, Formula, FormulaLike, conj, disj, formula, neg
from ..boolean.printer import to_str


@dataclass(frozen=True)
class Positive:
    """The positive constraint ``lhs ⊆ rhs``."""

    lhs: Formula
    rhs: Formula

    def as_zero_equation(self) -> Formula:
        """The Boole form: ``lhs ∧ ¬rhs`` (constrained to equal 0)."""
        return conj(self.lhs, neg(self.rhs))

    def holds(self, algebra, env: Mapping[str, object]) -> bool:
        """Evaluate the constraint over an algebra carrier."""
        return algebra.is_zero(evaluate(self.as_zero_equation(), algebra, env))

    def variables(self) -> FrozenSet[str]:
        """Variables mentioned."""
        return self.lhs.variables() | self.rhs.variables()

    def __str__(self) -> str:
        return f"{to_str(self.lhs)} <= {to_str(self.rhs)}"


@dataclass(frozen=True)
class Negative:
    """The negative constraint ``lhs ⊄ rhs``."""

    lhs: Formula
    rhs: Formula

    def as_nonzero_formula(self) -> Formula:
        """The Boole form: ``lhs ∧ ¬rhs`` (constrained to differ from 0)."""
        return conj(self.lhs, neg(self.rhs))

    def holds(self, algebra, env: Mapping[str, object]) -> bool:
        """Evaluate the constraint over an algebra carrier."""
        return not algebra.is_zero(
            evaluate(self.as_nonzero_formula(), algebra, env)
        )

    def variables(self) -> FrozenSet[str]:
        """Variables mentioned."""
        return self.lhs.variables() | self.rhs.variables()

    def __str__(self) -> str:
        return f"{to_str(self.lhs)} !<= {to_str(self.rhs)}"


Constraint = object  # Positive | Negative (kept simple for Python 3.9)


class ConstraintSystem:
    """A conjunction of positive and negative Boolean constraints."""

    def __init__(
        self,
        positives: Iterable[Positive] = (),
        negatives: Iterable[Negative] = (),
    ):
        self.positives: Tuple[Positive, ...] = tuple(positives)
        self.negatives: Tuple[Negative, ...] = tuple(negatives)

    # -- constructors ------------------------------------------------------------
    @staticmethod
    def build(*constraints) -> "ConstraintSystem":
        """Build from a mixed sequence of constraints."""
        pos: List[Positive] = []
        negs: List[Negative] = []
        for c in constraints:
            if isinstance(c, Positive):
                pos.append(c)
            elif isinstance(c, Negative):
                negs.append(c)
            elif isinstance(c, ConstraintSystem):
                pos.extend(c.positives)
                negs.extend(c.negatives)
            else:
                raise TypeError(f"not a constraint: {c!r}")
        return ConstraintSystem(pos, negs)

    def conjoin(self, other: "ConstraintSystem") -> "ConstraintSystem":
        """Conjunction of two systems."""
        return ConstraintSystem(
            self.positives + other.positives,
            self.negatives + other.negatives,
        )

    # -- structure ----------------------------------------------------------------
    def variables(self) -> FrozenSet[str]:
        """All variables mentioned anywhere in the system."""
        out: set = set()
        for c in self.positives:
            out |= c.variables()
        for c in self.negatives:
            out |= c.variables()
        return frozenset(out)

    def __len__(self) -> int:
        return len(self.positives) + len(self.negatives)

    def __str__(self) -> str:
        lines = [str(c) for c in self.positives]
        lines += [str(c) for c in self.negatives]
        return "\n".join(lines)

    # -- semantics -------------------------------------------------------------------
    def holds(self, algebra, env: Mapping[str, object]) -> bool:
        """Evaluate the whole system over an algebra carrier."""
        return all(c.holds(algebra, env) for c in self.positives) and all(
            c.holds(algebra, env) for c in self.negatives
        )

    # -- Theorem 1 ----------------------------------------------------------------------
    def normalize(self, simplify_formulas: bool = True) -> "EquationalSystem":
        """Rewrite into the normal form ``f = 0 ∧ g_1 ≠ 0 ∧ …`` (Theorem 1).

        All positive constraints merge into one equation by disjunction;
        each negative constraint yields one disequation.
        """
        f = disj(*[c.as_zero_equation() for c in self.positives])
        gs = [c.as_nonzero_formula() for c in self.negatives]
        if simplify_formulas:
            f = simplify(f)
            gs = [simplify(g) for g in gs]
        return EquationalSystem(f, gs)


class EquationalSystem:
    """The normal form ``equation = 0  ∧  ⋀_i disequations[i] ≠ 0``.

    The object manipulated by ``proj`` and Algorithm 1.  ``equation`` and
    each disequation are plain formulas; the constraint reading is
    implicit.  Disequations syntactically equal to ``0`` make the system
    trivially unsatisfiable (``0 ≠ 0``); callers detect this with
    :meth:`has_false_disequation`.
    """

    def __init__(self, equation: Formula, disequations: Iterable[Formula] = ()):
        self.equation = formula(equation)
        self.disequations: Tuple[Formula, ...] = tuple(
            formula(g) for g in disequations
        )

    def variables(self) -> FrozenSet[str]:
        """All variables in the system."""
        out = set(self.equation.variables())
        for g in self.disequations:
            out |= g.variables()
        return frozenset(out)

    def has_false_disequation(self) -> bool:
        """``True`` if some disequation is the constant 0 (unsat)."""
        return any(g == FALSE for g in self.disequations)

    def holds(self, algebra, env: Mapping[str, object]) -> bool:
        """Evaluate over an algebra carrier."""
        if not algebra.is_zero(evaluate(self.equation, algebra, env)):
            return False
        return all(
            not algebra.is_zero(evaluate(g, algebra, env))
            for g in self.disequations
        )

    def subsume_disequations(self) -> "EquationalSystem":
        """Drop disequations implied by stronger ones.

        ``h ≠ 0`` and ``h <= g`` imply ``g ≠ 0``, so ``g`` is redundant
        whenever some other disequation ``h`` satisfies ``h <= g``.  This
        is the cleanup that makes the compiled Section 2 example display
        exactly as in the paper (``T ≠ 0`` is dropped in favour of
        ``¬C ∧ T ≠ 0``).
        """
        from ..boolean.semantics import implies

        kept: List[Formula] = []
        # Deterministic order: stronger (smaller) formulas first.
        pool = list(dict.fromkeys(self.disequations))
        for i, g in enumerate(pool):
            redundant = False
            for j, h in enumerate(pool):
                if i == j:
                    continue
                if implies(h, g) and not (implies(g, h) and j > i):
                    redundant = True
                    break
            if not redundant:
                kept.append(g)
        return EquationalSystem(self.equation, kept)

    def simplified(self) -> "EquationalSystem":
        """Semantically simplify every formula in the system."""
        return EquationalSystem(
            simplify(self.equation), [simplify(g) for g in self.disequations]
        )

    def __str__(self) -> str:
        lines = [f"{to_str(self.equation)} = 0"]
        lines += [f"{to_str(g)} != 0" for g in self.disequations]
        return "\n".join(lines)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EquationalSystem)
            and other.equation == self.equation
            and other.disequations == self.disequations
        )

    def __hash__(self) -> int:
        return hash((self.equation, self.disequations))


# ---------------------------------------------------------------------------
# Convenience constraint constructors (the paper's derived predicates)
# ---------------------------------------------------------------------------


def subset(a: FormulaLike, b: FormulaLike) -> Positive:
    """``a ⊆ b``."""
    return Positive(formula(a), formula(b))


def not_subset(a: FormulaLike, b: FormulaLike) -> Negative:
    """``a ⊄ b``."""
    return Negative(formula(a), formula(b))


def equal(a: FormulaLike, b: FormulaLike) -> ConstraintSystem:
    """``a = b`` as two inclusions (paper Section 1)."""
    return ConstraintSystem.build(subset(a, b), subset(b, a))


def strict_subset(a: FormulaLike, b: FormulaLike) -> ConstraintSystem:
    """``a ⊂ b`` as ``a ⊆ b ∧ b ⊄ a`` (paper Section 1)."""
    return ConstraintSystem.build(subset(a, b), not_subset(b, a))


def nonempty(a: FormulaLike) -> Negative:
    """``a ≠ 0`` as ``a ⊄ 0``."""
    return Negative(formula(a), FALSE)


def empty(a: FormulaLike) -> Positive:
    """``a = 0`` as ``a ⊆ 0``."""
    return Positive(formula(a), FALSE)


def overlaps(a: FormulaLike, b: FormulaLike) -> Negative:
    """``a ∧ b ≠ 0`` — the spatial overlay predicate."""
    return nonempty(conj(formula(a), formula(b)))


def disjoint(a: FormulaLike, b: FormulaLike) -> Positive:
    """``a ∧ b = 0``."""
    return empty(conj(formula(a), formula(b)))
