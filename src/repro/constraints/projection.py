"""Existential projection of Boolean constraint systems (paper §3).

The central technical device of the paper.  For a normalized system

    S:   f = 0  ∧  g_1 ≠ 0 ∧ … ∧ g_m ≠ 0

and a variable ``x``, write ``A = f[x←0]``, ``B = f[x←1]``,
``C_i = g_i[x←0]``, ``D_i = g_i[x←1]``.  Then (paper Definition after
Theorem 4)::

    proj(S, x)  =  A∧B = 0  ∧  ⋀_i ( (¬B∧D_i) ∨ (¬A∧C_i) ≠ 0 )

Facts implemented/verified here:

* **Theorem 2 (Boole)**: for pure equations, ``∃x (f = 0) ⟺ A∧B = 0`` —
  positive systems are closed under existential quantification.
* **Theorem 4**: for a single disequation, ``∃x S`` is *equivalent* to
  ``proj`` (via Lemma 3 on the witnesses ``x = f[x←0]`` / ``x = ¬f[x←1]``).
* **Theorem 5 (weak independence)** + **Theorem 7 (Independence)**: over
  atomless algebras the disequations project independently, so ``proj``
  is exact (Theorem 8); over arbitrary algebras it is the **best
  approximation** (Theorem 9) — ``∃x S ⟹ proj(S, x)`` always.
* Disequations not mentioning ``x`` pass through unchanged: with
  ``C_i = D_i = g_i`` the projected term is ``¬(A∧B) ∧ g_i``, which is
  equivalent to ``g_i`` under the projected equation ``A∧B = 0``.

The non-closure witness (paper Example 1) lives in the tests: for
``S: x∧y ≠ 0 ∧ ¬x∧y ≠ 0``, ``proj(S, x) = (y ≠ 0)``, but over an atomic
algebra ``∃x S`` additionally requires ``|y| ≥ 2``.
"""

from __future__ import annotations

from typing import Sequence

from ..boolean.simplify import simplify
from ..boolean.syntax import Formula, conj, disj, neg
from .system import EquationalSystem


def exists_equation(f: Formula, x: str) -> Formula:
    """Boole's elimination (Theorem 2): ``∃x (f = 0) ⟺ f[x←0]∧f[x←1] = 0``.

    Returns the new equation's left-hand side ``f[x←0] ∧ f[x←1]``.
    """
    lo, hi = f.cofactors(x)
    return conj(lo, hi)


def project_disequation(f: Formula, g: Formula, x: str) -> Formula:
    """The disequation produced by projecting ``g ≠ 0`` out of ``x``.

    Given the accompanying equation ``f = 0``, the projected disequation's
    left-hand side is ``(¬f[x←1] ∧ g[x←1]) ∨ (¬f[x←0] ∧ g[x←0])``
    (Theorem 4's right conjunct).  If ``x`` does not occur in ``g``, ``g``
    itself is returned (equivalent modulo the projected equation, and it
    keeps compiled systems small and readable).
    """
    if not g.mentions(x):
        return g
    a, b = f.cofactors(x)  # A = f[x<-0], B = f[x<-1]
    c, d = g.cofactors(x)  # C = g[x<-0], D = g[x<-1]
    return disj(conj(neg(b), d), conj(neg(a), c))


def project(
    system: EquationalSystem, x: str, simplify_formulas: bool = True
) -> EquationalSystem:
    """``proj(S, x)`` — the best unquantified approximation of ``∃x S``.

    Exact over atomless algebras (Theorem 8), an upper approximation in
    general (Theorem 9).  With ``simplify_formulas`` the resulting
    formulas are canonicalised through BDD ISOP, which keeps repeated
    projection (Algorithm 1) from blowing up syntactically.
    """
    equation = exists_equation(system.equation, x)
    disequations = [
        project_disequation(system.equation, g, x)
        for g in system.disequations
    ]
    if simplify_formulas:
        equation = simplify(equation)
        disequations = [simplify(g) for g in disequations]
    return EquationalSystem(equation, disequations)


def project_all(
    system: EquationalSystem,
    variables: Sequence[str],
    simplify_formulas: bool = True,
) -> EquationalSystem:
    """Project out several variables in the given order."""
    out = system
    for x in variables:
        out = project(out, x, simplify_formulas)
    return out


def eliminate_to_ground(
    system: EquationalSystem, simplify_formulas: bool = True
) -> EquationalSystem:
    """Project out *all* variables, leaving a system over constants.

    Over atomless algebras this decides satisfiability (see
    :mod:`repro.constraints.decision`).
    """
    return project_all(
        system, sorted(system.variables()), simplify_formulas
    )
