"""Textual syntax for constraint systems.

A small surface language so applications (and the examples) can state
queries the way the paper's Figure 1 does::

    A <= C
    B <= C
    R <= A | B | T
    R & A != 0
    R & T != 0
    T !<= C

Grammar (one constraint per line / semicolon)::

    constraint := formula '<='  formula        positive  f ⊆ g
                | formula '!<=' formula        negative  f ⊄ g
                | formula '='   formula        both inclusions
                | formula '!='  '0'            nonempty  f ≠ 0
                | formula '='   '0'            empty     f = 0
                | formula '<'   formula        strict    f ⊂ g

Formulas use the :mod:`repro.boolean.parser` syntax.  Note ``f != g`` for
general ``g`` is NOT a single constraint (it is a disjunction of denials,
outside the language — paper Section 1); only ``!= 0`` is accepted.
"""

from __future__ import annotations

import re

from ..boolean.parser import parse as parse_formula
from ..errors import ParseError
from .system import (
    ConstraintSystem,
    equal,
    nonempty,
    not_subset,
    strict_subset,
    subset,
)

_OPERATORS = ("!<=", "!=", "<=", "<", "=")


def parse_constraint(text: str) -> ConstraintSystem:
    """Parse one constraint line into a (possibly multi-part) system."""
    stripped = text.strip()
    if not stripped:
        raise ParseError("empty constraint", text, 0)
    for op in _OPERATORS:
        idx = _find_operator(stripped, op)
        if idx < 0:
            continue
        lhs_text = stripped[:idx].strip()
        rhs_text = stripped[idx + len(op) :].strip()
        lhs = parse_formula(lhs_text)
        if op == "!=":
            if rhs_text != "0":
                raise ParseError(
                    "'!=' is only supported against 0 (a general "
                    "disequality is a disjunction of denials, which is "
                    "outside the constraint language)",
                    text,
                    idx,
                )
            return ConstraintSystem.build(nonempty(lhs))
        rhs = parse_formula(rhs_text)
        if op == "<=":
            return ConstraintSystem.build(subset(lhs, rhs))
        if op == "!<=":
            return ConstraintSystem.build(not_subset(lhs, rhs))
        if op == "<":
            return strict_subset(lhs, rhs)
        if op == "=":
            from ..boolean.syntax import FALSE

            if rhs == FALSE or rhs_text == "0":
                from .system import empty

                return ConstraintSystem.build(empty(lhs))
            return equal(lhs, rhs)
    raise ParseError(
        f"no constraint operator found in {stripped!r} "
        f"(expected one of {_OPERATORS})",
        text,
        0,
    )


def _find_operator(text: str, op: str) -> int:
    """Index of ``op`` outside parentheses, or -1; longest-first caller
    order ensures '<=' is not found inside '!<='."""
    depth = 0
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and text.startswith(op, i):
            # Reject matches that are part of a longer operator.
            before = text[i - 1] if i > 0 else ""
            if op in ("<=", "=", "<") and before == "!":
                i += 1
                continue
            if op == "=" and text.startswith("!=", max(0, i - 1)):
                i += 1
                continue
            if op == "<" and text.startswith("<=", i):
                i += 1
                continue
            if op == "=" and i > 0 and text[i - 1] == "<":
                i += 1
                continue
            return i
        i += 1
    return -1


def parse_system(text: str) -> ConstraintSystem:
    """Parse a multi-line (or ``;``-separated) constraint system.

    Blank lines and ``#`` comments are ignored.

    >>> s = parse_system('''
    ...     A <= C
    ...     R & A != 0
    ...     T !<= C
    ... ''')
    >>> len(s.positives), len(s.negatives)
    (1, 2)
    """
    system = ConstraintSystem()
    for raw_line in re.split(r"[;\n]", text):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        system = system.conjoin(parse_constraint(line))
    if not len(system):
        raise ParseError("no constraints found", text, 0)
    return system
