"""Algorithm 1 (paper Figure 2): the triangular solved form.

Given a system ``S`` over variables ``x_1 .. x_n`` (the *retrieval
order*), compute constraints ``C_1(x_1), C_2(x_1,x_2), …,
C_n(x_1..x_n)`` such that each ``C_i`` is the strongest necessary
condition on a partial solution ``x_1..x_i`` (exact over atomless
algebras)::

    let S_n = S
    for i = n downto 1:
        C_i   = solved form of S_i for x_i      (Schröder + Boole)
        S_{i-1} = proj(S_i, x_i)

Variables *not* in the retrieval order (bound constants such as the
example's ``C`` and ``A``) are never eliminated; whatever remains in
``S_0`` — the **ground residue** — constrains only those constants and is
checked once at query set-up.

The optional ``simplify_modulo_ground`` mode displays each ``C_i``
simplified under the ground residue's equation, which is exactly how the
paper presents its Section 2 example (e.g. the upper bound ``C ∨ (¬A∧T)``
prints as ``C ∨ T`` given ``A ⊆ C``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..boolean.syntax import Formula, neg
from .projection import project
from .solved import SolvedConstraint, solve_for
from .system import ConstraintSystem, EquationalSystem


@dataclass(frozen=True)
class TriangularForm:
    """The output of Algorithm 1.

    Attributes
    ----------
    order:
        The retrieval order ``x_1 .. x_n``.
    constraints:
        ``C_1 .. C_n`` aligned with ``order``; ``C_i`` mentions only
        ``x_1..x_i`` and the bound constants.
    ground:
        The residue ``S_0`` over constants only.
    """

    order: Tuple[str, ...]
    constraints: Tuple[SolvedConstraint, ...]
    ground: EquationalSystem

    def constraint_for(self, variable: str) -> SolvedConstraint:
        """The ``C_i`` solving ``variable``."""
        for c in self.constraints:
            if c.variable == variable:
                return c
        raise KeyError(f"{variable!r} is not in the retrieval order")

    def check_prefix(
        self, algebra, env: Mapping[str, object], upto: Optional[int] = None
    ) -> bool:
        """Check ``C_1 .. C_upto`` on a (partial) assignment.

        ``env`` must bind constants and the first ``upto`` order
        variables.  This is the executor's pruning predicate.
        """
        limit = len(self.order) if upto is None else upto
        for i in range(limit):
            c = self.constraints[i]
            if not c.holds(algebra, env[c.variable], env):
                return False
        return True

    def check_ground(self, algebra, env: Mapping[str, object]) -> bool:
        """Check the ground residue against the bound constants."""
        return self.ground.holds(algebra, env)

    def render(self) -> str:
        """Paper-style multi-line rendering of the whole triangle."""
        blocks = []
        for c in self.constraints:
            blocks.append(f"-- C[{c.variable}] --\n{c.render()}")
        if self.ground.equation.variables() or self.ground.disequations:
            blocks.append(f"-- ground --\n{self.ground}")
        return "\n".join(blocks)

    def __str__(self) -> str:
        return self.render()


def triangular_form(
    system: ConstraintSystem | EquationalSystem,
    order: Sequence[str],
    simplify_formulas: bool = True,
    simplify_modulo_ground: bool = True,
    subsume: bool = True,
) -> TriangularForm:
    """Run Algorithm 1 over ``system`` with retrieval order ``order``.

    Parameters
    ----------
    system:
        The constraint system (normalized on the fly if needed).
    order:
        Retrieval order ``x_1 .. x_n``; every name must occur in the
        system and be pairwise distinct.  Variables of the system not
        listed are treated as bound constants.
    simplify_formulas:
        Canonicalise intermediate formulas (recommended; Algorithm 1's
        raw rewriting is exponential syntactically).
    simplify_modulo_ground:
        Additionally simplify each ``C_i`` under the ground residue's
        equation, as the paper's Section 2 does.  Sound because the
        compiler verifies the residue before the plan runs.
    subsume:
        Drop per-level disequations subsumed by stronger ones.

    Returns
    -------
    TriangularForm
    """
    if isinstance(system, ConstraintSystem):
        normalized = system.normalize(simplify_formulas)
    else:
        normalized = system
    names = list(order)
    if len(set(names)) != len(names):
        raise ValueError(f"retrieval order has duplicates: {names}")

    # Eliminate from x_n down to x_1, keeping each S_i.
    systems: Dict[int, EquationalSystem] = {len(names): normalized}
    current = normalized
    for i in range(len(names), 0, -1):
        current = project(current, names[i - 1], simplify_formulas)
        systems[i - 1] = current
    ground = systems[0]
    if subsume:
        ground = ground.subsume_disequations()

    care: Optional[Formula] = None
    if simplify_modulo_ground:
        care = neg(ground.equation)  # care set: residue equation holds

    constraints: List[SolvedConstraint] = []
    for i in range(1, len(names) + 1):
        level_system = systems[i]
        if subsume:
            level_system = level_system.subsume_disequations()
        solved, _passed = solve_for(
            level_system,
            names[i - 1],
            simplify_formulas=simplify_formulas,
            care=care,
        )
        if subsume:
            solved = _subsume_solved(solved, care)
        constraints.append(solved)

    return TriangularForm(
        order=tuple(names), constraints=tuple(constraints), ground=ground
    )


def _subsume_solved(
    c: SolvedConstraint, care: Optional[Formula]
) -> SolvedConstraint:
    """Remove redundant disequations within one level.

    ``r_k`` implies ``r_j`` iff ``p_k <= p_j`` and ``q_k <= q_j`` (the
    disequation bodies are monotone in both coefficients); implication is
    checked modulo the ground residue ``care`` when provided, matching
    the paper's display of the Section 2 example.
    """
    from ..boolean.semantics import implies_under
    from ..boolean.syntax import TRUE

    hyp = TRUE if care is None else care

    def le(a: Formula, b: Formula) -> bool:
        return implies_under(hyp, a, b)

    rs = list(dict.fromkeys(c.disequations))
    kept = []
    for j, rj in enumerate(rs):
        redundant = False
        for k, rk in enumerate(rs):
            if k == j:
                continue
            if le(rk.p, rj.p) and le(rk.q, rj.q):
                mutual = le(rj.p, rk.p) and le(rj.q, rk.q)
                if not (mutual and k > j):
                    redundant = True
                    break
        if not redundant:
            kept.append(rj)
    if len(kept) == len(c.disequations):
        return c
    return SolvedConstraint(
        variable=c.variable,
        lower=c.lower,
        upper=c.upper,
        disequations=tuple(kept),
    )


def verify_necessity(
    tri: TriangularForm,
    algebra,
    env: Mapping[str, object],
) -> bool:
    """Soundness check: a full solution satisfies every ``C_i`` prefix.

    ``env`` binds all order variables and constants and is assumed to
    satisfy the original system; Theorem 9 (best approximation) implies
    each prefix satisfies ``C_1..C_i``.  Used by tests and benches.
    """
    return tri.check_ground(algebra, env) and tri.check_prefix(algebra, env)
