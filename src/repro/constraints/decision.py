"""Decision procedures over atomless Boolean algebras (paper Theorems 6-9).

Over an atomless algebra, ``proj`` eliminates quantifiers *exactly*
(Theorem 8), so iterating it down to a variable-free system decides
satisfiability:

    S is satisfiable in some (equivalently, every) atomless algebra
        iff
    eliminate_to_ground(S) evaluates to True, i.e. its equation is the
    constant 0 and every disequation is a non-0 constant function.

Theorem 9's corollary is an **entailment** check: ``S ⊨ S'`` over all
atomless algebras iff every way of denying ``S'`` is inconsistent with
``S``; denial of a system case-splits into single constraints, each of
which merges with ``S`` into another plain system:

* deny ``f' = 0``: add the disequation ``f' ≠ 0``;
* deny ``g'_i ≠ 0``: fold ``g'_i`` into the equation (``f ∨ g'_i = 0``).

Both functions are exact for atomless algebras and sound (no false
"entailed") for arbitrary ones in the directions the library uses.
"""

from __future__ import annotations


from ..boolean.semantics import is_contradiction, is_tautology
from ..boolean.simplify import simplify
from ..boolean.syntax import FALSE, disj
from .projection import eliminate_to_ground
from .system import ConstraintSystem, EquationalSystem


def _as_equational(system) -> EquationalSystem:
    if isinstance(system, ConstraintSystem):
        return system.normalize()
    return system


def ground_holds(ground: EquationalSystem) -> bool:
    """Evaluate a variable-free system (constants only).

    The equation must be identically 0 and every disequation identically
    nonzero.  A variable-free formula over {0,1} constants is constant,
    but projection can also leave *formulas over no variables at all*
    mixed from constants; we decide with the tautology/contradiction
    checks, which handle both.
    """
    if not is_contradiction(ground.equation):
        return False
    for g in ground.disequations:
        if is_contradiction(g):
            return False
        if not is_tautology(g):
            # A variable-free formula is 0 or 1; anything else means
            # variables survived elimination (caller bug).
            raise ValueError(
                f"ground system still mentions variables: {g!r}"
            )
    return True


def satisfiable_atomless(system) -> bool:
    """Satisfiability of a constraint system in atomless algebras.

    Exact (Theorems 7/8): projection preserves ``∃`` step by step, so the
    ground residue is satisfiable iff the original system is.
    """
    ground = eliminate_to_ground(_as_equational(system))
    if not is_contradiction(ground.equation):
        return False
    for g in ground.disequations:
        if is_contradiction(g):
            return False
    return True


def entails_atomless(s1, s2) -> bool:
    """``S1 ⊨ S2`` over every atomless algebra (hence, by Theorem 9's
    argument, the strongest implication checkable between systems).

    Decided by refutation: ``S1 ∧ ¬c`` must be unsatisfiable for each
    constraint ``c`` of ``S2``.
    """
    sys1 = _as_equational(s1)
    sys2 = _as_equational(s2)

    # Deny the equation part: S1 ∧ (f2 ≠ 0).
    if sys2.equation != FALSE:
        denial = EquationalSystem(
            sys1.equation, list(sys1.disequations) + [sys2.equation]
        )
        if satisfiable_atomless(denial):
            return False

    # Deny each disequation: S1 ∧ (g = 0)  ==  (f1 ∨ g = 0) ∧ ….
    for g in sys2.disequations:
        denial = EquationalSystem(
            simplify(disj(sys1.equation, g)), sys1.disequations
        )
        if satisfiable_atomless(denial):
            return False
    return True


def equivalent_atomless(s1, s2) -> bool:
    """Mutual entailment over atomless algebras."""
    return entails_atomless(s1, s2) and entails_atomless(s2, s1)


def is_best_approximation(
    projected: EquationalSystem, original: EquationalSystem, x: str
) -> bool:
    """Check Theorem 9 on an instance: ``proj(S, x)`` is entailed by
    ``∃x S`` and entails every other x-free consequence candidate.

    The full "maximality" quantifies over all systems; here we verify the
    two checkable directions used by the tests:

    1. ``S ⊨ projected`` (soundness of the approximation);
    2. ``projected`` does not mention ``x``.
    """
    if x in projected.variables():
        return False
    return entails_atomless(original, projected)
