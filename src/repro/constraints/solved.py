"""Solved-form constraints for one variable (paper §3, display (2)).

The triangular form's ``C_i`` constrains ``x_i`` by the *preceding*
variables only:

    s(x_1..x_{i-1})  ⊆  x_i  ⊆  t(x_1..x_{i-1})          (range part)
    ⋀_j  r_j   with   r_j:  (x_i ∧ p_j ≠ 0) ∨ (¬x_i ∧ q_j ≠ 0)

* The range part comes from **Schröder's theorem (Theorem 10)**:
  ``f = 0  ⟺  f[x←0] ⊆ x ⊆ ¬f[x←1]``.
* Each disequation comes from **Boole's expansion (Theorem 11)**:
  ``g = (x ∧ g[x←1]) ∨ (¬x ∧ g[x←0])``, so ``g ≠ 0`` iff
  ``x ∧ g[x←1] ≠ 0`` or ``¬x ∧ g[x←0] ≠ 0``.

In the paper's containment notation, ``x∧p ≠ 0`` is ``x ⊄ ¬p`` and
``¬x∧q ≠ 0`` is ``q ⊄ x``; we carry the pair ``(p, q)`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Mapping, Optional, Tuple

from ..boolean.printer import to_str
from ..boolean.semantics import evaluate
from ..boolean.simplify import simplify, simplify_under
from ..boolean.syntax import FALSE, Formula, TRUE, conj, neg
from .system import EquationalSystem


@dataclass(frozen=True)
class Disequation:
    """``(x ∧ p ≠ 0) ∨ (¬x ∧ q ≠ 0)`` for the solved variable ``x``.

    ``p`` is the coefficient of ``x`` (``g[x←1]``) and ``q`` the
    coefficient of ``¬x`` (``g[x←0]``) in Boole's expansion of the
    original disequation body ``g``.
    """

    p: Formula
    q: Formula

    def body(self, x: str) -> Formula:
        """Reconstruct ``g`` = ``(x∧p) ∨ (¬x∧q)`` for variable name ``x``."""
        from ..boolean.syntax import Var, disj

        v = Var(x)
        return disj(conj(v, self.p), conj(neg(v), self.q))

    def holds(self, algebra, value, env: Mapping[str, object]) -> bool:
        """Evaluate with ``value`` bound to the solved variable."""
        pv = evaluate(self.p, algebra, env)
        if not algebra.is_zero(algebra.meet(value, pv)):
            return True
        qv = evaluate(self.q, algebra, env)
        return not algebra.is_zero(
            algebra.meet(algebra.complement(value), qv)
        )

    def render(self, x: str) -> str:
        """Human-readable rendering."""
        parts = []
        if self.p != FALSE:
            parts.append(f"{x} & ({to_str(self.p)}) != 0")
        if self.q != FALSE:
            parts.append(f"~{x} & ({to_str(self.q)}) != 0")
        if not parts:
            return "false"
        return "  or  ".join(parts)


@dataclass(frozen=True)
class SolvedConstraint:
    """The solved form ``C_i`` for one variable.

    Attributes
    ----------
    variable:
        The solved variable ``x_i``.
    lower:
        ``s`` with ``s ⊆ x_i`` (from Schröder; ``0`` when vacuous).
    upper:
        ``t`` with ``x_i ⊆ t`` (``1`` when vacuous).
    disequations:
        The ``r_j`` pairs.
    """

    variable: str
    lower: Formula
    upper: Formula
    disequations: Tuple[Disequation, ...] = ()

    def earlier_variables(self) -> FrozenSet[str]:
        """Variables other than the solved one (must all precede it)."""
        out = set(self.lower.variables()) | set(self.upper.variables())
        for r in self.disequations:
            out |= r.p.variables() | r.q.variables()
        out.discard(self.variable)
        return frozenset(out)

    def is_range_trivial(self) -> bool:
        """``True`` when the range part is ``0 ⊆ x ⊆ 1``."""
        return self.lower == FALSE and self.upper == TRUE

    def holds(self, algebra, value, env: Mapping[str, object]) -> bool:
        """Check ``C_i`` exactly with ``value`` for the solved variable.

        ``env`` must bind every earlier variable (and any constants).
        """
        lo = evaluate(self.lower, algebra, env)
        if not algebra.le(lo, value):
            return False
        hi = evaluate(self.upper, algebra, env)
        if not algebra.le(value, hi):
            return False
        return all(r.holds(algebra, value, env) for r in self.disequations)

    def render(self) -> str:
        """Multi-line human-readable rendering, paper style."""
        x = self.variable
        lines = [f"{to_str(self.lower)} <= {x} <= {to_str(self.upper)}"]
        lines += [r.render(x) for r in self.disequations]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def solve_for(
    system: EquationalSystem,
    x: str,
    simplify_formulas: bool = True,
    care: Optional[Formula] = None,
) -> Tuple[SolvedConstraint, List[Formula]]:
    """Rewrite a system into solved form for variable ``x``.

    Applies Schröder to the equation and Boole's expansion to every
    disequation mentioning ``x``.  Returns the :class:`SolvedConstraint`
    together with the disequations *not* mentioning ``x`` (they belong to
    lower levels of the triangle and are handled by the caller).

    ``care`` optionally supplies a ground hypothesis (the residue ``S_0``
    of Algorithm 1, as the formula ``residue = 0`` i.e. care set
    ``¬residue``); formulas are then displayed/simplified modulo it,
    reproducing the paper's hand-simplified Section 2 presentation.
    """

    def clean(f: Formula) -> Formula:
        if not simplify_formulas:
            return f
        if care is not None:
            return simplify_under(f, care)
        return simplify(f)

    lower_raw, upper_neg = system.equation.cofactors(x)
    lower = clean(lower_raw)
    upper = clean(neg(upper_neg))

    solved: List[Disequation] = []
    passed: List[Formula] = []
    for g in system.disequations:
        if g.mentions(x):
            q_raw, p_raw = g.cofactors(x)
            solved.append(Disequation(p=clean(p_raw), q=clean(q_raw)))
        else:
            passed.append(g)
    constraint = SolvedConstraint(
        variable=x, lower=lower, upper=upper, disequations=tuple(solved)
    )
    return constraint, passed


def solved_to_system(constraint: SolvedConstraint) -> EquationalSystem:
    """Rebuild the equational system denoted by a solved constraint.

    Inverse of :func:`solve_for` up to semantic equivalence; used by
    round-trip tests.
    """
    from ..boolean.syntax import Var, disj

    x = Var(constraint.variable)
    equation = disj(
        conj(constraint.lower, neg(x)), conj(x, neg(constraint.upper))
    )
    disequations = [r.body(constraint.variable) for r in constraint.disequations]
    return EquationalSystem(equation, disequations)
