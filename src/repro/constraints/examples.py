"""Canonical constraint systems from the paper, as reusable constructors.

Centralising these keeps the tests, examples and benchmarks literally on
the same objects the paper manipulates.
"""

from __future__ import annotations

from typing import Tuple

from ..boolean.syntax import Var, disj, neg
from .system import (
    ConstraintSystem,
    not_subset,
    overlaps,
    subset,
)


def smugglers_system() -> ConstraintSystem:
    """The Section 2 example (paper Figure 1).

    Variables: ``C`` country, ``A`` destination area, ``T`` border town,
    ``R`` road, ``B`` state.  Constraints::

        A ⊆ C                   the destination area is in the country
        B ⊆ C                   the state is in the country
        R ⊆ A ∪ B ∪ T           the road stays within area/state/town
        R ∩ A ≠ ∅               the road reaches the destination area
        R ∩ T ≠ ∅               the road starts at the border town
        T ⊄ C                   the town straddles the border

    The paper rewrites this to one equation and three disequations::

        (A∧¬C) ∨ (B∧¬C) ∨ (R∧¬A∧¬B∧¬T) = 0
        R∧A ≠ 0,   R∧T ≠ 0,   ¬C∧T ≠ 0
    """
    A, B, C, R, T = (Var(v) for v in "ABCRT")
    return ConstraintSystem.build(
        subset(A, C),
        subset(B, C),
        subset(R, disj(A, B, T)),
        overlaps(R, A),
        overlaps(R, T),
        not_subset(T, C),
    )


SMUGGLERS_ORDER: Tuple[str, ...] = ("T", "R", "B")
"""The retrieval order the paper picks "arbitrarily": town, road, state."""

SMUGGLERS_CONSTANTS: Tuple[str, ...] = ("C", "A")
"""The bound (given) variables of the Section 2 example."""


def nonclosure_example() -> ConstraintSystem:
    """Paper Example 1: ``x∧y ≠ 0 ∧ ¬x∧y ≠ 0``.

    ``∃x`` of this system is *not* expressible as a Boolean constraint
    system over ``y`` (it says ``y`` dominates at least two disjoint
    nonzero elements, i.e. "|y| ≥ 2" in an atomic algebra); its best
    approximation is ``y ≠ 0``.
    """
    x, y = Var("x"), Var("y")
    return ConstraintSystem.build(
        overlaps(x, y),
        overlaps(neg(x), y),
    )
