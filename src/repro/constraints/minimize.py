"""Constraint-system minimization.

An application of the atomless decision procedure
(:mod:`repro.constraints.decision`): remove constraints that are
entailed by the rest of the system.  Useful both as a front-end
optimization (fewer constraints → smaller formulas through Algorithm 1)
and as a specification-hygiene tool (report redundant integrity
constraints to the user).

Minimization is performed greedily in input order, so the result is a
(non-unique) irredundant core: no remaining constraint is implied by
the others.
"""

from __future__ import annotations

from typing import List, Tuple

from .decision import entails_atomless
from .system import ConstraintSystem


def _without(constraints: List, index: int) -> ConstraintSystem:
    rest = [c for k, c in enumerate(constraints) if k != index]
    return ConstraintSystem.build(*rest) if rest else ConstraintSystem()


def _single(constraint) -> ConstraintSystem:
    return ConstraintSystem.build(constraint)


def redundant_constraints(system: ConstraintSystem) -> List:
    """Constraints implied by the remainder of the system.

    Each listed constraint can be dropped *individually*; dropping
    several at once is only safe through :func:`minimize_system`, which
    re-checks after every removal.
    """
    constraints = list(system.positives) + list(system.negatives)
    out = []
    for i, c in enumerate(constraints):
        if len(constraints) < 2:
            break
        rest = _without(constraints, i)
        if entails_atomless(rest, _single(c)):
            out.append(c)
    return out


def minimize_system(system: ConstraintSystem) -> Tuple[ConstraintSystem, List]:
    """Greedily remove entailed constraints until none remains.

    Returns ``(core, removed)``.  The core is equivalent to the input
    over every atomless Boolean algebra (hence over the region model).
    """
    constraints = list(system.positives) + list(system.negatives)
    removed: List = []
    changed = True
    while changed and len(constraints) > 1:
        changed = False
        for i, c in enumerate(constraints):
            rest = _without(constraints, i)
            if entails_atomless(rest, _single(c)):
                removed.append(c)
                del constraints[i]
                changed = True
                break
    return ConstraintSystem.build(*constraints), removed
