"""Boolean constraint systems and their compilation (paper Section 3).

* :mod:`repro.constraints.system` — positive/negative constraints,
  Theorem 1 normalization.
* :mod:`repro.constraints.projection` — ``proj``, the best unquantified
  approximation of ``∃x S`` (exact over atomless algebras).
* :mod:`repro.constraints.solved` — Schröder/Boole solved form for one
  variable.
* :mod:`repro.constraints.triangular` — Algorithm 1.
* :mod:`repro.constraints.decision` — satisfiability/entailment over
  atomless algebras.
* :mod:`repro.constraints.witness` — constructive model building.
* :mod:`repro.constraints.examples` — the paper's running examples.
"""

from .decision import (
    entails_atomless,
    equivalent_atomless,
    ground_holds,
    satisfiable_atomless,
)
from .examples import (
    SMUGGLERS_CONSTANTS,
    SMUGGLERS_ORDER,
    nonclosure_example,
    smugglers_system,
)
from .minimize import minimize_system, redundant_constraints
from .parser import parse_constraint, parse_system
from .projection import (
    eliminate_to_ground,
    exists_equation,
    project,
    project_all,
    project_disequation,
)
from .solved import Disequation, SolvedConstraint, solve_for, solved_to_system
from .system import (
    ConstraintSystem,
    EquationalSystem,
    Negative,
    Positive,
    disjoint,
    empty,
    equal,
    nonempty,
    not_subset,
    overlaps,
    strict_subset,
    subset,
)
from .triangular import TriangularForm, triangular_form, verify_necessity
from .witness import (
    WitnessError,
    build_witness,
    choose_value,
    disjoint_representatives,
)

__all__ = [
    "ConstraintSystem",
    "Disequation",
    "EquationalSystem",
    "Negative",
    "Positive",
    "SMUGGLERS_CONSTANTS",
    "SMUGGLERS_ORDER",
    "SolvedConstraint",
    "TriangularForm",
    "WitnessError",
    "build_witness",
    "choose_value",
    "disjoint",
    "disjoint_representatives",
    "eliminate_to_ground",
    "empty",
    "entails_atomless",
    "equal",
    "equivalent_atomless",
    "exists_equation",
    "ground_holds",
    "nonclosure_example",
    "minimize_system",
    "nonempty",
    "not_subset",
    "overlaps",
    "parse_constraint",
    "parse_system",
    "project",
    "project_all",
    "project_disequation",
    "redundant_constraints",
    "satisfiable_atomless",
    "smugglers_system",
    "solve_for",
    "solved_to_system",
    "strict_subset",
    "subset",
    "triangular_form",
    "verify_necessity",
]
