"""Constructive models over atomless algebras (Independence theorem).

The proof of the paper's Independence theorem (Theorem 6) is
constructive: because the algebra is atomless, every requirement of the
form "meet this set in a nonzero piece" can be satisfied by carving out a
*proper* nonzero subset, and finitely many requirements can be satisfied
simultaneously by keeping the pieces disjoint.

This module turns that argument into an algorithm:

* :func:`disjoint_representatives` — given finitely many nonzero elements
  ``base_1..base_m`` of an atomless algebra, produce pairwise-disjoint
  nonzero pieces ``w_j ⊆ base_j`` (splitting, with "stealing" when a base
  is already covered by earlier pieces);
* :func:`choose_value` — given a solved constraint ``C_i`` whose
  projection conditions hold for a prefix, produce an actual value for
  ``x_i``;
* :func:`build_witness` — given a satisfiable system, produce a full
  assignment in the algebra, by running the Algorithm 1 elimination chain
  and re-introducing variables front to back.

Together with :func:`repro.constraints.decision.satisfiable_atomless`
this gives an end-to-end machine check of Theorems 7/8: a system passes
the symbolic decision procedure **iff** a concrete model can be built in
the interval/region algebras.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..boolean.semantics import evaluate
from ..errors import ReproError
from .projection import project
from .solved import SolvedConstraint, solve_for
from .system import ConstraintSystem, EquationalSystem


class WitnessError(ReproError):
    """Raised when no witness exists (system unsatisfiable at this point)."""


def disjoint_representatives(algebra, bases: Sequence) -> List:
    """Pairwise-disjoint nonzero ``w_j <= bases[j]`` in an atomless algebra.

    Implements the splitting argument of the Independence theorem's
    proof.  Every ``bases[j]`` must be nonzero.  Pieces are taken as
    proper subsets (via ``algebra.split``) so earlier choices never
    exhaust an element; if a base is nevertheless fully covered by
    earlier pieces, a sub-piece is *stolen* from one of them (both halves
    stay nonzero, so all invariants survive).
    """
    if not algebra.is_atomless():
        raise WitnessError(
            f"{type(algebra).__name__} is not atomless; "
            "disjoint representatives may not exist"
        )
    pieces: List = []
    for j, base in enumerate(bases):
        if algebra.is_zero(base):
            raise WitnessError(f"base {j} is zero; no representative exists")
        committed = algebra.join_all(pieces)
        avail = algebra.diff(base, committed)
        if not algebra.is_zero(avail):
            piece, _rest = algebra.split(avail)
            pieces.append(piece)
            continue
        # base ⊆ committed: steal half of someone's overlap with base.
        for k, other in enumerate(pieces):
            overlap = algebra.meet(other, base)
            if algebra.is_zero(overlap):
                continue
            half, _rest = algebra.split(overlap)
            pieces[k] = algebra.diff(other, half)
            pieces.append(half)
            break
        else:  # pragma: no cover - committed covers base => overlap exists
            raise WitnessError("invariant violation while stealing")
    return pieces


def choose_value(
    algebra,
    constraint: SolvedConstraint,
    env: Mapping[str, object],
):
    """A value for the solved variable satisfying ``C_i`` exactly.

    Preconditions (guaranteed when the prefix satisfies
    ``proj(S_i, x_i)``): the evaluated bounds satisfy ``s <= t`` and each
    disequation ``j`` satisfies ``t∧p_j ≠ 0 ∨ ¬s∧q_j ≠ 0``.

    Construction: start from the lower bound ``s``; for each disequation
    pick one of

    * (a) ``p_j ∧ s ≠ 0`` — already met, since ``x ⊇ s``;
    * (b) grow ``x`` by a piece of ``p_j ∧ t ∧ ¬s``;
    * (c) reserve a piece of ``q_j ∧ ¬s`` to stay *outside* ``x``;

    with all pieces pairwise disjoint via
    :func:`disjoint_representatives`.
    """
    s = evaluate(constraint.lower, algebra, env)
    t = evaluate(constraint.upper, algebra, env)
    if not algebra.le(s, t):
        raise WitnessError(
            f"range for {constraint.variable} is empty: lower !<= upper"
        )
    not_s = algebra.complement(s)

    modes: List[str] = []
    bases: List = []
    for r in constraint.disequations:
        p = evaluate(r.p, algebra, env)
        q = evaluate(r.q, algebra, env)
        if not algebra.is_zero(algebra.meet(p, s)):
            modes.append("a")
            bases.append(None)
        else:
            grow = algebra.meet(algebra.meet(p, t), not_s)
            keep = algebra.meet(q, not_s)
            if not algebra.is_zero(grow):
                modes.append("b")
                bases.append(grow)
            elif not algebra.is_zero(keep):
                modes.append("c")
                bases.append(keep)
            else:
                raise WitnessError(
                    f"disequation unsatisfiable for {constraint.variable}; "
                    "prefix does not satisfy the projected system"
                )

    active = [b for b in bases if b is not None]
    pieces = disjoint_representatives(algebra, active) if active else []
    value = s
    it = iter(pieces)
    for mode, base in zip(modes, bases):
        if base is None:
            continue
        piece = next(it)
        if mode == "b":
            value = algebra.join(value, piece)
        # mode "c": the piece stays outside x by disjointness.
    return value


def build_witness(
    system,
    algebra,
    order: Optional[Sequence[str]] = None,
    constants: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """A full satisfying assignment over an atomless algebra, or raise.

    Runs the elimination chain ``S_n .. S_0``, verifies the ground residue
    against ``constants``, then re-introduces the variables front to back
    with :func:`choose_value`.  Raises :class:`WitnessError` when the
    system is unsatisfiable (relative to the bound constants).
    """
    if isinstance(system, ConstraintSystem):
        normalized = system.normalize()
    else:
        normalized = system
    constants = dict(constants or {})
    if order is None:
        order = sorted(normalized.variables() - set(constants))

    chain: List[EquationalSystem] = [normalized]
    for x in reversed(list(order)):
        chain.append(project(chain[-1], x))
    chain.reverse()  # chain[i] == S_i, chain[0] == ground residue

    ground = chain[0]
    if not ground.holds(algebra, constants):
        raise WitnessError("ground residue fails for the bound constants")

    env: Dict[str, object] = dict(constants)
    for i, x in enumerate(order, start=1):
        constraint, _passed = solve_for(chain[i], x, simplify_formulas=True)
        env[x] = choose_value(algebra, constraint, env)
    return env
