"""Retrieval-order selection.

The paper picks its order "arbitrarily" (Section 2) and leaves order
choice open; in practice the order drives the size of intermediate
results, exactly like join ordering in relational optimizers.  We provide

* :func:`choose_order` — the default heuristic: greedy most-constrained-
  first using connectivity to already-placed variables and table sizes;
* :func:`enumerate_orders` — all permutations (for the E9 ablation);
* :func:`estimate_order_cost` — the legacy raw-size cardinality estimate;
* :func:`rollout_step_estimates` — per-step expected cardinalities for a
  candidate order: the order is compiled to its box templates and rolled
  out over the statistics catalog (:mod:`repro.engine.catalog`) — step
  candidate counts from histogram selectivities, survivor fractions from
  sampled exact-predicate selectivities.  Shared by the cost model below
  and by the physical plan's EXPLAIN annotations;
* :func:`estimate_order_cost_histogram` — the cost-based estimate (the
  rollouts' expected partial-tuple total);
* :func:`plan_order` / :func:`best_order_by_estimate` — strategy
  dispatch with the greedy heuristic as the safe fallback (the ablation
  hook ``bench_order_ablation.py`` compares all strategies);
* :func:`choose_join_strategies` — per-step join-algorithm choice
  (index-nested-loop probe vs partition-pruned scan vs PBSM vs z-order
  merge), priced on the same rollout estimates — partition pruning
  included via the catalog's per-partition statistics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from itertools import permutations
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from ..boxes.bconstraints import compile_solved_constraint
from ..constraints.system import ConstraintSystem
from ..constraints.triangular import triangular_form
from ..errors import CompilationError
from ..spatial.partition import DEFAULT_TILES
from .catalog import Catalog
from .query import SpatialQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spatial.table import SpatialTable
    from .compiler import QueryPlan

#: Strategies accepted by :func:`plan_order`.
ORDER_STRATEGIES = ("greedy", "estimate", "histogram")

#: Per-step join algorithms :func:`choose_join_strategies` picks among
#: (and :func:`repro.engine.physical.build_physical_plan` accepts):
#: ``"probe"`` — index-nested-loop (one compiled range query per partial
#: tuple; lowered to TableScan→BoxFilter on unindexed tables);
#: ``"partition"`` — PartitionScan over the table's STR partitions;
#: ``"pbsm"`` — partition-based spatial-merge join; ``"zorder"`` — the
#: PROBE-style z-order merge join.
JOIN_STRATEGIES = ("probe", "partition", "pbsm", "zorder")

#: Per-step access paths over a *sharded* table
#: (:func:`choose_shard_strategies`, ``shards > 0`` plans only):
#: ``"shardscan"`` — one MBR-pruned probe into each surviving shard's
#: R-tree per partial tuple; ``"shardjoin"`` — the coordinator's bulk
#: MBR semi-join + per-shard plane sweeps.
SHARD_STRATEGIES = ("shardscan", "shardjoin")

#: A PBSM/z-order step must expect at least this many probing partial
#: tuples before bulk joins can beat per-tuple index probes.
MIN_BULK_JOIN_OUTER = 4.0

#: ... and the probed table must have at least this many rows.
MIN_BULK_JOIN_ROWS = 32

#: Entry tests per node on an R-tree descent (~M/2 for capacity 8);
#: one probe costs about ``log2(n) * branching`` box tests, which
#: matches the measured ``entry_tests`` of the partitioned-join bench.
INDEX_PROBE_BRANCHING = 4.0

#: Beyond this many unknowns, exhaustive order enumeration is skipped
#: and the greedy heuristic is used directly.
MAX_ENUMERATED_UNKNOWNS = 7

#: Access paths a kNN step can use (:func:`choose_knn_access`).
KNN_ACCESS_STRATEGIES = ("bestfirst", "scan")

#: Strategies :func:`choose_aggregate_strategy` picks among:
#: ``"stream"`` folds the verified answer stream, ``"pushdown"``
#: answers a box-level COUNT from the R-tree's subtree entry counts.
AGGREGATE_STRATEGIES = ("stream", "pushdown")

#: The histogram planner only overrides the greedy order when its
#: estimate is decisively better (below this fraction of the greedy
#: order's estimate).  Near-ties are estimator noise: deferring to the
#: greedy heuristic there keeps the cost-based planner from ever doing
#: measurably worse while preserving its large wins.
HISTOGRAM_CONFIDENCE_MARGIN = 0.8


def _constraint_edges(system: ConstraintSystem) -> List[Tuple[frozenset, bool]]:
    """``(variable set, is_negative)`` pairs, one per constraint.

    Negative constraints (disequations) are tracked separately: they are
    typically far more selective than inclusions (a ``T ⊄ C`` admits only
    border towns; a ``B ⊆ C`` admits every state), so the greedy order
    prefers variables whose grounded constraints are negative.
    """
    edges: List[Tuple[frozenset, bool]] = []
    for c in system.positives:
        edges.append((frozenset(c.variables()), False))
    for c in system.negatives:
        edges.append((frozenset(c.variables()), True))
    return edges


def choose_order(query: SpatialQuery) -> Tuple[str, ...]:
    """Greedy heuristic order.

    Repeatedly pick the unknown with the most constraints *fully
    grounded* by already-placed variables, preferring grounded negative
    constraints (disequations are the selective ones: ``T ⊄ C`` admits
    only border towns, while ``B ⊆ C`` admits every state).  Ties break
    by overall connectivity, then smaller table, then name.  On the
    paper's example this retrieves the border town first — the choice
    the paper makes "arbitrarily".
    """
    unknowns = set(query.unknowns)
    placed = set(query.constants)
    edges = _constraint_edges(query.system)
    order: List[str] = []
    while unknowns:
        def score(name: str) -> Tuple:
            grounded_neg = sum(
                1
                for e, negative in edges
                if negative
                and name in e
                and (e - {name})
                and (e - {name}) <= placed
            )
            grounded_pos = sum(
                1
                for e, negative in edges
                if not negative
                and name in e
                and (e - {name})
                and (e - {name}) <= placed
            )
            touching = sum(
                1 for e, _n in edges if name in e and e & placed
            )
            return (
                -grounded_neg,
                -grounded_pos,
                -touching,
                len(query.tables[name]),
                name,
            )

        best = min(unknowns, key=score)
        order.append(best)
        unknowns.discard(best)
        placed.add(best)
    return tuple(order)


def enumerate_orders(query: SpatialQuery) -> Iterator[Tuple[str, ...]]:
    """All retrieval orders (E9 ablation; factorial — small queries only)."""
    return permutations(query.unknowns)


def estimate_order_cost(
    query: SpatialQuery,
    order: Sequence[str],
    selectivity: float = 0.25,
) -> float:
    """A coarse cardinality estimate for an order.

    Each step multiplies the running partial count by the table size,
    discounted by ``selectivity`` for every constraint fully grounded at
    that step (all other variables already placed).  Not calibrated —
    meant only to rank orders relative to each other.
    """
    edges = _constraint_edges(query.system)
    placed = set(query.constants)
    partials = 1.0
    cost = 0.0
    for name in order:
        grounded = sum(
            1
            for e, _negative in edges
            if name in e and (e - {name}) <= placed
        )
        fanout = max(1.0, len(query.tables[name]) * (selectivity ** grounded))
        cost += partials * max(1, len(query.tables[name]))
        partials *= fanout
        placed.add(name)
    return cost + partials


@dataclass(frozen=True)
class StepEstimate:
    """Expected per-step cardinalities for one retrieval order.

    All figures are expectations over the statistics-catalog rollouts
    (averaged across rollouts):

    ``partials_in``
        partial tuples entering the step;
    ``candidates``
        candidate extensions the step's *box* query admits (what an
        :class:`~repro.engine.physical.IndexProbe` returns);
    ``scan_candidates``
        extensions a full table scan would produce instead;
    ``survivors``
        partial tuples after the step's exact filter.  The box query is
        a necessary condition for the exact constraint, so this estimate
        applies to the scan-based modes too;
    ``pruned_candidates``
        rows read after partition-MBR pruning (``PartitionScan``'s read
        cost); equals ``scan_candidates`` when partitioning is disabled.
    """

    variable: str
    partials_in: float
    candidates: float
    scan_candidates: float
    survivors: float
    pruned_candidates: float = 0.0


def rollout_step_estimates(
    query: SpatialQuery,
    order: Sequence[str],
    catalog: Optional[Catalog] = None,
    rollouts: int = 6,
    seed: int = 0,
    partitions: int = 0,
) -> List[StepEstimate]:
    """Per-step cardinality estimates for one retrieval order.

    The order is triangularised and compiled to its per-step bounding-box
    templates (exactly what the executor will run); ``rollouts``
    executions are then simulated over the statistics catalog:

    * the **candidate count** of a step is the table size times the
      histogram selectivity of the step's instantiated box query;
    * the **survivor fraction** is the sampled selectivity of the step's
      exact solved constraint, evaluated on the table's row sample
      (this is what separates a selective disequation like ``T ⊄ C``
      from an unselective inclusion like ``B ⊆ C`` — their *box*
      queries can look equally permissive);
    * representative objects for later steps are drawn from the sample.

    ``partitions > 0`` collects per-partition statistics and fills
    :attr:`StepEstimate.pruned_candidates` from partition-MBR pruning
    (otherwise it equals the full-scan fanout).

    Used by :func:`estimate_order_cost_histogram` (the planner's cost
    model), :func:`choose_join_strategies`, and the physical plan's
    EXPLAIN annotations.
    """
    catalog = catalog or Catalog()
    if partitions and catalog.partitions != partitions:
        catalog = Catalog(
            bins=catalog.bins,
            sample_size=catalog.sample_size,
            seed=catalog.seed,
            partitions=partitions,
        )
    stats = {name: catalog.statistics(t) for name, t in query.tables.items()}
    tri = triangular_form(query.system, list(order))
    steps = {c.variable: (c, compile_solved_constraint(c)) for c in tri.constraints}
    algebra = query.algebra()
    universe = algebra.universe_box

    base_box_env = {
        name: region.bounding_box() for name, region in query.bindings.items()
    }
    base_region_env = dict(query.bindings)

    rng = random.Random(seed)
    n_rollouts = max(1, rollouts)
    sums = {
        # partials_in, candidates, scan, survivors, pruned
        name: [0.0, 0.0, 0.0, 0.0, 0.0]
        for name in order
    }
    for _ in range(n_rollouts):
        box_env = dict(base_box_env)
        region_env = dict(base_region_env)
        partials = 1.0
        for name in order:
            st = stats[name]
            step = steps.get(name)
            if step is None:  # unconstrained variable: full scan fanout
                box_sel, exact_frac, matching = 1.0, 1.0, list(st.sample)
                pruned = float(st.count)
            else:
                solved, template = step
                box_query = template.instantiate(box_env, universe)
                box_sel = st.selectivity(box_query)
                pruned = st.pruned_count(box_query)
                matching = [
                    obj
                    for obj in st.sample
                    if not obj.box.is_empty() and box_query.matches(obj.box)
                ]
                # Sampled exact-predicate selectivity among the rows the
                # box filter admits (whole sample when none match).
                exact_frac, holding = st.exact_selectivity(
                    solved,
                    algebra,
                    region_env,
                    pool=matching if matching else None,
                )
                if holding:
                    matching = list(holding)
            candidates = st.count * box_sel
            survivors = candidates * exact_frac
            acc = sums[name]
            acc[0] += partials
            acc[1] += partials * candidates
            acc[2] += partials * st.count
            acc[4] += partials * pruned
            partials *= survivors
            acc[3] += partials
            # Choose a representative retrieved object for later steps;
            # with no representative row, later exact sampling against
            # this variable falls back to box-only costing.
            if matching:
                pick = rng.choice(matching)
                box_env[name] = pick.box
                region_env[name] = pick.region
            else:
                box_env[name] = universe if st.mbr.is_empty() else st.mbr
    return [
        StepEstimate(
            variable=name,
            partials_in=sums[name][0] / n_rollouts,
            candidates=sums[name][1] / n_rollouts,
            scan_candidates=sums[name][2] / n_rollouts,
            survivors=sums[name][3] / n_rollouts,
            pruned_candidates=sums[name][4] / n_rollouts,
        )
        for name in order
    ]


def estimate_order_cost_histogram(
    query: SpatialQuery,
    order: Sequence[str],
    catalog: Optional[Catalog] = None,
    rollouts: int = 6,
    seed: int = 0,
    partitions: int = 0,
) -> float:
    """Statistics-driven cost estimate for one retrieval order.

    Rolls the order out over the statistics catalog (see
    :func:`rollout_step_estimates`); the cost is the expected total
    number of partial tuples (the executor's ``partial_tuples`` counter)
    plus a small candidate term so index work breaks ties.  With
    ``partitions > 0`` the tie term uses the partition-pruned read cost
    when it beats the index estimate, so orders whose steps prune well
    are preferred.
    """
    estimates = rollout_step_estimates(
        query,
        order,
        catalog=catalog,
        rollouts=rollouts,
        seed=seed,
        partitions=partitions,
    )
    if partitions:
        index_work = sum(
            min(e.candidates, e.pruned_candidates) for e in estimates
        )
    else:
        index_work = sum(e.candidates for e in estimates)
    return sum(e.survivors for e in estimates) + 1e-3 * index_work


def _exhaustive_costs(
    query: SpatialQuery, cost: Callable[[Tuple[str, ...]], float]
) -> Dict[Tuple[str, ...], float]:
    return {order: cost(order) for order in enumerate_orders(query)}


def _argmin_order(costs: Dict[Tuple[str, ...], float]) -> Tuple[str, ...]:
    return min(costs, key=lambda order: (costs[order], order))


def best_order_by_estimate(
    query: SpatialQuery,
    estimator: str = "histogram",
    catalog: Optional[Catalog] = None,
    partitions: int = 0,
) -> Tuple[str, ...]:
    """Exhaustively pick the order minimising the estimate (small n).

    ``estimator`` selects the cost model: ``"histogram"`` (the
    statistics catalog, default) or ``"raw"`` (the legacy raw-size
    estimate).  Any failure of the histogram path — empty catalog,
    unsupported system — falls back to the greedy heuristic.
    """
    if estimator == "raw":
        return _argmin_order(
            _exhaustive_costs(
                query, lambda order: estimate_order_cost(query, order)
            )
        )
    if estimator != "histogram":
        raise ValueError(
            f"unknown estimator {estimator!r}; expected 'histogram' or 'raw'"
        )
    greedy = choose_order(query)
    if len(query.unknowns) > MAX_ENUMERATED_UNKNOWNS:
        return greedy
    try:
        costs = _exhaustive_costs(
            query,
            lambda order: estimate_order_cost_histogram(
                query, order, catalog=catalog, partitions=partitions
            ),
        )
        best = _argmin_order(costs)
        if best == greedy:
            return best
        if costs[best] < HISTOGRAM_CONFIDENCE_MARGIN * costs[greedy]:
            return best
        return greedy
    except Exception:
        # The greedy heuristic needs no statistics and always succeeds.
        return greedy


def plan_order(
    query: SpatialQuery,
    strategy: str = "greedy",
    catalog: Optional[Catalog] = None,
    partitions: int = 0,
) -> Tuple[str, ...]:
    """Pick a retrieval order with the named strategy.

    ``"greedy"`` — the connectivity heuristic (default, no statistics
    needed); ``"estimate"`` — exhaustive over the raw-size estimate;
    ``"histogram"`` — exhaustive over the statistics-catalog estimate,
    falling back to greedy when statistics are unusable.  This is the
    ablation hook used by ``bench_order_ablation.py``.  ``partitions``
    makes the histogram strategy cost partition pruning too.
    """
    if strategy == "greedy":
        return choose_order(query)
    if strategy == "estimate":
        return best_order_by_estimate(query, estimator="raw")
    if strategy == "histogram":
        return best_order_by_estimate(
            query,
            estimator="histogram",
            catalog=catalog,
            partitions=partitions,
        )
    raise ValueError(
        f"unknown strategy {strategy!r}; expected one of {ORDER_STRATEGIES}"
    )


def choose_knn_access(
    table: "SpatialTable", k: int, catalog: Optional[Catalog] = None
) -> str:
    """Pick the access path of a kNN step (cost-based).

    ``"bestfirst"`` — the R-tree's incremental best-first browse —
    touches roughly a root-to-leaf slice plus ``k/M`` extra leaves;
    ``"scan"`` — the brute-force ranking — touches every row.  The
    chooser compares the two on the statistics catalog's node-read
    estimates (:meth:`~repro.engine.catalog.TableStatistics.
    estimate_knn_node_reads`); non-r-tree backends and ``k >= n``
    always scan (the browse cannot beat reading everything), and any
    estimation failure falls back to best-first, the safe default for
    indexed tables.
    """
    if table.index_kind != "rtree":
        return "scan"
    n = len(table)
    if n == 0 or k >= n:
        return "scan"
    try:
        stats = (catalog or Catalog()).statistics(table)
        bestfirst = stats.estimate_knn_node_reads(k, table.node_capacity)
        scan = stats.estimate_scan_node_reads(table.node_capacity)
        return "bestfirst" if bestfirst <= scan else "scan"
    except Exception:
        return "bestfirst"


def choose_aggregate_strategy(plan: "QueryPlan", mode: str) -> str:
    """Pick how a compiled query's aggregation executes.

    ``"stream"`` — an :class:`~repro.engine.physical.Aggregate`
    operator folds the (exactly verified) answer stream; works for
    every spec and mode.  ``"pushdown"`` — the box-level COUNT is
    answered by :class:`~repro.engine.physical.IndexCountAggregate`
    straight from the index; chosen exactly when the spec asks for the
    box approximation (``exact=False``), which is only well-defined for
    an ungrouped single-variable COUNT in a box mode — any other
    ``exact=False`` shape raises
    :class:`~repro.errors.CompilationError`.
    """
    spec = plan.aggregate
    if spec is None:
        raise ValueError("plan has no aggregate spec")
    if spec.exact:
        return "stream"
    problems = []
    if mode not in ("boxplan", "boxonly"):
        problems.append(f"mode {mode!r} has no box layer")
    if len(plan.steps) != 1:
        problems.append(f"{len(plan.steps)} retrieval steps (needs 1)")
    if spec.group_by:
        problems.append("group-by is not box-representable")
    if spec.aggregates != (("count", None),):
        problems.append("only count() can be answered from boxes")
    if plan.knn is not None:
        problems.append("a kNN restriction needs the exact pipeline")
    if problems:
        raise CompilationError(
            "box-level aggregation (exact=False) requires an ungrouped "
            "single-variable count in a box mode; this query has: "
            + "; ".join(problems)
        )
    return "pushdown"


def choose_join_strategies(
    query: SpatialQuery,
    order: Sequence[str],
    catalog: Optional[Catalog] = None,
    partitions: int = 0,
    workers: int = 0,
    rollouts: int = 6,
    seed: int = 0,
) -> Tuple[str, ...]:
    """Pick a join algorithm per retrieval step (cost-based).

    For each step of ``order`` the chooser compares, on the statistics
    catalog's rollout estimates, the expected work of

    * ``"probe"`` — index-nested-loop: one compiled range query per
      incoming partial tuple (a full scan per *step* on unindexed
      tables);
    * ``"partition"`` — PartitionScan: a partition-MBR-pruned scan per
      partial tuple (only meaningful with ``partitions > 0``);
    * ``"pbsm"`` — the partition-based spatial-merge join: co-partition
      the incoming tuples' probe boxes and the table, plane-sweep each
      tile;
    * ``"zorder"`` — the PROBE-style z-order merge join.

    Bulk joins (pbsm/z-order) pay a per-row build cost, so they only
    win when many partial tuples probe a large table; the thresholds
    keep small steps on the classic probe path.  Any estimation failure
    returns all-``"probe"`` — the safe default.
    """
    order = tuple(order)
    try:
        estimates = rollout_step_estimates(
            query,
            order,
            catalog=catalog,
            rollouts=rollouts,
            seed=seed,
            partitions=partitions,
        )
    except Exception:
        return tuple("probe" for _ in order)
    tiles = partitions if partitions > 0 else DEFAULT_TILES
    speedup = max(1.0, float(workers)) ** 0.5  # pools amortise sweeps
    out: List[str] = []
    for est in estimates:
        table = query.tables[est.variable]
        n = len(table)
        outer = est.partials_in
        indexed = table.index_kind != "scan"
        if indexed:
            cost_probe = (
                outer * math.log2(n + 2.0) * INDEX_PROBE_BRANCHING
                + est.candidates
            )
        else:
            cost_probe = outer * max(1.0, float(n))
        costs = {"probe": cost_probe}
        if partitions > 0:
            # pruned_candidates already totals the rows read across all
            # probing partial tuples (like scan_candidates does).
            costs["partition"] = outer + est.pruned_candidates
        if outer >= MIN_BULK_JOIN_OUTER and n >= MIN_BULK_JOIN_ROWS:
            pair_tests = max(
                est.candidates, outer * n / max(1.0, float(tiles))
            )
            costs["pbsm"] = (
                1.5 * (outer + n) + pair_tests / speedup
            )
            costs["zorder"] = (
                4.0 * (outer + n) * math.log2(outer + n + 2.0)
                + 2.0 * est.candidates
            )
        best = min(
            JOIN_STRATEGIES, key=lambda s: costs.get(s, float("inf"))
        )
        out.append(best)
    return tuple(out)


def choose_shard_strategies(
    query: SpatialQuery,
    order: Sequence[str],
    catalog: Optional[Catalog] = None,
    shards: int = 0,
    workers: int = 0,
    rollouts: int = 6,
    seed: int = 0,
) -> Tuple[str, ...]:
    """Pick a sharded access path per retrieval step (cost-based).

    The coordinator plans with *per-shard statistics*: the rollout
    estimates are computed at shard granularity (``partitions=shards``
    summarises exactly the STR tiling the shards use, so
    ``pruned_candidates`` is the row total of the shards an MBR
    semi-join would keep).  Costs mirror
    :func:`choose_join_strategies`'s shapes:

    * ``"shardscan"`` — per partial tuple, one R-tree descent into each
      surviving shard (smaller trees: ``log2(n/shards)``), reading the
      surviving shards' candidate rows;
    * ``"shardjoin"`` — the bulk path: ``outer x shards`` MBR semi-join
      tests, a linear build over shipped probes + shard rows, and the
      sweep's pair tests amortised by the worker pool
      (``sqrt(workers)``, like PBSM).

    Bulk thresholds keep small steps on the per-tuple path; estimation
    failures return all-``"shardscan"`` — the safe default.
    """
    order = tuple(order)
    n_shards = max(1, shards)
    try:
        estimates = rollout_step_estimates(
            query,
            order,
            catalog=catalog,
            rollouts=rollouts,
            seed=seed,
            partitions=n_shards,
        )
    except Exception:
        return tuple("shardscan" for _ in order)
    speedup = max(1.0, float(workers)) ** 0.5
    out: List[str] = []
    for est in estimates:
        table = query.tables[est.variable]
        n = len(table)
        outer = est.partials_in
        avg = max(1.0, n / n_shards)
        pruned = est.pruned_candidates
        visited = 1.0
        if outer > 0:
            visited = min(
                float(n_shards),
                max(1.0, pruned / max(1.0, outer * avg)),
            )
        cost_scan = (
            outer
            * visited
            * math.log2(avg + 2.0)
            * INDEX_PROBE_BRANCHING
            + est.candidates
        )
        if outer >= MIN_BULK_JOIN_OUTER and n >= MIN_BULK_JOIN_ROWS:
            cost_join = (
                outer * n_shards
                + 1.5 * (outer * visited + n)
                + max(est.candidates, pruned) / speedup
            )
        else:
            cost_join = float("inf")
        out.append("shardjoin" if cost_join < cost_scan else "shardscan")
    return tuple(out)
