"""Retrieval-order selection.

The paper picks its order "arbitrarily" (Section 2) and leaves order
choice open; in practice the order drives the size of intermediate
results, exactly like join ordering in relational optimizers.  We provide

* :func:`choose_order` — the default heuristic: greedy most-constrained-
  first using connectivity to already-placed variables and table sizes;
* :func:`enumerate_orders` — all permutations (for the E9 ablation);
* :func:`estimate_order_cost` — the legacy raw-size cardinality estimate;
* :func:`estimate_order_cost_histogram` — the cost-based estimate: each
  candidate order is compiled to its box templates and rolled out over
  the statistics catalog (:mod:`repro.engine.catalog`) — per-step
  candidate counts from histogram selectivities, per-step survivor
  fractions from sampled exact-predicate selectivities;
* :func:`plan_order` / :func:`best_order_by_estimate` — strategy
  dispatch with the greedy heuristic as the safe fallback (the ablation
  hook ``bench_order_ablation.py`` compares all strategies).
"""

from __future__ import annotations

import random
from itertools import permutations
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..constraints.system import ConstraintSystem
from .catalog import Catalog
from .query import SpatialQuery

#: Strategies accepted by :func:`plan_order`.
ORDER_STRATEGIES = ("greedy", "estimate", "histogram")

#: Beyond this many unknowns, exhaustive order enumeration is skipped
#: and the greedy heuristic is used directly.
MAX_ENUMERATED_UNKNOWNS = 7

#: The histogram planner only overrides the greedy order when its
#: estimate is decisively better (below this fraction of the greedy
#: order's estimate).  Near-ties are estimator noise: deferring to the
#: greedy heuristic there keeps the cost-based planner from ever doing
#: measurably worse while preserving its large wins.
HISTOGRAM_CONFIDENCE_MARGIN = 0.8


def _constraint_edges(system: ConstraintSystem) -> List[Tuple[frozenset, bool]]:
    """``(variable set, is_negative)`` pairs, one per constraint.

    Negative constraints (disequations) are tracked separately: they are
    typically far more selective than inclusions (a ``T ⊄ C`` admits only
    border towns; a ``B ⊆ C`` admits every state), so the greedy order
    prefers variables whose grounded constraints are negative.
    """
    edges: List[Tuple[frozenset, bool]] = []
    for c in system.positives:
        edges.append((frozenset(c.variables()), False))
    for c in system.negatives:
        edges.append((frozenset(c.variables()), True))
    return edges


def choose_order(query: SpatialQuery) -> Tuple[str, ...]:
    """Greedy heuristic order.

    Repeatedly pick the unknown with the most constraints *fully
    grounded* by already-placed variables, preferring grounded negative
    constraints (disequations are the selective ones: ``T ⊄ C`` admits
    only border towns, while ``B ⊆ C`` admits every state).  Ties break
    by overall connectivity, then smaller table, then name.  On the
    paper's example this retrieves the border town first — the choice
    the paper makes "arbitrarily".
    """
    unknowns = set(query.unknowns)
    placed = set(query.constants)
    edges = _constraint_edges(query.system)
    order: List[str] = []
    while unknowns:
        def score(name: str) -> Tuple:
            grounded_neg = sum(
                1
                for e, negative in edges
                if negative
                and name in e
                and (e - {name})
                and (e - {name}) <= placed
            )
            grounded_pos = sum(
                1
                for e, negative in edges
                if not negative
                and name in e
                and (e - {name})
                and (e - {name}) <= placed
            )
            touching = sum(
                1 for e, _n in edges if name in e and e & placed
            )
            return (
                -grounded_neg,
                -grounded_pos,
                -touching,
                len(query.tables[name]),
                name,
            )

        best = min(unknowns, key=score)
        order.append(best)
        unknowns.discard(best)
        placed.add(best)
    return tuple(order)


def enumerate_orders(query: SpatialQuery) -> Iterator[Tuple[str, ...]]:
    """All retrieval orders (E9 ablation; factorial — small queries only)."""
    return permutations(query.unknowns)


def estimate_order_cost(
    query: SpatialQuery,
    order: Sequence[str],
    selectivity: float = 0.25,
) -> float:
    """A coarse cardinality estimate for an order.

    Each step multiplies the running partial count by the table size,
    discounted by ``selectivity`` for every constraint fully grounded at
    that step (all other variables already placed).  Not calibrated —
    meant only to rank orders relative to each other.
    """
    edges = _constraint_edges(query.system)
    placed = set(query.constants)
    partials = 1.0
    cost = 0.0
    for name in order:
        grounded = sum(
            1
            for e, _negative in edges
            if name in e and (e - {name}) <= placed
        )
        fanout = max(1.0, len(query.tables[name]) * (selectivity ** grounded))
        cost += partials * max(1, len(query.tables[name]))
        partials *= fanout
        placed.add(name)
    return cost + partials


def estimate_order_cost_histogram(
    query: SpatialQuery,
    order: Sequence[str],
    catalog: Optional[Catalog] = None,
    rollouts: int = 6,
    seed: int = 0,
) -> float:
    """Statistics-driven cost estimate for one retrieval order.

    The order is triangularised and compiled to its per-step bounding-box
    templates (exactly what the executor will run); the estimate then
    simulates ``rollouts`` executions over the statistics catalog:

    * the **candidate count** of a step is the table size times the
      histogram selectivity of the step's instantiated box query;
    * the **survivor fraction** is the sampled selectivity of the step's
      exact solved constraint, evaluated on the table's row sample
      (this is what separates a selective disequation like ``T ⊄ C``
      from an unselective inclusion like ``B ⊆ C`` — their *box*
      queries can look equally permissive);
    * representative objects for later steps are drawn from the sample.

    The returned cost is the expected total number of partial tuples
    (the executor's ``partial_tuples`` counter) plus a small candidate
    term so index work breaks ties.
    """
    from ..boxes.bconstraints import compile_solved_constraint
    from ..constraints.triangular import triangular_form

    catalog = catalog or Catalog()
    stats = {name: catalog.statistics(t) for name, t in query.tables.items()}
    tri = triangular_form(query.system, list(order))
    steps = {c.variable: (c, compile_solved_constraint(c)) for c in tri.constraints}
    algebra = query.algebra()
    universe = algebra.universe_box

    base_box_env = {
        name: region.bounding_box() for name, region in query.bindings.items()
    }
    base_region_env = dict(query.bindings)

    rng = random.Random(seed)
    total = 0.0
    for _ in range(max(1, rollouts)):
        box_env = dict(base_box_env)
        region_env = dict(base_region_env)
        partials = 1.0
        partial_sum = 0.0
        candidate_sum = 0.0
        for name in order:
            st = stats[name]
            step = steps.get(name)
            if step is None:  # unconstrained variable: full scan fanout
                box_sel, exact_frac, matching = 1.0, 1.0, list(st.sample)
            else:
                solved, template = step
                box_query = template.instantiate(box_env, universe)
                box_sel = st.selectivity(box_query)
                matching = [
                    obj
                    for obj in st.sample
                    if not obj.box.is_empty() and box_query.matches(obj.box)
                ]

                def holds(obj, solved=solved):
                    try:
                        return solved.holds(algebra, obj.region, region_env)
                    except KeyError:
                        # An earlier variable had no representative row,
                        # so its region binding was dropped: no usable
                        # sample env — assume the predicate holds.
                        return True
                # Sampled exact-predicate selectivity among the rows the
                # box filter admits.
                pool = matching if matching else list(st.sample)
                holding = [obj for obj in pool if holds(obj)]
                exact_frac = len(holding) / len(pool) if pool else 0.0
                if holding:
                    matching = holding
            candidates = st.count * box_sel
            survivors = candidates * exact_frac
            candidate_sum += partials * candidates
            partials *= survivors
            partial_sum += partials
            # Choose a representative retrieved object for later steps;
            # with no representative row, later exact sampling against
            # this variable falls back to box-only costing.
            if matching:
                pick = rng.choice(matching)
                box_env[name] = pick.box
                region_env[name] = pick.region
            else:
                box_env[name] = universe if st.mbr.is_empty() else st.mbr
        total += partial_sum + 1e-3 * candidate_sum
    return total / max(1, rollouts)


def _exhaustive_costs(
    query: SpatialQuery, cost
) -> Dict[Tuple[str, ...], float]:
    return {order: cost(order) for order in enumerate_orders(query)}


def _argmin_order(costs: Dict[Tuple[str, ...], float]) -> Tuple[str, ...]:
    return min(costs, key=lambda order: (costs[order], order))


def best_order_by_estimate(
    query: SpatialQuery,
    estimator: str = "histogram",
    catalog: Optional[Catalog] = None,
) -> Tuple[str, ...]:
    """Exhaustively pick the order minimising the estimate (small n).

    ``estimator`` selects the cost model: ``"histogram"`` (the
    statistics catalog, default) or ``"raw"`` (the legacy raw-size
    estimate).  Any failure of the histogram path — empty catalog,
    unsupported system — falls back to the greedy heuristic.
    """
    if estimator == "raw":
        return _argmin_order(
            _exhaustive_costs(
                query, lambda order: estimate_order_cost(query, order)
            )
        )
    if estimator != "histogram":
        raise ValueError(
            f"unknown estimator {estimator!r}; expected 'histogram' or 'raw'"
        )
    greedy = choose_order(query)
    if len(query.unknowns) > MAX_ENUMERATED_UNKNOWNS:
        return greedy
    try:
        costs = _exhaustive_costs(
            query,
            lambda order: estimate_order_cost_histogram(
                query, order, catalog=catalog
            ),
        )
        best = _argmin_order(costs)
        if best == greedy:
            return best
        if costs[best] < HISTOGRAM_CONFIDENCE_MARGIN * costs[greedy]:
            return best
        return greedy
    except Exception:
        # The greedy heuristic needs no statistics and always succeeds.
        return greedy


def plan_order(
    query: SpatialQuery,
    strategy: str = "greedy",
    catalog: Optional[Catalog] = None,
) -> Tuple[str, ...]:
    """Pick a retrieval order with the named strategy.

    ``"greedy"`` — the connectivity heuristic (default, no statistics
    needed); ``"estimate"`` — exhaustive over the raw-size estimate;
    ``"histogram"`` — exhaustive over the statistics-catalog estimate,
    falling back to greedy when statistics are unusable.  This is the
    ablation hook used by ``bench_order_ablation.py``.
    """
    if strategy == "greedy":
        return choose_order(query)
    if strategy == "estimate":
        return best_order_by_estimate(query, estimator="raw")
    if strategy == "histogram":
        return best_order_by_estimate(
            query, estimator="histogram", catalog=catalog
        )
    raise ValueError(
        f"unknown strategy {strategy!r}; expected one of {ORDER_STRATEGIES}"
    )
