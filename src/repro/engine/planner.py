"""Retrieval-order selection.

The paper picks its order "arbitrarily" (Section 2) and leaves order
choice open; in practice the order drives the size of intermediate
results, exactly like join ordering in relational optimizers.  We provide

* :func:`choose_order` — the default heuristic: greedy most-constrained-
  first using connectivity to already-placed variables and table sizes;
* :func:`enumerate_orders` — all permutations (for the E9 ablation);
* :func:`estimate_order_cost` — a cheap cardinality estimate used by
  :func:`best_order_by_estimate`.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterator, List, Sequence, Tuple

from ..constraints.system import ConstraintSystem
from .query import SpatialQuery


def _constraint_edges(system: ConstraintSystem) -> List[Tuple[frozenset, bool]]:
    """``(variable set, is_negative)`` pairs, one per constraint.

    Negative constraints (disequations) are tracked separately: they are
    typically far more selective than inclusions (a ``T ⊄ C`` admits only
    border towns; a ``B ⊆ C`` admits every state), so the greedy order
    prefers variables whose grounded constraints are negative.
    """
    edges: List[Tuple[frozenset, bool]] = []
    for c in system.positives:
        edges.append((frozenset(c.variables()), False))
    for c in system.negatives:
        edges.append((frozenset(c.variables()), True))
    return edges


def choose_order(query: SpatialQuery) -> Tuple[str, ...]:
    """Greedy heuristic order.

    Repeatedly pick the unknown with the most constraints *fully
    grounded* by already-placed variables, preferring grounded negative
    constraints (disequations are the selective ones: ``T ⊄ C`` admits
    only border towns, while ``B ⊆ C`` admits every state).  Ties break
    by overall connectivity, then smaller table, then name.  On the
    paper's example this retrieves the border town first — the choice
    the paper makes "arbitrarily".
    """
    unknowns = set(query.unknowns)
    placed = set(query.constants)
    edges = _constraint_edges(query.system)
    order: List[str] = []
    while unknowns:
        def score(name: str) -> Tuple:
            grounded_neg = sum(
                1
                for e, negative in edges
                if negative
                and name in e
                and (e - {name})
                and (e - {name}) <= placed
            )
            grounded_pos = sum(
                1
                for e, negative in edges
                if not negative
                and name in e
                and (e - {name})
                and (e - {name}) <= placed
            )
            touching = sum(
                1 for e, _n in edges if name in e and e & placed
            )
            return (
                -grounded_neg,
                -grounded_pos,
                -touching,
                len(query.tables[name]),
                name,
            )

        best = min(unknowns, key=score)
        order.append(best)
        unknowns.discard(best)
        placed.add(best)
    return tuple(order)


def enumerate_orders(query: SpatialQuery) -> Iterator[Tuple[str, ...]]:
    """All retrieval orders (E9 ablation; factorial — small queries only)."""
    return permutations(query.unknowns)


def estimate_order_cost(
    query: SpatialQuery,
    order: Sequence[str],
    selectivity: float = 0.25,
) -> float:
    """A coarse cardinality estimate for an order.

    Each step multiplies the running partial count by the table size,
    discounted by ``selectivity`` for every constraint fully grounded at
    that step (all other variables already placed).  Not calibrated —
    meant only to rank orders relative to each other.
    """
    edges = _constraint_edges(query.system)
    placed = set(query.constants)
    partials = 1.0
    cost = 0.0
    for name in order:
        grounded = sum(
            1
            for e, _negative in edges
            if name in e and (e - {name}) <= placed
        )
        fanout = max(1.0, len(query.tables[name]) * (selectivity ** grounded))
        cost += partials * max(1, len(query.tables[name]))
        partials *= fanout
        placed.add(name)
    return cost + partials


def best_order_by_estimate(query: SpatialQuery) -> Tuple[str, ...]:
    """Exhaustively pick the order minimising the estimate (small n)."""
    return min(
        enumerate_orders(query),
        key=lambda order: estimate_order_cost(query, order),
    )
