"""Query executors: naive, exact-incremental, and the paper's box plan.

All three return the same answer set (property-tested); they differ in
how much work they do:

``naive``
    The unoptimised strawman: full cross product of all tables, with the
    original constraint system checked exactly on every combination.
    Exponential in the number of variables.

``exact``
    The paper's *incremental* idea without the bounding-box layer:
    partial tuples are extended one variable at a time and pruned with
    the exact solved constraint ``C_i`` — "we need only keep those
    partial solutions for which there is some possible assignment to the
    remaining unknown variables" — but every prune costs exact region
    algebra.

``boxplan``
    The full optimization: each step issues ONE bounding-box range query
    compiled by Algorithm 2 (cheap index work), then checks the exact
    ``C_i`` only on the survivors.  Because ``C_i`` is checked exactly at
    every level and ``C_n`` rewrites the whole system, the final answers
    satisfy the original system with no extra verification pass.

``boxonly``
    A diagnostic mode: box filtering only, exact check deferred to the
    final complete tuples.  Shows how much the (incomplete) box filter
    over-admits — used by the approximation-quality benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..algebra.regions import Region
from ..boxes.box import Box
from ..spatial.table import SpatialObject
from .compiler import QueryPlan
from .query import SpatialQuery
from .stats import ExecutionStats

Answer = Dict[str, SpatialObject]

MODES = ("naive", "exact", "boxplan", "boxonly")


def execute(plan: QueryPlan, mode: str = "boxplan") -> Tuple[List[Answer], ExecutionStats]:
    """Run a compiled plan in the given mode.

    Returns ``(answers, stats)``; answers are dictionaries mapping each
    unknown variable to the chosen :class:`SpatialObject`.
    """
    if mode == "naive":
        return _execute_naive(plan)
    if mode == "exact":
        return _execute_incremental(plan, use_boxes=False, exact_steps=True)
    if mode == "boxplan":
        return _execute_incremental(plan, use_boxes=True, exact_steps=True)
    if mode == "boxonly":
        return _execute_incremental(plan, use_boxes=True, exact_steps=False)
    raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")


def _region_env(
    plan: QueryPlan, partial: Mapping[str, SpatialObject]
) -> Dict[str, Region]:
    env: Dict[str, Region] = dict(plan.query.bindings)
    for name, obj in partial.items():
        env[name] = obj.region
    return env


def _box_env(
    plan: QueryPlan, partial: Mapping[str, SpatialObject]
) -> Dict[str, Box]:
    env: Dict[str, Box] = {
        name: region.bounding_box()
        for name, region in plan.query.bindings.items()
    }
    for name, obj in partial.items():
        env[name] = obj.box
    return env


def _execute_naive(plan: QueryPlan) -> Tuple[List[Answer], ExecutionStats]:
    """Cross product + full exact check (the unoptimised baseline)."""
    stats = ExecutionStats(mode="naive")
    algebra = plan.algebra
    system = plan.query.system
    order = plan.order

    partials: List[Answer] = [{}]
    for variable in order:
        table = plan.query.tables[variable]
        step = stats.step(variable)
        reads_before = table.index_read_count()
        rows = table.scan()
        step.index_probes += 1
        step.node_reads += table.index_read_count() - reads_before
        new_partials: List[Answer] = []
        for partial in partials:
            for obj in rows:
                extended = dict(partial)
                extended[variable] = obj
                new_partials.append(extended)
        step.candidates = len(new_partials)
        step.survivors = len(new_partials)
        partials = new_partials
    stats.partial_tuples = len(partials)

    answers: List[Answer] = []
    before = algebra.ops.total
    for partial in partials:
        env = _region_env(plan, partial)
        if system.holds(algebra, env):
            answers.append(partial)
    stats.region_ops += algebra.ops.total - before
    stats.tuples_emitted = len(answers)
    return answers, stats


def _execute_incremental(
    plan: QueryPlan, use_boxes: bool, exact_steps: bool
) -> Tuple[List[Answer], ExecutionStats]:
    """The paper's incremental join (with or without the box layer)."""
    mode = (
        "boxplan"
        if use_boxes and exact_steps
        else "boxonly" if use_boxes else "exact"
    )
    stats = ExecutionStats(mode=mode)
    algebra = plan.algebra
    universe = algebra.universe_box

    partials: List[Answer] = [{}]
    for step_plan in plan.steps:
        variable = step_plan.variable
        table = step_plan.table
        step = stats.step(variable)
        new_partials: List[Answer] = []
        for partial in partials:
            reads_before = table.index_read_count()
            if use_boxes:
                box_env = _box_env(plan, partial)
                query = step_plan.template.instantiate(box_env, universe)
                stats.box_ops_estimate += 1
                rows = table.range_query(query)
            else:
                rows = table.scan()
            step.index_probes += 1
            step.node_reads += table.index_read_count() - reads_before
            step.candidates += len(rows)
            for obj in rows:
                if exact_steps:
                    env = _region_env(plan, partial)
                    before = algebra.ops.total
                    ok = step_plan.exact.holds(algebra, obj.region, env)
                    stats.region_ops += algebra.ops.total - before
                    if not ok:
                        continue
                extended = dict(partial)
                extended[variable] = obj
                new_partials.append(extended)
        step.survivors = len(new_partials)
        partials = new_partials
        stats.partial_tuples += len(partials)

    if exact_steps:
        # C_1..C_n checked exactly at every level already rewrite the
        # whole system: the final partials ARE the answers.
        answers = partials
    else:
        answers = []
        system = plan.query.system
        before = algebra.ops.total
        for partial in partials:
            env = _region_env(plan, partial)
            if system.holds(algebra, env):
                answers.append(partial)
        stats.region_ops += algebra.ops.total - before
    stats.tuples_emitted = len(answers)
    return answers, stats


def execute_iter(
    plan: QueryPlan, mode: str = "boxplan"
) -> Iterator[Answer]:
    """Depth-first streaming execution — answers are yielded as found.

    The breadth-first executors materialise every level's partial-tuple
    list; this pipelined variant explores one candidate path at a time,
    so the *first* answers arrive after touching only a sliver of the
    search space (benchmark E12 measures first-k latency).  Supports the
    incremental modes (``exact``/``boxplan``); answer *sets* are
    identical to :func:`execute`'s, order may differ.
    """
    if mode not in ("exact", "boxplan"):
        raise ValueError(
            f"streaming execution supports 'exact' and 'boxplan', not {mode!r}"
        )
    use_boxes = mode == "boxplan"
    algebra = plan.algebra
    universe = algebra.universe_box

    def descend(level: int, partial: Answer) -> Iterator[Answer]:
        if level == len(plan.steps):
            yield dict(partial)
            return
        step_plan = plan.steps[level]
        if use_boxes:
            box_env = _box_env(plan, partial)
            query = step_plan.template.instantiate(box_env, universe)
            rows = step_plan.table.range_query(query)
        else:
            rows = step_plan.table.scan()
        env = _region_env(plan, partial)
        for obj in rows:
            if not step_plan.exact.holds(algebra, obj.region, env):
                continue
            partial[step_plan.variable] = obj
            yield from descend(level + 1, partial)
            del partial[step_plan.variable]

    yield from descend(0, {})


def first_k(
    plan: QueryPlan, k: int, mode: str = "boxplan"
) -> List[Answer]:
    """The first ``k`` answers of a streaming execution."""
    out: List[Answer] = []
    for answer in execute_iter(plan, mode):
        out.append(answer)
        if len(out) >= k:
            break
    return out


def run_query(
    query: SpatialQuery,
    mode: str = "boxplan",
    order: Optional[Sequence[str]] = None,
) -> Tuple[List[Answer], ExecutionStats]:
    """Compile and execute in one call."""
    from .compiler import compile_query

    plan = compile_query(query, order=order)
    return execute(plan, mode=mode)


def answers_as_oid_tuples(
    answers: Sequence[Answer], order: Sequence[str]
) -> List[Tuple]:
    """Project answers to oid tuples in a fixed variable order (for
    set-comparison in tests and benches)."""
    return sorted(
        tuple(a[v].oid for v in order) for a in answers
    )
