"""Query execution: the public façade over the physical operator engine.

All four modes return the same answer set (property-tested); since the
operator-tree refactor they are *plan configurations* — see
:mod:`repro.engine.physical` for the operator set and per-mode plan
shapes — rather than separate executors:

``naive``
    The unoptimised strawman: full cross product of all tables, with the
    original constraint system checked exactly on every combination.
    Exponential in the number of variables.

``exact``
    The paper's *incremental* idea without the bounding-box layer:
    partial tuples are extended one variable at a time and pruned with
    the exact solved constraint ``C_i`` — "we need only keep those
    partial solutions for which there is some possible assignment to the
    remaining unknown variables" — but every prune costs exact region
    algebra.

``boxplan``
    The full optimization: each step issues ONE bounding-box range query
    compiled by Algorithm 2 (cheap index work), then checks the exact
    ``C_i`` only on the survivors.  Because ``C_i`` is checked exactly at
    every level and ``C_n`` rewrites the whole system, the final answers
    satisfy the original system with no extra verification pass.

``boxonly``
    A diagnostic mode: box filtering only, exact check deferred to the
    final complete tuples.  Shows how much the (incomplete) box filter
    over-admits — used by the approximation-quality benchmarks.

Every mode streams: :func:`execute_iter` yields answers as they are
found (depth-first through the operator tree), and ``limit=k`` stops
after ``k`` answers without materialising the rest of the search space.
:func:`execute` simply drains the iterator and returns the classic
``(answers, stats)`` pair.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..spatial.table import ProbeCache, SpatialObject
from .compiler import QueryPlan
from .physical import MODES, build_physical_plan
from .query import SpatialQuery
from .stats import ExecutionStats

Answer = Dict[str, SpatialObject]

__all__ = [
    "MODES",
    "Answer",
    "answers_as_oid_tuples",
    "execute",
    "execute_iter",
    "first_k",
    "run_query",
]


def execute(
    plan: QueryPlan,
    mode: str = "boxplan",
    cache: Optional[ProbeCache] = None,
    partitions: int = 0,
    parallel: int = 0,
    join_strategy: Optional[str] = None,
    vectorize: Optional[bool] = None,
) -> Tuple[List[Answer], ExecutionStats]:
    """Run a compiled plan in the given mode.

    Returns ``(answers, stats)``; answers are dictionaries mapping each
    unknown variable to the chosen :class:`SpatialObject`.  ``cache`` is
    an optional shared :class:`~repro.spatial.table.ProbeCache` through
    which all index probes go — repeated executions over unchanged
    tables then skip the index entirely.
    ``partitions``/``parallel``/``join_strategy`` configure partitioned
    execution and ``vectorize`` the columnar kernels (see
    :func:`~repro.engine.physical.build_physical_plan`); the answer set
    is the same for every setting.  An unknown ``mode`` raises
    :class:`~repro.errors.UnknownModeError` naming the valid modes.
    """
    # estimate=False: catalog cost annotations are EXPLAIN-only and the
    # rollouts would otherwise dominate small-query execution time.
    return build_physical_plan(
        plan,
        mode=mode,
        estimate=False,
        partitions=partitions,
        parallel=parallel,
        join_strategy=join_strategy,
        vectorize=vectorize,
    ).run(cache=cache)


def execute_iter(
    plan: QueryPlan,
    mode: str = "boxplan",
    limit: Optional[int] = None,
    cache: Optional[ProbeCache] = None,
    partitions: int = 0,
    parallel: int = 0,
    join_strategy: Optional[str] = None,
    vectorize: Optional[bool] = None,
) -> Iterator[Answer]:
    """Streaming execution — answers are yielded as found.

    The operator tree is pulled depth-first, so the *first* answers
    arrive after touching only a sliver of the search space (benchmark
    E12 measures first-k latency).  All four modes stream; answer *sets*
    equal :func:`execute`'s, order may differ between modes (and between
    join strategies — the bulk joins are blocking operators).  ``limit``
    bounds the number of answers with early exit.
    """
    return build_physical_plan(
        plan,
        mode=mode,
        estimate=False,
        partitions=partitions,
        parallel=parallel,
        join_strategy=join_strategy,
        vectorize=vectorize,
    ).execute_iter(limit=limit, cache=cache)


def first_k(
    plan: QueryPlan, k: int, mode: str = "boxplan"
) -> List[Answer]:
    """The first ``k`` answers of a streaming execution.

    .. deprecated:: 1.1
        Use ``Session().run(plan, mode=..., limit=k).answers`` — the
        :class:`~repro.database.Session` facade exposes the same
        early-exit streaming with the uniform option vocabulary.
    """
    warnings.warn(
        "first_k() is deprecated; use repro.Session().run(plan, "
        "mode=..., limit=k).answers",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..database import Session

    return Session().run(plan, mode=mode, limit=k).answers


def run_query(
    query: SpatialQuery,
    mode: str = "boxplan",
    order: Optional[Sequence[str]] = None,
) -> Tuple[List[Answer], ExecutionStats]:
    """Compile and execute in one call.

    .. deprecated:: 1.1
        Use ``Session().run(query, mode=..., order=...)`` — identical
        answers and stats, plus timings, caching, and the partitioned-
        execution options in one place.
    """
    warnings.warn(
        "run_query() is deprecated; use repro.Session().run(query, "
        "mode=..., order=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..database import Session

    result = Session().run(query, mode=mode, order=order)
    return result.answers, result.stats


def answers_as_oid_tuples(
    answers: Sequence[Answer], order: Sequence[str]
) -> List[Tuple[object, ...]]:
    """Project answers to oid tuples in a fixed variable order (for
    set-comparison in tests and benches)."""
    return sorted(
        tuple(a[v].oid for v in order) for a in answers
    )
