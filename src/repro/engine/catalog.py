"""Table-statistics catalog for cost-based planning.

Relational optimizers choose join orders from per-table statistics
rather than raw sizes; the same applies to the paper's retrieval order
(Section 2 picks it "arbitrarily").  This module computes, per
:class:`~repro.spatial.table.SpatialTable`:

* object counts and the extent (MBR) of the stored boxes;
* per-dimension **equi-width histograms** of the box lo/hi edges, from
  which the selectivity of each of the three range-query constraint
  forms (``⊑ a``, ``b ⊑``, ``⊓ c ≠ ∅``) is estimated under a
  per-dimension independence assumption;
* a small **random sample** of stored rows, used both to cross-check
  the histogram estimates (sampled predicate selectivities) and to let
  the planner roll out candidate retrieval orders on representative
  objects.

Statistics are cached on the table itself (see
:meth:`repro.spatial.table.SpatialTable.statistics`) and invalidated by
its mutation counter, so repeated planning is cheap.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple, TYPE_CHECKING

from ..boxes.bconstraints import BoxQuery
from ..boxes.box import (
    Box,
    EMPTY_BOX,
    box_from_jsonable,
    box_to_jsonable,
    enclose_all,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algebra.regions import RegionAlgebra
    from ..constraints.solved import SolvedConstraint
    from ..spatial.table import SpatialObject, SpatialTable
    from .query import SpatialQuery

DEFAULT_BINS = 16
DEFAULT_SAMPLE_SIZE = 24


@dataclass(frozen=True)
class PartitionStatistics:
    """Summary of one spatial partition: its MBR and row count.

    The catalog records only the summaries — the partitions themselves
    (with their member rows) are cached on the table by
    :meth:`repro.spatial.table.SpatialTable.partitioning`.
    """

    pid: int
    count: int
    mbr: Box

    def to_dict(self) -> dict:
        """JSON-serializable form (see :meth:`from_dict`)."""
        return {
            "pid": self.pid,
            "count": self.count,
            "mbr": box_to_jsonable(self.mbr),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionStatistics":
        """Inverse of :meth:`to_dict`."""
        return cls(
            pid=int(data["pid"]),
            count=int(data["count"]),
            mbr=box_from_jsonable(data["mbr"]),
        )


@dataclass(frozen=True)
class Histogram:
    """An equi-width histogram over a one-dimensional population.

    ``counts[k]`` holds the number of values in bucket ``k`` of the
    range ``[lo, hi]``; a degenerate population (all values equal)
    collapses to a single bucket.
    """

    lo: float
    hi: float
    counts: Tuple[int, ...]
    total: int

    @staticmethod
    def from_values(
        values: Iterable[float], bins: int = DEFAULT_BINS
    ) -> "Histogram":
        vals = list(values)
        if not vals:
            return Histogram(0.0, 0.0, (), 0)
        lo, hi = min(vals), max(vals)
        if hi <= lo:
            return Histogram(lo, lo, (len(vals),), len(vals))
        counts = [0] * bins
        width = (hi - lo) / bins
        for v in vals:
            counts[min(bins - 1, int((v - lo) / width))] += 1
        return Histogram(lo, hi, tuple(counts), len(vals))

    def fraction_below(self, x: float) -> float:
        """Estimated fraction of values ``< x`` (linear within buckets)."""
        if self.total == 0:
            return 0.0
        if x <= self.lo:
            return 0.0
        if self.hi <= self.lo:  # single-point population, x > lo here
            return 1.0
        if x >= self.hi:
            return 1.0
        width = (self.hi - self.lo) / len(self.counts)
        k = min(len(self.counts) - 1, int((x - self.lo) / width))
        below = sum(self.counts[:k])
        in_bucket = (x - (self.lo + k * width)) / width
        return (below + self.counts[k] * in_bucket) / self.total

    def fraction_at_most(self, x: float) -> float:
        """Estimated fraction of values ``<= x``.

        Coincides with :meth:`fraction_below` in the continuous
        approximation but treats point populations inclusively.
        """
        if self.total == 0 or x < self.lo:
            return 0.0
        if self.hi <= self.lo or x >= self.hi:
            return 1.0
        return self.fraction_below(x)

    def fraction_at_least(self, x: float) -> float:
        """Estimated fraction of values ``>= x``."""
        return 1.0 - self.fraction_below(x)

    def with_delta(
        self,
        added: Iterable[float],
        removed: Iterable[float],
        bins: int = DEFAULT_BINS,
    ) -> "Histogram":
        """Incrementally adjusted histogram: bucket counts for ``added``
        values go up and for ``removed`` values go down, without
        rescanning the population.

        The bucket range ``[lo, hi]`` is kept — values outside it clamp
        into the edge buckets (the estimates stay approximations, which
        is all the planner asks of them); removals floor at zero.  An
        empty histogram is rebuilt from the added values outright.
        """
        added = list(added)
        removed = list(removed)
        if not added and not removed:
            return self
        if self.total == 0:
            return Histogram.from_values(added, bins=bins)
        counts = list(self.counts)
        width = (
            (self.hi - self.lo) / len(counts) if self.hi > self.lo else 0.0
        )

        def bucket(v: float) -> int:
            if width == 0.0:
                return 0
            return max(0, min(len(counts) - 1, int((v - self.lo) / width)))

        for v in added:
            counts[bucket(v)] += 1
        for v in removed:
            b = bucket(v)
            if counts[b] > 0:
                counts[b] -= 1
        total = max(0, self.total + len(added) - len(removed))
        return Histogram(self.lo, self.hi, tuple(counts), total)

    def to_dict(self) -> dict:
        """JSON-serializable form (see :meth:`from_dict`)."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "counts": list(self.counts),
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        """Inverse of :meth:`to_dict`."""
        return cls(
            lo=float(data["lo"]),
            hi=float(data["hi"]),
            counts=tuple(int(c) for c in data["counts"]),
            total=int(data["total"]),
        )


def _clamp(p: float) -> float:
    return min(1.0, max(0.0, p))


@dataclass(frozen=True)
class TableStatistics:
    """Per-table statistics driving the cost-based planner.

    ``lo_hists[d]`` / ``hi_hists[d]`` are histograms of the stored
    boxes' lower/upper edges in dimension ``d``; ``sample`` is a
    uniform random sample of the rows themselves; ``partitions`` holds
    per-partition summaries when the statistics were collected with a
    partition count (empty otherwise).  ``delta_count`` is the number
    of staged-but-unpacked mutations folded in by :meth:`apply_delta`
    (0 for statistics over a clean table) — the cost formulas price the
    per-probe delta overlay with it.
    """

    name: str
    dim: int
    count: int
    mbr: Box
    lo_hists: Tuple[Histogram, ...]
    hi_hists: Tuple[Histogram, ...]
    avg_sides: Tuple[float, ...]
    sample: Tuple["SpatialObject", ...]
    partitions: Tuple[PartitionStatistics, ...] = ()
    delta_count: int = 0

    # -- per-constraint selectivity (histogram-based) -------------------------
    def sel_inside(self, a: Box) -> float:
        """Estimated fraction of boxes with ``box ⊑ a``."""
        if self.count == 0 or a.is_empty():
            return 0.0
        p = 1.0
        for d in range(self.dim):
            p *= self.lo_hists[d].fraction_at_least(a.lo[d])
            p *= self.hi_hists[d].fraction_at_most(a.hi[d])
        return _clamp(p)

    def sel_covers(self, b: Box) -> float:
        """Estimated fraction of boxes with ``b ⊑ box``."""
        if self.count == 0:
            return 0.0
        if b.is_empty():
            return 1.0
        p = 1.0
        for d in range(self.dim):
            p *= self.lo_hists[d].fraction_at_most(b.lo[d])
            p *= self.hi_hists[d].fraction_at_least(b.hi[d])
        return _clamp(p)

    def sel_overlap(self, c: Box) -> float:
        """Estimated fraction of boxes with ``box ⊓ c ≠ ∅``."""
        if self.count == 0 or c.is_empty():
            return 0.0
        p = 1.0
        for d in range(self.dim):
            # Overlap in dimension d means lo < c.hi and hi > c.lo;
            # {hi <= c.lo} nests inside {lo < c.hi}, so the difference
            # of the marginals is a direct estimate.
            admits = self.lo_hists[d].fraction_below(c.hi[d])
            excluded = self.hi_hists[d].fraction_at_most(c.lo[d])
            p *= max(0.0, admits - excluded)
        return _clamp(p)

    # -- whole-query selectivity ----------------------------------------------
    def sel_query(self, query: BoxQuery) -> float:
        """Histogram estimate of the fraction of rows matching ``query``.

        Conjunct selectivities multiply (attribute-value independence,
        the textbook assumption); the result is clamped to ``[0, 1]``.
        """
        if self.count == 0 or query.is_unsatisfiable():
            return 0.0
        p = 1.0
        if query.inside is not None:
            p *= self.sel_inside(query.inside)
        if query.covers is not None and not query.covers.is_empty():
            p *= self.sel_covers(query.covers)
        for c in query.overlap:
            p *= self.sel_overlap(c)
        return _clamp(p)

    def sampled_fraction(self, query: BoxQuery) -> Optional[float]:
        """Exact fraction of the stored *sample* matching ``query``.

        ``None`` when no sample is available (empty table).
        """
        if not self.sample:
            return None
        if query.is_unsatisfiable():
            return 0.0
        hits = sum(
            1
            for obj in self.sample
            if not obj.box.is_empty() and query.matches(obj.box)
        )
        return hits / len(self.sample)

    def selectivity(self, query: BoxQuery) -> float:
        """Blended selectivity: histogram estimate averaged with the
        sampled predicate selectivity when a sample exists."""
        hist = self.sel_query(query)
        sampled = self.sampled_fraction(query)
        if sampled is None:
            return hist
        return _clamp((hist + sampled) / 2.0)

    def estimate_cardinality(self, query: BoxQuery) -> float:
        """Expected number of rows matching ``query``."""
        return self.count * self.selectivity(query)

    def pruned_count(self, query: BoxQuery) -> float:
        """Rows left to read after partition-MBR pruning for ``query``.

        Sums the counts of partitions whose MBR could still contain a
        match (``PartitionScan``'s read cost).  Without per-partition
        statistics this is simply the full row count (no pruning).
        """
        if not self.partitions:
            return float(self.count)
        from ..spatial.partition import mbr_may_match

        if query.is_unsatisfiable():
            return 0.0
        return float(
            sum(
                p.count
                for p in self.partitions
                if mbr_may_match(p.mbr, query)
            )
        )

    # -- incremental maintenance ------------------------------------------------
    def apply_delta(
        self,
        inserted: Tuple["SpatialObject", ...],
        removed: Tuple["SpatialObject", ...],
        sample_size: int = DEFAULT_SAMPLE_SIZE,
    ) -> "TableStatistics":
        """Statistics adjusted for staged writes — O(delta), no rescan.

        Counts, edge histograms, average extents and the row sample are
        updated incrementally from the staged rows; the MBR grows to
        enclose inserted boxes but never shrinks on deletes (a sound
        over-approximation: re-tightening it would need a base rescan,
        which the repack does anyway).  ``delta_count`` records how many
        staged mutations were folded in, so the planner's node-read
        formulas can price the per-probe delta overlay.
        """
        if not inserted and not removed:
            return self
        ins_boxes = [o.box for o in inserted if not o.box.is_empty()]
        rem_boxes = [o.box for o in removed if not o.box.is_empty()]
        mbr = self.mbr
        if ins_boxes:
            mbr = enclose_all(
                ([mbr] if not mbr.is_empty() else []) + ins_boxes
            )
        bins = max((len(h.counts) for h in self.lo_hists), default=DEFAULT_BINS)
        lo_hists = []
        hi_hists = []
        avg_sides = []
        old_boxes = self.lo_hists[0].total if self.lo_hists else 0
        new_boxes = old_boxes + len(ins_boxes) - len(rem_boxes)
        for d in range(self.dim):
            lo_hists.append(
                self.lo_hists[d].with_delta(
                    (b.lo[d] for b in ins_boxes),
                    (b.lo[d] for b in rem_boxes),
                    bins=bins,
                )
            )
            hi_hists.append(
                self.hi_hists[d].with_delta(
                    (b.hi[d] for b in ins_boxes),
                    (b.hi[d] for b in rem_boxes),
                    bins=bins,
                )
            )
            if new_boxes > 0:
                side_sum = (
                    self.avg_sides[d] * old_boxes
                    + sum(b.hi[d] - b.lo[d] for b in ins_boxes)
                    - sum(b.hi[d] - b.lo[d] for b in rem_boxes)
                )
                avg_sides.append(max(0.0, side_sum / new_boxes))
            else:
                avg_sides.append(0.0)
        dead = {id(o) for o in removed}
        kept = tuple(o for o in self.sample if id(o) not in dead)
        fill = tuple(inserted)[: max(0, sample_size - len(kept))]
        from dataclasses import replace

        return replace(
            self,
            count=self.count + len(inserted) - len(removed),
            mbr=mbr,
            lo_hists=tuple(lo_hists),
            hi_hists=tuple(hi_hists),
            avg_sides=tuple(avg_sides),
            sample=kept + fill,
            delta_count=len(inserted) + len(removed),
        )

    # -- nearest-neighbor costing ----------------------------------------------
    def estimate_scan_node_reads(self, node_capacity: int = 8) -> float:
        """Nodes a full R-tree traversal of this table would read.

        Leaves at near-full fanout plus the geometric series of inner
        levels — the cost of ranking every row (the kNN scan path).
        Staged delta rows cost one extra "leaf" per node's worth: they
        are brute-forced by the overlay merge on every probe.
        """
        overlay = self.delta_count / max(2, node_capacity)
        if self.count == 0:
            return 1.0 + overlay
        cap = max(2, node_capacity)
        leaves = math.ceil(self.count / cap)
        return leaves * cap / (cap - 1) + overlay

    def estimate_knn_node_reads(
        self, k: int, node_capacity: int = 8
    ) -> float:
        """Expected node reads of a best-first kNN for ``k`` results.

        One root-to-leaf descent plus roughly ``k / M`` additional leaf
        reads (each read leaf yields up to ``M`` candidates), doubled
        for the inner nodes the frontier expands.  Deliberately coarse —
        it only needs to rank best-first against the full scan, which it
        beats until ``k`` approaches the table size.  A pending delta
        adds its overlay term (the staged rows are ranked on every
        probe, whichever access path wins).
        """
        overlay = self.delta_count / max(2, node_capacity)
        if self.count == 0:
            return 1.0 + overlay
        cap = max(2, node_capacity)
        height = 1 + math.ceil(math.log(max(2, self.count), cap))
        return height + 2.0 * math.ceil(min(k, self.count) / cap) + overlay

    def exact_selectivity(
        self,
        solved: "SolvedConstraint",
        algebra: "RegionAlgebra",
        env: Dict[str, object],
        pool: Optional[Iterable["SpatialObject"]] = None,
    ) -> Tuple[float, Tuple["SpatialObject", ...]]:
        """Sampled selectivity of an exact solved constraint.

        Evaluates ``solved`` on ``pool`` (default: the stored row
        sample) with the regions in ``env`` bound; returns the
        satisfying fraction and the satisfying rows themselves (the
        planner's rollouts draw representative objects from them).  A
        row whose evaluation needs a variable missing from ``env``
        counts as satisfying — the conservative choice for costing.
        """
        rows = tuple(pool) if pool is not None else self.sample
        if not rows:
            return 0.0, ()
        holding = []
        for obj in rows:
            try:
                ok = solved.holds(algebra, obj.region, env)
            except KeyError:
                ok = True
            if ok:
                holding.append(obj)
        return len(holding) / len(rows), tuple(holding)

    # -- snapshot serialization ------------------------------------------------
    def to_dict(self, row_index: dict) -> dict:
        """JSON-serializable form for snapshots.

        The random row sample is stored as *indices* into the table's
        saved row order (``row_index`` maps ``id(obj)`` to the index),
        so the loaded statistics reference the loaded table's own row
        objects instead of duplicating their regions.
        """
        return {
            "name": self.name,
            "dim": self.dim,
            "count": self.count,
            "mbr": box_to_jsonable(self.mbr),
            "lo_hists": [h.to_dict() for h in self.lo_hists],
            "hi_hists": [h.to_dict() for h in self.hi_hists],
            "avg_sides": list(self.avg_sides),
            "sample": [row_index[id(obj)] for obj in self.sample],
            "partitions": [p.to_dict() for p in self.partitions],
            "delta_count": self.delta_count,
        }

    @classmethod
    def from_dict(
        cls, data: dict, rows: Sequence["SpatialObject"]
    ) -> "TableStatistics":
        """Inverse of :meth:`to_dict`; ``rows`` resolves sample indices."""
        return cls(
            name=str(data["name"]),
            dim=int(data["dim"]),
            count=int(data["count"]),
            mbr=box_from_jsonable(data["mbr"]),
            lo_hists=tuple(
                Histogram.from_dict(h) for h in data["lo_hists"]
            ),
            hi_hists=tuple(
                Histogram.from_dict(h) for h in data["hi_hists"]
            ),
            avg_sides=tuple(float(s) for s in data["avg_sides"]),
            sample=tuple(rows[int(i)] for i in data["sample"]),
            partitions=tuple(
                PartitionStatistics.from_dict(p)
                for p in data["partitions"]
            ),
            delta_count=int(data.get("delta_count", 0)),
        )


def collect_statistics(
    table: "SpatialTable",
    bins: int = DEFAULT_BINS,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    seed: int = 0,
    partitions: int = 0,
    rows: Optional[Sequence["SpatialObject"]] = None,
    total: Optional[int] = None,
) -> TableStatistics:
    """Compute :class:`TableStatistics` for a table (one full scan).

    ``partitions > 0`` additionally summarises the table's STR
    partitioning at that granularity (per-partition counts and MBRs),
    reusing the tiling cached on the table.

    ``rows`` / ``total`` override the scanned population (non-empty
    rows and the raw row count): the incremental-maintenance path
    passes the *base* rows of a table whose live iterator would leak
    staged delta rows into what must remain base-only statistics.
    """
    if rows is None:
        rows = [obj for obj in table if not obj.box.is_empty()]
    if total is None:
        total = len(table)
    boxes = [obj.box for obj in rows]
    mbr = enclose_all(boxes) if boxes else EMPTY_BOX
    dim = table.dim
    lo_hists = []
    hi_hists = []
    avg_sides = []
    for d in range(dim):
        lo_hists.append(
            Histogram.from_values((b.lo[d] for b in boxes), bins=bins)
        )
        hi_hists.append(
            Histogram.from_values((b.hi[d] for b in boxes), bins=bins)
        )
        if boxes:
            avg_sides.append(
                sum(b.hi[d] - b.lo[d] for b in boxes) / len(boxes)
            )
        else:
            avg_sides.append(0.0)
    rng = random.Random(seed)
    if len(rows) <= sample_size:
        sample = tuple(rows)
    else:
        sample = tuple(rng.sample(list(rows), sample_size))
    partition_stats: Tuple[PartitionStatistics, ...] = ()
    if partitions > 0:
        partition_stats = tuple(
            PartitionStatistics(pid=p.pid, count=len(p), mbr=p.mbr)
            for p in table.partitioning(partitions).partitions
        )
    return TableStatistics(
        name=table.name,
        dim=dim,
        count=total,
        mbr=mbr,
        lo_hists=tuple(lo_hists),
        hi_hists=tuple(hi_hists),
        avg_sides=tuple(avg_sides),
        sample=sample,
        partitions=partition_stats,
    )


class Catalog:
    """A view over per-table statistics for one planning session.

    Thin by design: the cache itself lives on each table (invalidated by
    the table's mutation counter); the catalog only fixes the histogram
    resolution and sampling parameters so every table in a query is
    profiled consistently.
    """

    def __init__(
        self,
        bins: int = DEFAULT_BINS,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: int = 0,
        partitions: int = 0,
    ) -> None:
        self.bins = bins
        self.sample_size = sample_size
        self.seed = seed
        self.partitions = partitions

    def statistics(self, table: "SpatialTable") -> TableStatistics:
        """Statistics for one table (cached on the table)."""
        return table.statistics(
            bins=self.bins,
            sample_size=self.sample_size,
            seed=self.seed,
            partitions=self.partitions,
        )

    def for_query(self, query: "SpatialQuery") -> dict:
        """``variable -> TableStatistics`` for every unknown of a query."""
        return {
            name: self.statistics(table)
            for name, table in query.tables.items()
        }
