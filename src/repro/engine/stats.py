"""Execution statistics.

The paper's optimization trades *exact region computation* for *cheap
bounding-box work plus index probes*.  To make that trade measurable,
every executor returns an :class:`ExecutionStats` alongside its answers;
the benchmarks report these counters rather than (only) wall-clock time,
because they are machine-independent and directly reflect the paper's
cost model.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List


@dataclass
class StepStats:
    """Per-retrieval-step counters.

    Every executor mode fills every field: ``index_probes`` counts
    range-query/scan calls issued by the step and ``node_reads`` the
    index reads (r-tree node or grid bucket reads) those probes cost —
    0 for probes that never touch an index (table scans).
    """

    variable: str = ""
    candidates: int = 0  # rows returned by the range query / scan
    survivors: int = 0  # rows surviving the step's exact filter
    index_probes: int = 0
    node_reads: int = 0  # index reads consumed by this step's probes
    cache_hits: int = 0  # probes answered from the probe cache
    cache_misses: int = 0  # probes that fell through to the index
    vectorized_batches: int = 0  # columnar kernel dispatches
    vectorized_candidates: int = 0  # rows/entries those kernels evaluated
    delta_probes: int = 0  # probes that merged a pending write delta

    @property
    def filter_ratio(self) -> float:
        """Fraction of candidates surviving (1.0 when nothing filtered)."""
        if self.candidates == 0:
            return 1.0
        return self.survivors / self.candidates

    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity JSON-serializable form (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StepStats":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class ExecutionStats:
    """Counters for one query execution."""

    mode: str = ""
    tuples_emitted: int = 0
    partial_tuples: int = 0  # total partial solutions materialised
    region_ops: int = 0  # exact region-algebra operations
    box_ops_estimate: int = 0  # bounding-box function evaluations
    exchange_kind: str = "serial"  # worker pool kind ("serial" = none)
    exchange_workers: int = 0  # parallel workers the plan was built with
    exchange_fallbacks: int = 0  # parallel runs that fell back to serial
    repacks: int = 0  # delta folds (base rebuilds) during this execution
    steps: List[StepStats] = field(default_factory=list)

    def step(self, variable: str) -> StepStats:
        """Start (and return) the stats record for one retrieval step."""
        s = StepStats(variable=variable)
        self.steps.append(s)
        return s

    @property
    def total_candidates(self) -> int:
        """Candidates summed over all steps."""
        return sum(s.candidates for s in self.steps)

    @property
    def index_probes(self) -> int:
        """Range-query/scan calls summed over all steps."""
        return sum(s.index_probes for s in self.steps)

    @property
    def node_reads(self) -> int:
        """Index reads (r-tree nodes / grid buckets) over all steps."""
        return sum(s.node_reads for s in self.steps)

    @property
    def cache_hits(self) -> int:
        """Probe-cache hits over all steps (0 when no cache is used)."""
        return sum(s.cache_hits for s in self.steps)

    @property
    def cache_misses(self) -> int:
        """Probe-cache misses over all steps (0 when no cache is used)."""
        return sum(s.cache_misses for s in self.steps)

    @property
    def vectorized_batches(self) -> int:
        """Columnar kernel dispatches over all steps (0 = scalar run)."""
        return sum(s.vectorized_batches for s in self.steps)

    @property
    def vectorized_candidates(self) -> int:
        """Rows/entries evaluated by columnar kernels over all steps."""
        return sum(s.vectorized_candidates for s in self.steps)

    @property
    def delta_probes(self) -> int:
        """Probes that merged a pending write delta, over all steps."""
        return sum(s.delta_probes for s in self.steps)

    @property
    def cache_hit_rate(self) -> float:
        """Hits as a fraction of cached probe requests (0.0 uncached)."""
        requests = self.cache_hits + self.cache_misses
        if requests == 0:
            return 0.0
        return self.cache_hits / requests

    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity JSON-serializable form.

        Unlike :meth:`as_dict` (a flat benchmark-table projection), this
        round-trips through :meth:`from_dict` without losing per-step
        counters, so services can ship stats over the wire and clients
        can reconstruct the exact :class:`ExecutionStats`.
        """
        return {
            "mode": self.mode,
            "tuples_emitted": self.tuples_emitted,
            "partial_tuples": self.partial_tuples,
            "region_ops": self.region_ops,
            "box_ops_estimate": self.box_ops_estimate,
            "exchange_kind": self.exchange_kind,
            "exchange_workers": self.exchange_workers,
            "exchange_fallbacks": self.exchange_fallbacks,
            "repacks": self.repacks,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExecutionStats":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        stats = cls(
            mode=str(data.get("mode", "")),
            tuples_emitted=int(data.get("tuples_emitted", 0)),
            partial_tuples=int(data.get("partial_tuples", 0)),
            region_ops=int(data.get("region_ops", 0)),
            box_ops_estimate=int(data.get("box_ops_estimate", 0)),
            exchange_kind=str(data.get("exchange_kind", "serial")),
            exchange_workers=int(data.get("exchange_workers", 0)),
            exchange_fallbacks=int(data.get("exchange_fallbacks", 0)),
            repacks=int(data.get("repacks", 0)),
        )
        stats.steps = [StepStats.from_dict(s) for s in data.get("steps", [])]
        return stats

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for benchmark tables."""
        return {
            "mode": self.mode,
            "tuples": self.tuples_emitted,
            "partials": self.partial_tuples,
            "region_ops": self.region_ops,
            "box_ops": self.box_ops_estimate,
            "candidates": self.total_candidates,
            "index_probes": self.index_probes,
            "node_reads": self.node_reads,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "vectorized_batches": self.vectorized_batches,
            "vectorized_candidates": self.vectorized_candidates,
            "delta_probes": self.delta_probes,
            "repacks": self.repacks,
            "exchange_kind": self.exchange_kind,
            "exchange_workers": self.exchange_workers,
            "exchange_fallbacks": self.exchange_fallbacks,
            "per_step": [
                (s.variable, s.candidates, s.survivors) for s in self.steps
            ],
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        steps = " ".join(
            f"{s.variable}:{s.survivors}/{s.candidates}" for s in self.steps
        )
        cache = ""
        if self.cache_hits or self.cache_misses:
            cache = (
                f" cache={self.cache_hits}/"
                f"{self.cache_hits + self.cache_misses}"
            )
        exchange = ""
        if self.exchange_workers or self.exchange_fallbacks:
            exchange = (
                f" exchange={self.exchange_kind}x{self.exchange_workers}"
            )
            if self.exchange_fallbacks:
                exchange += f" fallbacks={self.exchange_fallbacks}"
        delta = ""
        if self.delta_probes or self.repacks:
            delta = (
                f" delta_probes={self.delta_probes} repacks={self.repacks}"
            )
        return (
            f"[{self.mode}] tuples={self.tuples_emitted} "
            f"partials={self.partial_tuples} region_ops={self.region_ops} "
            f"steps=({steps}){cache}{exchange}{delta}"
        )
