"""The query compiler: constraint system → executable plan.

The full pipeline of the paper:

1. normalize the system (Theorem 1);
2. triangularise over the retrieval order (Algorithm 1 / Figure 2);
3. check the ground residue against the bound constants — an
   unsatisfiable residue means the query provably has no answers
   (:class:`repro.errors.UnsatisfiableError`);
4. convert every solved constraint into a bounding-box
   :class:`~repro.boxes.bconstraints.StepTemplate` (Section 4,
   Algorithm 2) — at run time each step issues ONE range query.

The resulting :class:`QueryPlan` carries both the exact solved forms
(for exact incremental filtering and for the final verification) and the
box templates (for the index probes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..algebra.regions import RegionAlgebra
from ..boxes.bconstraints import StepTemplate, compile_solved_constraint
from ..constraints.solved import SolvedConstraint
from ..constraints.triangular import TriangularForm, triangular_form
from ..errors import CompilationError, UnsatisfiableError
from ..spatial.table import SpatialTable
from .query import AggregateSpec, KNNStep, SpatialQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spatial.partition import WorkerPool
    from .catalog import Catalog
    from .physical import PhysicalPlan


@dataclass(frozen=True)
class StepPlan:
    """One retrieval step: where to fetch and how to filter."""

    variable: str
    table: SpatialTable
    exact: SolvedConstraint
    template: StepTemplate


@dataclass(frozen=True)
class QueryPlan:
    """A compiled query: ordered steps plus the triangular form.

    ``knn``/``aggregate`` carry the query's logical nearest-neighbor
    restriction and aggregation through to physical planning.
    """

    query: SpatialQuery
    order: Tuple[str, ...]
    triangular: TriangularForm
    steps: Tuple[StepPlan, ...]
    algebra: RegionAlgebra
    knn: Optional[KNNStep] = None
    aggregate: Optional[AggregateSpec] = None

    def render(self) -> str:
        """Readable plan listing (exact + box form per step)."""
        lines = [f"retrieval order: {', '.join(self.order)}"]
        if self.knn is not None:
            lines.append(self.knn.describe())
        if self.aggregate is not None:
            lines.append(self.aggregate.describe())
        for step in self.steps:
            lines.append(f"== step {step.variable} from {step.table.name} ==")
            lines.append("exact:")
            lines.append(step.exact.render())
            lines.append("boxes:")
            lines.append(step.template.render())
        return "\n".join(lines)

    def physical(
        self,
        mode: str = "boxplan",
        catalog: Optional["Catalog"] = None,
        estimate: bool = True,
        partitions: int = 0,
        parallel: int = 0,
        parallel_kind: str = "thread",
        join_strategy: Optional[str] = None,
        vectorize: Optional[bool] = None,
        shards: int = 0,
        spill: Optional[int] = None,
        pool: Optional["WorkerPool"] = None,
    ) -> "PhysicalPlan":
        """Lower to a physical operator tree (the third pipeline stage).

        ``estimate=False`` skips the EXPLAIN-only catalog cost rollouts
        (they cost far more than executing a small query).
        ``partitions``/``parallel``/``join_strategy``/``vectorize``
        configure partitioned and columnar execution, ``shards``/
        ``spill``/``pool`` sharded scale-out — see
        :func:`repro.engine.physical.build_physical_plan`.
        """
        from .physical import build_physical_plan

        return build_physical_plan(
            self,
            mode=mode,
            catalog=catalog,
            estimate=estimate,
            partitions=partitions,
            parallel=parallel,
            parallel_kind=parallel_kind,
            join_strategy=join_strategy,
            vectorize=vectorize,
            shards=shards,
            spill=spill,
            pool=pool,
        )

    def explain(self, mode: str = "boxplan", analyze: bool = False) -> str:
        """EXPLAIN: the rendered physical operator tree for ``mode``.

        With ``analyze=True`` the plan is executed first, so the tree
        carries per-operator actual rows/probes/node-reads next to the
        catalog estimates.
        """
        pplan = self.physical(mode=mode)
        if analyze:
            pplan.run()
        return pplan.explain()


def repair_knn_order(
    order: Sequence[str],
    knn: Optional[KNNStep],
    tables: Dict[str, SpatialTable],
) -> Tuple[str, ...]:
    """An order with a ref-anchored kNN variable moved after its anchor.

    No-op (the order returned unchanged, as a tuple) when there is no
    kNN step, its anchor is not an unknown, or the order already places
    the anchor first.  Shared by :func:`compile_query`'s silent repair
    of planner-chosen orders and by callers (e.g. the CLI) that want to
    repair an order *before* passing it explicitly.
    """
    order = tuple(order)
    if knn is None or knn.ref is None or knn.ref not in tables:
        return order
    if knn.ref == knn.variable:  # invalid; left for validation to reject
        return order
    if order.index(knn.variable) > order.index(knn.ref):
        return order
    rest = [v for v in order if v != knn.variable]
    rest.insert(rest.index(knn.ref) + 1, knn.variable)
    return tuple(rest)


def compile_query(
    query: SpatialQuery,
    order: Optional[Sequence[str]] = None,
    check_ground: bool = True,
) -> QueryPlan:
    """Compile a query into a :class:`QueryPlan`.

    ``order`` overrides the query's retrieval order (else the query's,
    else the planner's choice).  Raises
    :class:`~repro.errors.UnsatisfiableError` when the ground residue
    fails for the given bindings.

    A kNN step anchored on another *unknown* (``knn.ref``) needs that
    unknown retrieved first: an explicitly supplied order violating
    this raises :class:`~repro.errors.CompilationError`, while a
    planner-chosen order is silently repaired (the kNN variable moves
    to just after its anchor).
    """
    explicit = order is not None or query.order is not None
    if order is None:
        order = query.order
    if order is None:
        from .planner import choose_order

        order = choose_order(query)
    order = tuple(order)

    knn = query.knn
    if knn is not None and repair_knn_order(order, knn, query.tables) != order:
        if explicit:
            raise CompilationError(
                f"kNN variable {knn.variable!r} is anchored on "
                f"{knn.ref!r} and must be retrieved after it; order "
                f"{list(order)} places it first"
            )
        order = repair_knn_order(order, knn, query.tables)

    tri = triangular_form(query.system, order)
    algebra = query.algebra()

    if check_ground:
        env = dict(query.bindings)
        if not tri.check_ground(algebra, env):
            raise UnsatisfiableError(
                "the query's constant constraints are unsatisfiable for "
                f"the given bindings; ground residue:\n{tri.ground}"
            )

    steps: List[StepPlan] = []
    for solved in tri.constraints:
        steps.append(
            StepPlan(
                variable=solved.variable,
                table=query.tables[solved.variable],
                exact=solved,
                template=compile_solved_constraint(solved),
            )
        )
    return QueryPlan(
        query=query,
        order=order,
        triangular=tri,
        steps=tuple(steps),
        algebra=algebra,
        knn=query.knn,
        aggregate=query.aggregate,
    )
