"""Query objects: what the user of the library states.

A :class:`SpatialQuery` bundles

* a :class:`~repro.constraints.system.ConstraintSystem` over named
  variables (the paper's high-level query language),
* which :class:`~repro.spatial.table.SpatialTable` each *unknown*
  variable draws its objects from,
* concrete :class:`~repro.algebra.regions.Region` bindings for the
  *given* variables (the example's ``C`` and ``A``),
* optionally a retrieval order (otherwise the planner picks one).

The answers are assignments ``variable -> SpatialObject`` such that the
underlying regions satisfy the constraint system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..algebra.regions import Region, RegionAlgebra
from ..boxes.box import Box
from ..constraints.system import ConstraintSystem
from ..errors import CompilationError, UnboundVariableError
from ..spatial.table import SpatialTable


@dataclass(frozen=True)
class KNNStep:
    """A logical nearest-neighbor restriction on one unknown variable.

    ``variable`` ranges over the ``k`` rows of its table nearest to the
    anchor — instead of over the whole table — *before* the query's
    constraints filter them (the classic "kNN then filter" semantics,
    which makes the answer set identical in every execution mode and
    trivially checkable against a brute-force reference).  Distances
    are bounding-box MINDISTs with ties at the ``k``-th distance broken
    by ``repr(oid)``, so the restriction is deterministic.

    Exactly one anchor form must be given:

    ``point``
        a fixed coordinate tuple — lowered to a
        :class:`~repro.engine.physical.KNNProbe` (one best-first index
        browse for the whole execution);
    ``ref``
        the name of a constant binding or an *earlier* unknown — the
        anchor is that variable's bounding box, re-evaluated per partial
        tuple, lowered to a
        :class:`~repro.engine.physical.DistanceJoin`.
    """

    variable: str
    k: int
    point: Optional[Tuple[float, ...]] = None
    ref: Optional[str] = None

    def __post_init__(self) -> None:
        if self.point is not None:
            object.__setattr__(self, "point", tuple(float(c) for c in self.point))

    def describe(self) -> str:
        anchor = (
            f"point={self.point}" if self.point is not None else f"ref={self.ref}"
        )
        return f"knn({self.variable}, k={self.k}, {anchor})"


#: Aggregate operations :class:`AggregateSpec` accepts.  ``count`` takes
#: no target; ``min``/``max`` aggregate the bounding-box *volume* of the
#: target variable's retrieved object (the one numeric measure every
#: spatial row carries).
AGGREGATE_OPS = ("count", "min", "max")


@dataclass(frozen=True)
class AggregateSpec:
    """A logical aggregation over the query's answer stream.

    ``aggregates`` is a tuple of ``(op, target)`` pairs — ``("count",
    None)``, ``("min", var)``, ``("max", var)`` — and ``group_by`` names
    the unknowns whose retrieved oids key the groups.  With
    ``exact=True`` (default) the aggregate consumes fully verified
    answers in any mode.  ``exact=False`` requests the *box-level*
    count: the number of rows whose bounding box matches the step's
    compiled template (an upper bound on the exact count, in the spirit
    of the paper's box approximations) — only legal for a
    single-variable ungrouped COUNT, where it is pushed down to the
    R-tree's cached subtree entry counts.
    """

    aggregates: Tuple[Tuple[str, Optional[str]], ...] = (("count", None),)
    group_by: Tuple[str, ...] = ()
    exact: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "aggregates", tuple((op, v) for op, v in self.aggregates)
        )
        object.__setattr__(self, "group_by", tuple(self.group_by))
        if not self.aggregates:
            raise CompilationError("AggregateSpec needs at least one aggregate")
        for op, target in self.aggregates:
            if op not in AGGREGATE_OPS:
                raise CompilationError(
                    f"unknown aggregate {op!r}; expected one of {AGGREGATE_OPS}"
                )
            if op == "count" and target is not None:
                raise CompilationError("count takes no target variable")
            if op != "count" and target is None:
                raise CompilationError(f"{op} needs a target variable")
        labels = self.labels()
        if len(set(labels)) != len(labels):
            # Accumulators are keyed by label, so duplicates would
            # silently double-count into one shared column.
            dupes = sorted({x for x in labels if labels.count(x) > 1})
            raise CompilationError(
                f"duplicate aggregate(s) {dupes}; each op/target pair "
                f"may appear once"
            )

    def labels(self) -> Tuple[str, ...]:
        """Column labels, e.g. ``("count", "min(T)")``."""
        return tuple(
            op if target is None else f"{op}({target})"
            for op, target in self.aggregates
        )

    def describe(self) -> str:
        by = f" by {','.join(self.group_by)}" if self.group_by else ""
        exact = "" if self.exact else ", boxes only"
        return f"agg({', '.join(self.labels())}{by}{exact})"


@dataclass
class SpatialQuery:
    """A multi-variable spatial query (paper Section 1's setting).

    Attributes
    ----------
    system:
        The Boolean constraint system.
    tables:
        Mapping from unknown-variable name to its table.
    bindings:
        Mapping from constant-variable name to its concrete region.
    order:
        Optional retrieval order over the unknowns; ``None`` delegates
        to the planner.
    knn:
        Optional :class:`KNNStep` restricting one unknown to its
        table's ``k`` nearest rows.
    aggregate:
        Optional :class:`AggregateSpec`; execution then returns
        aggregate rows instead of bindings.
    """

    system: ConstraintSystem
    tables: Mapping[str, SpatialTable]
    bindings: Mapping[str, Region] = field(default_factory=dict)
    order: Optional[Sequence[str]] = None
    knn: Optional[KNNStep] = None
    aggregate: Optional[AggregateSpec] = None

    def __post_init__(self) -> None:
        self.tables = dict(self.tables)
        self.bindings = dict(self.bindings)
        sys_vars = self.system.variables()
        for name in self.tables:
            if name in self.bindings:
                raise CompilationError(
                    f"variable {name!r} is both a table variable and bound"
                )
        missing = sys_vars - set(self.tables) - set(self.bindings)
        if missing:
            raise UnboundVariableError(
                f"variables with no table or binding: {sorted(missing)}"
            )
        if self.order is not None:
            order = list(self.order)
            if sorted(order) != sorted(self.tables):
                raise CompilationError(
                    "retrieval order must list exactly the table variables; "
                    f"got {order}, expected a permutation of "
                    f"{sorted(self.tables)}"
                )
        if self.knn is not None:
            self._validate_knn(self.knn)
        if self.aggregate is not None:
            self._validate_aggregate(self.aggregate)

    def _validate_knn(self, knn: KNNStep) -> None:
        if knn.variable not in self.tables:
            raise CompilationError(
                f"kNN variable {knn.variable!r} is not a table variable "
                f"(unknowns: {sorted(self.tables)})"
            )
        if knn.k < 1:
            raise CompilationError(f"kNN needs k >= 1, got {knn.k}")
        if (knn.point is None) == (knn.ref is None):
            raise CompilationError(
                "KNNStep needs exactly one of point= or ref="
            )
        table = self.tables[knn.variable]
        if knn.point is not None and len(knn.point) != table.dim:
            raise CompilationError(
                f"kNN point has {len(knn.point)} dims, table "
                f"{table.name!r} is {table.dim}-dim"
            )
        if knn.ref is not None:
            if knn.ref == knn.variable:
                raise CompilationError(
                    "a kNN step cannot anchor on its own variable"
                )
            if knn.ref not in self.tables and knn.ref not in self.bindings:
                raise CompilationError(
                    f"kNN anchor {knn.ref!r} is neither a table variable "
                    f"nor a bound constant"
                )

    def _validate_aggregate(self, spec: AggregateSpec) -> None:
        for name in spec.group_by:
            if name not in self.tables:
                raise CompilationError(
                    f"group-by variable {name!r} is not a table variable"
                )
        for _op, target in spec.aggregates:
            if target is not None and target not in self.tables:
                raise CompilationError(
                    f"aggregate target {target!r} is not a table variable"
                )

    @property
    def unknowns(self) -> Tuple[str, ...]:
        """Unknown (table-backed) variables, sorted."""
        return tuple(sorted(self.tables))

    @property
    def constants(self) -> Tuple[str, ...]:
        """Bound variables, sorted."""
        return tuple(sorted(self.bindings))

    def universe_box(self) -> Optional[Box]:
        """A universe box covering all tables' universes, if declared."""
        out: Optional[Box] = None
        for t in self.tables.values():
            if t.universe is not None:
                out = t.universe if out is None else out.enclose(t.universe)
        return out

    def algebra(self) -> RegionAlgebra:
        """A region algebra wide enough for exact checks.

        Uses the declared universe box when available — widened to
        enclose any constant binding that sticks out of it, since the
        algebra refuses to complement regions beyond its universe;
        otherwise computes a box enclosing all stored objects and
        bindings (complement is only ever taken within this universe,
        which is sound for the constraint forms the engine checks: every
        formula evaluation is relative to the same universe on both
        sides).
        """
        box = self.universe_box()
        if box is not None:
            for region in self.bindings.values():
                box = box.enclose(region.bounding_box())
        if box is None:
            from ..boxes.box import EMPTY_BOX

            box = EMPTY_BOX
            for t in self.tables.values():
                for obj in t:
                    box = box.enclose(obj.box)
            for r in self.bindings.values():
                box = box.enclose(r.bounding_box())
            if box.is_empty():
                raise CompilationError(
                    "cannot infer a universe: no data and no declared "
                    "universe boxes"
                )
            box = box.inflate(1.0)
        return RegionAlgebra(box)
