"""Query objects: what the user of the library states.

A :class:`SpatialQuery` bundles

* a :class:`~repro.constraints.system.ConstraintSystem` over named
  variables (the paper's high-level query language),
* which :class:`~repro.spatial.table.SpatialTable` each *unknown*
  variable draws its objects from,
* concrete :class:`~repro.algebra.regions.Region` bindings for the
  *given* variables (the example's ``C`` and ``A``),
* optionally a retrieval order (otherwise the planner picks one).

The answers are assignments ``variable -> SpatialObject`` such that the
underlying regions satisfy the constraint system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

from ..algebra.regions import Region, RegionAlgebra
from ..boxes.box import Box
from ..constraints.system import ConstraintSystem
from ..errors import CompilationError, UnboundVariableError
from ..spatial.table import SpatialTable


@dataclass
class SpatialQuery:
    """A multi-variable spatial query (paper Section 1's setting).

    Attributes
    ----------
    system:
        The Boolean constraint system.
    tables:
        Mapping from unknown-variable name to its table.
    bindings:
        Mapping from constant-variable name to its concrete region.
    order:
        Optional retrieval order over the unknowns; ``None`` delegates
        to the planner.
    """

    system: ConstraintSystem
    tables: Mapping[str, SpatialTable]
    bindings: Mapping[str, Region] = field(default_factory=dict)
    order: Optional[Sequence[str]] = None

    def __post_init__(self):
        self.tables = dict(self.tables)
        self.bindings = dict(self.bindings)
        sys_vars = self.system.variables()
        for name in self.tables:
            if name in self.bindings:
                raise CompilationError(
                    f"variable {name!r} is both a table variable and bound"
                )
        missing = sys_vars - set(self.tables) - set(self.bindings)
        if missing:
            raise UnboundVariableError(
                f"variables with no table or binding: {sorted(missing)}"
            )
        if self.order is not None:
            order = list(self.order)
            if sorted(order) != sorted(self.tables):
                raise CompilationError(
                    "retrieval order must list exactly the table variables; "
                    f"got {order}, expected a permutation of "
                    f"{sorted(self.tables)}"
                )

    @property
    def unknowns(self) -> Tuple[str, ...]:
        """Unknown (table-backed) variables, sorted."""
        return tuple(sorted(self.tables))

    @property
    def constants(self) -> Tuple[str, ...]:
        """Bound variables, sorted."""
        return tuple(sorted(self.bindings))

    def universe_box(self) -> Optional[Box]:
        """A universe box covering all tables' universes, if declared."""
        out: Optional[Box] = None
        for t in self.tables.values():
            if t.universe is not None:
                out = t.universe if out is None else out.enclose(t.universe)
        return out

    def algebra(self) -> RegionAlgebra:
        """A region algebra wide enough for exact checks.

        Uses the declared universe box when available — widened to
        enclose any constant binding that sticks out of it, since the
        algebra refuses to complement regions beyond its universe;
        otherwise computes a box enclosing all stored objects and
        bindings (complement is only ever taken within this universe,
        which is sound for the constraint forms the engine checks: every
        formula evaluation is relative to the same universe on both
        sides).
        """
        box = self.universe_box()
        if box is not None:
            for region in self.bindings.values():
                box = box.enclose(region.bounding_box())
        if box is None:
            from ..boxes.box import EMPTY_BOX

            box = EMPTY_BOX
            for t in self.tables.values():
                for obj in t:
                    box = box.enclose(obj.box)
            for r in self.bindings.values():
                box = box.enclose(r.bounding_box())
            if box.is_empty():
                raise CompilationError(
                    "cannot infer a universe: no data and no declared "
                    "universe boxes"
                )
            box = box.inflate(1.0)
        return RegionAlgebra(box)
