"""Physical operator trees: the Volcano-style streaming executor.

The engine is a three-stage pipeline:

1. :class:`~repro.engine.query.SpatialQuery` — what the user states;
2. :class:`~repro.engine.compiler.QueryPlan` — the *logical* plan: the
   triangular solved forms and their bounding-box templates, in a
   retrieval order (the paper's Algorithms 1 and 2);
3. a **physical plan** (this module) — a tree of pull-based operators,
   each an iterator over partial *bindings* (``variable →
   SpatialObject``).  Answers stream out of the root as they are found,
   so ``limit=k`` touches only a sliver of the search space.

The four semantics-equivalent execution modes are *plan-construction
strategies* over one operator set rather than separate executors:

``naive``
    ``Once → CrossProduct* → ExactFilter(system)`` — the full cross
    product with the original system checked on complete tuples only.
``exact``
    ``Once → (TableScan → ExactFilter(C_i))*`` — the paper's incremental
    join pruned with the exact solved constraints, no box layer.
``boxplan``
    ``Once → (IndexProbe → ExactFilter(C_i))*`` — the full optimization:
    ONE compiled range query per step, exact checks on the survivors.
    Tables without an index (``"scan"`` backend) get the equivalent
    ``TableScan → BoxFilter`` pair instead of an :class:`IndexProbe`.
``boxonly``
    ``Once → IndexProbe* → ExactFilter(system)`` — the diagnostic mode:
    box filtering only, exact check deferred to complete tuples.

Every operator keeps its own :class:`OperatorStats`;
:meth:`PhysicalPlan.stats` folds them into the classic
:class:`~repro.engine.stats.ExecutionStats` so all pre-existing counter
consumers (benchmarks, CI gates) keep working.  :meth:`PhysicalPlan.
explain` renders the tree with catalog cost estimates and — once the
plan has run — per-operator actual rows/probes/node reads.

Index probes optionally go through a shared
:class:`~repro.spatial.table.ProbeCache` (bounded LRU keyed on a
weak table handle, the table version and the box query), so repeated
queries over unchanged tables skip the index entirely.

**Partitioned execution.**  Beyond the per-tuple probe operators, three
partition-aware extend operators implement alternative join algorithms
(selected per step by ``join_strategy=`` — explicitly, or cost-based
via :func:`repro.engine.planner.choose_join_strategies` with
``"auto"``):

``PartitionScan``
    reads only the STR partitions (:meth:`SpatialTable.partitioning`)
    whose MBR could satisfy the step's compiled box query — the
    partition-pruned access path for unindexed tables.
``PartitionedSpatialJoin``
    the PBSM join: materialises the incoming partial tuples, derives a
    probe box per tuple, co-partitions probe boxes and table rows on a
    shared tile grid, plane-sweeps each tile (boundary duplicates are
    deduplicated by the reference-point rule) and verifies the full box
    query on the surviving pairs.  Tile tasks fan out over an
    :class:`~repro.spatial.partition.Exchange` (``parallel=W`` workers,
    thread or process pool) with a deterministic serial fallback —
    parallel answer streams are bit-identical to serial ones.
``ZOrderJoin``
    the PROBE-style alternative: probe boxes and rows are decomposed
    into z-order intervals and merge-joined
    (:func:`repro.spatial.zorder.zorder_join`), then verified the same
    way.

All three emit exactly the rows the per-tuple probes would (property
tested), so every mode/strategy combination returns the same answer
set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from ..boxes.box import Box, enclose_all
from ..constraints.solved import SolvedConstraint
from ..constraints.system import ConstraintSystem
from ..errors import UnknownModeError
from ..spatial import columnar
from ..spatial.partition import (
    DEFAULT_TILES,
    Exchange,
    JoinStats,
    WorkerPool,
    mbr_may_match,
    pbsm_join,
    probe_box,
)
from ..spatial.shard import ShardJoinStats
from ..spatial.table import ProbeCache, SpatialObject, SpatialTable
from .compiler import QueryPlan
from .stats import ExecutionStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..boxes.bconstraints import StepTemplate
    from .catalog import Catalog
    from .query import AggregateSpec, KNNStep

#: A partial (or complete) answer: variable name → retrieved object.
Binding = Dict[str, SpatialObject]

MODES = ("naive", "exact", "boxplan", "boxonly")


@dataclass
class OperatorStats:
    """Actual per-operator counters for the most recent execution."""

    rows_in: int = 0  # bindings pulled from the child
    rows_out: int = 0  # bindings yielded
    probes: int = 0  # range-query/scan requests (cache hits included)
    node_reads: int = 0  # index reads those probes cost
    cache_hits: int = 0
    cache_misses: int = 0
    region_ops: int = 0  # exact region-algebra operations
    box_evals: int = 0  # box-template instantiations
    pair_tests: int = 0  # candidate box tests (sweeps, partition scans)
    partitions_visited: int = 0
    partitions_pruned: int = 0
    dedup_skipped: int = 0  # PBSM boundary duplicates suppressed
    vectorized_batches: int = 0  # columnar kernel dispatches
    vectorized_candidates: int = 0  # rows/entries those kernels saw
    delta_probes: int = 0  # probes that merged a pending write delta
    executed: bool = False  # has the operator been pulled at all?


class ExecutionContext:
    """Per-execution state shared by all operators of one plan run."""

    def __init__(
        self,
        plan: QueryPlan,
        cache: Optional[ProbeCache] = None,
        vectorize: bool = False,
    ) -> None:
        self.plan = plan
        self.algebra = plan.algebra
        self.universe: Box = plan.algebra.universe_box
        self.cache = cache
        self.vectorize = vectorize
        self._base_box_env = {
            name: region.bounding_box()
            for name, region in plan.query.bindings.items()
        }
        self._base_region_env = dict(plan.query.bindings)

    def box_env(self, binding: Binding) -> Dict[str, Box]:
        """Constant boxes plus the boxes of the retrieved prefix."""
        env = dict(self._base_box_env)
        for name, obj in binding.items():
            env[name] = obj.box
        return env

    def region_env(self, binding: Binding) -> Dict[str, object]:
        """Constant regions plus the regions of the retrieved prefix."""
        env = dict(self._base_region_env)
        for name, obj in binding.items():
            env[name] = obj.region
        return env


class PhysicalOperator:
    """Base class: a node of the physical plan.

    Subclasses implement :meth:`iterate` as a generator of bindings
    pulled lazily from ``child`` (``None`` only for sources).  ``stats``
    is reset by the owning :class:`PhysicalPlan` before each execution;
    ``est_rows`` is the catalog's pre-run cardinality estimate (``None``
    when no estimate could be computed).
    """

    kind = "operator"

    def __init__(self, child: Optional["PhysicalOperator"] = None) -> None:
        self.child = child
        self.stats = OperatorStats()
        self.est_rows: Optional[float] = None

    @property
    def children(self) -> Tuple["PhysicalOperator", ...]:
        return (self.child,) if self.child is not None else ()

    def iterate(self, ctx: ExecutionContext) -> Iterator[Binding]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line operator description for EXPLAIN output."""
        return f"{self.kind}()"

    def reset_stats(self) -> None:
        self.stats = OperatorStats()
        for c in self.children:
            c.reset_stats()


class Once(PhysicalOperator):
    """Source: yields a single empty binding (the root of every chain)."""

    kind = "Once"

    def iterate(self, ctx: ExecutionContext) -> Iterator[Binding]:
        self.stats.executed = True
        self.stats.rows_out += 1
        yield {}


class ExtendStep(PhysicalOperator):
    """Base of the binding-extending operators.

    An extend step pulls bindings from its child and, for each, yields
    one extended binding per retrieved candidate row of ``table`` bound
    to ``variable``.  Subclasses differ only in the access path.
    """

    kind = "ExtendStep"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
    ) -> None:
        super().__init__(child)
        self.variable = variable
        self.table = table

    def describe(self) -> str:
        return f"{self.kind}({self.variable} from {self.table.name})"

    def _rows(
        self, ctx: ExecutionContext, binding: Binding
    ) -> List[SpatialObject]:
        raise NotImplementedError

    def _vectorized_mark(self) -> Tuple[int, int, int]:
        """Snapshot the table's columnar-kernel and delta counters."""
        return (
            self.table.vectorized_batches,
            self.table.vectorized_candidates,
            self.table.delta_probes,
        )

    def _vectorized_absorb(self, mark: Tuple[int, int, int]) -> None:
        """Attribute kernel/delta work done since ``mark`` to this
        operator (billing parity: the table-level counters advance in
        lockstep with the per-operator ones)."""
        batches, candidates, delta_probes = mark
        self.stats.vectorized_batches += (
            self.table.vectorized_batches - batches
        )
        self.stats.vectorized_candidates += (
            self.table.vectorized_candidates - candidates
        )
        self.stats.delta_probes += self.table.delta_probes - delta_probes

    def iterate(self, ctx: ExecutionContext) -> Iterator[Binding]:
        self.stats.executed = True
        for binding in self.child.iterate(ctx):
            self.stats.rows_in += 1
            for obj in self._rows(ctx, binding):
                extended = dict(binding)
                extended[self.variable] = obj
                self.stats.rows_out += 1
                yield extended


class TableScan(ExtendStep):
    """Extend with every row of the table (one scan, lazily cached).

    The access path of the ``exact`` mode and of box modes over
    unindexed tables: the scan costs one probe regardless of how many
    input bindings flow through.
    """

    kind = "TableScan"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
    ) -> None:
        super().__init__(child, variable, table)
        self._scanned: Optional[List[SpatialObject]] = None

    def reset_stats(self) -> None:
        self._scanned = None
        super().reset_stats()

    def _rows(
        self, ctx: ExecutionContext, binding: Binding
    ) -> List[SpatialObject]:
        if self._scanned is None:
            before = self.table.index_read_count()
            mark = self._vectorized_mark()
            self._scanned = self.table.scan()
            self.stats.probes += 1
            self.stats.node_reads += (
                self.table.index_read_count() - before
            )
            self._vectorized_absorb(mark)
        return self._scanned


class CrossProduct(TableScan):
    """A :class:`TableScan` in cross-product position (naive mode).

    Identical mechanics; the distinct name keeps EXPLAIN output honest —
    no per-step filter follows, so the operator's output really is the
    running cross product.
    """

    kind = "CrossProduct"


class IndexProbe(ExtendStep):
    """Extend via ONE compiled range query per input binding (§4).

    The step's box template is instantiated on the binding's prefix
    boxes and sent to the table's index — optionally through the shared
    :class:`~repro.spatial.table.ProbeCache`, in which case a repeated
    ``(table, box query)`` pair costs no index work at all.
    """

    kind = "IndexProbe"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
        template: "StepTemplate",
    ) -> None:
        super().__init__(child, variable, table)
        self.template = template

    def _rows(
        self, ctx: ExecutionContext, binding: Binding
    ) -> List[SpatialObject]:
        query = self.template.instantiate(ctx.box_env(binding), ctx.universe)
        self.stats.box_evals += 1
        self.stats.probes += 1
        before = self.table.index_read_count()
        mark = self._vectorized_mark()
        rows, hit = self.table.range_query_cached(
            query, ctx.cache, vectorize=ctx.vectorize
        )
        self.stats.node_reads += self.table.index_read_count() - before
        self._vectorized_absorb(mark)
        if hit:
            self.stats.cache_hits += 1
        elif ctx.cache is not None:
            self.stats.cache_misses += 1
        return rows


class VectorizedScanProbe(IndexProbe):
    """A fused scan + box filter over the table's columnar mirror.

    The vectorized replacement for the ``TableScan → BoxFilter`` pair on
    unindexed tables: the step's instantiated box query is evaluated by
    one :meth:`~repro.spatial.columnar.ColumnStore.match_rows` batch per
    input binding instead of one ``query.matches`` call per row.  The
    mechanics are :class:`IndexProbe`'s (the table's scan-backend range
    query takes the columnar fast path), so probe-cache sharing and the
    stats mapping come for free; results are bit-identical to the
    scalar pair because the kernels use the exact same comparisons.
    """

    kind = "VectorizedScanProbe"


class KNNProbe(ExtendStep):
    """Extend with the ``k`` nearest rows to a *fixed* anchor.

    The anchor is the logical :class:`~repro.engine.query.KNNStep`'s
    point (or a constant binding's bounding box), so the ranked row
    list is computed once per execution — one best-first distance
    browse on r-tree tables (:meth:`~repro.spatial.table.SpatialTable.
    nearest`), a brute-force scan otherwise — and reused for every
    incoming binding.  Rows extend in nondecreasing distance, so a
    ``limit=k`` stream returns the nearest answers first (distance
    browsing at the query level).
    """

    kind = "KNNProbe"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
        knn: "KNNStep",
        access: str = "auto",
    ) -> None:
        super().__init__(child, variable, table)
        self.knn = knn
        self.access = access
        self._ranked: Optional[List[SpatialObject]] = None

    def describe(self) -> str:
        anchor = (
            f"point={self.knn.point}"
            if self.knn.point is not None
            else f"ref={self.knn.ref}"
        )
        return (
            f"{self.kind}({self.variable} from {self.table.name}, "
            f"k={self.knn.k}, {anchor}, access={self.access})"
        )

    def reset_stats(self) -> None:
        self._ranked = None
        super().reset_stats()

    def _anchor(self, ctx: ExecutionContext) -> Any:
        if self.knn.point is not None:
            return self.knn.point
        return ctx.box_env({})[self.knn.ref]

    def _rows(
        self, ctx: ExecutionContext, binding: Binding
    ) -> List[SpatialObject]:
        if self._ranked is None:
            self.stats.probes += 1
            before = self.table.index_read_count()
            mark = self._vectorized_mark()
            ranked = self.table.nearest(
                self._anchor(ctx),
                self.knn.k,
                access=self.access,
                vectorize=ctx.vectorize,
            )
            self.stats.node_reads += self.table.index_read_count() - before
            self._vectorized_absorb(mark)
            self._ranked = [obj for _dist, obj in ranked]
        return self._ranked


class DistanceJoin(ExtendStep):
    """Extend with the ``k`` rows nearest to *each* incoming binding.

    The per-tuple form of :class:`KNNProbe`: the anchor is the bounding
    box of an already-retrieved variable (``knn.ref``), so every
    incoming partial tuple issues its own bounded nearest-neighbor
    probe (box-to-box MINDIST) — the index-nested-loop distance join.
    Repeated anchor boxes (common when intermediate variables between
    the anchor and this step fan out) are memoized per execution, like
    :class:`IndexProbe`'s batch path memoizes duplicate box queries.
    """

    kind = "DistanceJoin"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
        knn: "KNNStep",
        access: str = "auto",
    ) -> None:
        super().__init__(child, variable, table)
        self.knn = knn
        self.access = access
        self._memo: Dict[Box, List[SpatialObject]] = {}

    def describe(self) -> str:
        return (
            f"{self.kind}({self.variable} from {self.table.name}, "
            f"k={self.knn.k}, ref={self.knn.ref}, access={self.access})"
        )

    def reset_stats(self) -> None:
        self._memo = {}
        super().reset_stats()

    def _rows(
        self, ctx: ExecutionContext, binding: Binding
    ) -> List[SpatialObject]:
        anchor = ctx.box_env(binding)[self.knn.ref]
        rows = self._memo.get(anchor)
        if rows is None:
            self.stats.probes += 1
            before = self.table.index_read_count()
            mark = self._vectorized_mark()
            ranked = self.table.nearest(
                anchor,
                self.knn.k,
                access=self.access,
                vectorize=ctx.vectorize,
            )
            self.stats.node_reads += self.table.index_read_count() - before
            self._vectorized_absorb(mark)
            rows = self._memo[anchor] = [obj for _dist, obj in ranked]
        return rows


@dataclass(frozen=True)
class AggregateRow:
    """One output row of an aggregation.

    ``group`` pairs each group-by variable with the oid keying the
    group (empty for ungrouped aggregates); ``values`` maps the spec's
    labels (``"count"``, ``"min(T)"``, …) to their aggregated numbers
    (``None`` for a min/max over an empty ungrouped input, like SQL's
    NULL).
    """

    group: Tuple[Tuple[str, object], ...]
    values: Dict[str, Optional[float]]

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {var: oid for var, oid in self.group}
        out.update(self.values)
        return out


class Aggregate(PhysicalOperator):
    """Fold the answer stream into aggregate rows (blocking).

    Supports ``count`` plus ``min``/``max`` over the bounding-box
    volume of a target variable, grouped by the oids of the ``group_by``
    variables.  Consumes its child fully, then emits one
    :class:`AggregateRow` per group in a deterministic order (groups
    sorted by the ``repr`` of their key oids) — so parallel and serial
    upstream plans produce identical aggregate streams.

    SQL semantics on empty input: the *ungrouped* form emits a single
    row (count 0, min/max ``None``) — matching what the COUNT pushdown
    emits for the same logical query — while a grouped aggregate emits
    no rows.
    """

    kind = "Aggregate"

    def __init__(
        self, child: PhysicalOperator, spec: "AggregateSpec"
    ) -> None:
        super().__init__(child)
        self.spec = spec

    def describe(self) -> str:
        return f"{self.kind}({self.spec.describe()})"

    def iterate(self, ctx: ExecutionContext) -> Iterator[Binding]:
        self.stats.executed = True
        spec = self.spec
        groups: Dict[Tuple, Dict[str, float]] = {}
        for binding in self.child.iterate(ctx):
            self.stats.rows_in += 1
            key = tuple(binding[v].oid for v in spec.group_by)
            acc = groups.get(key)
            if acc is None:
                acc = groups[key] = {}
            for label, (op, target) in zip(spec.labels(), spec.aggregates):
                if op == "count":
                    acc[label] = acc.get(label, 0) + 1
                    continue
                measure = binding[target].box.volume()
                if label not in acc:
                    acc[label] = measure
                elif op == "min":
                    acc[label] = min(acc[label], measure)
                else:
                    acc[label] = max(acc[label], measure)
        if not groups and not spec.group_by:
            # SQL semantics: an ungrouped aggregate of nothing is one
            # row, not zero rows (keeps the exact and pushdown COUNT
            # strategies in agreement on empty inputs).
            self.stats.rows_out += 1
            yield AggregateRow(
                group=(),
                values={
                    label: (0 if op == "count" else None)
                    for label, (op, _t) in zip(
                        spec.labels(), spec.aggregates
                    )
                },
            )
            return
        for key in sorted(groups, key=lambda k: tuple(repr(o) for o in k)):
            self.stats.rows_out += 1
            yield AggregateRow(
                group=tuple(zip(spec.group_by, key)), values=groups[key]
            )


class IndexCountAggregate(PhysicalOperator):
    """The COUNT pushdown: answer an ungrouped single-variable box-level
    count straight from the index.

    Instantiates the lone step's box template on the constant bindings
    and delegates to :meth:`~repro.spatial.table.SpatialTable.
    count_range` — on r-tree tables, subtrees fully inside a pure
    containment query contribute their cached entry counts without
    being read.  Emits a single :class:`AggregateRow`; the count is the
    number of rows whose *box* matches the template (the
    ``exact=False`` semantics of :class:`~repro.engine.query.
    AggregateSpec`).
    """

    kind = "IndexCountAggregate"

    def __init__(
        self,
        variable: str,
        table: SpatialTable,
        template: "StepTemplate",
    ) -> None:
        super().__init__(None)
        self.variable = variable
        self.table = table
        self.template = template

    def describe(self) -> str:
        return f"{self.kind}(count {self.variable} from {self.table.name})"

    def iterate(self, ctx: ExecutionContext) -> Iterator[Binding]:
        self.stats.executed = True
        query = self.template.instantiate(ctx.box_env({}), ctx.universe)
        self.stats.box_evals += 1
        self.stats.probes += 1
        before = self.table.index_read_count()
        delta_before = self.table.delta_probes
        n = self.table.count_range(query)
        self.stats.node_reads += self.table.index_read_count() - before
        self.stats.delta_probes += self.table.delta_probes - delta_before
        self.stats.rows_out += 1
        yield AggregateRow(group=(), values={"count": n})


class PartitionScan(ExtendStep):
    """Extend via a partition-MBR-pruned scan of the table.

    The table's STR partitioning (cached on the table, invalidated by
    its mutation counter) is fetched on first use; each input binding
    instantiates the step's box template, skips every partition whose
    MBR cannot contain a match (the same soundness argument R-tree node
    descent uses) and tests only the surviving partitions' rows.  The
    partition-aware access path for unindexed tables — and the
    observable stepping stone to sharding: each partition could live on
    a different worker.
    """

    kind = "PartitionScan"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
        template: "StepTemplate",
        partitions: int,
    ) -> None:
        super().__init__(child, variable, table)
        self.template = template
        self.n_partitions = max(1, partitions)
        self._partitioning = None

    def describe(self) -> str:
        return (
            f"{self.kind}({self.variable} from {self.table.name}, "
            f"parts={self.n_partitions})"
        )

    def reset_stats(self) -> None:
        self._partitioning = None
        super().reset_stats()

    def _rows(
        self, ctx: ExecutionContext, binding: Binding
    ) -> List[SpatialObject]:
        if self._partitioning is None:
            self._partitioning = self.table.partitioning(self.n_partitions)
        query = self.template.instantiate(ctx.box_env(binding), ctx.universe)
        self.stats.box_evals += 1
        self.stats.probes += 1
        if query.is_unsatisfiable():
            self.stats.partitions_pruned += len(self._partitioning)
            return []
        store = (
            self.table.column_store(True) if ctx.vectorize else None
        )
        out: List[SpatialObject] = []
        for part in self._partitioning.partitions:
            if not mbr_may_match(part.mbr, query):
                self.stats.partitions_pruned += 1
                continue
            self.stats.partitions_visited += 1
            if store is not None and part.indices:
                # One batched kernel per visited partition: the stored
                # indices address the rows' columnar slots directly.
                self.stats.pair_tests += len(part.indices)
                self.stats.vectorized_batches += 1
                self.stats.vectorized_candidates += len(part.indices)
                matched = store.match_positions(
                    query, candidates=part.indices
                )
                out.extend(
                    store.rows[part.indices[j]] for j in matched
                )
                continue
            for obj in part.rows:
                self.stats.pair_tests += 1
                if query.matches(obj.box):
                    out.append(obj)
        return out


class _BulkJoinStep(ExtendStep):
    """Base of the bulk (set-at-a-time) join operators.

    Unlike the per-tuple probes, a bulk join *materialises* its child's
    bindings, instantiates one box query each, joins all probe boxes
    against the table in one pass, and re-emits the extended bindings
    grouped by input binding (then by table row order) — deterministic
    regardless of how the join itself is parallelised.  Subclasses
    implement :meth:`_candidate_pairs` returning candidate
    ``(binding index, row index)`` pairs whose boxes overlap; the full
    box query is verified here, so each strategy admits exactly the
    rows an :class:`IndexProbe` would.
    """

    def _candidate_pairs(
        self,
        ctx: ExecutionContext,
        probes: List[Tuple[int, Box]],
        rows: List[SpatialObject],
    ) -> List[Tuple[int, int]]:
        raise NotImplementedError

    def iterate(self, ctx: ExecutionContext) -> Iterator[Binding]:
        self.stats.executed = True
        bindings: List[Binding] = []
        queries = []
        for binding in self.child.iterate(ctx):
            self.stats.rows_in += 1
            query = self.template.instantiate(
                ctx.box_env(binding), ctx.universe
            )
            self.stats.box_evals += 1
            bindings.append(binding)
            queries.append(query)
        if not bindings:
            return
        self.stats.probes += 1
        rows: List[SpatialObject] = []
        row_pos: List[int] = []  # columnar slot of each kept row
        for slot, obj in enumerate(self.table.scan()):
            if not obj.box.is_empty():
                rows.append(obj)
                row_pos.append(slot)
        if not rows:
            return
        extent = enclose_all(obj.box for obj in rows)
        probes: List[Tuple[int, Box]] = []
        for i, query in enumerate(queries):
            if query.is_unsatisfiable():
                continue
            p = probe_box(query, extent)
            if not p.is_empty():
                probes.append((i, p))
        if not probes:
            return
        pairs = self._candidate_pairs(ctx, probes, rows)
        pairs.sort()
        store = self.table.column_store(True) if ctx.vectorize else None
        if store is None:
            for i, seq in pairs:
                self.stats.pair_tests += 1
                if not queries[i].matches(rows[seq].box):
                    continue
                extended = dict(bindings[i])
                extended[self.variable] = rows[seq]
                self.stats.rows_out += 1
                yield extended
            return
        # Vectorized verification: the sorted pair list is contiguous
        # per input binding, so each group is one batched kernel over
        # its candidate rows' columnar slots.  Candidate order is
        # ascending within a group, so the emit order (binding, then
        # table row order) matches the scalar loop exactly.
        start, n = 0, len(pairs)
        while start < n:
            i = pairs[start][0]
            end = start
            while end < n and pairs[end][0] == i:
                end += 1
            seqs = [pairs[p][1] for p in range(start, end)]
            start = end
            self.stats.pair_tests += len(seqs)
            self.stats.vectorized_batches += 1
            self.stats.vectorized_candidates += len(seqs)
            matched = store.match_positions(
                queries[i], candidates=[row_pos[s] for s in seqs]
            )
            for j in matched:
                extended = dict(bindings[i])
                extended[self.variable] = rows[seqs[j]]
                self.stats.rows_out += 1
                yield extended


class PartitionedSpatialJoin(_BulkJoinStep):
    """PBSM: co-partition probe boxes and rows, plane-sweep per tile.

    Probe boxes (one per incoming partial tuple, a sound
    necessary-condition box for the tuple's compiled query) and the
    table's row boxes are replicated onto a shared uniform
    :class:`~repro.spatial.partition.TileGrid`; each tile is
    plane-swept independently, with boundary duplicates suppressed by
    the reference-point rule.  Tile tasks run on the plan's
    :class:`~repro.spatial.partition.Exchange` — thread/process pool or
    the deterministic serial fallback; the output is identical either
    way.
    """

    kind = "PartitionedSpatialJoin"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
        template: "StepTemplate",
        partitions: int = DEFAULT_TILES,
        exchange: Optional[Exchange] = None,
    ) -> None:
        super().__init__(child, variable, table)
        self.template = template
        self.n_tiles = max(1, partitions)
        self.exchange = exchange or Exchange()

    def describe(self) -> str:
        return (
            f"{self.kind}({self.variable} from {self.table.name}, "
            f"tiles={self.n_tiles}, exchange={self.exchange.describe()})"
        )

    def _candidate_pairs(
        self,
        ctx: ExecutionContext,
        probes: List[Tuple[int, Box]],
        rows: List[SpatialObject],
    ) -> List[Tuple[int, int]]:
        join_stats = JoinStats()
        pairs = pbsm_join(
            [(box, i) for i, box in probes],
            [(obj.box, seq) for seq, obj in enumerate(rows)],
            n_tiles=self.n_tiles,
            exchange=self.exchange,
            stats=join_stats,
        )
        self.stats.partitions_visited += join_stats.tiles
        self.stats.pair_tests += join_stats.pair_tests
        self.stats.dedup_skipped += join_stats.dedup_skipped
        return pairs


class ZOrderJoin(_BulkJoinStep):
    """The PROBE-style join: merge two z-interval streams.

    Probe boxes and row boxes are decomposed into z-order interval
    lists over a shared :class:`~repro.spatial.zorder.ZGrid` and
    sort-merge joined (:func:`~repro.spatial.zorder.zorder_join`); the
    surviving candidate pairs are verified against the full compiled
    box query like every other strategy.
    """

    kind = "ZOrderJoin"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
        template: "StepTemplate",
        levels: int = 6,
    ) -> None:
        super().__init__(child, variable, table)
        self.template = template
        self.levels = levels

    def describe(self) -> str:
        return (
            f"{self.kind}({self.variable} from {self.table.name}, "
            f"levels={self.levels})"
        )

    def _candidate_pairs(
        self,
        ctx: ExecutionContext,
        probes: List[Tuple[int, Box]],
        rows: List[SpatialObject],
    ) -> List[Tuple[int, int]]:
        from ..spatial.zorder import ZGrid, ZOrderIndex, zorder_join

        universe = self.table.universe
        extent = universe if universe is not None else Box((), ())
        for _i, box in probes:
            extent = extent.enclose(box)
        for obj in rows:
            extent = extent.enclose(obj.box)
        if extent.is_empty():
            return []
        grid = ZGrid(extent, levels=self.levels)
        left = ZOrderIndex(grid)
        right = ZOrderIndex(grid)
        if ctx.vectorize:
            # Batched z-key computation (bit-identical to the scalar
            # inserts); count the boxes the batch kernel considered.
            self.stats.vectorized_batches += 2
            self.stats.vectorized_candidates += len(probes) + len(rows)
            left.insert_batch([(box, i) for i, box in probes])
            right.insert_batch(
                [(obj.box, seq) for seq, obj in enumerate(rows)]
            )
        else:
            for i, box in probes:
                left.insert(box, i)
            for seq, obj in enumerate(rows):
                right.insert(obj.box, seq)
        return list(zorder_join(left, right, exact=True))


class ShardScan(ExtendStep):
    """Extend via MBR-pruned probes into each shard's own R-tree.

    The per-tuple access path over a :class:`~repro.spatial.shard.
    ShardedTable`: each input binding instantiates the step's box
    template, the coordinator prunes shards whose MBR cannot contain a
    match, and every surviving shard answers one range query from its
    own packed R-tree (billed as one probe and its node reads).
    Results are re-emitted in the parent table's insertion order, so
    the output stream is identical for every shard count.
    """

    kind = "ShardScan"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
        template: "StepTemplate",
        shards: int,
    ) -> None:
        super().__init__(child, variable, table)
        self.template = template
        self.n_shards = max(1, shards)
        self._sharding = None

    def describe(self) -> str:
        return (
            f"{self.kind}({self.variable} from {self.table.name}, "
            f"shards={self.n_shards})"
        )

    def reset_stats(self) -> None:
        self._sharding = None
        super().reset_stats()

    def _rows(
        self, ctx: ExecutionContext, binding: Binding
    ) -> List[SpatialObject]:
        if self._sharding is None:
            self._sharding = self.table.sharding(self.n_shards)
        sharding = self._sharding
        query = self.template.instantiate(ctx.box_env(binding), ctx.universe)
        self.stats.box_evals += 1
        if query.is_unsatisfiable():
            self.stats.partitions_pruned += len(sharding.shards)
            return []
        tagged: List[Tuple[int, SpatialObject]] = []
        for shard in sharding.shards:
            if not mbr_may_match(shard.mbr, query):
                self.stats.partitions_pruned += 1
                continue
            self.stats.partitions_visited += 1
            self.stats.probes += 1
            sub = shard.table
            before = sub.index_read_count()
            batches, cands = (
                sub.vectorized_batches,
                sub.vectorized_candidates,
            )
            rows = sub.range_query(query, vectorize=ctx.vectorize)
            self.stats.node_reads += sub.index_read_count() - before
            self.stats.vectorized_batches += (
                sub.vectorized_batches - batches
            )
            self.stats.vectorized_candidates += (
                sub.vectorized_candidates - cands
            )
            tagged.extend((sharding.seq_of(obj), obj) for obj in rows)
        tagged.sort(key=lambda e: e[0])
        return [obj for _seq, obj in tagged]


class ShardedJoin(_BulkJoinStep):
    """The coordinator's bulk join over a sharded table.

    Probe boxes are routed by an MBR semi-join — a probe is shipped
    only to shards whose MBR it overlaps — and each surviving shard is
    plane-swept as one task on the plan's
    :class:`~repro.spatial.partition.Exchange`.  On a process pool the
    shard coordinates come from the sharding's shared-memory blocks
    (published once per sharding, attached and cached by the workers)
    instead of per-task pickled blobs.  Shard row sets are disjoint, so
    the merged candidate pairs are duplicate-free; the bulk-join base
    sorts them globally, making answers bit-identical to serial
    execution for every shard count and exchange kind.
    """

    kind = "ShardedJoin"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        table: SpatialTable,
        template: "StepTemplate",
        shards: int,
        exchange: Optional[Exchange] = None,
        spill: Optional[int] = None,
    ) -> None:
        super().__init__(child, variable, table)
        self.template = template
        self.n_shards = max(1, shards)
        self.exchange = exchange or Exchange()
        self.spill = spill

    def describe(self) -> str:
        extra = f", spill={self.spill}" if self.spill else ""
        return (
            f"{self.kind}({self.variable} from {self.table.name}, "
            f"shards={self.n_shards}, "
            f"exchange={self.exchange.describe()}{extra})"
        )

    def _candidate_pairs(
        self,
        ctx: ExecutionContext,
        probes: List[Tuple[int, Box]],
        rows: List[SpatialObject],
    ) -> List[Tuple[int, int]]:
        sharding = self.table.sharding(self.n_shards)
        join_stats = ShardJoinStats()
        pairs = sharding.join_pairs(
            probes,
            exchange=self.exchange,
            stats=join_stats,
            spill=self.spill,
        )
        self.stats.partitions_visited += join_stats.visited
        self.stats.partitions_pruned += join_stats.pruned
        self.stats.pair_tests += join_stats.pair_tests
        self.stats.dedup_skipped += join_stats.dedup_skipped
        return pairs


class BoxFilter(PhysicalOperator):
    """Filter bindings by a step's instantiated box query.

    The scan-backend replacement for :class:`IndexProbe`: upstream a
    :class:`TableScan` supplies candidate extensions, and this operator
    applies the same box predicate the index would have evaluated.
    """

    kind = "BoxFilter"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: str,
        template: "StepTemplate",
    ) -> None:
        super().__init__(child)
        self.variable = variable
        self.template = template

    def describe(self) -> str:
        return f"{self.kind}([{self.variable}])"

    def iterate(self, ctx: ExecutionContext) -> Iterator[Binding]:
        self.stats.executed = True
        for binding in self.child.iterate(ctx):
            self.stats.rows_in += 1
            box = binding[self.variable].box
            if box.is_empty():
                continue
            env = ctx.box_env(binding)
            query = self.template.instantiate(env, ctx.universe)
            self.stats.box_evals += 1
            if query.is_unsatisfiable() or not query.matches(box):
                continue
            self.stats.rows_out += 1
            yield binding


class ExactFilter(PhysicalOperator):
    """Filter bindings with exact region algebra.

    Two flavours, matching the paper: a *step* filter checks one solved
    constraint ``C_i`` against the binding's value for ``variable``
    (``boxplan``/``exact``); a *final* filter checks the whole original
    system on complete tuples (``naive``/``boxonly``).
    """

    kind = "ExactFilter"

    def __init__(
        self,
        child: PhysicalOperator,
        variable: Optional[str] = None,
        solved: Optional[SolvedConstraint] = None,
        system: Optional[ConstraintSystem] = None,
    ) -> None:
        if (solved is None) == (system is None):
            raise ValueError(
                "ExactFilter needs exactly one of solved= or system="
            )
        super().__init__(child)
        self.variable = variable
        self.solved = solved
        self.system = system

    def describe(self) -> str:
        if self.solved is not None:
            return f"{self.kind}(C_{self.variable})"
        return f"{self.kind}(system)"

    def iterate(self, ctx: ExecutionContext) -> Iterator[Binding]:
        self.stats.executed = True
        algebra = ctx.algebra
        for binding in self.child.iterate(ctx):
            self.stats.rows_in += 1
            env = ctx.region_env(binding)
            before = algebra.ops.total
            if self.solved is not None:
                ok = self.solved.holds(
                    algebra, binding[self.variable].region, env
                )
            else:
                ok = self.system.holds(algebra, env)
            self.stats.region_ops += algebra.ops.total - before
            if ok:
                self.stats.rows_out += 1
                yield binding


@dataclass
class _StepOps:
    """The operators implementing one retrieval step, for stats mapping."""

    variable: str
    extend: ExtendStep
    box_filter: Optional[BoxFilter] = None
    exact_filter: Optional[ExactFilter] = None


@dataclass
class PhysicalPlan:
    """An executable operator tree over a compiled logical plan.

    Not safe for concurrent executions of the *same* instance (operator
    stats are per-plan); build one plan per thread instead.
    """

    logical: QueryPlan
    mode: str
    root: PhysicalOperator
    step_ops: List[_StepOps] = field(default_factory=list)
    final_filter: Optional[ExactFilter] = None
    partitions: int = 0
    shards: int = 0
    spill: Optional[int] = None
    join_strategies: Tuple[str, ...] = ()
    exchange: Optional[Exchange] = None
    knn_access: Optional[str] = None
    aggregate_op: Optional[PhysicalOperator] = None
    vectorized: bool = False

    # -- execution ---------------------------------------------------------------
    def execute_iter(
        self,
        limit: Optional[int] = None,
        cache: Optional[ProbeCache] = None,
    ) -> Iterator[Binding]:
        """Stream answers as they are found (pull-based, depth-first).

        ``limit=k`` stops after ``k`` answers without materialising the
        rest of the search space.  Operator stats are reset at the start
        of iteration and reflect work done *so far* while streaming.
        """
        if limit is not None and limit <= 0:
            return
        self.root.reset_stats()
        ctx = ExecutionContext(
            self.logical, cache=cache, vectorize=self.vectorized
        )
        emitted = 0
        for binding in self.root.iterate(ctx):
            yield binding
            emitted += 1
            if limit is not None and emitted >= limit:
                return

    def run(
        self, cache: Optional[ProbeCache] = None
    ) -> Tuple[List[Binding], ExecutionStats]:
        """Materialise all answers; returns ``(answers, stats)``."""
        answers = list(self.execute_iter(cache=cache))
        return answers, self.stats()

    # -- statistics --------------------------------------------------------------
    def stats(self) -> ExecutionStats:
        """Fold per-operator counters into classic execution stats.

        Counter semantics match the historical per-mode executors', with
        one deliberate exception: ``exact`` mode's ``index_probes`` is
        now 1 per step (the :class:`TableScan` scans once and reuses the
        rows) where the old breadth-first executor re-scanned per
        partial tuple — an actual work reduction, not a counting change
        elsewhere.
        """
        stats = ExecutionStats(mode=self.mode)
        for ops in self.step_ops:
            step = stats.step(ops.variable)
            extend = ops.extend.stats
            step.index_probes = extend.probes
            step.node_reads = extend.node_reads
            step.cache_hits = extend.cache_hits
            step.cache_misses = extend.cache_misses
            step.vectorized_batches = extend.vectorized_batches
            step.vectorized_candidates = extend.vectorized_candidates
            step.delta_probes = extend.delta_probes
            if ops.box_filter is not None:
                step.candidates = ops.box_filter.stats.rows_out
                stats.box_ops_estimate += ops.box_filter.stats.box_evals
            else:
                step.candidates = extend.rows_out
            stats.box_ops_estimate += extend.box_evals
            # Candidate pair tests (plane sweeps, partition scans) are
            # box work too — the partitioned operators' analogue of the
            # per-probe box evaluations.
            stats.box_ops_estimate += extend.pair_tests
            if ops.exact_filter is not None:
                step.survivors = ops.exact_filter.stats.rows_out
                stats.region_ops += ops.exact_filter.stats.region_ops
            else:
                step.survivors = step.candidates
        if self.exchange is not None and self.exchange.workers > 0:
            stats.exchange_kind = self.exchange.kind
            stats.exchange_workers = self.exchange.workers
            stats.exchange_fallbacks = self.exchange.fallbacks
        if self.final_filter is not None:
            stats.region_ops += self.final_filter.stats.region_ops
        # Repacks are a table-lifetime counter (zeroed by reset_stats,
        # like the probe counters); fold each distinct plan table once.
        seen_tables = {}
        for ops in self.step_ops:
            table = getattr(ops.extend, "table", None)
            if table is not None:
                seen_tables.setdefault(id(table), table)
        stats.repacks = sum(t.repacks for t in seen_tables.values())
        if self.mode == "naive":
            # The historical naive executor reported only the final
            # cross-product size.
            stats.partial_tuples = (
                self.step_ops[-1].extend.stats.rows_out
                if self.step_ops
                else 0
            )
        else:
            stats.partial_tuples = sum(s.survivors for s in stats.steps)
        stats.tuples_emitted = self.root.stats.rows_out
        return stats

    # -- rendering ---------------------------------------------------------------
    def operators(self) -> List[PhysicalOperator]:
        """All operators, root first."""
        out: List[PhysicalOperator] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(node.children)
        return out

    def explain(self) -> str:
        """Rendered operator tree, root at the top.

        Each line shows the operator, the catalog's estimated output
        cardinality, and — after the plan has executed — the actual
        rows/probes/node-reads/cache counters.
        """
        executed = any(op.stats.executed for op in self.operators())
        lines = [
            f"PhysicalPlan[{self.mode}]"
            f"  order: {', '.join(self.logical.order)}"
        ]
        if (
            self.partitions
            or self.shards
            or any(s != "probe" for s in self.join_strategies)
        ):
            joins = ", ".join(
                f"{v}={s}"
                for v, s in zip(self.logical.order, self.join_strategies)
            )
            exchange = (
                self.exchange.describe() if self.exchange else "serial"
            )
            layout = f"  partitions={self.partitions or 'off'}"
            if self.shards:
                layout += f"  shards={self.shards}"
                if self.spill:
                    layout += f"  spill={self.spill}"
            lines.append(
                f"{layout}  exchange={exchange}  joins: {joins}"
            )
        if self.logical.knn is not None:
            lines.append(
                f"  {self.logical.knn.describe()}  access={self.knn_access}"
            )
        if self.logical.aggregate is not None:
            lines.append(f"  {self.logical.aggregate.describe()}")

        def annotate(op: PhysicalOperator) -> str:
            parts = []
            if op.est_rows is not None:
                parts.append(f"est_rows≈{op.est_rows:.1f}")
            if executed:
                s = op.stats
                actual = [f"rows={s.rows_out}"]
                if s.probes:
                    actual.append(f"probes={s.probes}")
                if s.node_reads:
                    actual.append(f"node_reads={s.node_reads}")
                if s.cache_hits or s.cache_misses:
                    actual.append(
                        f"cache={s.cache_hits}/"
                        f"{s.cache_hits + s.cache_misses}"
                    )
                if s.partitions_visited or s.partitions_pruned:
                    actual.append(
                        f"parts={s.partitions_visited}/"
                        f"{s.partitions_visited + s.partitions_pruned}"
                    )
                if s.pair_tests:
                    actual.append(f"pair_tests={s.pair_tests}")
                if s.dedup_skipped:
                    actual.append(f"dedup={s.dedup_skipped}")
                if s.vectorized_batches:
                    actual.append(
                        f"vec={s.vectorized_batches}/"
                        f"{s.vectorized_candidates}"
                    )
                if s.delta_probes:
                    actual.append(f"delta_probes={s.delta_probes}")
                if s.region_ops:
                    actual.append(f"region_ops={s.region_ops}")
                parts.append("actual: " + " ".join(actual))
            return ("  [" + " | ".join(parts) + "]") if parts else ""

        def render(op: PhysicalOperator, depth: int) -> None:
            prefix = "" if depth == 0 else "   " * (depth - 1) + "└─ "
            lines.append(prefix + op.describe() + annotate(op))
            for c in op.children:
                render(c, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)


def _resolve_join_strategies(
    plan: QueryPlan,
    mode: str,
    catalog: Optional["Catalog"],
    partitions: int,
    parallel: int,
    join_strategy: Any,
    shards: int = 0,
) -> Dict[str, str]:
    """Normalise the ``join_strategy`` option to a per-variable mapping.

    Accepted forms: ``None`` (per-backend default: ``"probe"``, or
    ``"partition"`` for unindexed tables when partitioning is enabled),
    ``"auto"`` (cost-based, via
    :func:`~repro.engine.planner.choose_join_strategies`), a single
    strategy name for every step, a sequence aligned with the retrieval
    order, or a ``variable → strategy`` mapping.  Join strategies only
    shape box-mode plans — the ``naive``/``exact`` modes have no box
    layer to join on, so an *explicit* concrete strategy there raises
    rather than being silently dropped (``"auto"`` degrades quietly: it
    delegates the choice, and in these modes there is none to make).

    Sharded execution (``shards > 0``) swaps the strategy vocabulary:
    every step runs against the sharded table, so the valid names are
    :data:`~repro.engine.planner.SHARD_STRATEGIES` and ``None`` /
    ``"auto"`` choose per step via
    :func:`~repro.engine.planner.choose_shard_strategies`.  Naming a
    shard strategy with ``shards=0`` raises — there is no sharding to
    run it on.
    """
    from .planner import (
        JOIN_STRATEGIES,
        SHARD_STRATEGIES,
        choose_join_strategies,
        choose_shard_strategies,
    )

    if mode not in ("boxplan", "boxonly"):
        if join_strategy not in (None, "auto"):
            raise ValueError(
                f"join_strategy={join_strategy!r} only applies to the "
                f"box modes ('boxplan', 'boxonly'); mode {mode!r} has "
                f"no box layer to join on"
            )
        return {}
    if shards > 0:
        if join_strategy in (None, "auto"):
            chosen = choose_shard_strategies(
                plan.query,
                plan.order,
                catalog=catalog,
                shards=shards,
                workers=parallel,
            )
            return dict(zip(plan.order, chosen))
        if isinstance(join_strategy, str):
            resolved = {v: join_strategy for v in plan.order}
        elif isinstance(join_strategy, dict):
            resolved = dict(join_strategy)
        else:
            resolved = dict(zip(plan.order, join_strategy))
        for variable, name in resolved.items():
            if name not in SHARD_STRATEGIES:
                raise ValueError(
                    f"unknown shard strategy {name!r} for {variable!r}; "
                    f"with shards>0 expected one of {SHARD_STRATEGIES} "
                    f"(or 'auto')"
                )
        return resolved
    if isinstance(join_strategy, str) and join_strategy in SHARD_STRATEGIES:
        raise ValueError(
            f"join strategy {join_strategy!r} requires sharded "
            f"execution; pass shards>0 to enable it"
        )
    if join_strategy is None:
        out = {}
        if partitions > 0:
            out = {
                sp.variable: "partition"
                for sp in plan.steps
                if sp.table.index_kind == "scan"
            }
        return out
    if join_strategy == "auto":
        chosen = choose_join_strategies(
            plan.query,
            plan.order,
            catalog=catalog,
            partitions=partitions,
            workers=parallel,
        )
        return dict(zip(plan.order, chosen))
    if isinstance(join_strategy, str):
        resolved = {v: join_strategy for v in plan.order}
    elif isinstance(join_strategy, dict):
        resolved = dict(join_strategy)
        unknown = set(resolved) - set(plan.order)
        if unknown:
            raise ValueError(
                f"join_strategy names unknown variables "
                f"{sorted(unknown)}; retrieval order is {list(plan.order)}"
            )
    else:
        names = list(join_strategy)
        if len(names) != len(plan.order):
            raise ValueError(
                f"join_strategy sequence has {len(names)} entries for "
                f"{len(plan.order)} retrieval steps ({list(plan.order)})"
            )
        resolved = dict(zip(plan.order, names))
    for variable, name in resolved.items():
        if name in SHARD_STRATEGIES:
            raise ValueError(
                f"join strategy {name!r} for {variable!r} requires "
                f"sharded execution; pass shards>0 to enable it"
            )
        if name not in JOIN_STRATEGIES:
            raise ValueError(
                f"unknown join strategy {name!r} for {variable!r}; "
                f"expected one of {JOIN_STRATEGIES} (or 'auto')"
            )
    return resolved


def build_physical_plan(
    plan: QueryPlan,
    mode: str = "boxplan",
    catalog: Optional["Catalog"] = None,
    estimate: bool = True,
    partitions: int = 0,
    parallel: int = 0,
    parallel_kind: str = "thread",
    join_strategy: Optional[str] = None,
    vectorize: Optional[bool] = None,
    shards: int = 0,
    spill: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> PhysicalPlan:
    """Lower a logical :class:`QueryPlan` to a physical operator tree.

    ``mode`` selects the plan-construction strategy (see module
    docstring); an unknown mode raises
    :class:`~repro.errors.UnknownModeError` naming the valid modes.
    ``estimate=False`` skips the catalog cost annotations (they need a
    pass over table statistics).  ``vectorize`` selects the columnar
    kernels (``None`` = whatever backend
    :func:`repro.spatial.columnar.active_backend` resolves to,
    ``False`` = per-object execution, ``True`` = columnar unless the
    backend is forced off); answers are identical either way.

    Partitioned execution options (box modes only):

    ``partitions``
        spatial partition / PBSM tile target (0 disables partitioning;
        unindexed tables then default to ``PartitionScan``);
    ``parallel`` / ``parallel_kind``
        worker count and pool kind (``"thread"``/``"process"``/
        ``"serial"``) for the PBSM tile :class:`Exchange` — results are
        identical to serial execution;
    ``join_strategy``
        per-step join algorithm: ``None`` (defaults), ``"auto"``
        (cost-based), one of
        :data:`~repro.engine.planner.JOIN_STRATEGIES`, or a
        sequence/mapping per variable;
    ``shards``
        STR-shard every step's table into this many shards and execute
        via the shard coordinator (:class:`ShardScan` /
        :class:`ShardedJoin`, chosen per step by
        :func:`~repro.engine.planner.choose_shard_strategies` unless an
        explicit strategy is given) — answers stay bit-identical to
        unsharded execution;
    ``spill``
        bound the sharded join's in-memory buffering: probe buckets
        above this many entries spill to disk tiles and are streamed
        back per shard (``None`` = fully in-memory);
    ``pool``
        a persistent :class:`~repro.spatial.partition.WorkerPool` for
        the exchange to borrow (e.g. the one owned by
        :class:`~repro.database.Database`) instead of constructing a
        pool per ``run``.
    """
    if mode not in MODES:
        raise UnknownModeError(mode, MODES)
    vec = columnar.resolve(vectorize)

    from .planner import choose_aggregate_strategy, choose_knn_access

    knn = plan.knn
    knn_access: Optional[str] = None
    if knn is not None:
        knn_access = choose_knn_access(
            plan.query.tables[knn.variable], knn.k, catalog=catalog
        )
    aggregate = plan.aggregate
    if (
        aggregate is not None
        and choose_aggregate_strategy(plan, mode) == "pushdown"
    ):
        # Box-level COUNT: the whole plan is one index count.
        sp = plan.steps[0]
        count_op = IndexCountAggregate(sp.variable, sp.table, sp.template)
        pplan = PhysicalPlan(
            logical=plan,
            mode=mode,
            root=count_op,
            step_ops=[_StepOps(variable=sp.variable, extend=count_op)],
            join_strategies=("pushdown",),
            aggregate_op=count_op,
            vectorized=vec,
        )
        if estimate:
            _annotate_estimates(pplan, catalog)
        return pplan

    strategies = _resolve_join_strategies(
        plan, mode, catalog, partitions, parallel, join_strategy,
        shards=shards,
    )
    if mode not in ("boxplan", "boxonly"):
        # Sharding, like partitioning, only shapes box-mode plans.
        shards = 0
    exchange = Exchange(workers=parallel, kind=parallel_kind, pool=pool)
    tiles = partitions if partitions > 0 else DEFAULT_TILES

    def knn_extend(
        node: PhysicalOperator, variable: str, table: SpatialTable
    ) -> ExtendStep:
        """The kNN restriction's access operator for one variable."""
        if knn.ref is not None and knn.ref in plan.query.tables:
            return DistanceJoin(node, variable, table, knn, knn_access)
        return KNNProbe(node, variable, table, knn, knn_access)

    node: PhysicalOperator = Once()
    step_ops: List[_StepOps] = []
    final_filter: Optional[ExactFilter] = None

    if mode == "naive":
        for variable in plan.order:
            table = plan.query.tables[variable]
            if knn is not None and variable == knn.variable:
                node = knn_extend(node, variable, table)
            else:
                node = CrossProduct(node, variable, table)
            step_ops.append(_StepOps(variable=variable, extend=node))
        final_filter = ExactFilter(node, system=plan.query.system)
        node = final_filter
    else:
        use_boxes = mode in ("boxplan", "boxonly")
        exact_steps = mode in ("boxplan", "exact")
        for sp in plan.steps:
            strategy = strategies.get(sp.variable, "probe")
            box_filter: Optional[BoxFilter] = None
            if knn is not None and sp.variable == knn.variable:
                # The kNN restriction replaces the step's access path;
                # the step's box template still applies as a filter (a
                # necessary condition of the exact constraint), so box
                # modes keep their candidate accounting.
                extend = knn_extend(node, sp.variable, sp.table)
                node = extend
                if use_boxes:
                    box_filter = BoxFilter(node, sp.variable, sp.template)
                    node = box_filter
            elif use_boxes and shards > 0 and strategy == "shardjoin":
                extend = ShardedJoin(
                    node,
                    sp.variable,
                    sp.table,
                    sp.template,
                    shards=shards,
                    exchange=exchange,
                    spill=spill,
                )
                node = extend
            elif use_boxes and shards > 0:
                # "shardscan" — and the safety net for any step the
                # shard chooser left unnamed.
                extend = ShardScan(
                    node, sp.variable, sp.table, sp.template, shards
                )
                node = extend
            elif use_boxes and strategy == "pbsm":
                extend: ExtendStep = PartitionedSpatialJoin(
                    node,
                    sp.variable,
                    sp.table,
                    sp.template,
                    partitions=tiles,
                    exchange=exchange,
                )
                node = extend
            elif use_boxes and strategy == "zorder":
                extend = ZOrderJoin(
                    node, sp.variable, sp.table, sp.template
                )
                node = extend
            elif use_boxes and strategy == "partition":
                extend = PartitionScan(
                    node, sp.variable, sp.table, sp.template, tiles
                )
                node = extend
            elif use_boxes and sp.table.index_kind != "scan":
                extend = IndexProbe(
                    node, sp.variable, sp.table, sp.template
                )
                node = extend
            elif (
                use_boxes
                and vec
                and sp.table.column_store() is not None
            ):
                # Unindexed table, columnar mirror available: fuse the
                # scan and the box filter into one batched probe.
                extend = VectorizedScanProbe(
                    node, sp.variable, sp.table, sp.template
                )
                node = extend
            else:
                extend = TableScan(node, sp.variable, sp.table)
                node = extend
                if use_boxes:
                    box_filter = BoxFilter(node, sp.variable, sp.template)
                    node = box_filter
            exact_filter: Optional[ExactFilter] = None
            if exact_steps:
                exact_filter = ExactFilter(
                    node, variable=sp.variable, solved=sp.exact
                )
                node = exact_filter
            step_ops.append(
                _StepOps(
                    variable=sp.variable,
                    extend=extend,
                    box_filter=box_filter,
                    exact_filter=exact_filter,
                )
            )
        if not exact_steps:
            final_filter = ExactFilter(node, system=plan.query.system)
            node = final_filter

    aggregate_op: Optional[PhysicalOperator] = None
    if aggregate is not None:
        aggregate_op = Aggregate(node, aggregate)
        node = aggregate_op

    pplan = PhysicalPlan(
        logical=plan,
        mode=mode,
        root=node,
        step_ops=step_ops,
        final_filter=final_filter,
        partitions=partitions,
        shards=shards,
        spill=spill,
        join_strategies=tuple(
            strategies.get(v, "probe") for v in plan.order
        ),
        exchange=exchange,
        knn_access=knn_access,
        aggregate_op=aggregate_op,
        vectorized=vec,
    )
    if estimate:
        _annotate_estimates(pplan, catalog)
    return pplan


def _annotate_estimates(
    pplan: PhysicalPlan, catalog: Optional["Catalog"] = None
) -> None:
    """Attach catalog cardinality estimates to every operator.

    Estimation failures (empty statistics, unsupported systems) leave
    the annotations unset rather than failing plan construction.
    """
    from .planner import rollout_step_estimates

    plan = pplan.logical
    try:
        estimates = {
            e.variable: e
            for e in rollout_step_estimates(
                plan.query, plan.order, catalog=catalog
            )
        }
    except Exception:
        return

    for op in pplan.operators():
        if isinstance(op, Once):
            op.est_rows = 1.0
    running = 1.0  # cross-product cardinality for naive chains
    knn = plan.knn
    for ops in pplan.step_ops:
        est = estimates.get(ops.variable)
        if est is None:
            continue
        table_size = max(1, len(plan.query.tables[ops.variable]))
        if isinstance(ops.extend, IndexCountAggregate):
            ops.extend.est_rows = 1.0
        elif isinstance(ops.extend, (KNNProbe, DistanceJoin)):
            # The kNN restriction caps the step's fanout at k.
            fanout = min(knn.k, table_size) if knn is not None else table_size
            if pplan.mode == "naive":
                running *= fanout
                ops.extend.est_rows = running
            else:
                ops.extend.est_rows = est.partials_in * fanout
        elif pplan.mode == "naive":
            running *= table_size
            ops.extend.est_rows = running
        elif isinstance(ops.extend, TableScan):
            ops.extend.est_rows = est.scan_candidates
        else:
            # Every probing/joining strategy admits exactly the rows the
            # step's box query matches.
            ops.extend.est_rows = est.candidates
        if ops.box_filter is not None:
            ops.box_filter.est_rows = est.candidates
        if ops.exact_filter is not None:
            ops.exact_filter.est_rows = est.survivors
    if pplan.final_filter is not None and pplan.step_ops:
        last = estimates.get(pplan.step_ops[-1].variable)
        if last is not None:
            # The rollouts' final survivor count estimates the answer
            # set itself (the box query is necessary for the exact
            # constraint, so the filtering order does not change it).
            pplan.final_filter.est_rows = last.survivors
