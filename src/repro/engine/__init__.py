"""The query engine: compiler, physical plans, planner, catalog, stats.

The execution pipeline is three-stage: a :class:`SpatialQuery` is
compiled to a logical :class:`QueryPlan` (triangular solved forms + box
templates), lowered to a :class:`PhysicalPlan` (a tree of streaming
operators), and pulled as an iterator of answers.
"""

from ..spatial.partition import Exchange
from ..spatial.table import ProbeCache
from .catalog import (
    Catalog,
    Histogram,
    PartitionStatistics,
    TableStatistics,
    collect_statistics,
)
from .compiler import QueryPlan, StepPlan, compile_query, repair_knn_order
from .executor import (
    MODES,
    answers_as_oid_tuples,
    execute,
    execute_iter,
    first_k,
    run_query,
)
from .physical import (
    Aggregate,
    AggregateRow,
    BoxFilter,
    CrossProduct,
    DistanceJoin,
    ExactFilter,
    ExtendStep,
    IndexCountAggregate,
    IndexProbe,
    KNNProbe,
    Once,
    PartitionScan,
    PartitionedSpatialJoin,
    PhysicalOperator,
    PhysicalPlan,
    TableScan,
    ZOrderJoin,
    build_physical_plan,
)
from .planner import (
    AGGREGATE_STRATEGIES,
    JOIN_STRATEGIES,
    KNN_ACCESS_STRATEGIES,
    ORDER_STRATEGIES,
    StepEstimate,
    best_order_by_estimate,
    choose_aggregate_strategy,
    choose_join_strategies,
    choose_knn_access,
    choose_order,
    enumerate_orders,
    estimate_order_cost,
    estimate_order_cost_histogram,
    plan_order,
    rollout_step_estimates,
)
from .query import AGGREGATE_OPS, AggregateSpec, KNNStep, SpatialQuery
from .stats import ExecutionStats, StepStats

__all__ = [
    "AGGREGATE_OPS",
    "AGGREGATE_STRATEGIES",
    "Aggregate",
    "AggregateRow",
    "AggregateSpec",
    "BoxFilter",
    "Catalog",
    "CrossProduct",
    "DistanceJoin",
    "ExactFilter",
    "Exchange",
    "ExecutionStats",
    "ExtendStep",
    "Histogram",
    "IndexCountAggregate",
    "IndexProbe",
    "JOIN_STRATEGIES",
    "KNNProbe",
    "KNNStep",
    "KNN_ACCESS_STRATEGIES",
    "MODES",
    "ORDER_STRATEGIES",
    "Once",
    "PartitionScan",
    "PartitionStatistics",
    "PartitionedSpatialJoin",
    "PhysicalOperator",
    "PhysicalPlan",
    "ProbeCache",
    "QueryPlan",
    "SpatialQuery",
    "StepEstimate",
    "StepPlan",
    "StepStats",
    "TableScan",
    "TableStatistics",
    "ZOrderJoin",
    "answers_as_oid_tuples",
    "best_order_by_estimate",
    "build_physical_plan",
    "choose_aggregate_strategy",
    "choose_join_strategies",
    "choose_knn_access",
    "choose_order",
    "collect_statistics",
    "compile_query",
    "enumerate_orders",
    "estimate_order_cost",
    "estimate_order_cost_histogram",
    "execute",
    "execute_iter",
    "first_k",
    "plan_order",
    "repair_knn_order",
    "rollout_step_estimates",
    "run_query",
]
