"""The query engine: compiler, executors, planner, catalog, statistics."""

from .catalog import Catalog, Histogram, TableStatistics, collect_statistics
from .compiler import QueryPlan, StepPlan, compile_query
from .executor import (
    MODES,
    answers_as_oid_tuples,
    execute,
    execute_iter,
    first_k,
    run_query,
)
from .planner import (
    ORDER_STRATEGIES,
    best_order_by_estimate,
    choose_order,
    enumerate_orders,
    estimate_order_cost,
    estimate_order_cost_histogram,
    plan_order,
)
from .query import SpatialQuery
from .stats import ExecutionStats, StepStats

__all__ = [
    "Catalog",
    "ExecutionStats",
    "Histogram",
    "MODES",
    "ORDER_STRATEGIES",
    "QueryPlan",
    "SpatialQuery",
    "StepPlan",
    "StepStats",
    "TableStatistics",
    "answers_as_oid_tuples",
    "best_order_by_estimate",
    "choose_order",
    "collect_statistics",
    "compile_query",
    "enumerate_orders",
    "estimate_order_cost",
    "estimate_order_cost_histogram",
    "execute",
    "execute_iter",
    "first_k",
    "plan_order",
    "run_query",
]
