"""The query engine: compiler, executors, planner, statistics."""

from .compiler import QueryPlan, StepPlan, compile_query
from .executor import (
    MODES,
    answers_as_oid_tuples,
    execute,
    execute_iter,
    first_k,
    run_query,
)
from .planner import (
    best_order_by_estimate,
    choose_order,
    enumerate_orders,
    estimate_order_cost,
)
from .query import SpatialQuery
from .stats import ExecutionStats, StepStats

__all__ = [
    "ExecutionStats",
    "MODES",
    "QueryPlan",
    "SpatialQuery",
    "StepPlan",
    "StepStats",
    "answers_as_oid_tuples",
    "best_order_by_estimate",
    "choose_order",
    "compile_query",
    "enumerate_orders",
    "estimate_order_cost",
    "execute",
    "execute_iter",
    "first_k",
    "run_query",
]
