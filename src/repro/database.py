"""The public ``Database``/``Session`` facade.

The library grew bottom-up — tables, compiler, physical plans, caches,
partitioning — and each capability shipped with its own entry point
(``run_query``, ``execute``, ``plan.physical(...)``, CLI flags).  This
module is the one front door over all of it:

* a :class:`Database` owns named tables and named constant-region
  bindings, turns constraint text (or a
  :class:`~repro.constraints.system.ConstraintSystem`) into a
  :class:`~repro.engine.query.SpatialQuery` against them, and
  round-trips to disk via :mod:`repro.spatial.snapshot`
  (:meth:`Database.save` / :meth:`Database.open` — ~100ms warm load
  instead of a full STR build);
* a :class:`Session` executes queries with one uniform keyword
  vocabulary — ``mode=``, ``join_strategy=``, ``partitions=``,
  ``parallel=``, ``parallel_kind=``, ``shards=``, ``spill=``,
  ``limit=`` — matching the CLI flags one-for-one, with per-session
  defaults and an optional shared
  :class:`~repro.spatial.table.ProbeCache`.  Parallel plans borrow the
  database's persistent :class:`~repro.spatial.partition.WorkerPool`
  (one per pool shape, alive until :meth:`Database.close`) instead of
  constructing a pool per query.

The old entry points remain as thin deprecated shims (see
:func:`repro.engine.executor.run_query`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .algebra.regions import Region
from .constraints.parser import parse_system
from .constraints.system import ConstraintSystem
from .engine.compiler import QueryPlan, compile_query
from .engine.executor import Answer, answers_as_oid_tuples
from .engine.query import AggregateSpec, KNNStep, SpatialQuery
from .engine.stats import ExecutionStats
from .spatial.partition import WorkerPool
from .spatial.snapshot import read_snapshot, write_snapshot
from .spatial.table import ProbeCache, SpatialObject, SpatialTable

__all__ = ["Database", "QueryResult", "Session"]

#: Sentinel distinguishing "not passed" from an explicit ``None``.
_UNSET = object()

#: The uniform execution-option vocabulary (mirrors the CLI flags
#: ``--mode``/``--join``/``--partitions``/``--parallel``/``--limit``).
SESSION_OPTIONS = (
    "mode",
    "join_strategy",
    "partitions",
    "parallel",
    "parallel_kind",
    "shards",
    "spill",
    "limit",
    "vectorize",
)

_OPTION_DEFAULTS = {
    "mode": "boxplan",
    "join_strategy": None,
    "partitions": 0,
    "parallel": 0,
    "parallel_kind": "thread",
    "shards": 0,
    "spill": None,
    "limit": None,
    "vectorize": None,
}


@dataclass
class QueryResult:
    """One execution's answers plus its counters and timings.

    Unpacks like the classic pair — ``answers, stats = session.run(q)``
    — while also carrying the retrieval order and streaming timings.
    """

    answers: List[Answer]
    stats: ExecutionStats
    order: Tuple[str, ...] = ()
    time_to_first_s: Optional[float] = None
    total_s: Optional[float] = None

    def __iter__(self) -> Iterator:
        return iter((self.answers, self.stats))

    def oid_tuples(self, order: Optional[Sequence[str]] = None) -> List[Tuple]:
        """Sorted oid tuples (set-comparison form; see the tests)."""
        return answers_as_oid_tuples(self.answers, order or self.order)


class Database:
    """Named tables plus named constant bindings, with disk snapshots.

    ``tables`` is keyed the way queries reference tables — by
    *variable* name (the smugglers query's ``T``/``R``/``B``), not by
    the table's own descriptive name.
    """

    def __init__(
        self,
        tables: Optional[Dict[str, SpatialTable]] = None,
        bindings: Optional[Dict[str, Region]] = None,
    ):
        self.tables: Dict[str, SpatialTable] = dict(tables or {})
        self.bindings: Dict[str, Region] = dict(bindings or {})
        # Sessions of one database may run on concurrent threads (the
        # query service does exactly this), and they all fetch pools
        # through worker_pool(); the lock makes the get-or-create
        # atomic so two sessions cannot each install a pool for the
        # same shape and strand one of them unclosed.
        self._pool_lock = threading.Lock()
        self._pools: Dict[Tuple[str, int], WorkerPool] = {}  # guarded-by: _pool_lock

    # -- parallel substrate ------------------------------------------------------
    def worker_pool(self, workers: int, kind: str = "thread") -> WorkerPool:
        """The database's persistent worker pool, created lazily.

        One pool per ``(kind, workers)`` shape lives for the database's
        lifetime (until :meth:`close`), so parallel queries reuse
        warm workers instead of paying pool construction — and, for
        process pools, process spawn — per query.
        """
        key = (kind, max(1, int(workers)))
        with self._pool_lock:
            pool = self._pools.get(key)
            if pool is None or pool.closed:
                pool = WorkerPool(workers=key[1], kind=kind)
                self._pools[key] = pool
            return pool

    def close(self) -> None:
        """Release the worker pools and shared-memory shard columns."""
        with self._pool_lock:
            pools, self._pools = list(self._pools.values()), {}
        for pool in pools:
            pool.close()
        for table in self.tables.values():
            if table._sharding_cache is not None:
                table._sharding_cache.close()
                table._sharding_cache = None
                table._sharding_key = None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_query(cls, query: SpatialQuery) -> "Database":
        """A database over an existing query's tables and bindings."""
        return cls(tables=query.tables, bindings=query.bindings)

    @classmethod
    def open(cls, path: str) -> "Database":
        """Load a snapshot saved by :meth:`save` (warm indexes/caches)."""
        tables, bindings = read_snapshot(path)
        return cls(tables=tables, bindings=bindings)

    def save(
        self,
        path: str,
        statistics: bool = True,
        partitions: int = 0,
        shards: int = 0,
    ) -> None:
        """Atomically snapshot every table and binding to ``path``.

        ``statistics=True`` (default) computes each table's default
        planner statistics first so the snapshot ships a warm catalog;
        ``partitions > 0`` additionally computes and ships the STR
        partitioning at that granularity, and ``shards > 0`` the
        sharding (per-shard row membership — :meth:`open` rebuilds the
        same shards without re-running the STR sort).
        """
        for table in self.tables.values():
            # Fold any pending write delta first: snapshots serialize
            # only packed base structures, and statistics computed here
            # must land in the base cache the snapshot ships.
            table.repack()
            if partitions > 0:
                table.partitioning(partitions)
            if shards > 0:
                table.sharding(shards)
            if statistics:
                table.statistics()
        write_snapshot(path, self.tables, self.bindings)

    # -- registration ----------------------------------------------------------
    def create_table(
        self, name: str, dim: int, **table_kwargs
    ) -> SpatialTable:
        """Create, register, and return an empty table under ``name``."""
        table = SpatialTable(name, dim, **table_kwargs)
        self.tables[name] = table
        return table

    def attach(
        self, table: SpatialTable, name: Optional[str] = None
    ) -> SpatialTable:
        """Register an existing table (default key: its own name)."""
        self.tables[name or table.name] = table
        return table

    def bind(self, name: str, region: Region) -> None:
        """Register a named constant region."""
        self.bindings[name] = region

    def table(self, name: str) -> SpatialTable:
        """Table lookup (KeyError names the known tables)."""
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"no table {name!r}; known tables: {sorted(self.tables)}"
            ) from None

    # -- mutation --------------------------------------------------------------
    def insert(self, table: str, oid, region: Region) -> None:
        """Stage one new row into ``table``'s write delta.

        O(delta) — the packed base structures are untouched until the
        table's repack threshold fires (or :meth:`save` folds the
        delta).  Readers see the row immediately.
        """
        self.table(table).stage_insert(oid, region)

    def delete(self, table: str, oid) -> bool:
        """Stage one delete; returns ``False`` when ``oid`` is not live."""
        return self.table(table).stage_delete(oid)

    # -- queries ---------------------------------------------------------------
    def query(
        self,
        system: Union[str, ConstraintSystem],
        bindings: Optional[Dict[str, Region]] = None,
        order: Optional[Sequence[str]] = None,
        knn: Optional[KNNStep] = None,
        aggregate: Optional[AggregateSpec] = None,
    ) -> SpatialQuery:
        """Build a :class:`SpatialQuery` against this database.

        ``system`` may be constraint text in the Figure-1 syntax (it is
        parsed) or an already-built system.  Each system variable
        resolves to a stored binding (constants) or a stored table
        (unknowns), in that order; ``bindings`` overrides/extends the
        stored constants for this query only.
        """
        if isinstance(system, str):
            system = parse_system(system)
        bound = {
            name: region
            for name, region in self.bindings.items()
            if name in system.variables()
        }
        if bindings:
            bound.update(bindings)
        tables = {
            var: self.tables[var]
            for var in system.variables()
            if var not in bound and var in self.tables
        }
        return SpatialQuery(
            system=system,
            tables=tables,
            bindings=bound,
            order=tuple(order) if order else None,
            knn=knn,
            aggregate=aggregate,
        )

    def session(self, **defaults) -> "Session":
        """A :class:`Session` over this database."""
        return Session(db=self, **defaults)


class Session:
    """Query execution with uniform options and per-session defaults.

    Accepts a :class:`SpatialQuery`, a compiled
    :class:`~repro.engine.compiler.QueryPlan`, or — when constructed
    with a :class:`Database` — raw constraint text.  Keyword options
    (``mode=``, ``join_strategy=``, ``partitions=``, ``parallel=``,
    ``parallel_kind=``, ``shards=``, ``spill=``,
    ``limit=``) match the CLI flags; constructor keywords set session
    defaults, call keywords override per query.  ``probe_cache=N``
    shares an N-entry :class:`ProbeCache` across the session's probes
    (pass ``cache=`` to share an existing one, e.g. the service's).
    """

    def __init__(
        self,
        db: Optional[Database] = None,
        cache: Optional[ProbeCache] = None,
        probe_cache: int = 0,
        **defaults,
    ):
        unknown = set(defaults) - set(SESSION_OPTIONS)
        if unknown:
            raise TypeError(
                f"unknown session option(s) {sorted(unknown)}; valid "
                f"options: {SESSION_OPTIONS}"
            )
        self.db = db
        self.cache = cache
        if self.cache is None and probe_cache:
            self.cache = ProbeCache(maxsize=probe_cache)
        self.defaults = dict(_OPTION_DEFAULTS)
        self.defaults.update(defaults)

    # -- option/plan resolution ------------------------------------------------
    def _option(self, name: str, value):
        return self.defaults[name] if value is _UNSET else value

    def _physical_options(
        self,
        partitions,
        parallel,
        join_strategy,
        vectorize=_UNSET,
        shards=_UNSET,
        spill=_UNSET,
        parallel_kind=_UNSET,
    ) -> dict:
        partitions = self._option("partitions", partitions)
        parallel = self._option("parallel", parallel)
        shards = self._option("shards", shards)
        kind = self._option("parallel_kind", parallel_kind)
        join = self._option("join_strategy", join_strategy)
        if join is None and (partitions or parallel or shards):
            # Same default the CLI applies: partitioned execution with
            # no explicit algorithm delegates the pick to the planner.
            join = "auto"
        pool = None
        if self.db is not None and parallel:
            # Parallel plans borrow the database's persistent pool; a
            # detached session falls back to per-run executors.
            pool = self.db.worker_pool(parallel, kind)
        return {
            "partitions": partitions,
            "parallel": parallel,
            "parallel_kind": kind,
            "join_strategy": join,
            "vectorize": self._option("vectorize", vectorize),
            "shards": shards,
            "spill": self._option("spill", spill),
            "pool": pool,
        }

    def _compile(
        self,
        query: Union[str, ConstraintSystem, SpatialQuery, QueryPlan],
        order: Optional[Sequence[str]] = None,
    ) -> QueryPlan:
        if isinstance(query, QueryPlan):
            return query
        if isinstance(query, (str, ConstraintSystem)):
            if self.db is None:
                raise ValueError(
                    "constraint text needs a Database to resolve tables "
                    "and bindings; construct Session(db=...) or pass a "
                    "SpatialQuery"
                )
            query = self.db.query(query)
        if order is None and not query.order:
            # No caller- or query-given order: plan one (the CLI's
            # default strategy), honoring a kNN step's anchor ordering.
            from .engine.compiler import repair_knn_order
            from .engine.planner import plan_order

            order = plan_order(
                query,
                strategy="histogram",
                partitions=self.defaults["partitions"],
            )
            if query.knn is not None:
                order = repair_knn_order(order, query.knn, query.tables)
        return compile_query(query, order=order)

    # -- execution -------------------------------------------------------------
    def run(
        self,
        query: Union[str, ConstraintSystem, SpatialQuery, QueryPlan],
        *,
        mode=_UNSET,
        order: Optional[Sequence[str]] = None,
        limit=_UNSET,
        partitions=_UNSET,
        parallel=_UNSET,
        parallel_kind=_UNSET,
        shards=_UNSET,
        spill=_UNSET,
        join_strategy=_UNSET,
        vectorize=_UNSET,
    ) -> QueryResult:
        """Execute and return a :class:`QueryResult`.

        Streams internally — ``limit=k`` stops after ``k`` answers
        without exhausting the search space, and the result carries
        time-to-first-answer alongside the total.
        """
        plan = self._compile(query, order=order)
        pplan = plan.physical(
            self._option("mode", mode),
            estimate=False,
            **self._physical_options(
                partitions,
                parallel,
                join_strategy,
                vectorize,
                shards=shards,
                spill=spill,
                parallel_kind=parallel_kind,
            ),
        )
        start = perf_counter()
        first = None
        answers: List[Answer] = []
        for answer in pplan.execute_iter(
            limit=self._option("limit", limit), cache=self.cache
        ):
            if first is None:
                first = perf_counter() - start
            answers.append(answer)
        total = perf_counter() - start
        return QueryResult(
            answers=answers,
            stats=pplan.stats(),
            order=tuple(plan.order),
            time_to_first_s=first,
            total_s=total,
        )

    def explain(
        self,
        query: Union[str, ConstraintSystem, SpatialQuery, QueryPlan],
        *,
        mode=_UNSET,
        order: Optional[Sequence[str]] = None,
        analyze: bool = False,
        partitions=_UNSET,
        parallel=_UNSET,
        parallel_kind=_UNSET,
        shards=_UNSET,
        spill=_UNSET,
        join_strategy=_UNSET,
        vectorize=_UNSET,
    ) -> str:
        """The physical operator tree, with catalog cost estimates.

        ``analyze=True`` also executes the plan and annotates actual
        per-operator rows/probes/node reads (the CLI's ``--analyze``).
        """
        plan = self._compile(query, order=order)
        pplan = plan.physical(
            self._option("mode", mode),
            **self._physical_options(
                partitions,
                parallel,
                join_strategy,
                vectorize,
                shards=shards,
                spill=spill,
                parallel_kind=parallel_kind,
            ),
        )
        if analyze:
            pplan.run(cache=self.cache)
        return pplan.explain()

    def bench(
        self,
        query: Union[str, ConstraintSystem, SpatialQuery, QueryPlan],
        *,
        mode=_UNSET,
        order: Optional[Sequence[str]] = None,
        limit=_UNSET,
        partitions=_UNSET,
        parallel=_UNSET,
        parallel_kind=_UNSET,
        shards=_UNSET,
        spill=_UNSET,
        join_strategy=_UNSET,
        vectorize=_UNSET,
    ) -> dict:
        """Execute and report the machine-independent counters.

        The returned dictionary nests the full
        :meth:`~repro.engine.stats.ExecutionStats.to_dict` payload under
        ``"counters"`` (JSON-round-trippable), plus per-table index
        counters and wall-clock timings.
        """
        plan = self._compile(query, order=order)
        for table in plan.query.tables.values():
            table.reset_stats()  # report query-time reads, not build-time
        result = self.run(
            plan,
            mode=mode,
            limit=limit,
            partitions=partitions,
            parallel=parallel,
            parallel_kind=parallel_kind,
            shards=shards,
            spill=spill,
            join_strategy=join_strategy,
            vectorize=vectorize,
        )
        return {
            "mode": self._option("mode", mode),
            "order": list(result.order),
            "answers": len(result.answers),
            "counters": result.stats.to_dict(),
            "tables": {
                name: table.index_stats()
                for name, table in plan.query.tables.items()
            },
            "time_to_first_s": result.time_to_first_s,
            "total_s": result.total_s,
        }

    def aggregate(
        self,
        query: Union[str, ConstraintSystem, SpatialQuery],
        aggregates: Sequence[Tuple[str, Optional[str]]] = (("count", None),),
        group_by: Sequence[str] = (),
        exact: bool = True,
        **options,
    ) -> QueryResult:
        """Run the query's aggregation form (COUNT/MIN/MAX, grouped).

        Rebuilds the query with an :class:`AggregateSpec`; the result's
        ``answers`` are aggregate rows (see
        :class:`repro.engine.physical.AggregateRow`).
        """
        if isinstance(query, (str, ConstraintSystem)):
            if self.db is None:
                raise ValueError(
                    "constraint text needs a Database; construct "
                    "Session(db=...) or pass a SpatialQuery"
                )
            query = self.db.query(query)
        spec = AggregateSpec(
            aggregates=tuple(aggregates),
            group_by=tuple(group_by),
            exact=exact,
        )
        query = SpatialQuery(
            system=query.system,
            tables=query.tables,
            bindings=query.bindings,
            order=query.order,
            knn=query.knn,
            aggregate=spec,
        )
        return self.run(query, **options)

    def nearest(
        self,
        table: Union[str, SpatialTable],
        anchor,
        k: int,
        access: str = "auto",
    ) -> List[Tuple[float, SpatialObject]]:
        """The ``k`` rows of a table nearest to a point or box anchor.

        ``table`` may be a name (resolved through the session's
        :class:`Database`) or a table object; semantics are those of
        :meth:`~repro.spatial.table.SpatialTable.nearest`.
        """
        if isinstance(table, str):
            if self.db is None:
                raise ValueError(
                    "a table name needs a Database; construct "
                    "Session(db=...) or pass the SpatialTable itself"
                )
            table = self.db.table(table)
        return table.nearest(anchor, k, access=access)
