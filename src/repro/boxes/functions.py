"""Bounding-box functions (paper Section 4).

A *bounding-box function* is built from box variables, box constants and
the operators ``⊓`` (infimum = intersection) and ``⊔`` (supremum =
minimal enclosing box).  The compiler approximates the Boolean functions
appearing in the triangular solved form by bounding-box functions, which
are then evaluated — cheaply — during query execution on the bounding
boxes ``⌈x_1⌉..⌈x_{i-1}⌉`` of already-retrieved objects.

All bounding-box functions are **monotone** with respect to ``⊑`` (both
operators are), a fact the correctness of the approximation relies on
(Lemma 12 uses it explicitly) and which :func:`is_monotone_instance`
spot-checks in the tests.

The AST deliberately mirrors :mod:`repro.boolean.syntax` minus
complement: the bounding box of a complement is not expressible, which is
exactly *why* the paper needs the BCF-based L/U machinery rather than a
syntactic transliteration.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from .box import Box, EMPTY_BOX


class BoxFunc:
    """Base class of bounding-box function nodes (immutable)."""

    __slots__ = ()

    def __call__(self, env: Mapping[str, Box]) -> Box:
        return evaluate_boxfunc(self, env)

    def variables(self) -> FrozenSet[str]:
        """Box-variable names occurring in the function."""
        out: set = set()
        _collect(self, out)
        return frozenset(out)

    def meet(self, other: "BoxFunc") -> "BoxFunc":
        """``self ⊓ other`` with local simplification."""
        return bmeet(self, other)

    def join(self, other: "BoxFunc") -> "BoxFunc":
        """``self ⊔ other`` with local simplification."""
        return bjoin(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"BoxFunc({render_boxfunc(self)})"


class BoxVar(BoxFunc):
    """``⌈x⌉`` for a (region) variable or bound constant ``x``."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("box variable name must be a non-empty string")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("BoxVar", name)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("BoxVar is immutable")

    def __eq__(self, other):
        return isinstance(other, BoxVar) and other.name == self.name

    def __hash__(self):
        return self._hash


class BoxConst(BoxFunc):
    """A constant box.

    Two distinguished constants matter: :data:`BOT` (the empty box,
    value of ``⌈0⌉``) and :data:`TOP` (the unbounded/universe box, the
    safe upper bound for ``⌈¬f⌉`` and the value of ``⌈1⌉``).  ``TOP`` is
    represented symbolically so it stays dimension-polymorphic; it is
    resolved to the data set's universe box at evaluation time.
    """

    __slots__ = ("box", "is_top", "_hash")

    def __init__(self, box: Optional[Box], is_top: bool = False):
        object.__setattr__(self, "box", box)
        object.__setattr__(self, "is_top", bool(is_top))
        object.__setattr__(self, "_hash", hash(("BoxConst", box, is_top)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("BoxConst is immutable")

    def __eq__(self, other):
        return (
            isinstance(other, BoxConst)
            and other.is_top == self.is_top
            and other.box == self.box
        )

    def __hash__(self):
        return self._hash


#: ``⌈0⌉`` — the empty box.
BOT = BoxConst(EMPTY_BOX)
#: ``⌈1⌉`` — the universe box (resolved at evaluation time).
TOP = BoxConst(None, is_top=True)


class BoxMeet(BoxFunc):
    """n-ary ``⊓``.  Built by :func:`bmeet`."""

    __slots__ = ("args", "_hash")

    def __init__(self, args: Tuple[BoxFunc, ...]):
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(("BoxMeet", args)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("BoxMeet is immutable")

    def __eq__(self, other):
        return isinstance(other, BoxMeet) and other.args == self.args

    def __hash__(self):
        return self._hash


class BoxJoin(BoxFunc):
    """n-ary ``⊔``.  Built by :func:`bjoin`."""

    __slots__ = ("args", "_hash")

    def __init__(self, args: Tuple[BoxFunc, ...]):
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(("BoxJoin", args)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("BoxJoin is immutable")

    def __eq__(self, other):
        return isinstance(other, BoxJoin) and other.args == self.args

    def __hash__(self):
        return self._hash


def _key(f: BoxFunc) -> str:
    return render_boxfunc(f)


def bmeet(*items: BoxFunc) -> BoxFunc:
    """Smart ``⊓``: flattens, drops ``TOP``, collapses on ``BOT``."""
    flat = []
    for f in items:
        if isinstance(f, BoxMeet):
            flat.extend(f.args)
        else:
            flat.append(f)
    seen: Dict[BoxFunc, None] = {}
    for f in flat:
        if f == BOT or (isinstance(f, BoxConst) and not f.is_top and f.box is not None and f.box.is_empty()):
            return BOT
        if isinstance(f, BoxConst) and f.is_top:
            continue
        seen.setdefault(f, None)
    args = sorted(seen, key=_key)
    if not args:
        return TOP
    if len(args) == 1:
        return args[0]
    return BoxMeet(tuple(args))


def bjoin(*items: BoxFunc) -> BoxFunc:
    """Smart ``⊔``: flattens, drops ``BOT``, collapses on ``TOP``."""
    flat = []
    for f in items:
        if isinstance(f, BoxJoin):
            flat.extend(f.args)
        else:
            flat.append(f)
    seen: Dict[BoxFunc, None] = {}
    for f in flat:
        if isinstance(f, BoxConst) and f.is_top:
            return TOP
        if f == BOT or (isinstance(f, BoxConst) and f.box is not None and f.box.is_empty()):
            continue
        seen.setdefault(f, None)
    args = sorted(seen, key=_key)
    if not args:
        return BOT
    if len(args) == 1:
        return args[0]
    return BoxJoin(tuple(args))


def _collect(f: BoxFunc, out: set) -> None:
    if isinstance(f, BoxVar):
        out.add(f.name)
    elif isinstance(f, (BoxMeet, BoxJoin)):
        for a in f.args:
            _collect(a, out)


def evaluate_boxfunc(
    f: BoxFunc, env: Mapping[str, Box], universe: Optional[Box] = None
) -> Box:
    """Evaluate a bounding-box function.

    ``env`` maps variable names to boxes; ``universe`` resolves the
    symbolic ``TOP`` constant (when absent, ``TOP`` evaluates to the
    enclosing box of all env values — a safe, data-dependent stand-in).
    """
    if isinstance(f, BoxVar):
        return env[f.name]
    if isinstance(f, BoxConst):
        if f.is_top:
            if universe is not None:
                return universe
            out = EMPTY_BOX
            for b in env.values():
                out = out.enclose(b)
            return out
        return f.box if f.box is not None else EMPTY_BOX
    if isinstance(f, BoxMeet):
        parts = [evaluate_boxfunc(a, env, universe) for a in f.args]
        out = parts[0]
        for b in parts[1:]:
            out = out.meet(b)
        return out
    if isinstance(f, BoxJoin):
        out = EMPTY_BOX
        for a in f.args:
            out = out.enclose(evaluate_boxfunc(a, env, universe))
        return out
    raise TypeError(f"not a bounding-box function: {f!r}")


def render_boxfunc(f: BoxFunc) -> str:
    """ASCII rendering: ``[x]`` for ⌈x⌉, ``^`` for ⊓, ``v`` for ⊔."""
    if isinstance(f, BoxVar):
        return f"[{f.name}]"
    if isinstance(f, BoxConst):
        if f.is_top:
            return "TOP"
        if f.box is None or f.box.is_empty():
            return "EMPTY"
        return repr(f.box)
    if isinstance(f, BoxMeet):
        return "(" + " ^ ".join(render_boxfunc(a) for a in f.args) + ")"
    if isinstance(f, BoxJoin):
        return "(" + " v ".join(render_boxfunc(a) for a in f.args) + ")"
    raise TypeError(f"not a bounding-box function: {f!r}")


def is_monotone_instance(
    f: BoxFunc,
    env_small: Mapping[str, Box],
    env_big: Mapping[str, Box],
    universe: Optional[Box] = None,
) -> bool:
    """Spot-check monotonicity: pointwise ``⊑`` inputs give ``⊑`` outputs."""
    for name in f.variables():
        if not env_small[name].le(env_big[name]):
            raise ValueError("env_small must be pointwise below env_big")
    lo = evaluate_boxfunc(f, env_small, universe)
    hi = evaluate_boxfunc(f, env_big, universe)
    return lo.le(hi)


def naive_transform(formula) -> BoxFunc:
    """The strawman syntactic transform the paper warns about.

    Replaces ``∧ → ⊓``, ``∨ → ⊔``, maps variables to their boxes and
    **maps complemented subformulas to TOP** (their only safe upper
    bound).  The result is a correct upper approximation but generally
    worse than Algorithm 2's ``U_f`` — benchmark E10 quantifies the gap —
    and it is representation-dependent: equal formulas can give different
    box functions (the paper's ``(x∧y)∨(x∧z)`` vs ``x∧(y∨z)`` example).
    """
    from ..boolean.syntax import And, Const, Not, Or, Var

    def walk(g) -> BoxFunc:
        if isinstance(g, Const):
            return TOP if g.value else BOT
        if isinstance(g, Var):
            return BoxVar(g.name)
        if isinstance(g, Not):
            return TOP
        if isinstance(g, And):
            return bmeet(*[walk(a) for a in g.args])
        if isinstance(g, Or):
            return bjoin(*[walk(a) for a in g.args])
        raise TypeError(f"not a formula: {g!r}")

    return walk(formula)
