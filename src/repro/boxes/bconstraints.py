"""Bounding-box constraint forms and the solved-form conversion (§4).

A spatial database answers, with ONE range query, any conjunction of the
three constraint forms over an unknown object's box ``⌈x⌉`` (paper §4,
citing [12]):

* ``⌈x⌉ ⊑ a``        — containment in a given box,
* ``b ⊑ ⌈x⌉``        — containment of a given box,
* ``⌈x⌉ ⊓ c ≠ ∅``    — overlap with a given box.

:class:`BoxQuery` is that conjunction with concrete boxes (what the index
layer executes); :class:`StepTemplate` is its compile-time form, with
bounding-box *functions* in place of the boxes.

Conversion of a solved constraint ``C_i`` (paper §4):

* range ``s ⊆ x ⊆ t``:  the best bounding-box necessary condition is
  ``⌈s⌉ ⊑ ⌈x⌉ ∧ ⌈x⌉ ⊑ ⌈t⌉``; at compile time ``⌈s⌉`` is approximated
  *from below* by ``L_s`` and ``⌈t⌉`` *from above* by ``U_t`` (weakening
  both keeps the condition necessary).
* disequation ``x∧p ≠ 0 ∨ ¬x∧q ≠ 0``: when ``q = 0`` the second disjunct
  is impossible and ``⌈x⌉ ⊓ ⌈p⌉ ≠ ∅`` is necessary; otherwise no
  bounding-box constraint is sound ("the trivial constraint true
  otherwise").  Both ``p`` and ``q`` are approximated from above
  (``U_q = ∅`` certifies ``q = 0``; ``U_p ⊒ ⌈p⌉`` keeps overlap
  necessary).  The ``q``-test happens at *evaluation* time, since ``U_q``
  depends on the already-retrieved objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from .approximation import lower_approximation, upper_approximation
from .box import Box
from .functions import TOP, BoxFunc, evaluate_boxfunc, render_boxfunc


@dataclass(frozen=True)
class BoxQuery:
    """A single range query over an unknown box (concrete form).

    ``inside`` — require ``⌈x⌉ ⊑ inside`` (None = unconstrained);
    ``covers`` — require ``covers ⊑ ⌈x⌉`` (None or empty = vacuous);
    ``overlap`` — require ``⌈x⌉ ⊓ c ≠ ∅`` for every listed ``c``.

    An unsatisfiable query (e.g. required overlap with an empty box) is
    represented normally; :meth:`is_unsatisfiable` reports it so
    executors can skip the index probe entirely.
    """

    inside: Optional[Box] = None
    covers: Optional[Box] = None
    overlap: Tuple[Box, ...] = ()

    def matches(self, box: Box) -> bool:
        """Does a concrete object box satisfy the query?"""
        if self.inside is not None and not box.le(self.inside):
            return False
        if self.covers is not None and not self.covers.le(box):
            return False
        return all(box.overlaps(c) for c in self.overlap)

    def is_unsatisfiable(self) -> bool:
        """Statically unsatisfiable (no box can match)."""
        if any(c.is_empty() for c in self.overlap):
            return True
        if (
            self.inside is not None
            and self.covers is not None
            and not self.covers.le(self.inside)
        ):
            return True
        if self.inside is not None and self.inside.is_empty():
            # Only the empty box fits inside an empty box, and an empty
            # object box cannot cover or overlap anything.
            return bool(self.overlap) or (
                self.covers is not None and not self.covers.is_empty()
            )
        return False

    def render(self) -> str:
        """Human-readable rendering."""
        parts = []
        if self.inside is not None:
            parts.append(f"[x] <= {self.inside!r}")
        if self.covers is not None and not self.covers.is_empty():
            parts.append(f"{self.covers!r} <= [x]")
        for c in self.overlap:
            parts.append(f"[x] ^ {c!r} != empty")
        return " and ".join(parts) if parts else "true"


@dataclass(frozen=True)
class OverlapTemplate:
    """Compile-time form of one disequation's potential overlap constraint.

    ``p_upper``/``q_upper`` are ``U_p``/``U_q``.  At evaluation time the
    constraint ``⌈x⌉ ⊓ p_upper(env) ≠ ∅`` is emitted iff ``q_upper(env)``
    is the empty box.
    """

    p_upper: BoxFunc
    q_upper: BoxFunc

    def instantiate(
        self, env: Mapping[str, Box], universe: Optional[Box] = None
    ) -> Optional[Box]:
        """The overlap box to require, or ``None`` when trivial."""
        q_box = evaluate_boxfunc(self.q_upper, env, universe)
        if not q_box.is_empty():
            return None
        return evaluate_boxfunc(self.p_upper, env, universe)


@dataclass(frozen=True)
class StepTemplate:
    """The compiled bounding-box constraint template for one variable.

    Evaluating the template on the boxes of the already-retrieved prefix
    yields the single :class:`BoxQuery` for this retrieval step — the
    paper's headline: *one range query per variable*.
    """

    variable: str
    lower: BoxFunc  # L_s — approximates the range's lower bound from below
    upper: BoxFunc  # U_t — approximates the range's upper bound from above
    overlaps: Tuple[OverlapTemplate, ...] = ()

    def instantiate(
        self, env: Mapping[str, Box], universe: Optional[Box] = None
    ) -> BoxQuery:
        """Evaluate into a concrete :class:`BoxQuery` for this step."""
        covers = evaluate_boxfunc(self.lower, env, universe)
        upper_box = evaluate_boxfunc(self.upper, env, universe)
        inside: Optional[Box] = upper_box
        if self.upper == TOP and universe is None:
            inside = None
        overlap: List[Box] = []
        for t in self.overlaps:
            c = t.instantiate(env, universe)
            if c is not None:
                overlap.append(c)
        return BoxQuery(
            inside=inside,
            covers=None if covers.is_empty() else covers,
            overlap=tuple(overlap),
        )

    def render(self) -> str:
        """Paper-style rendering of the template."""
        x = self.variable
        lines = [
            f"{render_boxfunc(self.lower)} <= [{x}] <= "
            f"{render_boxfunc(self.upper)}"
        ]
        for t in self.overlaps:
            lines.append(
                f"[{x}] ^ {render_boxfunc(t.p_upper)} != empty"
                f"   (when {render_boxfunc(t.q_upper)} = empty)"
            )
        return "\n".join(lines)


def compile_solved_constraint(solved) -> StepTemplate:
    """Convert a solved constraint ``C_i`` into its bounding-box template.

    This is the second half of the paper's compilation pipeline
    (Section 2's step from the triangular system to the ``⌈·⌉`` system):
    lower bounds via ``L``, upper bounds and disequation coefficients via
    ``U``.
    """
    from ..constraints.solved import SolvedConstraint

    if not isinstance(solved, SolvedConstraint):
        raise TypeError(f"expected SolvedConstraint, got {solved!r}")
    lower = lower_approximation(solved.lower)
    upper = upper_approximation(solved.upper)
    overlaps = tuple(
        OverlapTemplate(
            p_upper=upper_approximation(r.p),
            q_upper=upper_approximation(r.q),
        )
        for r in solved.disequations
    )
    return StepTemplate(
        variable=solved.variable, lower=lower, upper=upper, overlaps=overlaps
    )
