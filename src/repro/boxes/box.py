"""Axis-parallel bounding boxes (Section 4 of the paper).

A *bounding box* is "a rectangular region with sides parallel to the
axes"; for a set ``r``, ``⌈r⌉`` denotes the minimal surrounding bounding
box.  Boxes form a lattice under

* ``⊓`` (:meth:`Box.meet`) — ordinary intersection, and
* ``⊔`` (:meth:`Box.enclose`) — the minimal enclosing box of the union
  (the paper stresses that ``⊔`` is *not* set union),

ordered by containment ``⊑`` (:meth:`Box.contains`/`le`).  The lattice is
complete once the empty box is adjoined as bottom; the top is unbounded
(or the universe box of the data set).

Boxes here are **half-open**: ``[lo_d, hi_d)`` per dimension, matching the
region algebra so that ``⌈·⌉`` is exact.  The empty box is a distinguished
singleton :data:`EMPTY_BOX` (dimension-polymorphic).

The box↔point mapping used by Figure 3 — representing rectangles of X^k
as points of X^2k so that combined containment/overlap constraints become
a single orthogonal range query — is :meth:`Box.to_point` /
:meth:`Box.from_point`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import DimensionMismatchError


class Box:
    """A k-dimensional half-open axis-parallel box, possibly empty.

    ``Box(lo, hi)`` with ``lo``/``hi`` coordinate sequences; a box with
    ``lo_d >= hi_d`` in any dimension normalises to the empty box.  Boxes
    are immutable and hashable.
    """

    __slots__ = ("lo", "hi", "_empty")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo_t = tuple(float(v) for v in lo)
        hi_t = tuple(float(v) for v in hi)
        if len(lo_t) != len(hi_t):
            raise DimensionMismatchError(
                f"lo has {len(lo_t)} dims but hi has {len(hi_t)}"
            )
        # A zero-dimensional box is treated as empty for uniformity.
        empty = not lo_t or any(a >= b for a, b in zip(lo_t, hi_t))
        object.__setattr__(self, "lo", lo_t)
        object.__setattr__(self, "hi", hi_t)
        object.__setattr__(self, "_empty", empty)

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Box is immutable")

    @classmethod
    def _trusted(
        cls,
        lo: Tuple[float, ...],
        hi: Tuple[float, ...],
        empty: Optional[bool] = None,
    ) -> "Box":
        """Construct from known-good equal-length float tuples.

        The snapshot load path materializes tens of thousands of boxes
        whose coordinates were dumped from live ``Box`` objects;
        skipping the per-coordinate conversion and the dimension check
        there is a measurable share of ``Database.open``.  Pass
        ``empty=False`` when the caller also knows the box is nonempty
        (e.g. it came out of a :class:`Region`, whose boxes always are).
        """
        box = cls.__new__(cls)
        object.__setattr__(box, "lo", lo)
        object.__setattr__(box, "hi", hi)
        if empty is None:
            empty = not lo or any(a >= b for a, b in zip(lo, hi))
        object.__setattr__(box, "_empty", empty)
        return box

    def __reduce__(self):
        # Explicit pickle support: the default slots protocol would call
        # the blocked __setattr__.  Needed to ship boxes to process-pool
        # workers (the Exchange driver's "process" kind).
        return (Box, (self.lo, self.hi))

    # -- identity ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        if self.is_empty() and other.is_empty():
            return True
        return (
            not self.is_empty()
            and not other.is_empty()
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        if self.is_empty():
            return hash("Box.empty")
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        if self.is_empty():
            return "Box.empty"
        dims = ", ".join(f"[{a},{b})" for a, b in zip(self.lo, self.hi))
        return f"Box({dims})"

    # -- basic queries ----------------------------------------------------------------
    def is_empty(self) -> bool:
        """``True`` for the empty box."""
        return self._empty

    @property
    def dim(self) -> int:
        """Number of dimensions (0 for the polymorphic empty box)."""
        return len(self.lo)

    def volume(self) -> float:
        """Product of side lengths (0.0 when empty)."""
        if self.is_empty():
            return 0.0
        v = 1.0
        for a, b in zip(self.lo, self.hi):
            v *= b - a
        return v

    def sides(self) -> Tuple[float, ...]:
        """Side lengths per dimension."""
        if self.is_empty():
            return ()
        return tuple(b - a for a, b in zip(self.lo, self.hi))

    def center(self) -> Tuple[float, ...]:
        """Center point (undefined — raises — for the empty box)."""
        if self.is_empty():
            raise ValueError("the empty box has no center")
        return tuple((a + b) / 2 for a, b in zip(self.lo, self.hi))

    def contains_point(self, point: Sequence[float]) -> bool:
        """Half-open membership test for a point."""
        if self.is_empty():
            return False
        if len(point) != self.dim:
            raise DimensionMismatchError("point/box dimension mismatch")
        return all(a <= p < b for p, a, b in zip(point, self.lo, self.hi))

    def _require_compatible(self, other: "Box") -> None:
        if (
            not self.is_empty()
            and not other.is_empty()
            and self.dim != other.dim
        ):
            raise DimensionMismatchError(
                f"{self.dim}-dim box combined with {other.dim}-dim box"
            )

    # -- the lattice (Section 4) ---------------------------------------------------------
    def meet(self, other: "Box") -> "Box":
        """``⊓`` — box intersection (equal to set intersection)."""
        self._require_compatible(other)
        if self.is_empty() or other.is_empty():
            return EMPTY_BOX
        lo = tuple(max(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(min(b, d) for b, d in zip(self.hi, other.hi))
        return Box(lo, hi)

    def enclose(self, other: "Box") -> "Box":
        """``⊔`` — minimal enclosing box of the union (not set union)."""
        self._require_compatible(other)
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        lo = tuple(min(a, c) for a, c in zip(self.lo, other.lo))
        hi = tuple(max(b, d) for b, d in zip(self.hi, other.hi))
        return Box(lo, hi)

    def le(self, other: "Box") -> bool:
        """``⊑`` — containment order of the bounding-box lattice."""
        self._require_compatible(other)
        if self.is_empty():
            return True
        if other.is_empty():
            return False
        return all(c <= a for a, c in zip(self.lo, other.lo)) and all(
            b <= d for b, d in zip(self.hi, other.hi)
        )

    def contains(self, other: "Box") -> bool:
        """``other ⊑ self``."""
        return other.le(self)

    def overlaps(self, other: "Box") -> bool:
        """``self ⊓ other != empty`` — the overlay predicate."""
        return not self.meet(other).is_empty()

    # -- distance metrics (nearest-neighbor search) -----------------------------------------
    def mindist_point(self, point: Sequence[float]) -> float:
        """MINDIST: Euclidean distance from a point to the box.

        0.0 when the point lies inside (or on the boundary of) the box;
        ``inf`` for the empty box, which is at no finite distance from
        anything.  This is the classic optimistic bound of R-tree
        nearest-neighbor search (Roussopoulos et al.): no object inside
        the box can be closer than ``mindist``.
        """
        if self.is_empty():
            return float("inf")
        if len(point) != self.dim:
            raise DimensionMismatchError("point/box dimension mismatch")
        # d * d and math.sqrt, not ** — libm pow is off by one ulp from
        # the correctly-rounded multiply/sqrt the array kernels use, and
        # the backends must produce identical doubles (ties included).
        acc = 0.0
        for p, a, b in zip(point, self.lo, self.hi):
            if p < a:
                d = a - p
                acc += d * d
            elif p > b:
                d = p - b
                acc += d * d
        return math.sqrt(acc)

    def maxdist_point(self, point: Sequence[float]) -> float:
        """Distance from a point to the farthest corner of the box
        (``inf`` for the empty box)."""
        if self.is_empty():
            return float("inf")
        if len(point) != self.dim:
            raise DimensionMismatchError("point/box dimension mismatch")
        acc = 0.0
        for p, a, b in zip(point, self.lo, self.hi):
            d = max(abs(p - a), abs(p - b))
            acc += d * d
        return math.sqrt(acc)

    def minmaxdist_point(self, point: Sequence[float]) -> float:
        """MINMAXDIST (Roussopoulos et al.): a pessimistic bound for NN
        search over a *minimal* bounding box.

        Every face of an R-tree MBR touches at least one stored object,
        so some object lies within ``minmaxdist`` of the point: along
        one dimension go to the nearer face, along all others to the
        farther one, and take the best choice of dimension.  Subtrees
        whose ``mindist`` exceeds another subtree's ``minmaxdist``
        cannot hold the nearest object.  ``inf`` for the empty box.
        """
        if self.is_empty():
            return float("inf")
        if len(point) != self.dim:
            raise DimensionMismatchError("point/box dimension mismatch")
        near_sq = []
        far_sq = []
        for p, a, b in zip(point, self.lo, self.hi):
            mid = (a + b) / 2
            near = a if p <= mid else b
            far = a if p >= mid else b
            near_sq.append((p - near) * (p - near))
            far_sq.append((p - far) * (p - far))
        total_far = sum(far_sq)
        best = min(
            total_far - f + n for n, f in zip(near_sq, far_sq)
        )
        return math.sqrt(best)

    def mindist(self, other: "Box") -> float:
        """MINDIST between two boxes: the smallest distance between any
        pair of their points (0.0 when they overlap or touch; ``inf``
        when either is empty).

        As ``other`` shrinks to a point (``Box.point_box(p, eps)`` for
        small ``eps``) this converges to :meth:`mindist_point` — the
        metric the distance join and the box-anchored kNN probes share.
        (A zero-``eps`` point box is *empty* under half-open semantics,
        hence infinitely far like any empty box.)
        """
        self._require_compatible(other)
        if self.is_empty() or other.is_empty():
            return float("inf")
        acc = 0.0
        for a, b, c, d in zip(self.lo, self.hi, other.lo, other.hi):
            if c > b:
                gap = c - b
                acc += gap * gap
            elif a > d:
                gap = a - d
                acc += gap * gap
        return math.sqrt(acc)

    # -- operators -------------------------------------------------------------------------
    def __and__(self, other: "Box") -> "Box":
        return self.meet(other)

    def __or__(self, other: "Box") -> "Box":
        return self.enclose(other)

    def __le__(self, other: "Box") -> bool:
        return self.le(other)

    # -- the Figure 3 mapping -----------------------------------------------------------------
    def to_point(self) -> Tuple[float, ...]:
        """The 2k-dim point ``(lo_1..lo_k, hi_1..hi_k)`` representing the box.

        The paper (after [12]): "This is done by representing rectangles
        in a X^k as points in space X^2k and performing a range query on
        X^2k."  Only defined for non-empty boxes.
        """
        if self.is_empty():
            raise ValueError("the empty box has no point representation")
        return self.lo + self.hi

    @staticmethod
    def from_point(point: Sequence[float]) -> "Box":
        """Inverse of :meth:`to_point`."""
        if len(point) % 2:
            raise DimensionMismatchError("point must have even length")
        k = len(point) // 2
        return Box(tuple(point[:k]), tuple(point[k:]))

    # -- construction helpers ---------------------------------------------------------------
    @staticmethod
    def from_intervals(*intervals: Tuple[float, float]) -> "Box":
        """``Box.from_intervals((0, 2), (1, 3))`` — one pair per dimension."""
        if not intervals:
            return EMPTY_BOX
        lo, hi = zip(*intervals)
        return Box(lo, hi)

    @staticmethod
    def point_box(point: Sequence[float], eps: float = 0.0) -> "Box":
        """A degenerate (or ``eps``-inflated) box around a point."""
        return Box(
            tuple(p - eps for p in point), tuple(p + eps for p in point)
        )

    def inflate(self, amount: float) -> "Box":
        """Grow (or shrink, for negative ``amount``) every side."""
        if self.is_empty():
            return EMPTY_BOX
        return Box(
            tuple(a - amount for a in self.lo),
            tuple(b + amount for b in self.hi),
        )

    def translate(self, offset: Sequence[float]) -> "Box":
        """Shift by an offset vector."""
        if self.is_empty():
            return EMPTY_BOX
        if len(offset) != self.dim:
            raise DimensionMismatchError("offset/box dimension mismatch")
        return Box(
            tuple(a + o for a, o in zip(self.lo, offset)),
            tuple(b + o for b, o in zip(self.hi, offset)),
        )


#: The polymorphic empty box (bottom of the lattice in every dimension).
EMPTY_BOX = Box((), ())


def enclose_all(boxes: Iterable[Box]) -> Box:
    """``⊔`` over an iterable (empty box for an empty iterable)."""
    out = EMPTY_BOX
    for b in boxes:
        out = out.enclose(b)
    return out


def box_to_jsonable(box: Box) -> List[List[float]]:
    """``[lo, hi]`` coordinate lists for JSON serialization.

    Coordinates are dumped verbatim (an empty box keeps whatever lo/hi
    it was built with), so a dump → load → dump cycle is stable.
    """
    return [list(box.lo), list(box.hi)]


def box_from_jsonable(data: Sequence[Sequence[float]]) -> Box:
    """Inverse of :func:`box_to_jsonable`."""
    return Box(tuple(data[0]), tuple(data[1]))


def meet_all(boxes: Iterable[Box], universe: Optional[Box] = None) -> Box:
    """``⊓`` over an iterable; ``universe`` seeds the fold (else the first
    element does).  Raises on an empty iterable with no universe."""
    items: List[Box] = list(boxes)
    if universe is not None:
        out = universe
    elif items:
        out = items.pop(0)
    else:
        raise ValueError("meet of nothing requires a universe box")
    for b in items:
        out = out.meet(b)
    return out
