"""Bounding boxes and bounding-box approximation (paper Section 4).

* :mod:`repro.boxes.box` — the box lattice (⊓, ⊔, ⊑) and the box↔point
  mapping of Figure 3;
* :mod:`repro.boxes.functions` — bounding-box function ASTs;
* :mod:`repro.boxes.approximation` — Algorithm 2 (best L/U via BCF);
* :mod:`repro.boxes.bconstraints` — the three range-query constraint
  forms and the solved-form conversion.
"""

from .approximation import (
    Approximation,
    approximate,
    lower_approximation,
    term_upper,
    upper_approximation,
    upper_approximation_sop,
)
from .bconstraints import (
    BoxQuery,
    OverlapTemplate,
    StepTemplate,
    compile_solved_constraint,
)
from .box import Box, EMPTY_BOX, enclose_all, meet_all
from .functions import (
    BOT,
    TOP,
    BoxConst,
    BoxFunc,
    BoxJoin,
    BoxMeet,
    BoxVar,
    bjoin,
    bmeet,
    evaluate_boxfunc,
    is_monotone_instance,
    naive_transform,
    render_boxfunc,
)

__all__ = [
    "Approximation",
    "BOT",
    "Box",
    "BoxConst",
    "BoxFunc",
    "BoxJoin",
    "BoxMeet",
    "BoxQuery",
    "BoxVar",
    "EMPTY_BOX",
    "OverlapTemplate",
    "StepTemplate",
    "TOP",
    "approximate",
    "bjoin",
    "bmeet",
    "compile_solved_constraint",
    "enclose_all",
    "evaluate_boxfunc",
    "is_monotone_instance",
    "lower_approximation",
    "meet_all",
    "naive_transform",
    "render_boxfunc",
    "term_upper",
    "upper_approximation",
    "upper_approximation_sop",
]
