"""Best bounding-box approximations of Boolean functions (Algorithm 2).

For a Boolean function ``f`` over region variables, the compiler needs
bounding-box functions bracketing ``⌈f(r_1..r_n)⌉`` in terms of the
argument boxes ``⌈r_1⌉..⌈r_n⌉``:

* ``L_f ≤ f``  (lower):  ``L_f(⌈r⃗⌉) ⊑ ⌈f(r⃗)⌉``  for all regions;
* ``U_f ≥ f``  (upper):  ``⌈f(r⃗)⌉ ⊑ U_f(⌈r⃗⌉)``  for all regions.

The paper's results, all implemented here:

* **Theorem 15**: the best lower approximation is
  ``L_f = ⊔ { ⌈x⌉ : atom x with x ≤ f }`` — and by Blake's Theorem 18 the
  qualifying atoms are exactly the single-positive-literal terms of
  ``BCF(f)``.  (If ``BCF(f)`` contains the empty term, ``f = 1`` and
  ``L_f = TOP``.)
* **Theorem 17**: the best upper approximation is
  ``U_f = ⊔_{t ∈ BCF(f)} ⊓_{positive atom x ∈ t} ⌈x⌉``.
* **Algorithm 2**: compute ``BCF(f)``; read ``L_f`` off the single-atom
  terms; obtain ``U_f`` by dropping every negative literal, replacing
  ``∧,∨`` by ``⊓,⊔`` and simplifying (a term with no positive literal
  left contributes ``TOP``).

Worked example (paper Examples 2/3): ``f = x∧y ∨ ¬x∧(y ∨ z∧w)`` has
``BCF(f) = y ∨ ¬x∧z∧w``, so ``L_f = ⌈y⌉`` and
``U_f = ⌈y⌉ ⊔ (⌈z⌉ ⊓ ⌈w⌉)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..boolean.blake import blake_canonical_form
from ..boolean.syntax import Formula
from ..boolean.terms import Term
from .functions import BOT, TOP, BoxFunc, BoxVar, bjoin, bmeet


def lower_approximation(f: Formula) -> BoxFunc:
    """``L_f`` — the best lower bounding-box approximation (Theorem 15).

    The join of ``⌈x⌉`` over the atoms ``x ≤ f``; by Theorem 18 these are
    the single-literal positive terms of ``BCF(f)``.  Negative
    single-literal terms (``¬x ≤ f``) contribute nothing: no bounding-box
    function of ``⌈x⌉`` can bound ``⌈¬x⌉`` from below.
    """
    bcf = blake_canonical_form(f)
    parts: List[BoxFunc] = []
    for t in bcf:
        if t.is_true():
            return TOP  # f == 1
        if len(t) == 1:
            ((name, positive),) = list(t)
            if positive:
                parts.append(BoxVar(name))
    return bjoin(*parts) if parts else BOT


def term_upper(t: Term) -> BoxFunc:
    """Upper approximation of one term: ``⊓`` of its positive atoms.

    Lemma 14: the best upper bounding-box approximation to a conjunction
    of (positive) variables is the ``⊓`` of their boxes; negative
    literals are dropped (their only upper bound is TOP, the unit of ⊓).
    An all-negative term therefore maps to TOP.
    """
    positives = [BoxVar(v) for v, s in t if s]
    if not positives:
        return TOP
    return bmeet(*positives)


def upper_approximation(f: Formula) -> BoxFunc:
    """``U_f`` — the best upper bounding-box approximation (Theorem 17).

    ``⊔`` over the BCF terms of the ``⊓`` of each term's positive atoms,
    then lattice-level simplification (absorption happens inside
    :func:`bjoin`/:func:`bmeet`).  Using the *Blake* canonical form makes
    the result representation-independent; Lemma 13 (``U_{f∨g} = U_f ⊔
    U_g``) justifies the term-by-term treatment.
    """
    bcf = blake_canonical_form(f)
    if not bcf:
        return BOT  # f == 0
    parts = [term_upper(t) for t in bcf]
    return _absorb_join(parts)


def upper_approximation_sop(terms: Sequence[Term]) -> BoxFunc:
    """``U`` computed from an arbitrary SOP cover (Theorem 17's "any
    sum-of-products representation"); exposed so the tests can compare
    covers against the BCF route."""
    if not terms:
        return BOT
    return _absorb_join([term_upper(t) for t in terms])


def _absorb_join(parts: List[BoxFunc]) -> BoxFunc:
    """``⊔`` of meets with meet-absorption.

    ``(a ⊓ b) ⊔ a == a`` pointwise for boxes, so a meet whose atom set is
    a superset of another's is redundant.  This is the "simplify" step of
    Algorithm 2 and keeps ``U_f`` small and canonical.
    """
    def atom_set(f: BoxFunc):
        if isinstance(f, BoxVar):
            return frozenset([f.name])
        if f == TOP:
            return frozenset()
        from .functions import BoxMeet

        if isinstance(f, BoxMeet):
            out = set()
            for a in f.args:
                if isinstance(a, BoxVar):
                    out.add(a.name)
                else:  # constants inside meets: treat conservatively
                    return None
            return frozenset(out)
        return None

    sets = [atom_set(p) for p in parts]
    kept: List[BoxFunc] = []
    for i, (p, s) in enumerate(zip(parts, sets)):
        if s is None:
            kept.append(p)
            continue
        redundant = False
        for j, s2 in enumerate(sets):
            if i == j or s2 is None:
                continue
            if s2 < s or (s2 == s and j < i):
                redundant = True
                break
        if not redundant:
            kept.append(p)
    return bjoin(*kept)


@dataclass(frozen=True)
class Approximation:
    """The ``(L_f, U_f)`` pair for one Boolean function."""

    formula: Formula
    lower: BoxFunc
    upper: BoxFunc


def approximate(f: Formula) -> Approximation:
    """Algorithm 2: both best approximations from one BCF computation."""
    return Approximation(
        formula=f,
        lower=lower_approximation(f),
        upper=upper_approximation(f),
    )
