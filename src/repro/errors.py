"""Exception hierarchy for the ``repro`` library.

All errors raised by the library derive from :class:`ReproError`, so a
caller can catch every library-specific failure with one ``except`` clause
while still letting programming errors (``TypeError`` and friends)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class ParseError(ReproError):
    """Raised when a Boolean formula or constraint text cannot be parsed.

    Attributes
    ----------
    text:
        The full input text.
    position:
        Zero-based character offset at which parsing failed.
    """

    def __init__(self, message: str, text: str = "", position: int = 0):
        super().__init__(message)
        self.text = text
        self.position = position


class DimensionMismatchError(ReproError):
    """Raised when boxes or regions of different dimensions are combined."""


class UniverseMismatchError(ReproError):
    """Raised when algebra elements from different universes are combined."""


class UnsatisfiableError(ReproError):
    """Raised when a query's ground (constant-only) residue is violated.

    Algorithm 1 leaves constraints that mention only bound constants in the
    residual system ``S_0``; the compiler checks them once against the bound
    regions and raises this error when the query can have no answers.
    """


class CompilationError(ReproError):
    """Raised when a constraint system cannot be compiled into a plan."""


class UnknownModeError(ReproError, ValueError):
    """Raised when an executor is asked for an execution mode it does not
    know.

    Carries the requested mode and the tuple of valid modes; the message
    names every valid mode so the caller can correct the call site.
    """

    def __init__(self, mode: object, valid: tuple):
        super().__init__(
            f"unknown execution mode {mode!r}; expected one of "
            + ", ".join(repr(m) for m in valid)
        )
        self.mode = mode
        self.valid = tuple(valid)


class UnboundVariableError(CompilationError):
    """Raised when a query references a variable with no table or binding."""


class SnapshotError(ReproError):
    """Raised when a database snapshot cannot be read or written.

    Covers missing files, malformed JSON, and format-version mismatches;
    the message names the offending path and what was expected.
    """


class ServiceError(ReproError):
    """Raised by the query service for malformed or unserviceable requests.

    Carries an HTTP-ish ``status`` so the server maps it onto a response
    code; clients raise it when the server reports an error payload.
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status
