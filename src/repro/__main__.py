"""Command-line interface: compile and inspect constraint systems.

Usage::

    python -m repro compile  [--order T,R,B] [--constants C,A]  [FILE]
    python -m repro check    [FILE]            # satisfiable (atomless)?
    python -m repro minimize [FILE]            # drop entailed constraints
    python -m repro bcf      'x & y | ~x & z'  # Blake canonical form + L/U
    python -m repro bench    [--workload smugglers] [--size 12] [--json]
                             [--no-pack] [--split rstar]
                             [--order-strategy histogram]
                             [--stream] [--limit K] [--probe-cache N]
                             [--partitions N] [--parallel W] [--join auto]
                             [--shards S] [--spill N] [--parallel-kind thread]
                             [--knn K] [--agg count,min:T] [--agg-box]
                             [--mutate N] [--delta-threshold N]
    python -m repro explain  [--workload ...] [--mode boxplan] [--analyze]
                             [--partitions N] [--parallel W] [--join pbsm]
                             [--shards S] [--spill N]
                             [--knn K] [--agg count] [--group-by B]
    python -m repro run      [--workload ...] [--stream] [--limit K]
                             [--partitions N] [--parallel W]
                             [--shards S] [--spill N]
                             [--knn K [--knn-ref T]] [--agg count]
    python -m repro save     OUT [--workload ...] [--partitions N]
    python -m repro load     SNAPSHOT [--json]
    python -m repro serve    [SNAPSHOT] [--workload ...] [--host H]
                             [--port P] [--cache N]

``FILE`` contains one constraint per line in the Figure-1 syntax
(``A <= C``, ``R & A != 0``, ``T !<= C``, comments with ``#``); ``-``
or omitted reads stdin.

``bench`` builds a synthetic workload, plans it with the chosen
strategy, executes it and prints the machine-independent counters
(partial tuples, region ops, index node reads).  R-tree tables are
STR-packed by default — ``--no-pack`` gives the insertion-built
baseline the benchmarks compare against.  ``--stream`` executes through
the streaming iterator and reports time-to-first-answer alongside the
total.

``--partitions N`` enables spatial partitioning (STR partitions /
PBSM tiles), ``--parallel W`` fans PBSM tile tasks over a W-worker
pool (answers are identical to serial execution), and ``--join``
forces a per-step join algorithm — by default the cost-based planner
picks one per step whenever partitioning or parallelism is enabled.
``--shards S`` switches to sharded scale-out execution: each table is
STR-split into S shards (own R-tree each) and joined through the MBR
semi-join coordinator, ``--parallel-kind process`` runs shard sweeps on
a process pool with shared-memory shard columns, and ``--spill N``
bounds the join's resident probe memory by spilling buckets to disk
tiles.  Answers are bit-identical to serial execution throughout.

``explain`` prints the physical operator tree for the chosen mode with
catalog cost estimates; ``--analyze`` also executes the plan and
annotates each operator with actual rows/probes/node reads.

``run`` executes a workload and prints the answers themselves (oid
tuples), streaming them as found with ``--stream``; ``--limit K`` stops
after the first ``K`` answers without exhausting the search space.

``--knn K`` restricts a variable (``--knn-var``, default the first of
the retrieval order) to its table's K nearest rows — anchored on a
point (``--knn-point``, default the universe center) or on another
variable's box (``--knn-ref``, a per-tuple distance join).  ``--agg``
replaces the answer stream with aggregate rows (``count``, ``min:VAR``,
``max:VAR`` over box volume, grouped by ``--group-by``); ``--agg-box``
asks for the box-level COUNT, pushed down to the R-tree's subtree
entry counts.

``save`` snapshots a built workload database (tables, packed R-trees,
statistics, partitioning) to one JSON file; ``load`` prints a saved
snapshot's summary; ``serve`` starts the resident query service on a
snapshot (or on a freshly built workload when no snapshot is given) —
see :mod:`repro.service`.
"""

from __future__ import annotations

import argparse
import json
import sys

from .boolean import blake_canonical_form, parse
from .boxes import compile_solved_constraint, lower_approximation, render_boxfunc, upper_approximation
from .constraints import (
    parse_system,
    satisfiable_atomless,
    triangular_form,
)
from .constraints.minimize import minimize_system


def _read_system(path: str | None):
    if path in (None, "-"):
        text = sys.stdin.read()
    else:
        with open(path) as handle:
            text = handle.read()
    return parse_system(text)


def cmd_compile(args) -> int:
    system = _read_system(args.file)
    constants = set(
        args.constants.split(",") if args.constants else []
    )
    if args.order:
        order = args.order.split(",")
    else:
        order = sorted(system.variables() - constants)
    tri = triangular_form(system, order)
    print("# retrieval order:", ", ".join(order))
    print(tri.render())
    print("# bounding-box plan")
    for c in tri.constraints:
        template = compile_solved_constraint(c)
        print(f"-- step {c.variable} --")
        print(template.render())
    return 0


def cmd_check(args) -> int:
    system = _read_system(args.file)
    ok = satisfiable_atomless(system)
    print("satisfiable" if ok else "unsatisfiable")
    return 0 if ok else 1


def cmd_minimize(args) -> int:
    system = _read_system(args.file)
    core, removed = minimize_system(system)
    print("# irredundant core")
    print(core)
    if removed:
        print("# removed (entailed by the rest)")
        for c in removed:
            print(f"#   {c}")
    return 0


def cmd_bcf(args) -> int:
    f = parse(args.formula)
    bcf = blake_canonical_form(f)
    print("BCF:", " | ".join(t.to_str() for t in bcf) or "0")
    print("L:", render_boxfunc(lower_approximation(f)))
    print("U:", render_boxfunc(upper_approximation(f)))
    return 0


WORKLOADS = ("smugglers", "chain", "overlay", "sandwich")


def _build_workload(args):
    from .datagen import (
        containment_chain_query,
        overlay_query,
        sandwich_query,
        smugglers_query,
    )

    size = args.size
    if args.workload == "smugglers":
        query, _map = smugglers_query(
            seed=args.seed,
            index=args.index,
            n_towns=size,
            n_roads=size,
            states_grid=(3, 3),
            split_method=args.split,
            # Only the r-tree backend has a bulk-loading path; grid/scan
            # tables must get the insertion default (pack=None), since an
            # explicit pack=True now raises for them.
            pack=(not args.no_pack) if args.index == "rtree" else None,
        )
        return query
    if args.workload == "chain":
        return containment_chain_query(
            n_per_table=size, depth=3, seed=args.seed, index=args.index
        )
    if args.workload == "overlay":
        return overlay_query(
            n_left=size, n_right=size, seed=args.seed, index=args.index
        )
    return sandwich_query(n_items=size, seed=args.seed, index=args.index)


def _knn_step(args, query, order):
    """The logical kNN restriction the ``--knn`` flags describe."""
    if not getattr(args, "knn", 0):
        return None
    from .engine import KNNStep

    if args.knn_var:
        variable = args.knn_var
    else:
        # Default to the first retrieval variable that is not the kNN
        # anchor itself (a step cannot anchor on its own variable).
        candidates = [v for v in order if v != args.knn_ref]
        variable = candidates[0] if candidates else order[0]
    if args.knn_ref:
        return KNNStep(variable=variable, k=args.knn, ref=args.knn_ref)
    if args.knn_point:
        point = tuple(float(c) for c in args.knn_point.split(","))
    else:
        point = query.algebra().universe_box.center()
    return KNNStep(variable=variable, k=args.knn, point=point)


def _aggregate_spec(args):
    """The :class:`AggregateSpec` the ``--agg`` flags describe."""
    if not getattr(args, "agg", None):
        return None
    from .engine import AggregateSpec

    aggregates = []
    for part in args.agg.split(","):
        op, _, target = part.strip().partition(":")
        aggregates.append((op, target or None))
    group_by = tuple(
        v for v in (args.group_by or "").split(",") if v
    )
    return AggregateSpec(
        aggregates=tuple(aggregates),
        group_by=group_by,
        exact=not args.agg_box,
    )


def _plan_workload(args):
    """Build the workload, pick an order, and compile — shared by the
    ``bench``/``explain``/``run`` subcommands.  Returns
    ``(query, plan, strategy)``."""
    from .engine import SpatialQuery, compile_query, plan_order

    query = _build_workload(args)
    if args.workload != "smugglers" and args.index == "rtree":
        # The non-smugglers builders pack by default; honour the flags.
        for table in query.tables.values():
            table.reindex(pack=not args.no_pack, split_method=args.split)
    strategy = args.order_strategy
    if strategy == "paper" and not query.order:
        # Only the smugglers workload carries a paper-given order; be
        # explicit about the fallback instead of mislabelling it.
        strategy = "greedy"
    if strategy == "paper":
        order = tuple(query.order)
    else:
        unordered = SpatialQuery(
            system=query.system,
            tables=query.tables,
            bindings=query.bindings,
        )
        # With partitioning enabled, the histogram strategy also costs
        # partition pruning when ranking retrieval orders.
        order = plan_order(
            unordered, strategy=strategy, partitions=args.partitions
        )
    knn = _knn_step(args, query, order)
    aggregate = _aggregate_spec(args)
    if knn is not None or aggregate is not None:
        from .engine import repair_knn_order

        # Construct first: SpatialQuery validates the kNN/aggregate
        # spec (bad --knn-var/--knn-ref combinations fail cleanly here).
        query = SpatialQuery(
            system=query.system,
            tables=query.tables,
            bindings=query.bindings,
            knn=knn,
            aggregate=aggregate,
        )
        # A ref-anchored kNN variable must follow its anchor; repair
        # the planner-chosen order with the compiler's own helper.
        order = repair_knn_order(order, knn, query.tables)
    _stage_mutations(args, query)
    plan = compile_query(query, order=order)
    return query, plan, strategy


def _stage_mutations(args, query) -> None:
    """Stage ``--mutate`` seeded delta writes before execution.

    Mixes inserts (small random boxes inside each table's universe) and
    deletes of existing rows in a 2:1 ratio, exercising the
    overlay-merged read paths (and, past ``--delta-threshold``, the
    inline repack) without rebuilding the workload tables.
    """
    n = getattr(args, "mutate", 0)
    if not n:
        return
    import random

    from .algebra.regions import Region
    from .boxes.box import Box

    rng = random.Random(args.seed * 31 + 24251)
    for name, table in query.tables.items():
        if getattr(args, "delta_threshold", None):
            table.delta_threshold = args.delta_threshold
        oids = [obj.oid for obj in table]
        lo, hi = table.universe.lo, table.universe.hi
        for i in range(n):
            if i % 3 == 2 and oids:
                table.delete(oids.pop(rng.randrange(len(oids))))
            else:
                center = [rng.uniform(a, b) for a, b in zip(lo, hi)]
                half = [(b - a) * 0.01 for a, b in zip(lo, hi)]
                box = Box(
                    tuple(max(a, c - h) for a, c, h in zip(lo, center, half)),
                    tuple(min(b, c + h) for b, c, h in zip(hi, center, half)),
                )
                table.stage_insert(f"mut-{name}-{i}", Region.from_box(box))


def _probe_cache(args):
    if getattr(args, "probe_cache", 0):
        from .spatial import ProbeCache

        return ProbeCache(maxsize=args.probe_cache)
    return None


def _physical_options(args) -> dict:
    """Partitioned-execution keyword arguments for ``plan.physical``."""
    join = args.join
    if join is None and (args.partitions or args.parallel or args.shards):
        # Partitioning/sharding/parallelism without an explicit
        # algorithm choice delegates the per-step pick to the planner.
        join = "auto"
    return {
        "partitions": args.partitions,
        "parallel": args.parallel,
        "parallel_kind": args.parallel_kind,
        "join_strategy": join,
        "shards": args.shards,
        "spill": args.spill,
    }


def cmd_bench(args) -> int:
    from time import perf_counter

    query, plan, strategy = _plan_workload(args)
    cache = _probe_cache(args)
    for table in query.tables.values():
        table.reset_stats()  # report query-time reads, not build-time
    pplan = plan.physical(args.mode, estimate=False, **_physical_options(args))
    timing = {}
    if args.stream or args.limit is not None:
        start = perf_counter()
        first = None
        answers = []
        for answer in pplan.execute_iter(limit=args.limit, cache=cache):
            if first is None:
                first = perf_counter() - start
            answers.append(answer)
        timing = {
            "time_to_first_s": first,
            "total_s": perf_counter() - start,
            "limit": args.limit,
        }
        stats = pplan.stats()
    else:
        answers, stats = pplan.run(cache=cache)
    index_stats = {
        name: table.index_stats() for name, table in query.tables.items()
    }
    result = {
        "workload": args.workload,
        "size": args.size,
        "seed": args.seed,
        "index": args.index,
        "packed": not args.no_pack,
        "split": args.split,
        "order_strategy": strategy,
        "order": list(plan.order),
        "partitions": pplan.partitions,
        "shards": pplan.shards,
        "spill": pplan.spill,
        "parallel": args.parallel,
        "parallel_kind": args.parallel_kind,
        "joins": list(pplan.join_strategies),
        "knn": args.knn,
        "knn_access": pplan.knn_access,
        "agg": args.agg,
        "answers": len(answers),
        "counters": stats.as_dict(),
        "tables": index_stats,
        **timing,
    }
    if args.json:
        print(json.dumps(result, indent=2, default=str))
    else:
        print(f"workload={args.workload} size={args.size} mode={args.mode}")
        print(f"order ({strategy}): {', '.join(plan.order)}")
        if args.partitions or args.parallel or args.shards:
            layout = f"partitions={args.partitions or 'off'} "
            if args.shards:
                layout += f"shards={args.shards} "
                if args.spill:
                    layout += f"spill={args.spill} "
            print(
                layout
                + f"parallel={args.parallel or 'serial'} "
                f"joins={','.join(pplan.join_strategies)}"
            )
        print(stats.summary())
        if timing and timing["time_to_first_s"] is not None:
            print(
                f"streamed: first answer {timing['time_to_first_s'] * 1e3:.2f}ms,"
                f" total {timing['total_s'] * 1e3:.2f}ms"
            )
        print(
            "index: "
            + " ".join(
                f"{name}={s.get('node_reads', s.get('bucket_reads', 0))}r"
                for name, s in index_stats.items()
            )
        )
    return 0


def cmd_explain(args) -> int:
    _query, plan, strategy = _plan_workload(args)
    pplan = plan.physical(args.mode, **_physical_options(args))
    if args.analyze:
        pplan.run(cache=_probe_cache(args))
        print(pplan.explain())
        print()
        print(pplan.stats().summary())
    else:
        print(pplan.explain())
    print(f"# order strategy: {strategy}")
    return 0


def cmd_run(args) -> int:
    from time import perf_counter

    _query, plan, _strategy = _plan_workload(args)
    pplan = plan.physical(args.mode, estimate=False, **_physical_options(args))
    cache = _probe_cache(args)
    variables = list(plan.order)
    if plan.aggregate is not None:
        print("# " + ", ".join(
            list(plan.aggregate.group_by) + list(plan.aggregate.labels())
        ))
    else:
        print("# " + ", ".join(variables))
    start = perf_counter()
    first = None
    count = 0
    for answer in pplan.execute_iter(limit=args.limit, cache=cache):
        if first is None:
            first = perf_counter() - start
        count += 1
        if plan.aggregate is not None:
            print(answer.as_dict())
        else:
            print(tuple(answer[v].oid for v in variables))
    total = perf_counter() - start
    if args.stream and first is not None:
        print(
            f"# {count} answers; first after {first * 1e3:.2f}ms, "
            f"all after {total * 1e3:.2f}ms"
        )
    else:
        print(f"# {count} answers")
    return 0


def cmd_save(args) -> int:
    from .database import Database

    query = _build_workload(args)
    db = Database(tables=query.tables, bindings=query.bindings)
    db.save(
        args.out,
        statistics=True,
        partitions=args.partitions,
        shards=args.shards,
    )
    rows = sum(len(t) for t in db.tables.values())
    print(
        f"saved {len(db.tables)} tables ({rows} rows), "
        f"{len(db.bindings)} bindings -> {args.out}"
    )
    return 0


def cmd_load(args) -> int:
    from .database import Database

    db = Database.open(args.snapshot)
    summary = {
        "tables": {
            key: {"name": t.name, "rows": len(t), "index": t.index_kind}
            for key, t in db.tables.items()
        },
        "bindings": sorted(db.bindings),
    }
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        for key, info in summary["tables"].items():
            print(
                f"{key}: {info['name']} ({info['rows']} rows, "
                f"{info['index']})"
            )
        print("bindings:", ", ".join(summary["bindings"]) or "(none)")
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .database import Database
    from .service import QueryService, ServiceServer

    if args.snapshot:
        db = Database.open(args.snapshot)
    else:
        query = _build_workload(args)
        db = Database(tables=query.tables, bindings=query.bindings)
    service = QueryService(db, cache_size=args.cache)
    server = ServiceServer(service, host=args.host, port=args.port)

    async def _serve():
        await server.start()
        host, port = server.address
        print(f"serving {len(db.tables)} tables on http://{host}:{port}")
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constraint-based spatial query compilation (PODS'91)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="triangular form + box plan")
    p.add_argument("file", nargs="?", help="constraint file (default stdin)")
    p.add_argument("--order", help="comma-separated retrieval order")
    p.add_argument("--constants", help="comma-separated bound variables")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("check", help="atomless satisfiability")
    p.add_argument("file", nargs="?")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("minimize", help="remove entailed constraints")
    p.add_argument("file", nargs="?")
    p.set_defaults(func=cmd_minimize)

    p = sub.add_parser("bcf", help="Blake canonical form and L/U of a formula")
    p.add_argument("formula")
    p.set_defaults(func=cmd_bcf)

    def add_workload_args(p):
        p.add_argument("--workload", choices=WORKLOADS, default="smugglers")
        p.add_argument("--size", type=int, default=12, help="per-table rows")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--index", choices=("rtree", "grid", "scan"), default="rtree"
        )
        p.add_argument(
            "--mode",
            choices=("naive", "exact", "boxplan", "boxonly"),
            default="boxplan",
        )
        p.add_argument(
            "--split",
            choices=("quadratic", "linear", "rstar"),
            default="quadratic",
            help="r-tree overflow handling for unpacked builds",
        )
        p.add_argument(
            "--no-pack",
            action="store_true",
            help="insertion-built r-trees instead of STR bulk loading",
        )
        p.add_argument(
            "--order-strategy",
            choices=("paper", "greedy", "estimate", "histogram"),
            default="histogram",
            help="retrieval-order planner ('paper' keeps the workload's order)",
        )
        p.add_argument(
            "--probe-cache",
            type=int,
            default=0,
            metavar="N",
            help="share an N-entry LRU probe cache across index probes",
        )
        p.add_argument(
            "--partitions",
            type=int,
            default=0,
            metavar="N",
            help="enable spatial partitioning with ~N partitions/tiles "
            "(0 = single-partition execution)",
        )
        p.add_argument(
            "--parallel",
            type=int,
            default=0,
            metavar="W",
            help="fan PBSM tile tasks out over W pool workers "
            "(0/1 = deterministic serial execution)",
        )
        p.add_argument(
            "--join",
            choices=(
                "auto",
                "probe",
                "partition",
                "pbsm",
                "zorder",
                "shardscan",
                "shardjoin",
            ),
            default=None,
            help="per-step join algorithm (default: backend-dependent; "
            "'auto' picks cost-based per step; shardscan/shardjoin "
            "need --shards)",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=0,
            metavar="S",
            help="sharded scale-out execution with ~S STR shards per "
            "table (0 = unsharded)",
        )
        p.add_argument(
            "--spill",
            type=int,
            default=None,
            metavar="N",
            help="spill sharded-join probe buckets to disk tiles above "
            "N resident entries (bounded-memory out-of-core join)",
        )
        p.add_argument(
            "--parallel-kind",
            choices=("thread", "process"),
            default="thread",
            help="worker pool kind for --parallel (process pools "
            "publish shard columns via shared memory)",
        )
        p.add_argument(
            "--knn",
            type=int,
            default=0,
            metavar="K",
            help="restrict one variable to its table's K nearest rows "
            "(best-first distance browsing on r-tree tables)",
        )
        p.add_argument(
            "--knn-var",
            default=None,
            metavar="VAR",
            help="the kNN variable (default: first of the retrieval order)",
        )
        p.add_argument(
            "--knn-point",
            default=None,
            metavar="X,Y",
            help="kNN anchor point (default: the universe center)",
        )
        p.add_argument(
            "--knn-ref",
            default=None,
            metavar="VAR",
            help="anchor the kNN on another variable's box instead of a "
            "point (a per-tuple distance join)",
        )
        p.add_argument(
            "--agg",
            default=None,
            metavar="SPEC",
            help="aggregate the answers instead of returning them: "
            "comma-separated ops 'count', 'min:VAR', 'max:VAR' "
            "(min/max aggregate the variable's box volume)",
        )
        p.add_argument(
            "--group-by",
            default=None,
            metavar="VARS",
            help="comma-separated group-by variables for --agg",
        )
        p.add_argument(
            "--agg-box",
            action="store_true",
            help="box-level COUNT (exact=False): push the count down to "
            "the index's subtree entry counts",
        )
        p.add_argument(
            "--mutate",
            type=int,
            default=0,
            metavar="N",
            help="stage N seeded delta writes per table (2:1 "
            "inserts:deletes) before executing, exercising the "
            "LSM-style overlay-merged read paths",
        )
        p.add_argument(
            "--delta-threshold",
            type=int,
            default=None,
            metavar="N",
            help="repack after N staged mutations (with --mutate; "
            "default: the table's own threshold, 64)",
        )

    def add_streaming_args(p):
        p.add_argument(
            "--limit",
            type=int,
            default=None,
            metavar="K",
            help="stop after the first K answers (early exit)",
        )
        p.add_argument(
            "--stream",
            action="store_true",
            help="execute through the streaming iterator and report "
            "time-to-first-answer",
        )

    p = sub.add_parser(
        "bench", help="run a synthetic workload and print cost counters"
    )
    add_workload_args(p)
    add_streaming_args(p)
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "explain",
        help="print the physical operator tree with cost estimates",
    )
    add_workload_args(p)
    p.add_argument(
        "--analyze",
        action="store_true",
        help="execute the plan and annotate actual per-operator stats",
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "run", help="execute a workload and print the answers"
    )
    add_workload_args(p)
    add_streaming_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "save", help="snapshot a built workload database to disk"
    )
    p.add_argument("out", help="snapshot file to write")
    add_workload_args(p)
    p.set_defaults(func=cmd_save)

    p = sub.add_parser("load", help="summarise a saved snapshot")
    p.add_argument("snapshot", help="snapshot file to read")
    p.add_argument("--json", action="store_true", help="machine-readable output")
    p.set_defaults(func=cmd_load)

    p = sub.add_parser(
        "serve", help="start the resident query service (HTTP)"
    )
    p.add_argument(
        "snapshot",
        nargs="?",
        help="snapshot file to serve (default: build --workload)",
    )
    add_workload_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8972, help="0 picks an ephemeral port"
    )
    p.add_argument(
        "--cache",
        type=int,
        default=1024,
        metavar="N",
        help="probe-cache entries shared across requests (0 disables)",
    )
    p.set_defaults(func=cmd_serve)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
