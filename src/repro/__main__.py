"""Command-line interface: compile and inspect constraint systems.

Usage::

    python -m repro compile  [--order T,R,B] [--constants C,A]  [FILE]
    python -m repro check    [FILE]            # satisfiable (atomless)?
    python -m repro minimize [FILE]            # drop entailed constraints
    python -m repro bcf      'x & y | ~x & z'  # Blake canonical form + L/U

``FILE`` contains one constraint per line in the Figure-1 syntax
(``A <= C``, ``R & A != 0``, ``T !<= C``, comments with ``#``); ``-``
or omitted reads stdin.
"""

from __future__ import annotations

import argparse
import sys

from .boolean import blake_canonical_form, parse, to_str
from .boxes import compile_solved_constraint, lower_approximation, render_boxfunc, upper_approximation
from .constraints import (
    parse_system,
    satisfiable_atomless,
    triangular_form,
)
from .constraints.minimize import minimize_system


def _read_system(path: str | None):
    if path in (None, "-"):
        text = sys.stdin.read()
    else:
        with open(path) as handle:
            text = handle.read()
    return parse_system(text)


def cmd_compile(args) -> int:
    system = _read_system(args.file)
    constants = set(
        args.constants.split(",") if args.constants else []
    )
    if args.order:
        order = args.order.split(",")
    else:
        order = sorted(system.variables() - constants)
    tri = triangular_form(system, order)
    print("# retrieval order:", ", ".join(order))
    print(tri.render())
    print("# bounding-box plan")
    for c in tri.constraints:
        template = compile_solved_constraint(c)
        print(f"-- step {c.variable} --")
        print(template.render())
    return 0


def cmd_check(args) -> int:
    system = _read_system(args.file)
    ok = satisfiable_atomless(system)
    print("satisfiable" if ok else "unsatisfiable")
    return 0 if ok else 1


def cmd_minimize(args) -> int:
    system = _read_system(args.file)
    core, removed = minimize_system(system)
    print("# irredundant core")
    print(core)
    if removed:
        print("# removed (entailed by the rest)")
        for c in removed:
            print(f"#   {c}")
    return 0


def cmd_bcf(args) -> int:
    f = parse(args.formula)
    bcf = blake_canonical_form(f)
    print("BCF:", " | ".join(t.to_str() for t in bcf) or "0")
    print("L:", render_boxfunc(lower_approximation(f)))
    print("U:", render_boxfunc(upper_approximation(f)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constraint-based spatial query compilation (PODS'91)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="triangular form + box plan")
    p.add_argument("file", nargs="?", help="constraint file (default stdin)")
    p.add_argument("--order", help="comma-separated retrieval order")
    p.add_argument("--constants", help="comma-separated bound variables")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("check", help="atomless satisfiability")
    p.add_argument("file", nargs="?")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser("minimize", help="remove entailed constraints")
    p.add_argument("file", nargs="?")
    p.set_defaults(func=cmd_minimize)

    p = sub.add_parser("bcf", help="Blake canonical form and L/U of a formula")
    p.add_argument("formula")
    p.set_defaults(func=cmd_bcf)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
