"""Pretty printers for Boolean formulas.

Two surface syntaxes are provided:

* :func:`to_str` — ASCII, round-trips through :mod:`repro.boolean.parser`
  (``~x & (y | z)``).
* :func:`to_unicode` — display form close to the paper's notation
  (complement as a postfix prime would be ambiguous in plain text, so we
  use the conventional ``¬``, ``∧``, ``∨``).

Operator precedence (loosest to tightest): ``|``, ``&``, ``~``.
Parentheses are emitted only where required.
"""

from __future__ import annotations

from .syntax import And, Const, Formula, Not, Or, Var

_PREC_OR = 1
_PREC_AND = 2
_PREC_NOT = 3


def _render(f: Formula, parent_prec: int, symbols) -> str:
    neg_sym, and_sym, or_sym, true_sym, false_sym = symbols
    if isinstance(f, Const):
        return true_sym if f.value else false_sym
    if isinstance(f, Var):
        return f.name
    if isinstance(f, Not):
        inner = _render(f.arg, _PREC_NOT, symbols)
        return f"{neg_sym}{inner}"
    if isinstance(f, And):
        body = and_sym.join(_render(a, _PREC_AND, symbols) for a in f.args)
        return f"({body})" if parent_prec > _PREC_AND else body
    if isinstance(f, Or):
        body = or_sym.join(_render(a, _PREC_OR, symbols) for a in f.args)
        return f"({body})" if parent_prec > _PREC_OR else body
    raise TypeError(f"not a formula: {f!r}")


def to_str(f: Formula) -> str:
    """Render ``f`` in the parser's ASCII syntax."""
    return _render(f, 0, ("~", " & ", " | ", "1", "0"))


def to_unicode(f: Formula) -> str:
    """Render ``f`` with mathematical symbols for display."""
    return _render(f, 0, ("¬", " ∧ ", " ∨ ", "1", "0"))


def to_compact(f: Formula) -> str:
    """Dense rendering (juxtaposition for AND, ``+`` for OR, ``'`` prime).

    Matches the algebraic style of Boole/Brown used in the paper's proofs,
    e.g. ``xy' + z``.  Only well-defined when all variable names are single
    tokens; multi-character names are separated by ``.``.
    """
    if isinstance(f, Const):
        return "1" if f.value else "0"
    if isinstance(f, Var):
        return f.name
    if isinstance(f, Not):
        inner = to_compact(f.arg)
        if isinstance(f.arg, (Var, Const)):
            return inner + "'"
        return "(" + inner + ")'"
    if isinstance(f, And):
        parts = []
        for a in f.args:
            s = to_compact(a)
            if isinstance(a, Or):
                s = "(" + s + ")"
            parts.append(s)
        sep = "." if any(len(p.rstrip("'")) > 1 for p in parts) else ""
        return sep.join(parts)
    if isinstance(f, Or):
        return " + ".join(to_compact(a) for a in f.args)
    raise TypeError(f"not a formula: {f!r}")
