"""Prime implicates — the dual of the Blake canonical form.

Section 4 of the paper motivates Blake canonical forms "and their
duals": where BCF(f) is the disjunction of all prime *implicants*
(maximal terms below ``f``), the dual canonical form is the conjunction
of all prime *implicates* (minimal clauses above ``f``).  The duals are
what one needs to read the best bounding-box approximations off
*product-of-sums* representations, and they give a second, independent
route to ``L_f``:

    an atom x satisfies x <= f  iff  x appears positively in every
    prime implicate of f            (:func:`lower_atoms_via_implicates`)

which cross-checks Theorem 15's BCF-based computation.

Implemented by duality: ``clause C is a prime implicate of f`` iff
``~C`` (a term) is a prime implicant of ``~f``.
"""

from __future__ import annotations

from typing import List

from .blake import blake_canonical_form
from .semantics import implies as semantic_implies
from .syntax import Formula, TRUE, conj, neg
from .terms import Term


class Clause:
    """A disjunction of literals over distinct variables (dual of Term).

    Represented by its complementary term (``~clause``), so all term
    machinery is reused.  The empty clause denotes the constant ``0``.
    """

    __slots__ = ("_co",)

    def __init__(self, complementary_term: Term):
        object.__setattr__(self, "_co", complementary_term)

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Clause is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Clause) and other._co == self._co

    def __hash__(self) -> int:
        return hash(("Clause", self._co))

    def __len__(self) -> int:
        return len(self._co)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Clause({self.to_str()})"

    @staticmethod
    def of(literals: dict) -> "Clause":
        """Build from ``variable -> polarity`` (True = positive literal)."""
        return Clause(Term({v: not s for v, s in literals.items()}))

    @property
    def literals(self) -> dict:
        """``variable -> polarity`` mapping of the clause's literals."""
        return {v: not s for v, s in self._co.literals.items()}

    def polarity(self, name: str):
        """Polarity of ``name`` in the clause, or None."""
        p = self._co.polarity(name)
        return None if p is None else not p

    def to_formula(self) -> Formula:
        """The clause as a formula (``0`` for the empty clause)."""
        return neg(self._co.to_formula())

    def to_str(self) -> str:
        """Compact rendering like ``x + y'``."""
        if not len(self._co):
            return "0"
        return " + ".join(
            v + ("" if s else "'") for v, s in sorted(self.literals.items())
        )


def prime_implicates(f: Formula) -> List[Clause]:
    """All prime implicates of ``f`` (minimal clauses ``C >= f``).

    By duality these are the complements of the prime implicants of
    ``~f``.  ``prime_implicates(1)`` is empty; ``prime_implicates(0)``
    is the single empty clause.
    """
    co_primes = blake_canonical_form(neg(f))
    return [Clause(t) for t in co_primes]


def implicates_formula(f: Formula) -> Formula:
    """The conjunctive canonical form rebuilt as a formula."""
    clauses = prime_implicates(f)
    if not clauses:
        return TRUE
    return conj(*[c.to_formula() for c in clauses])


def is_implicate(c: Clause, f: Formula) -> bool:
    """``True`` iff ``f <= c`` semantically."""
    return semantic_implies(f, c.to_formula())


def is_prime_implicate(c: Clause, f: Formula) -> bool:
    """``True`` iff ``c`` is an implicate no sub-clause of which is one."""
    if not is_implicate(c, f):
        return False
    for v in c._co.variables():
        smaller = Clause(c._co.without(v))
        if is_implicate(smaller, f):
            return False
    return True


def lower_atoms_via_implicates(f: Formula) -> List[str]:
    """Atoms ``x`` with ``x <= f``, via the dual form.

    ``x <= f`` iff ``x <= C`` for every prime implicate ``C`` of ``f``,
    iff ``x`` occurs positively in every one of them.  Cross-checks the
    single-positive-literal-terms-of-BCF reading used by Theorem 15.
    """
    clauses = prime_implicates(f)
    if not clauses:  # f == 1: every atom is below it
        raise ValueError("f is a tautology; every atom is below it")
    candidates = None
    for c in clauses:
        positives = {v for v, s in c.literals.items() if s}
        candidates = positives if candidates is None else candidates & positives
        if not candidates:
            return []
    return sorted(candidates)
