"""Literals, terms and sum-of-products covers.

This is the representation level at which the Blake canonical form
(Section 4 of the paper) operates.  A *term* is a conjunction of literals
over distinct variables (the paper, Section 3: "A literal is an atom or
its complement.  A term is a conjunction of literals").  A *cover* (sum of
products, SOP) is a set of terms denoting their disjunction.

Terms are represented as immutable mappings ``variable -> polarity`` with
``True`` for a positive literal.  The empty term denotes the constant
``1``; the empty cover denotes ``0``.

Provided operations (all named after the paper / Brown's *Boolean
Reasoning*):

* :func:`consensus` — the consensus of two terms on their (unique)
  opposition variable: ``x p, ~x q  ->  p q`` (the paper's rewrite rule in
  Section 4).
* absorption — ``p | p q == p`` (:meth:`Term.absorbs`).
* syllogistic order ``<<`` — a SOP ``f`` is *formally included* in ``g``
  iff every term of ``f`` has a superterm ... precisely: some term of
  ``g`` is a subterm of it (:func:`syllogistic_le`); by Blake's theorem
  (paper Theorem 18) this coincides with semantic ``<=`` when ``g`` is in
  Blake canonical form.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from .syntax import And, Const, FALSE, Formula, Not, Or, TRUE, Var, conj, disj, neg


class Term:
    """An immutable product of literals over distinct variables.

    ``Term({'x': True, 'y': False})`` denotes ``x & ~y``.  The *empty*
    term denotes the constant ``1``.  Attempting to build a term with
    complementary literals raises ``ValueError`` (such a product is ``0``
    and is never a useful member of a cover).
    """

    __slots__ = ("_lits", "_hash")

    def __init__(self, literals: Mapping[str, bool]):
        lits = dict(literals)
        object.__setattr__(self, "_lits", lits)
        object.__setattr__(
            self, "_hash", hash(frozenset(lits.items()))
        )

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Term is immutable")

    # -- basic protocol -------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, Term) and other._lits == self._lits

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._lits)

    def __iter__(self) -> Iterator[Tuple[str, bool]]:
        return iter(sorted(self._lits.items()))

    def __contains__(self, name: str) -> bool:
        return name in self._lits

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Term({self.to_str()})"

    # -- accessors ------------------------------------------------------------
    @property
    def literals(self) -> Mapping[str, bool]:
        """Read-only view of the literal mapping."""
        return dict(self._lits)

    def polarity(self, name: str) -> Optional[bool]:
        """Polarity of ``name`` in this term, or ``None`` if absent."""
        return self._lits.get(name)

    def variables(self) -> FrozenSet[str]:
        """Variables mentioned by the term."""
        return frozenset(self._lits)

    def positive_part(self) -> "Term":
        """The subterm of positive literals (Algorithm 2 drops the rest)."""
        return Term({v: True for v, s in self._lits.items() if s})

    def negative_part(self) -> "Term":
        """The subterm of negative literals."""
        return Term({v: False for v, s in self._lits.items() if not s})

    def is_true(self) -> bool:
        """``True`` for the empty term (the constant ``1``)."""
        return not self._lits

    # -- order and combination -------------------------------------------------
    def is_subterm_of(self, other: "Term") -> bool:
        """``True`` iff every literal of ``self`` occurs in ``other``.

        ``t1.is_subterm_of(t2)`` implies ``t2 <= t1`` semantically (more
        literals = smaller product).
        """
        lits = other._lits
        return all(lits.get(v) == s for v, s in self._lits.items())

    def absorbs(self, other: "Term") -> bool:
        """``True`` iff ``self | other == self`` (``self`` subterm of it)."""
        return self.is_subterm_of(other)

    def conjoin(self, other: "Term") -> Optional["Term"]:
        """Product of two terms, or ``None`` if it is ``0``."""
        merged = dict(self._lits)
        for v, s in other._lits.items():
            if merged.setdefault(v, s) != s:
                return None
        return Term(merged)

    def without(self, name: str) -> "Term":
        """Copy of the term with variable ``name`` removed."""
        lits = dict(self._lits)
        lits.pop(name, None)
        return Term(lits)

    def with_literal(self, name: str, polarity: bool) -> Optional["Term"]:
        """Extend with one literal; ``None`` if that annihilates the term."""
        if self._lits.get(name, polarity) != polarity:
            return None
        lits = dict(self._lits)
        lits[name] = polarity
        return Term(lits)

    # -- conversions ----------------------------------------------------------
    def to_formula(self) -> Formula:
        """Convert to a :class:`Formula` (``1`` for the empty term)."""
        parts = [
            Var(v) if s else neg(Var(v)) for v, s in sorted(self._lits.items())
        ]
        return conj(*parts) if parts else TRUE

    def to_str(self) -> str:
        """Compact rendering, e.g. ``x.y'.z``."""
        if not self._lits:
            return "1"
        return ".".join(
            v + ("" if s else "'") for v, s in sorted(self._lits.items())
        )

    def evaluate(self, env: Mapping[str, bool]) -> bool:
        """Two-valued evaluation of the term."""
        return all(bool(env[v]) == s for v, s in self._lits.items())


def term(*literals: str) -> Term:
    """Build a term from literal strings: ``term('x', "~y")`` is ``x & ~y``.

    A leading ``~`` or trailing ``'`` marks a negative literal.
    """
    lits: Dict[str, bool] = {}
    for raw in literals:
        name, sign = raw, True
        if raw.startswith("~"):
            name, sign = raw[1:], False
        elif raw.endswith("'"):
            name, sign = raw[:-1], False
        if not name:
            raise ValueError(f"bad literal: {raw!r}")
        if lits.setdefault(name, sign) != sign:
            raise ValueError(f"complementary literals for {name!r}")
    return Term(lits)


def consensus(t1: Term, t2: Term) -> Optional[Term]:
    """Consensus of two terms, if defined.

    If ``t1`` and ``t2`` disagree on exactly one variable ``x``, the
    consensus is the product of ``t1`` and ``t2`` with ``x`` removed
    (the paper's rule ``x p, ~x q -> p q``).  Returns ``None`` when the
    terms oppose on zero or more than one variable, or when the result
    would be contradictory.
    """
    opposition = None
    for v, s in t1._lits.items():
        s2 = t2._lits.get(v)
        if s2 is not None and s2 != s:
            if opposition is not None:
                return None
            opposition = v
    if opposition is None:
        return None
    merged = dict(t1._lits)
    del merged[opposition]
    for v, s in t2._lits.items():
        if v == opposition:
            continue
        if merged.setdefault(v, s) != s:
            return None
    return Term(merged)


# ---------------------------------------------------------------------------
# Covers (sums of products)
# ---------------------------------------------------------------------------


def absorb(terms: Iterable[Term]) -> List[Term]:
    """Remove absorbed terms: keep only minimal terms under subterm order.

    ``p + p q = p`` — a term is dropped when some *other* kept term is a
    subterm of it.  Deterministic output order (by term rendering).
    """
    unique = list(dict.fromkeys(terms))
    kept: List[Term] = []
    for t in sorted(unique, key=len):
        if not any(k.is_subterm_of(t) for k in kept):
            kept.append(t)
    kept.sort(key=Term.to_str)
    return kept


def cover_to_formula(terms: Sequence[Term]) -> Formula:
    """Disjunction of a cover (``0`` for the empty cover)."""
    if not terms:
        return FALSE
    return disj(*[t.to_formula() for t in terms])


def formula_to_cover(f: Formula) -> List[Term]:
    """Convert a formula to SOP cover by distribution.

    The expansion is the classical distributive one and can be exponential
    in the size of ``f`` — exactly the cost the paper accepts for
    compile-time processing.  Negations are pushed to literals first.
    Contradictory products are dropped; the result is absorbed.
    """
    nnf = _to_nnf(f, positive=True)
    return absorb(_nnf_to_cover(nnf))


def _to_nnf(f: Formula, positive: bool) -> Formula:
    """Negation normal form; ``positive=False`` builds the complement."""
    if isinstance(f, Const):
        value = f.value if positive else not f.value
        return TRUE if value else FALSE
    if isinstance(f, Var):
        return f if positive else Not(f)
    if isinstance(f, Not):
        return _to_nnf(f.arg, not positive)
    parts = [_to_nnf(a, positive) for a in f.args]
    same = isinstance(f, And) if positive else isinstance(f, Or)
    return conj(*parts) if same else disj(*parts)


def _nnf_to_cover(f: Formula) -> List[Term]:
    if isinstance(f, Const):
        return [Term({})] if f.value else []
    if isinstance(f, Var):
        return [Term({f.name: True})]
    if isinstance(f, Not):
        if not isinstance(f.arg, Var):  # pragma: no cover - NNF guarantees
            raise ValueError("formula not in NNF")
        return [Term({f.arg.name: False})]
    if isinstance(f, Or):
        out: List[Term] = []
        for a in f.args:
            out.extend(_nnf_to_cover(a))
        return out
    if isinstance(f, And):
        prods: List[Term] = [Term({})]
        for a in f.args:
            branch = _nnf_to_cover(a)
            new: List[Term] = []
            for p in prods:
                for q in branch:
                    merged = p.conjoin(q)
                    if merged is not None:
                        new.append(merged)
            prods = new
            if not prods:
                return []
        return prods
    raise TypeError(f"not a formula: {f!r}")


def cover_evaluate(terms: Sequence[Term], env: Mapping[str, bool]) -> bool:
    """Two-valued evaluation of a cover."""
    return any(t.evaluate(env) for t in terms)


def syllogistic_le(f_terms: Sequence[Term], g_terms: Sequence[Term]) -> bool:
    """Blake's formal inclusion ``f << g``.

    Every term of ``f`` must have some term of ``g`` as a subterm.  By the
    paper's Theorem 18 this is equivalent to semantic ``f <= g`` whenever
    ``g_terms`` is the Blake canonical form of ``g``.
    """
    return all(
        any(g.is_subterm_of(t) for g in g_terms) for t in f_terms
    )
