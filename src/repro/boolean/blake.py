"""Blake canonical form (BCF): the sum of all prime implicants.

Section 4 of the paper uses ``BCF(f)`` as the compile-time normal form
from which the best bounding-box approximations are read off
(Algorithm 2), citing Blake's thesis and Brown's *Boolean Reasoning*.

Implemented methods:

* :func:`blake_canonical_form` — the paper's cited method: convert to an
  arbitrary SOP, then repeatedly form consensus terms and simplify by
  absorption until a fixpoint is reached (successive-extraction style,
  organised variable-by-variable for efficiency — Brown's "iterated
  consensus").
* :func:`prime_implicants_bruteforce` — reference implementation that
  enumerates all candidate terms over the variable set and keeps the
  maximal implicant terms.  Exponential; used by tests as an oracle.

Also exposed: :func:`is_implicant`, :func:`is_prime_implicant`, and
Theorem 18 (:func:`blake_le`): for SOP ``g``, ``g <= f`` iff ``g`` is
*formally* (syllogistically) included in ``BCF(f)``.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import List, Sequence

from .semantics import implies as semantic_implies
from .syntax import Formula
from .terms import (
    Term,
    absorb,
    consensus,
    cover_to_formula,
    formula_to_cover,
    syllogistic_le,
)


def blake_canonical_form(f: Formula) -> List[Term]:
    """All prime implicants of ``f`` by iterated consensus + absorption.

    Returns the BCF as an absorbed cover in deterministic order.  The
    constants are handled naturally: ``BCF(0)`` is the empty cover and
    ``BCF(1)`` is ``[Term({})]``.

    Complexity is exponential in the number of variables in the worst
    case; the paper explicitly accepts this because the computation
    happens once, at query-compilation time, over the (small) constraint
    formulas.
    """
    cover = formula_to_cover(f)
    return bcf_from_cover(cover)


def bcf_from_cover(cover: Sequence[Term]) -> List[Term]:
    """Close an SOP cover under consensus, simplifying by absorption.

    Implements the iterated-consensus loop variable by variable (Brown,
    *Boolean Reasoning*, ch. 3): for each variable ``x``, form every
    defined consensus between an ``x``-positive and ``x``-negative term,
    add the non-absorbed results, and repeat until no variable adds a
    term.  The result is exactly the set of prime implicants.
    """
    terms = absorb(cover)
    if not terms:
        return []
    variables = sorted({v for t in terms for v in t.variables()})
    changed = True
    while changed:
        changed = False
        for x in variables:
            pos = [t for t in terms if t.polarity(x) is True]
            negs = [t for t in terms if t.polarity(x) is False]
            new_terms: List[Term] = []
            for t1 in pos:
                for t2 in negs:
                    c = consensus(t1, t2)
                    if c is None:
                        continue
                    if any(k.is_subterm_of(c) for k in terms):
                        continue
                    if any(k.is_subterm_of(c) for k in new_terms):
                        continue
                    new_terms.append(c)
            if new_terms:
                terms = absorb(list(terms) + new_terms)
                changed = True
    return terms


def is_implicant(t: Term, f: Formula) -> bool:
    """``True`` iff the term ``t`` semantically implies ``f``."""
    return semantic_implies(t.to_formula(), f)


def is_prime_implicant(t: Term, f: Formula) -> bool:
    """``True`` iff ``t`` is an implicant of ``f`` made non-implicant by
    deleting any single literal (the paper's Definition in Section 4)."""
    if not is_implicant(t, f):
        return False
    for v in t.variables():
        if is_implicant(t.without(v), f):
            return False
    return True


def prime_implicants_bruteforce(f: Formula) -> List[Term]:
    """Oracle: enumerate all terms over ``vars(f)``, keep the primes.

    Exponential (``3^n`` candidate terms); only for testing on small
    formulas.
    """
    names = sorted(f.variables())
    primes: List[Term] = []
    for r in range(len(names) + 1):
        for subset in combinations(names, r):
            for signs in product((True, False), repeat=r):
                t = Term(dict(zip(subset, signs)))
                if is_prime_implicant(t, f):
                    primes.append(t)
    return absorb(primes)


def blake_le(g_cover: Sequence[Term], f: Formula) -> bool:
    """Theorem 18 (Blake): for SOP ``g``, ``g <= f`` iff ``g << BCF(f)``.

    ``<<`` is the syllogistic (formal-inclusion) order, checked purely
    syntactically — this is what makes BCF useful at compile time.
    """
    return syllogistic_le(list(g_cover), blake_canonical_form(f))


def bcf_formula(f: Formula) -> Formula:
    """The Blake canonical form rebuilt as a formula."""
    return cover_to_formula(blake_canonical_form(f))
