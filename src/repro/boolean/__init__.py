"""Symbolic Boolean formula substrate.

Exports the formula AST, parser/printers, two-valued semantics, normal
forms, the term layer, Blake canonical form (Section 4 of the paper), a
BDD engine and a semantic simplifier.
"""

from .blake import (
    bcf_formula,
    blake_canonical_form,
    blake_le,
    is_implicant,
    is_prime_implicant,
    prime_implicants_bruteforce,
)
from .bdd import Bdd, bdd_equivalent, bdd_implies
from .implicates import (
    Clause,
    implicates_formula,
    is_implicate,
    is_prime_implicate,
    lower_atoms_via_implicates,
    prime_implicates,
)
from .normal_forms import (
    from_minterms,
    is_dnf,
    is_nnf,
    minterms,
    sop_terms,
    to_cnf,
    to_dnf,
    to_nnf,
)
from .parser import parse
from .printer import to_compact, to_str, to_unicode
from .quine import prime_implicants_qmc
from .semantics import (
    count_satisfying,
    equivalent,
    equivalent_under,
    eval_bool,
    evaluate,
    implies,
    is_contradiction,
    is_tautology,
    satisfying_assignments,
    truth_table,
)
from .simplify import (
    complement_simplified,
    simplify,
    simplify_conjunction,
    simplify_disjunction,
    simplify_under,
)
from .syntax import (
    FALSE,
    TRUE,
    And,
    Const,
    Formula,
    Not,
    Or,
    Var,
    conj,
    disj,
    formula,
    neg,
    rename,
    var,
    variables,
)
from .terms import (
    Term,
    absorb,
    consensus,
    cover_to_formula,
    formula_to_cover,
    syllogistic_le,
    term,
)

__all__ = [
    "And", "Bdd", "Const", "FALSE", "Formula", "Not", "Or", "TRUE", "Term",
    "Var", "absorb", "bcf_formula", "bdd_equivalent", "bdd_implies",
    "blake_canonical_form", "blake_le", "Clause", "complement_simplified", "conj",
    "consensus", "count_satisfying", "cover_to_formula", "disj",
    "equivalent", "equivalent_under", "eval_bool", "evaluate", "formula",
    "formula_to_cover", "from_minterms", "implies", "is_contradiction",
    "is_dnf", "is_implicant", "is_nnf", "is_prime_implicant",
    "implicates_formula", "is_implicate", "is_prime_implicate",
    "is_tautology", "lower_atoms_via_implicates", "minterms", "neg",
    "parse", "prime_implicants_bruteforce", "prime_implicates",
    "prime_implicants_qmc", "rename", "satisfying_assignments", "simplify",
    "simplify_conjunction", "simplify_disjunction", "simplify_under",
    "sop_terms", "syllogistic_le", "term", "to_cnf", "to_compact", "to_dnf",
    "to_nnf", "to_str", "to_unicode", "truth_table", "var", "variables",
]
