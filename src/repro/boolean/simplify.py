"""Semantic formula simplification.

The rewriting steps of Algorithm 1 (cofactoring, products of cofactors,
complements) balloon formulas syntactically even when the denoted function
is simple.  The paper presents its Section 2 example in hand-simplified
form; to regenerate that presentation mechanically we simplify through a
canonical representation:

    formula -> BDD -> irredundant SOP (Minato-Morreale) -> formula

:func:`simplify` is semantics-preserving.  :func:`simplify_under` only
preserves the function **on a care set** (generalized cofactor): it is
used to display triangular systems modulo the ground residue ``S_0`` —
e.g. the paper simplifies ``C + A'T`` to ``C + T`` using the given fact
``A ⊆ C``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .bdd import Bdd
from .syntax import FALSE, Formula, TRUE, conj, disj, neg
from .terms import cover_to_formula


def simplify(f: Formula, order: Optional[Iterable[str]] = None) -> Formula:
    """Return a small formula denoting the same Boolean function as ``f``.

    The result is an irredundant sum of products (or a constant); variable
    ``order`` (default: sorted) fixes the BDD order and hence the exact
    cover chosen — the output is deterministic for a given order.
    """
    names = sorted(f.variables()) if order is None else list(order)
    mgr = Bdd(names)
    node = mgr.from_formula(f)
    if node == mgr.true:
        return TRUE
    if node == mgr.false:
        return FALSE
    return cover_to_formula(mgr.isop(node))


def simplify_under(f: Formula, care: Formula, order: Optional[Iterable[str]] = None) -> Formula:
    """Simplify ``f`` assuming ``care`` holds (don't-care minimisation).

    Returns a formula that agrees with ``f`` on every assignment
    satisfying ``care``; behaviour outside the care set is unspecified
    (chosen to minimise the result).  If ``care`` is unsatisfiable the
    care set is empty and ``0`` is returned.
    """
    names = sorted(f.variables() | care.variables())
    if order is not None:
        names = list(order)
    mgr = Bdd(names)
    node = mgr.from_formula(f)
    care_node = mgr.from_formula(care)
    if care_node == mgr.false:
        return FALSE
    constrained = mgr.constrain(node, care_node)
    # ISOP between onset&care (must cover) and onset|~care (may cover)
    # gives a cover at least as small as constrain alone.
    lower = mgr.apply_and(node, care_node)
    upper = mgr.apply_or(constrained, mgr.apply_not(care_node))
    cover, _ = mgr._isop(lower, upper)
    if not cover:
        return FALSE
    if len(cover) == 1 and cover[0].is_true():
        return TRUE
    return cover_to_formula(cover)


def complement_simplified(f: Formula) -> Formula:
    """A small formula for ``~f`` (avoids a bare ``Not`` over a big AST)."""
    return simplify(neg(f))


def simplify_conjunction(*parts: Formula) -> Formula:
    """Simplify the conjunction of several formulas at once."""
    return simplify(conj(*parts))


def simplify_disjunction(*parts: Formula) -> Formula:
    """Simplify the disjunction of several formulas at once."""
    return simplify(disj(*parts))
