"""Reduced ordered binary decision diagrams (ROBDDs).

A compact canonical representation of Boolean functions used by the
library for:

* **equivalence checking** — two formulas denote the same function iff
  they reduce to the same node (used throughout the tests and by the
  triangularisation to detect fixpoints);
* **simplification** — :func:`Bdd.isop` extracts an irredundant
  sum-of-products cover (Minato-Morreale), which the simplifier turns back
  into small formulas;
* **simplification modulo a care condition** — :func:`Bdd.constrain`
  implements the generalized cofactor ``f|_c`` with ``f|_c == f`` on
  ``c``; Algorithm 1's output is displayed modulo the ground residue the
  way the paper's Section 2 does;
* **quantification** — ``exists``/``forall`` for Boole's Theorem 2 on the
  equation part of systems (cross-checks the formula-level code).

The implementation is a standard hash-consed ``ite``-based manager.  Node
0 and node 1 are the terminals; every other node is a triple
``(level, low, high)`` interned in a unique table.  Functions are plain
integer node ids tied to their manager.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .syntax import And, Const, Formula, Not, Or, Var
from .terms import Term


class Bdd:
    """A BDD manager with a fixed-but-extendable variable order.

    Variables are addressed by *name*; the manager assigns levels in order
    of first appearance (or per the ``order`` argument).  All node ids
    returned by one manager are only meaningful within it.
    """

    def __init__(self, order: Optional[Sequence[str]] = None):
        self._level_of: Dict[str, int] = {}
        self._name_of: List[str] = []
        # Node storage: index -> (level, low, high).  Slots 0/1 are the
        # terminal markers and never dereferenced.
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        if order:
            for name in order:
                self.declare(name)

    # -- variables -------------------------------------------------------------
    def declare(self, name: str) -> int:
        """Ensure ``name`` has a level; return the level."""
        level = self._level_of.get(name)
        if level is None:
            level = len(self._name_of)
            self._level_of[name] = level
            self._name_of.append(name)
        return level

    @property
    def var_names(self) -> Tuple[str, ...]:
        """Declared variable names in level order."""
        return tuple(self._name_of)

    # -- raw node layer ----------------------------------------------------------
    @property
    def false(self) -> int:
        """Terminal 0."""
        return 0

    @property
    def true(self) -> int:
        """Terminal 1."""
        return 1

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def _level(self, u: int) -> int:
        if u <= 1:
            return 1 << 30  # terminals sort below every variable level
        return self._nodes[u][0]

    def _low(self, u: int) -> int:
        return self._nodes[u][1]

    def _high(self, u: int) -> int:
        return self._nodes[u][2]

    def node_count(self) -> int:
        """Total interned nodes (a size metric for benches)."""
        return len(self._nodes)

    # -- construction -----------------------------------------------------------
    def var(self, name: str) -> int:
        """The function of a single variable."""
        level = self.declare(name)
        return self._mk(level, 0, 1)

    def nvar(self, name: str) -> int:
        """The complemented variable."""
        level = self.declare(name)
        return self._mk(level, 1, 0)

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: the unique function agreeing with ``g`` on ``f``
        and with ``h`` on ``~f``.  All other connectives reduce to it."""
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        key = (f, g, h)
        out = self._ite_cache.get(key)
        if out is not None:
            return out
        top = min(self._level(f), self._level(g), self._level(h))
        f0, f1 = self._cof(f, top)
        g0, g1 = self._cof(g, top)
        h0, h1 = self._cof(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        out = self._mk(top, low, high)
        self._ite_cache[key] = out
        return out

    def _cof(self, u: int, level: int) -> Tuple[int, int]:
        if self._level(u) != level:
            return u, u
        return self._low(u), self._high(u)

    def apply_and(self, u: int, v: int) -> int:
        return self.ite(u, v, 0)

    def apply_or(self, u: int, v: int) -> int:
        return self.ite(u, 1, v)

    def apply_xor(self, u: int, v: int) -> int:
        return self.ite(u, self.apply_not(v), v)

    def apply_not(self, u: int) -> int:
        out = self._not_cache.get(u)
        if out is None:
            out = self.ite(u, 0, 1)
            self._not_cache[u] = out
        return out

    def apply_imp(self, u: int, v: int) -> int:
        return self.ite(u, v, 1)

    def from_formula(self, f: Formula) -> int:
        """Build the BDD of a formula (declaring its variables)."""
        if isinstance(f, Const):
            return 1 if f.value else 0
        if isinstance(f, Var):
            return self.var(f.name)
        if isinstance(f, Not):
            return self.apply_not(self.from_formula(f.arg))
        if isinstance(f, And):
            out = 1
            for a in f.args:
                out = self.apply_and(out, self.from_formula(a))
                if out == 0:
                    return 0
            return out
        if isinstance(f, Or):
            out = 0
            for a in f.args:
                out = self.apply_or(out, self.from_formula(a))
                if out == 1:
                    return 1
            return out
        raise TypeError(f"not a formula: {f!r}")

    # -- cofactors and quantifiers -------------------------------------------------
    def restrict(self, u: int, name: str, value: bool) -> int:
        """Shannon cofactor ``u[name <- value]``."""
        level = self.declare(name)
        memo: Dict[int, int] = {}

        def walk(w: int) -> int:
            if w <= 1 or self._level(w) > level:
                return w
            out = memo.get(w)
            if out is not None:
                return out
            wl, wlow, whigh = self._nodes[w]
            if wl == level:
                out = whigh if value else wlow
            else:
                out = self._mk(wl, walk(wlow), walk(whigh))
            memo[w] = out
            return out

        return walk(u)

    def exists(self, u: int, names: Sequence[str]) -> int:
        """Existential quantification — Boole's Theorem 2 iterated:
        ``exists x. f == f[x<-0] | f[x<-1]`` (for functions; the paper's
        form ``f0 & f1 = 0`` is this applied to the equation ``f = 0``)."""
        out = u
        for name in names:
            out = self.apply_or(
                self.restrict(out, name, False), self.restrict(out, name, True)
            )
        return out

    def forall(self, u: int, names: Sequence[str]) -> int:
        """Universal quantification (dual of :meth:`exists`)."""
        out = u
        for name in names:
            out = self.apply_and(
                self.restrict(out, name, False), self.restrict(out, name, True)
            )
        return out

    def compose(self, u: int, name: str, v: int) -> int:
        """Functional composition ``u[name <- v]``."""
        return self.ite(
            v, self.restrict(u, name, True), self.restrict(u, name, False)
        )

    def constrain(self, f: int, c: int) -> int:
        """Generalized cofactor (Coudert-Madre ``f ↓ c``).

        Returns a function agreeing with ``f`` wherever ``c`` holds, often
        much smaller.  Used to display/simplify triangular systems modulo
        the ground residue (the paper's Section 2 presentation assumes
        ``A ⊆ C`` when simplifying).  ``c`` must not be 0.
        """
        if c == 0:
            raise ValueError("constrain by the empty care set")
        memo: Dict[Tuple[int, int], int] = {}

        def walk(u: int, care: int) -> int:
            if care == 1 or u <= 1:
                return u
            key = (u, care)
            out = memo.get(key)
            if out is not None:
                return out
            top = min(self._level(u), self._level(care))
            c0, c1 = self._cof(care, top)
            if c0 == 0:
                out = walk(self._cof(u, top)[1], c1)
            elif c1 == 0:
                out = walk(self._cof(u, top)[0], c0)
            else:
                u0, u1 = self._cof(u, top)
                out = self._mk(top, walk(u0, c0), walk(u1, c1))
            memo[key] = out
            return out

        return walk(f, c)

    # -- inspection ---------------------------------------------------------------
    def support(self, u: int) -> Tuple[str, ...]:
        """Names of variables the function actually depends on."""
        seen: set = set()
        levels: set = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w <= 1 or w in seen:
                continue
            seen.add(w)
            level, low, high = self._nodes[w]
            levels.add(level)
            stack.append(low)
            stack.append(high)
        return tuple(self._name_of[lv] for lv in sorted(levels))

    def sat_count(self, u: int, n_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``n_vars`` variables."""
        if n_vars is None:
            n_vars = len(self._name_of)
        memo: Dict[int, int] = {}

        def count(w: int) -> int:
            # Returns count over variables strictly below w's level.
            if w == 0:
                return 0
            if w == 1:
                return 1
            out = memo.get(w)
            if out is not None:
                return out
            level, low, high = self._nodes[w]
            lo_gap = (self._level(low) if low > 1 else n_vars) - level - 1
            hi_gap = (self._level(high) if high > 1 else n_vars) - level - 1
            out = count(low) * (1 << lo_gap) + count(high) * (1 << hi_gap)
            memo[w] = out
            return out

        top_gap = (self._level(u) if u > 1 else n_vars)
        return count(u) * (1 << top_gap)

    def pick_model(self, u: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment (unspecified vars omitted), or None."""
        if u == 0:
            return None
        model: Dict[str, bool] = {}
        while u != 1:
            level, low, high = self._nodes[u]
            name = self._name_of[level]
            if low != 0:
                model[name] = False
                u = low
            else:
                model[name] = True
                u = high
        return model

    def iter_models(self, u: int) -> Iterator[Dict[str, bool]]:
        """All satisfying assignments (unspecified variables omitted)."""
        if u == 0:
            return
        if u == 1:
            yield {}
            return
        level, low, high = self._nodes[u]
        name = self._name_of[level]
        for m in self.iter_models(low):
            out = dict(m)
            out[name] = False
            yield out
        for m in self.iter_models(high):
            out = dict(m)
            out[name] = True
            yield out

    # -- irredundant SOP (Minato-Morreale) -----------------------------------------
    def isop(self, u: int) -> List[Term]:
        """An irredundant sum-of-products cover of ``u``.

        Classic Minato-Morreale recursion on the interval ``[L, U] = [u, u]``;
        the result is a prime-and-irredundant cover — usually far smaller
        than the raw distributive DNF, which keeps the triangular systems
        the compiler prints close to the paper's hand-simplified forms.
        """
        cover, _ = self._isop(u, u)
        return cover

    def _isop(self, lower: int, upper: int) -> Tuple[List[Term], int]:
        if lower == 0:
            return [], 0
        if upper == 1:
            return [Term({})], 1
        level = min(self._level(lower), self._level(upper))
        name = self._name_of[level]
        l0, l1 = self._cof(lower, level)
        u0, u1 = self._cof(upper, level)

        # Parts that must be covered with x negative / positive only.
        lo_only, lo_bdd = self._isop(self.apply_and(l0, self.apply_not(u1)), u0)
        hi_only, hi_bdd = self._isop(self.apply_and(l1, self.apply_not(u0)), u1)
        # Remainder must be covered without mentioning x.
        rest_lower = self.apply_or(
            self.apply_and(l0, self.apply_not(lo_bdd)),
            self.apply_and(l1, self.apply_not(hi_bdd)),
        )
        rest, rest_bdd = self._isop(rest_lower, self.apply_and(u0, u1))

        cover: List[Term] = []
        for t in lo_only:
            extended = t.with_literal(name, False)
            if extended is not None:
                cover.append(extended)
        for t in hi_only:
            extended = t.with_literal(name, True)
            if extended is not None:
                cover.append(extended)
        cover.extend(rest)
        x = self._mk(level, 0, 1)
        covered = self.apply_or(
            self.apply_or(
                self.apply_and(self.apply_not(x), lo_bdd),
                self.apply_and(x, hi_bdd),
            ),
            rest_bdd,
        )
        return cover, covered

    # -- conversions -----------------------------------------------------------------
    def to_formula(self, u: int) -> Formula:
        """A small formula for ``u`` (via :meth:`isop`)."""
        from .terms import cover_to_formula

        return cover_to_formula(self.isop(u))


def bdd_equivalent(f: Formula, g: Formula) -> bool:
    """Check ``f == g`` as Boolean functions via a shared BDD manager."""
    mgr = Bdd(sorted(f.variables() | g.variables()))
    return mgr.from_formula(f) == mgr.from_formula(g)


def bdd_implies(f: Formula, g: Formula) -> bool:
    """Check ``f <= g`` via BDDs."""
    mgr = Bdd(sorted(f.variables() | g.variables()))
    return mgr.apply_imp(mgr.from_formula(f), mgr.from_formula(g)) == 1
