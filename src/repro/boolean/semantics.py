"""Semantics of Boolean formulas.

Two layers:

1. **Evaluation over an arbitrary Boolean algebra carrier** —
   :func:`evaluate` interprets a formula over any object implementing the
   :class:`repro.algebra.base.BooleanAlgebra` interface.  This is how the
   same symbolic machinery is run over bits, finite sets, intervals and
   k-dimensional regions.

2. **Two-valued (truth-table) reasoning** — :func:`is_tautology`,
   :func:`is_contradiction`, :func:`equivalent`, :func:`implies`.
   A Boolean-function *identity* holds in **every** Boolean algebra iff it
   holds in the two-valued algebra B2 (a classical consequence of the
   Stone representation / the fact that free Boolean algebras are
   subdirect powers of B2).  The paper leans on this silently whenever it
   rewrites formulas; we lean on it explicitly for equivalence checking.

   Note the asymmetry stressed by the paper: *constraint systems with
   disequations* are NOT reducible to B2 — their entailment is decided
   over atomless algebras by :mod:`repro.constraints.decision`.  The
   functions here are only about formula-level identities.

Truth tables are represented as Python integers used as bit vectors over
the 2^n assignments of an ordered variable list, which makes conjunction
and disjunction single integer operations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .syntax import And, Const, Formula, Not, Or, Var


def evaluate(f: Formula, algebra, env: Mapping[str, object]):
    """Evaluate ``f`` over ``algebra`` with variable values ``env``.

    ``algebra`` must provide ``top``, ``bot``, ``meet``, ``join`` and
    ``complement``.  Raises ``KeyError`` for unbound variables.
    """
    if isinstance(f, Const):
        return algebra.top if f.value else algebra.bot
    if isinstance(f, Var):
        return env[f.name]
    if isinstance(f, Not):
        return algebra.complement(evaluate(f.arg, algebra, env))
    if isinstance(f, And):
        acc = algebra.top
        for a in f.args:
            acc = algebra.meet(acc, evaluate(a, algebra, env))
        return acc
    if isinstance(f, Or):
        acc = algebra.bot
        for a in f.args:
            acc = algebra.join(acc, evaluate(a, algebra, env))
        return acc
    raise TypeError(f"not a formula: {f!r}")


def eval_bool(f: Formula, env: Mapping[str, bool]) -> bool:
    """Evaluate ``f`` under a two-valued assignment (plain bools)."""
    if isinstance(f, Const):
        return f.value
    if isinstance(f, Var):
        return bool(env[f.name])
    if isinstance(f, Not):
        return not eval_bool(f.arg, env)
    if isinstance(f, And):
        return all(eval_bool(a, env) for a in f.args)
    if isinstance(f, Or):
        return any(eval_bool(a, env) for a in f.args)
    raise TypeError(f"not a formula: {f!r}")


# ---------------------------------------------------------------------------
# Integer truth tables
# ---------------------------------------------------------------------------


def _var_pattern(k: int, n: int) -> int:
    """Bit-vector of assignments (over n vars) where variable k is true."""
    # Repeating pattern: 2^k zeros then 2^k ones, repeated.
    ones = (1 << (1 << k)) - 1  # 2^k one-bits
    chunk = ones << (1 << k)  # zeros then ones, width 2^(k+1)
    width = 1 << (k + 1)
    total = 1 << n
    pattern = 0
    offset = 0
    while offset < total:
        pattern |= chunk << offset
        offset += width
    mask = (1 << total) - 1
    return pattern & mask


def truth_table_fast(f: Formula, order: Sequence[str]) -> int:
    """Truth table of ``f`` as an integer bit vector.

    Bit ``i`` of the result is the value of ``f`` under the assignment in
    which variable ``order[k]`` takes bit ``k`` of ``i``.  All variables of
    ``f`` must appear in ``order``.  Memoised per subformula; each
    connective is a single big-integer operation.
    """
    n = len(order)
    if n > 24:
        raise ValueError("too many variables for truth tables; use BDDs")
    full = (1 << (1 << n)) - 1
    patterns = {name: _var_pattern(k, n) for k, name in enumerate(order)}
    memo: Dict[Formula, int] = {}

    def tt(g: Formula) -> int:
        cached = memo.get(g)
        if cached is not None:
            return cached
        if isinstance(g, Const):
            out = full if g.value else 0
        elif isinstance(g, Var):
            out = patterns[g.name]
        elif isinstance(g, Not):
            out = full & ~tt(g.arg)
        elif isinstance(g, And):
            out = full
            for a in g.args:
                out &= tt(a)
        elif isinstance(g, Or):
            out = 0
            for a in g.args:
                out |= tt(a)
        else:
            raise TypeError(f"not a formula: {g!r}")
        memo[g] = out
        return out

    return tt(f)


#: Backwards-compatible alias — the bit-parallel version is the only one.
truth_table = truth_table_fast


def _joint_order(*formulas: Formula) -> Tuple[str, ...]:
    names: set = set()
    for f in formulas:
        names |= f.variables()
    return tuple(sorted(names))


def is_tautology(f: Formula) -> bool:
    """``True`` iff ``f`` is identically 1 (in every Boolean algebra)."""
    order = _joint_order(f)
    full = (1 << (1 << len(order))) - 1
    return truth_table_fast(f, order) == full


def is_contradiction(f: Formula) -> bool:
    """``True`` iff ``f`` is identically 0 (in every Boolean algebra)."""
    order = _joint_order(f)
    return truth_table_fast(f, order) == 0


def equivalent(f: Formula, g: Formula) -> bool:
    """``True`` iff ``f`` and ``g`` denote the same Boolean function."""
    order = _joint_order(f, g)
    return truth_table_fast(f, order) == truth_table_fast(g, order)


def implies(f: Formula, g: Formula) -> bool:
    """``True`` iff ``f <= g`` as Boolean functions (``f & ~g == 0``).

    This is Lemma 12's premise relation, and the ordering used throughout
    Section 4 (e.g. "atom x with x <= f").
    """
    order = _joint_order(f, g)
    tf = truth_table_fast(f, order)
    tg = truth_table_fast(g, order)
    return tf & ~tg == 0


def equivalent_under(hypothesis: Formula, f: Formula, g: Formula) -> bool:
    """``True`` iff ``f`` and ``g`` agree on all assignments where
    ``hypothesis`` holds.

    Used to compare our compiled triangular systems with the paper's §2
    display, which is simplified modulo the ground fact ``A ⊆ C``.
    """
    order = _joint_order(hypothesis, f, g)
    th = truth_table_fast(hypothesis, order)
    tf = truth_table_fast(f, order)
    tg = truth_table_fast(g, order)
    return (tf ^ tg) & th == 0


def implies_under(hypothesis: Formula, f: Formula, g: Formula) -> bool:
    """``True`` iff ``f <= g`` holds on every assignment satisfying
    ``hypothesis`` (i.e. ``hypothesis & f & ~g == 0``).

    Used for redundancy elimination modulo the ground residue when
    rendering triangular systems the way the paper's Section 2 does.
    """
    order = _joint_order(hypothesis, f, g)
    th = truth_table_fast(hypothesis, order)
    tf = truth_table_fast(f, order)
    tg = truth_table_fast(g, order)
    return th & tf & ~tg == 0


def satisfying_assignments(
    f: Formula, order: Optional[Sequence[str]] = None
) -> Iterable[Dict[str, bool]]:
    """Yield all two-valued assignments (over ``order``) satisfying ``f``."""
    if order is None:
        order = _joint_order(f)
    tt = truth_table_fast(f, order)
    n = len(order)
    for i in range(1 << n):
        if (tt >> i) & 1:
            yield {name: bool((i >> k) & 1) for k, name in enumerate(order)}


def count_satisfying(f: Formula, order: Optional[Sequence[str]] = None) -> int:
    """Number of satisfying two-valued assignments over ``order``."""
    if order is None:
        order = _joint_order(f)
    return bin(truth_table_fast(f, order)).count("1")
