"""Quine-McCluskey prime-implicant computation.

An independent algorithm for the same object as
:func:`repro.boolean.blake.blake_canonical_form` — the set of all prime
implicants — used to cross-check the consensus-based construction
(two implementations agreeing is the cheapest strong test we have for a
compile-time component the whole of Section 4 rests on).

The classical tabular method: start from the minterms of ``f``, repeatedly
merge pairs of implicants differing in exactly one specified variable, and
collect the implicants that never merged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from .normal_forms import minterms
from .syntax import Formula
from .terms import Term, absorb

# An implicant over an ordered variable list is (mask, values):
# bit k of ``mask`` set    -> variable k is specified,
# bit k of ``values`` set  -> specified positively.
_Implicant = Tuple[int, int]


def _merge(a: _Implicant, b: _Implicant) -> _Implicant | None:
    """Merge two implicants differing in exactly one specified bit."""
    if a[0] != b[0]:
        return None
    diff = a[1] ^ b[1]
    if diff == 0 or diff & (diff - 1):
        return None
    return (a[0] & ~diff, a[1] & ~diff)


def prime_implicants_qmc(f: Formula, order: Sequence[str] | None = None) -> List[Term]:
    """All prime implicants of ``f`` by the Quine-McCluskey method.

    ``order`` fixes the variable indexing (defaults to sorted variables).
    Returns an absorbed cover identical (as a set) to
    ``blake_canonical_form(f)``.
    """
    if order is None:
        order = sorted(f.variables())
    n = len(order)
    start: Set[_Implicant] = set()
    full_mask = (1 << n) - 1
    for m in minterms(f, order):
        values = 0
        for k, name in enumerate(order):
            if m.polarity(name):
                values |= 1 << k
        start.add((full_mask, values))

    primes: Set[_Implicant] = set()
    current = start
    while current:
        merged_away: Set[_Implicant] = set()
        nxt: Set[_Implicant] = set()
        # Group by mask, then bucket by popcount of values for pairing.
        by_mask: Dict[int, List[_Implicant]] = {}
        for imp in current:
            by_mask.setdefault(imp[0], []).append(imp)
        for mask, group in by_mask.items():
            buckets: Dict[int, List[_Implicant]] = {}
            for imp in group:
                buckets.setdefault(bin(imp[1]).count("1"), []).append(imp)
            for count, items in buckets.items():
                partners = buckets.get(count + 1, [])
                for a in items:
                    for b in partners:
                        m = _merge(a, b)
                        if m is not None:
                            nxt.add(m)
                            merged_away.add(a)
                            merged_away.add(b)
        primes |= current - merged_away
        current = nxt

    out: List[Term] = []
    for mask, values in primes:
        lits = {}
        for k, name in enumerate(order):
            if (mask >> k) & 1:
                lits[name] = bool((values >> k) & 1)
        out.append(Term(lits))
    return absorb(out)
