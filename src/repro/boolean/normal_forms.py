"""Classical normal forms: NNF, DNF (sum of products), CNF, minterms.

These are thin, well-tested wrappers over the term layer.  The paper uses
sum-of-products representations throughout Section 4 (``SOP f`` in
Theorem 17) and complete disjunctive normal form (minterm expansion) in
the proof of the Independence theorem, where each ``u_ij``/``v_ij`` is
required to be either equal to some ``r_j``/``s_j`` or disjoint from all
of them — a property the common minterm refinement delivers.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .syntax import And, Const, Formula, Not, Or, TRUE, Var, conj, neg
from .terms import Term, cover_to_formula, formula_to_cover, _to_nnf


def to_nnf(f: Formula) -> Formula:
    """Negation normal form: negations pushed onto variables."""
    return _to_nnf(f, positive=True)


def to_dnf(f: Formula) -> Formula:
    """Sum-of-products form (absorbed, deterministic term order)."""
    return cover_to_formula(formula_to_cover(f))


def to_cnf(f: Formula) -> Formula:
    """Product-of-sums form, via the dual of the DNF expansion."""
    dual = formula_to_cover(neg(f))
    clauses = [neg(t.to_formula()) for t in dual]
    return conj(*clauses) if clauses else TRUE


def sop_terms(f: Formula) -> List[Term]:
    """The terms of an absorbed SOP representation of ``f``."""
    return formula_to_cover(f)


def minterms(f: Formula, order: Sequence[str]) -> List[Term]:
    """Complete disjunctive normal form of ``f`` over ``order``.

    Every returned term mentions every variable of ``order`` exactly once;
    the terms are exactly the satisfying assignments of ``f``.
    """
    missing = f.variables() - set(order)
    if missing:
        raise ValueError(f"order misses variables: {sorted(missing)}")
    from .semantics import truth_table_fast

    tt = truth_table_fast(f, order)
    out: List[Term] = []
    for i in range(1 << len(order)):
        if (tt >> i) & 1:
            out.append(
                Term({name: bool((i >> k) & 1) for k, name in enumerate(order)})
            )
    return out


def from_minterms(order: Sequence[str], indices: Sequence[int]) -> Formula:
    """Build a formula from minterm indices over a variable order."""
    terms = [
        Term({name: bool((i >> k) & 1) for k, name in enumerate(order)})
        for i in indices
    ]
    return cover_to_formula(terms)


def common_refinement(covers: Sequence[Sequence[Term]], order: Sequence[str]) -> List[Term]:
    """Minterm refinement making every input term a union of outputs.

    Used by the witness construction of the Independence theorem: after
    refinement, each original term is a disjoint union of minterms, so the
    mutual-disjointness requirements of the proof hold by construction.
    """
    seen: Dict[Term, None] = {}
    for cover in covers:
        for t in cover:
            for m in minterms(t.to_formula(), order):
                seen.setdefault(m, None)
    return list(seen)


def is_nnf(f: Formula) -> bool:
    """``True`` iff negations appear only directly over variables."""
    for node in f.walk():
        if isinstance(node, Not) and not isinstance(node.arg, Var):
            return False
    return True


def is_dnf(f: Formula) -> bool:
    """``True`` iff ``f`` is a constant, literal, term, or sum of such."""

    def is_literal(g: Formula) -> bool:
        return isinstance(g, Var) or (
            isinstance(g, Not) and isinstance(g.arg, Var)
        )

    def is_term(g: Formula) -> bool:
        if is_literal(g) or isinstance(g, Const):
            return True
        return isinstance(g, And) and all(is_literal(a) for a in g.args)

    if is_term(f):
        return True
    return isinstance(f, Or) and all(is_term(a) for a in f.args)
