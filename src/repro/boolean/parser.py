"""Recursive-descent parser for the ASCII Boolean formula syntax.

Grammar (whitespace insensitive)::

    formula   := or_expr
    or_expr   := and_expr ( '|' and_expr )*
    and_expr  := not_expr ( '&' not_expr )*
    not_expr  := '~' not_expr | atom
    atom      := '0' | '1' | IDENT | '(' formula ')'
    IDENT     := [A-Za-z_][A-Za-z0-9_]*

The syntax round-trips with :func:`repro.boolean.printer.to_str`.
Parsing errors raise :class:`repro.errors.ParseError` with the offending
position, so callers can show a caret diagnostic.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from ..errors import ParseError
from .syntax import FALSE, TRUE, Formula, Var, conj, disj, neg

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<const>[01])"
    r"|(?P<op>[~&|()]))"
)


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def tokenize(text: str) -> List[_Token]:
    """Split ``text`` into tokens; raise :class:`ParseError` on junk."""
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        if text[pos].isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m or m.start() != pos:
            raise ParseError(
                f"unexpected character {text[pos]!r} at position {pos}",
                text,
                pos,
            )
        kind = m.lastgroup or "op"
        tokens.append(_Token(kind, m.group(m.lastgroup), m.start(m.lastgroup)))
        pos = m.end()
    return tokens


class _Parser:
    """Single-use recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return tok

    def expect(self, text: str) -> None:
        tok = self.advance()
        if tok.text != text:
            raise ParseError(
                f"expected {text!r} but found {tok.text!r} at position {tok.pos}",
                self.text,
                tok.pos,
            )

    def parse(self) -> Formula:
        f = self.or_expr()
        tok = self.peek()
        if tok is not None:
            raise ParseError(
                f"unexpected trailing input {tok.text!r} at position {tok.pos}",
                self.text,
                tok.pos,
            )
        return f

    def or_expr(self) -> Formula:
        parts = [self.and_expr()]
        while True:
            tok = self.peek()
            if tok is not None and tok.text == "|":
                self.advance()
                parts.append(self.and_expr())
            else:
                return disj(*parts)

    def and_expr(self) -> Formula:
        parts = [self.not_expr()]
        while True:
            tok = self.peek()
            if tok is not None and tok.text == "&":
                self.advance()
                parts.append(self.not_expr())
            else:
                return conj(*parts)

    def not_expr(self) -> Formula:
        tok = self.peek()
        if tok is not None and tok.text == "~":
            self.advance()
            return neg(self.not_expr())
        return self.atom()

    def atom(self) -> Formula:
        tok = self.advance()
        if tok.kind == "ident":
            return Var(tok.text)
        if tok.kind == "const":
            return TRUE if tok.text == "1" else FALSE
        if tok.text == "(":
            inner = self.or_expr()
            self.expect(")")
            return inner
        raise ParseError(
            f"unexpected token {tok.text!r} at position {tok.pos}",
            self.text,
            tok.pos,
        )


def parse(text: str) -> Formula:
    """Parse ``text`` into a :class:`~repro.boolean.syntax.Formula`.

    >>> from repro.boolean.printer import to_str
    >>> to_str(parse('~x & (y | z)'))
    '~x & (y | z)'
    """
    return _Parser(text).parse()
