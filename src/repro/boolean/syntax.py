"""Immutable Boolean formula abstract syntax.

The paper manipulates Boolean formulas over variables and the constants
``0`` and ``1`` with complement, conjunction and disjunction (Section 3:
"A Boolean formula is an atom, the complement of a formula, a disjunction
of formulas, or a conjunction of formulas").

This module defines that AST.  Design points:

* Formulas are **immutable and hashable**, so they can be used as
  dictionary keys (the BDD builder and the simplifier memoise on them).
* ``And``/``Or`` are *n*-ary with a canonical argument tuple: arguments are
  flattened one level, duplicates removed, and sorted by a stable syntactic
  key.  Cheap local simplifications (identity/absorbing constants,
  ``x & ~x -> 0``) are applied by the smart constructors :func:`conj` and
  :func:`disj`.  The constructors are *not* full simplifiers — semantic
  simplification lives in :mod:`repro.boolean.simplify`.
* Python operators are overloaded: ``a & b``, ``a | b``, ``~a`` build
  formulas, matching the concrete syntax of :mod:`repro.boolean.parser`.

Substitution and Shannon/Boole cofactors (``f[x <- 0]``, ``f[x <- 1]``) are
provided here because every algorithm in the paper (Theorems 2, 10, 11 and
``proj``) is phrased in terms of them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple, Union


class Formula:
    """Base class of all Boolean formula nodes.

    Instances are immutable; all subclasses define ``__eq__``/``__hash__``
    structurally.  Use the module-level smart constructors (:func:`var`,
    :func:`conj`, :func:`disj`, :func:`neg`) or the overloaded operators
    rather than instantiating ``And``/``Or`` directly.
    """

    __slots__ = ()

    # -- operator overloading -------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)

    def __rshift__(self, other: "Formula") -> "Formula":
        """Material implication ``self >> other`` = ``~self | other``."""
        return disj(neg(self), other)

    def __xor__(self, other: "Formula") -> "Formula":
        """Symmetric difference."""
        return disj(conj(self, neg(other)), conj(neg(self), other))

    def __sub__(self, other: "Formula") -> "Formula":
        """Set-style difference ``self & ~other``."""
        return conj(self, neg(other))

    # -- structure ------------------------------------------------------------
    def variables(self) -> FrozenSet[str]:
        """The set of variable names occurring in the formula."""
        out: set = set()
        _collect_vars(self, out)
        return frozenset(out)

    def mentions(self, name: str) -> bool:
        """``True`` iff variable ``name`` occurs in the formula."""
        return name in self.variables()

    def substitute(self, binding: Mapping[str, "Formula"]) -> "Formula":
        """Simultaneously replace variables by formulas.

        ``binding`` maps variable names to replacement formulas; variables
        not in the mapping are left alone.  The result is rebuilt through
        the smart constructors, so constant propagation happens on the fly.
        """
        return _substitute(self, dict(binding))

    def cofactor(self, name: str, value: bool) -> "Formula":
        """Shannon cofactor ``f[name <- value]``.

        This is the operation written ``f_x`` / ``f_x'`` in the paper and is
        the workhorse of Boole's expansion (Theorem 11), Schroeder's theorem
        (Theorem 10), existential quantification (Theorem 2) and ``proj``.
        """
        return self.substitute({name: TRUE if value else FALSE})

    def cofactors(self, name: str) -> Tuple["Formula", "Formula"]:
        """Both cofactors ``(f[name <- 0], f[name <- 1])`` in one call."""
        return self.cofactor(name, False), self.cofactor(name, True)

    # -- traversal ------------------------------------------------------------
    def walk(self) -> Iterator["Formula"]:
        """Yield every subformula (pre-order, including ``self``)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Not):
                stack.append(node.arg)
            elif isinstance(node, (And, Or)):
                stack.extend(node.args)

    def size(self) -> int:
        """Number of AST nodes — used to report formula growth in benches."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Height of the AST."""
        if isinstance(self, Not):
            return 1 + self.arg.depth()
        if isinstance(self, (And, Or)):
            return 1 + max(a.depth() for a in self.args)
        return 1

    def is_constant(self) -> bool:
        """``True`` iff the formula is syntactically ``0`` or ``1``."""
        return isinstance(self, Const)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        from .printer import to_str

        return f"Formula({to_str(self)})"


class Var(Formula):
    """A Boolean variable, identified by name.

    In the spatial setting a variable denotes an unknown region (the
    paper's ``x_1 .. x_n``) or a *bound constant* region treated
    symbolically at compile time (the example's ``C`` and ``A``).
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise TypeError("variable name must be a non-empty string")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Var", name)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Var is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash


class Const(Formula):
    """A Boolean constant: ``0`` (bottom) or ``1`` (top)."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))
        object.__setattr__(self, "_hash", hash(("Const", bool(value))))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Const is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return self._hash


#: The constant ``1`` (the whole space in the region reading).
TRUE = Const(True)
#: The constant ``0`` (the empty region).
FALSE = Const(False)


class Not(Formula):
    """Complement of a formula.

    Built through :func:`neg`, which cancels double negation and folds
    constants, so a ``Not`` node never wraps a ``Not`` or a ``Const``.
    """

    __slots__ = ("arg", "_hash")

    def __init__(self, arg: Formula):
        object.__setattr__(self, "arg", arg)
        object.__setattr__(self, "_hash", hash(("Not", arg)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Not is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and other.arg == self.arg

    def __hash__(self) -> int:
        return self._hash


class _NaryOp(Formula):
    """Shared implementation of ``And``/``Or`` (sorted arg tuple)."""

    __slots__ = ("args", "_hash")
    _tag = "?"

    def __init__(self, args: Tuple[Formula, ...]):
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash((self._tag, args)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("formula nodes are immutable")

    def __eq__(self, other) -> bool:
        return type(other) is type(self) and other.args == self.args

    def __hash__(self) -> int:
        return self._hash


class And(_NaryOp):
    """n-ary conjunction (region intersection).  Build with :func:`conj`."""

    __slots__ = ()
    _tag = "And"


class Or(_NaryOp):
    """n-ary disjunction (region union).  Build with :func:`disj`."""

    __slots__ = ()
    _tag = "Or"


FormulaLike = Union[Formula, str, bool, int]


def formula(value: FormulaLike) -> Formula:
    """Coerce a value into a :class:`Formula`.

    Strings become variables, booleans/0/1 become constants, and formulas
    pass through.  This keeps user-facing constructors forgiving without
    letting arbitrary objects leak into the AST.
    """
    if isinstance(value, Formula):
        return value
    if isinstance(value, str):
        return Var(value)
    if isinstance(value, bool):
        return TRUE if value else FALSE
    if isinstance(value, int) and value in (0, 1):
        return TRUE if value else FALSE
    raise TypeError(f"cannot interpret {value!r} as a Boolean formula")


def var(name: str) -> Var:
    """Create a variable formula (convenience alias of :class:`Var`)."""
    return Var(name)


def variables(*names: str) -> Tuple[Var, ...]:
    """Create several variables at once: ``x, y = variables('x', 'y')``."""
    return tuple(Var(n) for n in names)


def _sort_key(f: Formula) -> Tuple:
    """Stable syntactic ordering used to canonicalise argument tuples."""
    if isinstance(f, Const):
        return (0, f.value)
    if isinstance(f, Var):
        return (1, f.name)
    if isinstance(f, Not) and isinstance(f.arg, Var):
        return (2, f.arg.name)
    # Complex arguments keep a deterministic order via their repr-free key.
    return (3, _structural_key(f))


def _structural_key(f: Formula) -> str:
    if isinstance(f, Const):
        return "1" if f.value else "0"
    if isinstance(f, Var):
        return f"v:{f.name}"
    if isinstance(f, Not):
        return f"n({_structural_key(f.arg)})"
    tag = "a" if isinstance(f, And) else "o"
    return tag + "(" + ",".join(_structural_key(a) for a in f.args) + ")"


def _flatten(cls, items: Iterable[FormulaLike]) -> Iterator[Formula]:
    for item in items:
        f = formula(item)
        if isinstance(f, cls):
            yield from f.args
        else:
            yield f


def conj(*items: FormulaLike) -> Formula:
    """Conjunction with local simplification.

    Rules applied: flattening of nested ``And``; removal of ``1``;
    short-circuit to ``0`` on any ``0`` argument or on a complementary
    literal pair; duplicate removal; ``conj()`` is ``1``.
    """
    seen: Dict[Formula, None] = {}
    for f in _flatten(And, items):
        if f == FALSE:
            return FALSE
        if f == TRUE:
            continue
        seen.setdefault(f, None)
    args = sorted(seen, key=_sort_key)
    for f in args:
        if neg(f) in seen:
            return FALSE
    if not args:
        return TRUE
    if len(args) == 1:
        return args[0]
    return And(tuple(args))


def disj(*items: FormulaLike) -> Formula:
    """Disjunction with local simplification (dual of :func:`conj`)."""
    seen: Dict[Formula, None] = {}
    for f in _flatten(Or, items):
        if f == TRUE:
            return TRUE
        if f == FALSE:
            continue
        seen.setdefault(f, None)
    args = sorted(seen, key=_sort_key)
    for f in args:
        if neg(f) in seen:
            return TRUE
    if not args:
        return FALSE
    if len(args) == 1:
        return args[0]
    return Or(tuple(args))


def neg(item: FormulaLike) -> Formula:
    """Complement with double-negation cancellation and constant folding."""
    f = formula(item)
    if isinstance(f, Const):
        return FALSE if f.value else TRUE
    if isinstance(f, Not):
        return f.arg
    return Not(f)


def implies_formula(a: FormulaLike, b: FormulaLike) -> Formula:
    """The formula ``~a | b`` (not a truth judgement — see semantics)."""
    return disj(neg(a), formula(b))


def _collect_vars(f: Formula, out: set) -> None:
    stack = [f]
    while stack:
        node = stack.pop()
        if isinstance(node, Var):
            out.add(node.name)
        elif isinstance(node, Not):
            stack.append(node.arg)
        elif isinstance(node, (And, Or)):
            stack.extend(node.args)


def _substitute(f: Formula, binding: Dict[str, Formula]) -> Formula:
    if isinstance(f, Var):
        return binding.get(f.name, f)
    if isinstance(f, Const):
        return f
    if isinstance(f, Not):
        return neg(_substitute(f.arg, binding))
    parts = [_substitute(a, binding) for a in f.args]
    return conj(*parts) if isinstance(f, And) else disj(*parts)


def rename(f: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename variables according to ``mapping`` (missing names kept)."""
    return f.substitute({old: Var(new) for old, new in mapping.items()})
