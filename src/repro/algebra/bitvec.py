"""Bit-vector Boolean algebras.

``BitVectorAlgebra(n)`` is the powerset algebra of ``{0..n-1}`` with
elements packed into Python integers — isomorphic to
:class:`repro.algebra.powerset.PowersetAlgebra` but much faster, which
matters for randomized soundness testing of ``proj`` where thousands of
random evaluations are performed.
"""

from __future__ import annotations

import random
from typing import Iterator, Tuple

from .base import BooleanAlgebra


class BitVectorAlgebra(BooleanAlgebra[int]):
    """Subsets of ``{0..width-1}`` as integer bit masks."""

    def __init__(self, width: int):
        if width < 1:
            raise ValueError("width must be positive")
        super().__init__()
        self._width = width
        self._mask = (1 << width) - 1

    @property
    def width(self) -> int:
        """Number of atoms."""
        return self._width

    @property
    def top(self) -> int:
        return self._mask

    @property
    def bot(self) -> int:
        return 0

    def meet(self, a: int, b: int) -> int:
        self.ops.meet += 1
        return a & b

    def join(self, a: int, b: int) -> int:
        self.ops.join += 1
        return a | b

    def complement(self, a: int) -> int:
        self.ops.complement += 1
        return self._mask & ~a

    def is_zero(self, a: int) -> bool:
        return a == 0

    def le(self, a: int, b: int) -> bool:
        self.ops.comparisons += 1
        return a & ~b == 0

    def eq(self, a: int, b: int) -> bool:
        self.ops.comparisons += 1
        return a == b

    def random_element(self, rng: random.Random) -> int:
        """A uniformly random element."""
        return rng.getrandbits(self._width) & self._mask

    def elements(self) -> Iterator[int]:
        """All elements (guarded for small widths)."""
        if self._width > 16:
            raise ValueError("width too large to enumerate")
        return iter(range(1 << self._width))

    def atoms(self) -> Iterator[int]:
        """All single-bit elements."""
        return (1 << i for i in range(self._width))

    def is_atom(self, a: int) -> bool:
        """``True`` iff ``a`` has exactly one bit set."""
        return a != 0 and a & (a - 1) == 0

    def split(self, a: int) -> Tuple[int, int]:
        """Split multi-bit elements; atoms are unsplittable."""
        if a == 0 or self.is_atom(a):
            raise ValueError("cannot split an atom or zero in an atomic algebra")
        low = a & -a  # least significant set bit
        return low, a & ~low
