"""The free Boolean algebra on n generators, backed by BDDs.

``FreeBooleanAlgebra(['x', 'y'])`` carries Boolean *functions* over its
generators (canonically represented as BDD nodes).  It is the
Lindenbaum-Tarski algebra of propositional formulas — atomic (its atoms
are the minterms) but useful as an oracle: a constraint holds in the free
algebra under the generic assignment iff the corresponding formula
identity is valid.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..boolean.bdd import Bdd
from ..boolean.syntax import Formula
from .base import BooleanAlgebra


class FreeBooleanAlgebra(BooleanAlgebra[int]):
    """Boolean functions over fixed generators; elements are BDD nodes."""

    def __init__(self, generators: Sequence[str]):
        super().__init__()
        self._mgr = Bdd(list(generators))
        self._generators = tuple(generators)

    @property
    def generators(self) -> Tuple[str, ...]:
        """Generator names in BDD order."""
        return self._generators

    @property
    def manager(self) -> Bdd:
        """The underlying BDD manager."""
        return self._mgr

    @property
    def top(self) -> int:
        return self._mgr.true

    @property
    def bot(self) -> int:
        return self._mgr.false

    def generator(self, name: str) -> int:
        """The element for a generator."""
        if name not in self._generators:
            raise KeyError(f"unknown generator {name!r}")
        return self._mgr.var(name)

    def generic_env(self) -> Dict[str, int]:
        """The assignment sending each generator to itself."""
        return {g: self.generator(g) for g in self._generators}

    def from_formula(self, f: Formula) -> int:
        """Interpret a formula over the generators."""
        unknown = f.variables() - set(self._generators)
        if unknown:
            raise KeyError(f"formula uses non-generators {sorted(unknown)}")
        return self._mgr.from_formula(f)

    def meet(self, a: int, b: int) -> int:
        self.ops.meet += 1
        return self._mgr.apply_and(a, b)

    def join(self, a: int, b: int) -> int:
        self.ops.join += 1
        return self._mgr.apply_or(a, b)

    def complement(self, a: int) -> int:
        self.ops.complement += 1
        return self._mgr.apply_not(a)

    def is_zero(self, a: int) -> bool:
        return a == self._mgr.false

    def eq(self, a: int, b: int) -> bool:
        self.ops.comparisons += 1
        return a == b

    def is_atom(self, a: int) -> bool:
        """Atoms of the free algebra are the minterms."""
        return a != self._mgr.false and self._mgr.sat_count(
            a, len(self._generators)
        ) == 1
