"""The atomless algebra of finite unions of half-open intervals.

``IntervalAlgebra(lo, hi)`` is the Boolean algebra of finite unions of
half-open intervals ``[a, b) ⊆ [lo, hi)`` with rational endpoints.  It is
a dense subalgebra of the measurable subsets of the line — the paper's
canonical example of an **atomless** algebra (Section 3: "One example of
an atomless algebra which is important in a spatial database context are
the measurable sets in R^k") — restricted to the sets for which emptiness
is *exactly* decidable.

Atomlessness is constructive here: any nonzero element contains a strictly
smaller nonzero element (cut an interval at its midpoint), which is what
:meth:`IntervalAlgebra.split` implements and what the Independence theorem
(Theorem 6) proof needs.

Elements are :class:`IntervalSet` values: canonical sorted tuples of
disjoint, non-adjacent ``(Fraction, Fraction)`` pairs.  Canonical form
makes equality a tuple comparison.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, List, Sequence, Tuple, Union

from ..errors import UniverseMismatchError
from .base import BooleanAlgebra

Number = Union[int, float, Fraction]


def _frac(x: Number) -> Fraction:
    return x if isinstance(x, Fraction) else Fraction(x)


class IntervalSet:
    """A canonical finite union of half-open intervals ``[a, b)``.

    Immutable.  The canonical representation is a sorted tuple of
    disjoint, non-touching intervals with ``a < b``; two IntervalSets are
    equal iff they denote the same point set.
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Tuple[Number, Number]] = ()):
        pairs = [
            (_frac(a), _frac(b)) for a, b in intervals if _frac(a) < _frac(b)
        ]
        pairs.sort()
        merged: List[Tuple[Fraction, Fraction]] = []
        for a, b in pairs:
            if merged and a <= merged[-1][1]:
                prev_a, prev_b = merged[-1]
                merged[-1] = (prev_a, max(prev_b, b))
            else:
                merged.append((a, b))
        object.__setattr__(self, "intervals", tuple(merged))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("IntervalSet is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, IntervalSet) and other.intervals == self.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        body = " u ".join(f"[{a},{b})" for a, b in self.intervals)
        return f"IntervalSet({body or 'empty'})"

    # -- measure-theoretic views ---------------------------------------------------
    def measure(self) -> Fraction:
        """Total length."""
        return sum((b - a for a, b in self.intervals), Fraction(0))

    def is_empty(self) -> bool:
        """Exact emptiness (the predicate deciding ``g != 0``)."""
        return not self.intervals

    def bounding_interval(self) -> Tuple[Fraction, Fraction] | None:
        """Minimal enclosing interval (the 1-D bounding box), or ``None``."""
        if not self.intervals:
            return None
        return self.intervals[0][0], self.intervals[-1][1]

    def contains_point(self, x: Number) -> bool:
        """Membership of a single point."""
        q = _frac(x)
        return any(a <= q < b for a, b in self.intervals)

    @staticmethod
    def interval(a: Number, b: Number) -> "IntervalSet":
        """The single interval ``[a, b)``."""
        return IntervalSet([(a, b)])


class IntervalAlgebra(BooleanAlgebra[IntervalSet]):
    """Finite unions of half-open subintervals of the universe ``[lo, hi)``."""

    def __init__(self, lo: Number = 0, hi: Number = 1):
        super().__init__()
        lo, hi = _frac(lo), _frac(hi)
        if not lo < hi:
            raise ValueError("universe must have positive length")
        self._lo, self._hi = lo, hi
        self._top = IntervalSet([(lo, hi)])
        self._bot = IntervalSet()

    @property
    def universe(self) -> Tuple[Fraction, Fraction]:
        """The pair ``(lo, hi)``."""
        return self._lo, self._hi

    @property
    def top(self) -> IntervalSet:
        return self._top

    @property
    def bot(self) -> IntervalSet:
        return self._bot

    def _check(self, a: IntervalSet) -> None:
        if a.intervals and (
            a.intervals[0][0] < self._lo or a.intervals[-1][1] > self._hi
        ):
            raise UniverseMismatchError(
                f"element {a!r} exceeds the universe [{self._lo}, {self._hi})"
            )

    def meet(self, a: IntervalSet, b: IntervalSet) -> IntervalSet:
        self.ops.meet += 1
        out: List[Tuple[Fraction, Fraction]] = []
        bs = b.intervals
        j = 0
        for a0, a1 in a.intervals:
            while j < len(bs) and bs[j][1] <= a0:
                j += 1
            k = j
            while k < len(bs) and bs[k][0] < a1:
                lo = max(a0, bs[k][0])
                hi = min(a1, bs[k][1])
                if lo < hi:
                    out.append((lo, hi))
                k += 1
        return IntervalSet(out)

    def join(self, a: IntervalSet, b: IntervalSet) -> IntervalSet:
        self.ops.join += 1
        return IntervalSet(list(a.intervals) + list(b.intervals))

    def complement(self, a: IntervalSet) -> IntervalSet:
        self.ops.complement += 1
        self._check(a)
        out: List[Tuple[Fraction, Fraction]] = []
        cursor = self._lo
        for lo, hi in a.intervals:
            if cursor < lo:
                out.append((cursor, lo))
            cursor = max(cursor, hi)
        if cursor < self._hi:
            out.append((cursor, self._hi))
        return IntervalSet(out)

    def is_zero(self, a: IntervalSet) -> bool:
        return a.is_empty()

    # -- atomless interface ---------------------------------------------------------
    def is_atomless(self) -> bool:
        return True

    def split(self, a: IntervalSet) -> Tuple[IntervalSet, IntervalSet]:
        """Split nonzero ``a`` into two disjoint nonzero halves.

        The first interval is cut at its midpoint; the midpoint is a
        rational, so the construction never loses exactness.
        """
        if a.is_empty():
            raise ValueError("cannot split the zero element")
        (lo, hi) = a.intervals[0]
        mid = (lo + hi) / 2
        first = IntervalSet([(lo, mid)])
        rest = IntervalSet([(mid, hi)] + list(a.intervals[1:]))
        return first, rest

    # -- convenience ------------------------------------------------------------------
    def interval(self, a: Number, b: Number) -> IntervalSet:
        """The element ``[a, b)`` clipped to the universe."""
        lo = max(_frac(a), self._lo)
        hi = min(_frac(b), self._hi)
        return IntervalSet([(lo, hi)])

    def from_pairs(self, pairs: Sequence[Tuple[Number, Number]]) -> IntervalSet:
        """Build an element from interval pairs, clipped to the universe."""
        out = self._bot
        for a, b in pairs:
            out = self.join(out, self.interval(a, b))
        return out
