"""Boolean algebra carriers.

The constraint machinery of :mod:`repro.constraints` is parametric in a
Boolean algebra; this package supplies the carriers used by the paper:

* :class:`TwoValuedAlgebra` — B2 (atomic, degenerate);
* :class:`PowersetAlgebra` / :class:`BitVectorAlgebra` — finite atomic
  algebras (Example 1's approximation-only witnesses);
* :class:`IntervalAlgebra` — 1-D atomless (unions of half-open intervals);
* :class:`RegionAlgebra` — k-D atomless box-union regions: the spatial
  data model;
* :class:`FreeBooleanAlgebra` — the BDD-backed free algebra (test oracle).
"""

from .base import BooleanAlgebra, OpCounter
from .bitvec import BitVectorAlgebra
from .boolean2 import TwoValuedAlgebra
from .intervals import IntervalAlgebra, IntervalSet
from .laws import check_all_laws
from .lindenbaum import FreeBooleanAlgebra
from .powerset import PowersetAlgebra
from .regions import Region, RegionAlgebra, box_subtract

__all__ = [
    "BitVectorAlgebra",
    "BooleanAlgebra",
    "FreeBooleanAlgebra",
    "IntervalAlgebra",
    "IntervalSet",
    "OpCounter",
    "PowersetAlgebra",
    "Region",
    "RegionAlgebra",
    "TwoValuedAlgebra",
    "box_subtract",
    "check_all_laws",
]
