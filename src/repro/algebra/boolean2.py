"""The two-valued Boolean algebra B2.

The degenerate carrier ``{0, 1}``.  The paper notes (Section 1) that over
two-valued algebras negative constraints add no expressive power, since
``f != 0`` is equivalent to the positive constraint ``~f = 0`` — B2 is the
counterpoint against which the atomless results are interesting.  It is
also the algebra through which all formula-level identities are decided
(see :mod:`repro.boolean.semantics`).
"""

from __future__ import annotations

from .base import BooleanAlgebra


class TwoValuedAlgebra(BooleanAlgebra[bool]):
    """B2: elements are Python bools."""

    @property
    def top(self) -> bool:
        return True

    @property
    def bot(self) -> bool:
        return False

    def meet(self, a: bool, b: bool) -> bool:
        self.ops.meet += 1
        return a and b

    def join(self, a: bool, b: bool) -> bool:
        self.ops.join += 1
        return a or b

    def complement(self, a: bool) -> bool:
        self.ops.complement += 1
        return not a

    def is_zero(self, a: bool) -> bool:
        return not a

    def elements(self):
        """All elements (for exhaustive tests)."""
        return [False, True]
