"""The Boolean algebra interface and shared helpers.

The paper's constraint language is interpreted over an arbitrary Boolean
algebra ``M`` (Section 3); the spatially relevant ones are *atomless*
(Definition before Theorem 6 — "M is atomless iff it contains no atomic
elements"), e.g. the measurable subsets of R^k modulo null sets.

Every carrier in :mod:`repro.algebra` implements :class:`BooleanAlgebra`.
Carriers are deliberately *instrumented*: each structural operation bumps
a counter on :class:`OpCounter`, so benchmarks can report "number of exact
region operations" — the cost the paper's bounding-box approximation is
designed to avoid.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generic, Iterable, Tuple, TypeVar

E = TypeVar("E")


@dataclass
class OpCounter:
    """Mutable operation counters attached to an algebra instance."""

    meet: int = 0
    join: int = 0
    complement: int = 0
    comparisons: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.meet = self.join = self.complement = self.comparisons = 0

    @property
    def total(self) -> int:
        """Total structural operations performed."""
        return self.meet + self.join + self.complement + self.comparisons

    def snapshot(self) -> dict:
        """Plain-dict copy, for benchmark reporting."""
        return {
            "meet": self.meet,
            "join": self.join,
            "complement": self.complement,
            "comparisons": self.comparisons,
            "total": self.total,
        }


class BooleanAlgebra(abc.ABC, Generic[E]):
    """Abstract Boolean algebra over elements of type ``E``.

    Subclasses provide ``top``, ``bot`` and the three structural
    operations; the comparison helpers (`le`, `eq`, `is_zero`,
    `disjoint`, `overlaps`) are derived but may be overridden with faster
    carrier-specific versions.
    """

    def __init__(self):
        self.ops = OpCounter()

    # -- required interface ------------------------------------------------------
    @property
    @abc.abstractmethod
    def top(self) -> E:
        """The unit element ``1`` (the whole space)."""

    @property
    @abc.abstractmethod
    def bot(self) -> E:
        """The zero element ``0`` (the empty region)."""

    @abc.abstractmethod
    def meet(self, a: E, b: E) -> E:
        """Greatest lower bound (intersection)."""

    @abc.abstractmethod
    def join(self, a: E, b: E) -> E:
        """Least upper bound (union)."""

    @abc.abstractmethod
    def complement(self, a: E) -> E:
        """The complement within the algebra's universe."""

    @abc.abstractmethod
    def is_zero(self, a: E) -> bool:
        """``True`` iff ``a`` is the zero element.

        Disequations ``g != 0`` — the paper's negative constraints — are
        decided by exactly this predicate.
        """

    # -- derived operations --------------------------------------------------------
    def diff(self, a: E, b: E) -> E:
        """Difference ``a & ~b``."""
        return self.meet(a, self.complement(b))

    def xor(self, a: E, b: E) -> E:
        """Symmetric difference."""
        return self.join(self.diff(a, b), self.diff(b, a))

    def le(self, a: E, b: E) -> bool:
        """Containment ``a <= b``, i.e. ``a & ~b == 0``."""
        self.ops.comparisons += 1
        return self.is_zero(self.diff(a, b))

    def eq(self, a: E, b: E) -> bool:
        """Element equality as ``a <= b`` and ``b <= a``."""
        return self.le(a, b) and self.le(b, a)

    def lt(self, a: E, b: E) -> bool:
        """Strict containment."""
        return self.le(a, b) and not self.le(b, a)

    def disjoint(self, a: E, b: E) -> bool:
        """``True`` iff ``a & b == 0``."""
        self.ops.comparisons += 1
        return self.is_zero(self.meet(a, b))

    def overlaps(self, a: E, b: E) -> bool:
        """``True`` iff ``a & b != 0`` — the spatial overlay predicate."""
        return not self.disjoint(a, b)

    def join_all(self, items: Iterable[E]) -> E:
        """Join of an iterable (``0`` for the empty iterable)."""
        acc = self.bot
        for item in items:
            acc = self.join(acc, item)
        return acc

    def meet_all(self, items: Iterable[E]) -> E:
        """Meet of an iterable (``1`` for the empty iterable)."""
        acc = self.top
        for item in items:
            acc = self.meet(acc, item)
        return acc

    # -- atomless interface ----------------------------------------------------------
    def is_atomless(self) -> bool:
        """Whether this carrier is atomless (Theorems 6-9 apply exactly).

        Carriers that can split every nonzero element override this to
        return ``True`` and implement :meth:`split`.
        """
        return False

    def split(self, a: E) -> Tuple[E, E]:
        """Split nonzero ``a`` into two disjoint nonzero parts.

        Only available on atomless carriers; this is the constructive
        content of atomlessness used by the Independence theorem's proof
        ("Since M is atomless we can find for every u_ij and v_ij a
        proper nonempty subset").
        """
        raise NotImplementedError(
            f"{type(self).__name__} is not atomless; cannot split"
        )

    def proper_nonempty_subset(self, a: E) -> E:
        """A proper nonzero subset of nonzero ``a`` (first half of split)."""
        return self.split(a)[0]


def check_element_equality(algebra: BooleanAlgebra, a, b) -> bool:
    """Equality modulo the algebra (used by generic tests)."""
    return algebra.eq(a, b)
