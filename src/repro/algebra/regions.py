"""The k-dimensional region algebra — the paper's spatial data model.

``RegionAlgebra(universe)`` is the Boolean algebra of finite unions of
half-open axis-parallel boxes inside a universe box.  Over real
coordinates this is a dense subalgebra of the measurable subsets of R^k
(the paper's atomless model: "the data model in spatial databases in
which regions are not arranged on a grid") that additionally has an
**exactly decidable** emptiness test, which is what the disequations
``g != 0`` require.

Elements are :class:`Region` values holding pairwise-disjoint boxes, so
``measure`` is a plain sum of volumes and ``is_empty`` is a length check.
The structural operations keep disjointness invariantly:

* intersection — pairwise box meets (disjointness is preserved);
* union — new boxes are added minus the existing ones
  (:func:`box_subtract` splinters a box into at most ``2k`` pieces);
* complement — successive subtraction from the universe box.

The minimal bounding box ``⌈r⌉`` (:meth:`Region.bounding_box`) is the
bridge into Section 4 of the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..boxes.box import Box, enclose_all
from ..errors import DimensionMismatchError, UniverseMismatchError
from .base import BooleanAlgebra


def box_subtract(a: Box, b: Box) -> List[Box]:
    """``a \\ b`` as a list of pairwise-disjoint boxes (at most ``2k``).

    Classic axis sweep: for each dimension, the parts of ``a`` hanging
    below/above ``b`` in that dimension are split off, and the remaining
    core is narrowed; anything left at the end is ``a ∩ b`` and is
    discarded.
    """
    if a.is_empty():
        return []
    inter = a.meet(b)
    if inter.is_empty():
        return [a]
    out: List[Box] = []
    lo = list(a.lo)
    hi = list(a.hi)
    for d in range(a.dim):
        if lo[d] < inter.lo[d]:
            piece_lo = list(lo)
            piece_hi = list(hi)
            piece_hi[d] = inter.lo[d]
            out.append(Box(piece_lo, piece_hi))
            lo[d] = inter.lo[d]
        if inter.hi[d] < hi[d]:
            piece_lo = list(lo)
            piece_hi = list(hi)
            piece_lo[d] = inter.hi[d]
            out.append(Box(piece_lo, piece_hi))
            hi[d] = inter.hi[d]
    return out


class Region:
    """A finite union of pairwise-disjoint half-open boxes.

    Immutable value object.  Use :meth:`from_boxes` (or the algebra's
    helpers) to construct from arbitrary, possibly overlapping boxes.
    Set-equality of regions is decided exactly via double difference.
    """

    __slots__ = ("boxes",)

    def __init__(self, disjoint_boxes: Iterable[Box] = ()):
        cleaned = tuple(b for b in disjoint_boxes if not b.is_empty())
        dims = {b.dim for b in cleaned}
        if len(dims) > 1:
            raise DimensionMismatchError(
                f"boxes of mixed dimensions: {sorted(dims)}"
            )
        object.__setattr__(self, "boxes", cleaned)

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Region is immutable")

    @classmethod
    def _trusted(cls, boxes: Tuple[Box, ...]) -> "Region":
        """Construct from known-disjoint, known-nonempty, same-dimension
        boxes (the snapshot load path); skips the constructor's filter
        and mixed-dimension check."""
        region = cls.__new__(cls)
        object.__setattr__(region, "boxes", boxes)
        return region

    @staticmethod
    def from_boxes(boxes: Iterable[Box]) -> "Region":
        """Build a region from arbitrary (overlapping) boxes."""
        disjoint: List[Box] = []
        for b in boxes:
            pieces = [b]
            for existing in disjoint:
                nxt: List[Box] = []
                for piece in pieces:
                    nxt.extend(box_subtract(piece, existing))
                pieces = nxt
                if not pieces:
                    break
            disjoint.extend(pieces)
        return Region(disjoint)

    @staticmethod
    def from_box(box: Box) -> "Region":
        """A single-box region."""
        return Region([box] if not box.is_empty() else [])

    @staticmethod
    def empty() -> "Region":
        """The empty region."""
        return Region(())

    # -- queries ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Exact emptiness."""
        return not self.boxes

    @property
    def dim(self) -> Optional[int]:
        """Dimension, or ``None`` for the (polymorphic) empty region."""
        return self.boxes[0].dim if self.boxes else None

    def measure(self) -> float:
        """Lebesgue measure (sum of disjoint box volumes)."""
        return sum(b.volume() for b in self.boxes)

    def box_count(self) -> int:
        """Number of boxes in the internal representation."""
        return len(self.boxes)

    def bounding_box(self) -> Box:
        """``⌈self⌉`` — the minimal surrounding bounding box (Section 4)."""
        return enclose_all(self.boxes)

    def contains_point(self, point: Sequence[float]) -> bool:
        """Half-open point membership."""
        return any(b.contains_point(point) for b in self.boxes)

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Region({len(self.boxes)} boxes, measure={self.measure():g})"

    def __eq__(self, other) -> bool:
        """Exact set equality (mutual containment via subtraction)."""
        if not isinstance(other, Region):
            return NotImplemented
        return _difference(self, other).is_empty() and _difference(
            other, self
        ).is_empty()

    def __hash__(self):  # Region equality is semantic; hashing is unsafe.
        raise TypeError("Region is unhashable; use id-keyed containers")

    def translate(self, offset: Sequence[float]) -> "Region":
        """Shift the whole region by an offset vector."""
        return Region(tuple(b.translate(offset) for b in self.boxes))


def _difference(a: Region, b: Region) -> Region:
    pieces: List[Box] = list(a.boxes)
    for cut in b.boxes:
        nxt: List[Box] = []
        for piece in pieces:
            nxt.extend(box_subtract(piece, cut))
        pieces = nxt
        if not pieces:
            break
    return Region(pieces)


class RegionAlgebra(BooleanAlgebra[Region]):
    """Box-union regions within a universe box — atomless and exact.

    The carrier for the paper's headline results: ``proj`` is exact here
    (Theorem 8), every ``⌈·⌉`` is computable, and emptiness is decidable.
    """

    def __init__(self, universe: Box):
        super().__init__()
        if universe.is_empty():
            raise ValueError("universe box must be non-empty")
        self._universe = universe
        self._top = Region((universe,))

    @property
    def universe_box(self) -> Box:
        """The universe box (top's single box)."""
        return self._universe

    @property
    def top(self) -> Region:
        return self._top

    @property
    def bot(self) -> Region:
        return Region(())

    def _check(self, a: Region) -> None:
        for b in a.boxes:
            if not b.le(self._universe):
                raise UniverseMismatchError(
                    f"box {b!r} exceeds universe {self._universe!r}"
                )

    def meet(self, a: Region, b: Region) -> Region:
        self.ops.meet += 1
        out: List[Box] = []
        for ba in a.boxes:
            for bb in b.boxes:
                inter = ba.meet(bb)
                if not inter.is_empty():
                    out.append(inter)
        return Region(out)

    def join(self, a: Region, b: Region) -> Region:
        self.ops.join += 1
        pieces: List[Box] = list(a.boxes)
        for new in b.boxes:
            fragments = [new]
            for existing in a.boxes:
                nxt: List[Box] = []
                for frag in fragments:
                    nxt.extend(box_subtract(frag, existing))
                fragments = nxt
                if not fragments:
                    break
            pieces.extend(fragments)
        return Region(pieces)

    def complement(self, a: Region) -> Region:
        self.ops.complement += 1
        self._check(a)
        return _difference(self._top, a)

    def diff(self, a: Region, b: Region) -> Region:
        """Difference without materialising the complement."""
        self.ops.meet += 1
        return _difference(a, b)

    def is_zero(self, a: Region) -> bool:
        return a.is_empty()

    def eq(self, a: Region, b: Region) -> bool:
        self.ops.comparisons += 1
        return a == b

    # -- atomless interface -----------------------------------------------------------
    def is_atomless(self) -> bool:
        return True

    def split(self, a: Region) -> Tuple[Region, Region]:
        """Split a nonzero region into two disjoint nonzero parts.

        The first box is bisected along its widest dimension — the
        constructive atomlessness used by the Independence theorem.
        """
        if a.is_empty():
            raise ValueError("cannot split the zero element")
        first = a.boxes[0]
        sides = first.sides()
        d = sides.index(max(sides))
        mid = (first.lo[d] + first.hi[d]) / 2
        if not first.lo[d] < mid < first.hi[d]:  # pragma: no cover
            raise ArithmeticError("float underflow while splitting region")
        lo_hi = list(first.hi)
        lo_hi[d] = mid
        hi_lo = list(first.lo)
        hi_lo[d] = mid
        part1 = Region((Box(first.lo, lo_hi),))
        part2 = Region((Box(hi_lo, first.hi),) + a.boxes[1:])
        return part1, part2

    # -- convenience --------------------------------------------------------------------
    def region(self, *interval_lists: Sequence[Tuple[float, float]]) -> Region:
        """Build a region from per-box interval lists.

        ``alg.region([(0,1),(0,1)], [(2,3),(2,3)])`` is the union of two
        unit squares.
        """
        return Region.from_boxes(
            [Box.from_intervals(*ivs) for ivs in interval_lists]
        )

    def box_region(self, box: Box) -> Region:
        """A single-box region, checked against the universe."""
        out = Region.from_box(box.meet(self._universe))
        return out
