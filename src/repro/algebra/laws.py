"""Reusable Boolean-algebra law checkers.

Each function checks one algebra axiom (or a derived law) on concrete
elements and returns a bool; the hypothesis suites drive them with random
elements of every carrier.  Keeping the laws here avoids copy-pasted
assertions across the per-carrier test files and documents precisely
which structure the paper's theorems rely on.
"""

from __future__ import annotations

from typing import Sequence

from .base import BooleanAlgebra


def associativity(alg: BooleanAlgebra, a, b, c) -> bool:
    """``(a ∨ b) ∨ c == a ∨ (b ∨ c)`` and dually for meet."""
    return alg.eq(
        alg.join(alg.join(a, b), c), alg.join(a, alg.join(b, c))
    ) and alg.eq(alg.meet(alg.meet(a, b), c), alg.meet(a, alg.meet(b, c)))


def commutativity(alg: BooleanAlgebra, a, b) -> bool:
    """``a ∨ b == b ∨ a`` and dually."""
    return alg.eq(alg.join(a, b), alg.join(b, a)) and alg.eq(
        alg.meet(a, b), alg.meet(b, a)
    )


def absorption(alg: BooleanAlgebra, a, b) -> bool:
    """``a ∨ (a ∧ b) == a`` and ``a ∧ (a ∨ b) == a``."""
    return alg.eq(alg.join(a, alg.meet(a, b)), a) and alg.eq(
        alg.meet(a, alg.join(a, b)), a
    )


def identity_elements(alg: BooleanAlgebra, a) -> bool:
    """``a ∨ 0 == a`` and ``a ∧ 1 == a``."""
    return alg.eq(alg.join(a, alg.bot), a) and alg.eq(
        alg.meet(a, alg.top), a
    )


def distributivity(alg: BooleanAlgebra, a, b, c) -> bool:
    """``a ∧ (b ∨ c) == (a ∧ b) ∨ (a ∧ c)`` and its dual."""
    lhs1 = alg.meet(a, alg.join(b, c))
    rhs1 = alg.join(alg.meet(a, b), alg.meet(a, c))
    lhs2 = alg.join(a, alg.meet(b, c))
    rhs2 = alg.meet(alg.join(a, b), alg.join(a, c))
    return alg.eq(lhs1, rhs1) and alg.eq(lhs2, rhs2)


def complementation(alg: BooleanAlgebra, a) -> bool:
    """``a ∨ ~a == 1`` and ``a ∧ ~a == 0``."""
    na = alg.complement(a)
    return alg.eq(alg.join(a, na), alg.top) and alg.is_zero(alg.meet(a, na))


def involution(alg: BooleanAlgebra, a) -> bool:
    """``~~a == a``."""
    return alg.eq(alg.complement(alg.complement(a)), a)


def de_morgan(alg: BooleanAlgebra, a, b) -> bool:
    """``~(a ∨ b) == ~a ∧ ~b`` and its dual."""
    return alg.eq(
        alg.complement(alg.join(a, b)),
        alg.meet(alg.complement(a), alg.complement(b)),
    ) and alg.eq(
        alg.complement(alg.meet(a, b)),
        alg.join(alg.complement(a), alg.complement(b)),
    )


def le_is_partial_order(alg: BooleanAlgebra, a, b) -> bool:
    """Antisymmetry of ``<=`` w.r.t. element equality."""
    if alg.le(a, b) and alg.le(b, a):
        return alg.eq(a, b)
    return True


def split_law(alg: BooleanAlgebra, a) -> bool:
    """On atomless carriers: split parts are nonzero, disjoint, exhaustive."""
    if alg.is_zero(a):
        return True
    p, q = alg.split(a)
    return (
        not alg.is_zero(p)
        and not alg.is_zero(q)
        and alg.is_zero(alg.meet(p, q))
        and alg.eq(alg.join(p, q), a)
    )


ALL_BINARY_LAWS = [commutativity, absorption, de_morgan, le_is_partial_order]
ALL_TERNARY_LAWS = [associativity, distributivity]
ALL_UNARY_LAWS = [identity_elements, complementation, involution]


def check_all_laws(alg: BooleanAlgebra, elements: Sequence) -> None:
    """Assert every law on all combinations drawn from ``elements``."""
    for a in elements:
        for law in ALL_UNARY_LAWS:
            assert law(alg, a), f"{law.__name__} failed on {a!r}"
        for b in elements:
            for law in ALL_BINARY_LAWS:
                assert law(alg, a, b), f"{law.__name__} failed"
            for c in elements:
                for law in ALL_TERNARY_LAWS:
                    assert law(alg, a, b, c), f"{law.__name__} failed"
