"""Finite powerset algebras.

``PowersetAlgebra(universe)`` is the Boolean algebra of all subsets of a
finite universe, with elements represented as ``frozenset``.  Finite
powerset algebras are **atomic** (every singleton is an atom), so they
witness the paper's Example 1: the projection ``proj(S, x)`` is only an
*approximation* of ``exists x. S`` here — the system
``x & y != 0  and  ~x & y != 0`` is satisfiable only when ``|y| >= 2``,
which no Boolean constraint over ``y`` can express.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Tuple

from .base import BooleanAlgebra


class PowersetAlgebra(BooleanAlgebra[FrozenSet]):
    """The algebra of all subsets of a finite ``universe``."""

    def __init__(self, universe: Iterable):
        super().__init__()
        self._universe = frozenset(universe)

    @property
    def universe(self) -> FrozenSet:
        """The underlying finite universe."""
        return self._universe

    @property
    def top(self) -> FrozenSet:
        return self._universe

    @property
    def bot(self) -> FrozenSet:
        return frozenset()

    def meet(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        self.ops.meet += 1
        return a & b

    def join(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        self.ops.join += 1
        return a | b

    def complement(self, a: FrozenSet) -> FrozenSet:
        self.ops.complement += 1
        return self._universe - a

    def is_zero(self, a: FrozenSet) -> bool:
        return not a

    def le(self, a: FrozenSet, b: FrozenSet) -> bool:
        self.ops.comparisons += 1
        return a <= b

    def eq(self, a: FrozenSet, b: FrozenSet) -> bool:
        self.ops.comparisons += 1
        return a == b

    # -- atoms -------------------------------------------------------------------
    def atoms(self) -> Iterator[FrozenSet]:
        """All atoms (singletons)."""
        for item in sorted(self._universe, key=repr):
            yield frozenset([item])

    def is_atom(self, a: FrozenSet) -> bool:
        """``True`` iff ``a`` is a singleton."""
        return len(a) == 1

    def elements(self) -> Iterator[FrozenSet]:
        """All 2^|universe| elements (small universes only)."""
        items = sorted(self._universe, key=repr)
        n = len(items)
        if n > 16:
            raise ValueError("universe too large to enumerate")
        for mask in range(1 << n):
            yield frozenset(
                items[i] for i in range(n) if (mask >> i) & 1
            )

    def split(self, a: FrozenSet) -> Tuple[FrozenSet, FrozenSet]:
        """Split when possible; atoms are not splittable (atomic algebra)."""
        if len(a) < 2:
            raise ValueError("cannot split an atom or zero in an atomic algebra")
        items = sorted(a, key=repr)
        return frozenset(items[:1]), frozenset(items[1:])
