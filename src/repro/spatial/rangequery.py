"""Figure 3: one orthogonal range query per retrieval step.

The paper (Section 4, after [12]) reduces any conjunction of the three
bounding-box constraint forms on an unknown box ``⌈x⌉`` to a SINGLE
orthogonal range query, by representing each box ``[lo_1,hi_1) × … ×
[lo_k,hi_k)`` as the point ``(lo_1..lo_k, hi_1..hi_k)`` in ``X^2k``:

* ``⌈x⌉ ⊑ a``      ⇔  ``lo_d ≥ a.lo_d`` and ``hi_d ≤ a.hi_d``  per d;
* ``b ⊑ ⌈x⌉``      ⇔  ``lo_d ≤ b.lo_d`` and ``hi_d ≥ b.hi_d``  per d;
* ``⌈x⌉ ⊓ c ≠ ∅``  ⇔  ``lo_d < c.hi_d`` and ``hi_d > c.lo_d``  per d
  (open bounds because boxes are half-open).

Each is a per-coordinate interval constraint on the 2k-dim point, so
their conjunction is one axis-parallel rectangle in ``X^2k`` —
:func:`compile_range` computes it (with an epsilon fringe translating the
open bounds into the closed ranges indexes support).

Figure 3 itself is the 1-dimensional picture: the set of intervals
``{x : a ⊑ ⌈x⌉ ⊑ b, ⌈x⌉ ⊓ c ≠ ∅}`` drawn as a shaded rectangle in the
(start, end) plane; :func:`figure3_rectangle` reproduces the figure's
data for the docs/benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box


#: Tolerance converting strict inequalities to closed index ranges.
#: Coordinates in the library are floats; OPEN_EPS must be below the
#: smallest coordinate distinction in the data set.
OPEN_EPS = 1e-9

_INF = float("inf")


@dataclass(frozen=True)
class PointRange:
    """A closed orthogonal range in ``X^{2k}`` (the Figure 3 rectangle)."""

    lo: Tuple[float, ...]
    hi: Tuple[float, ...]

    @property
    def dim(self) -> int:
        return len(self.lo)

    def is_empty(self) -> bool:
        """``True`` when no point can satisfy the range."""
        return any(a > b for a, b in zip(self.lo, self.hi))

    def contains(self, point: Sequence[float]) -> bool:
        """Closed-range membership."""
        return all(
            a <= p <= b for p, a, b in zip(point, self.lo, self.hi)
        )

    def clip_finite(self, universe: Box) -> "PointRange":
        """Replace infinities using a universe box (for finite indexes)."""
        k = universe.dim
        lo = list(self.lo)
        hi = list(self.hi)
        for d in range(k):
            lo[d] = max(lo[d], universe.lo[d] - 1.0)
            lo[k + d] = max(lo[k + d], universe.lo[d] - 1.0)
            hi[d] = min(hi[d], universe.hi[d] + 1.0)
            hi[k + d] = min(hi[k + d], universe.hi[d] + 1.0)
        return PointRange(tuple(lo), tuple(hi))


def compile_range(query: BoxQuery, k: int, eps: float = OPEN_EPS) -> PointRange:
    """Compile a :class:`BoxQuery` into ONE 2k-dimensional point range.

    This is the paper's headline reduction: however many constraints of
    the three forms the step accumulated, the index answers them with a
    single orthogonal range query.
    """
    lo = [-_INF] * (2 * k)
    hi = [_INF] * (2 * k)

    def tighten_lo(i: int, v: float) -> None:
        if v > lo[i]:
            lo[i] = v

    def tighten_hi(i: int, v: float) -> None:
        if v < hi[i]:
            hi[i] = v

    if query.inside is not None and not query.inside.is_empty():
        a = query.inside
        for d in range(k):
            tighten_lo(d, a.lo[d])  # lo_d >= a.lo_d
            tighten_hi(k + d, a.hi[d])  # hi_d <= a.hi_d
    elif query.inside is not None and query.inside.is_empty():
        return PointRange(tuple([1.0] * 2 * k), tuple([0.0] * 2 * k))

    if query.covers is not None and not query.covers.is_empty():
        b = query.covers
        for d in range(k):
            tighten_hi(d, b.lo[d])  # lo_d <= b.lo_d
            tighten_lo(k + d, b.hi[d])  # hi_d >= b.hi_d

    for c in query.overlap:
        if c.is_empty():
            return PointRange(tuple([1.0] * 2 * k), tuple([0.0] * 2 * k))
        for d in range(k):
            tighten_hi(d, c.hi[d] - eps)  # lo_d <  c.hi_d
            tighten_lo(k + d, c.lo[d] + eps)  # hi_d >  c.lo_d

    return PointRange(tuple(lo), tuple(hi))


def matches_via_point(query: BoxQuery, box: Box, eps: float = OPEN_EPS) -> bool:
    """Evaluate a BoxQuery through the point mapping (test oracle)."""
    if box.is_empty():
        return False
    pr = compile_range(query, box.dim, eps)
    return pr.contains(box.to_point())


def figure3_rectangle(
    a: Tuple[float, float],
    b: Tuple[float, float],
    c: Tuple[float, float],
    eps: float = OPEN_EPS,
) -> PointRange:
    """The shaded rectangle of the paper's Figure 3 (1-D case).

    Given intervals ``a ⊑ ⌈x⌉``, ``⌈x⌉ ⊑ b`` and ``⌈x⌉ ⊓ c ≠ ∅`` over the
    real line, return the rectangle in (start, end) space containing
    exactly the satisfying intervals.
    """
    query = BoxQuery(
        inside=Box((b[0],), (b[1],)),
        covers=Box((a[0],), (a[1],)),
        overlap=(Box((c[0],), (c[1],)),),
    )
    return compile_range(query, 1, eps)
