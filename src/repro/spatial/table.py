"""Spatial tables: the database the query engine retrieves from.

A :class:`SpatialTable` stores identified :class:`~repro.algebra.regions.
Region` rows and maintains a derived index over their bounding boxes.
Three interchangeable index backends implement the same range-query
contract (and are property-tested to agree):

* ``"rtree"`` — :class:`repro.spatial.rtree.RTree` over the boxes;
* ``"grid"`` — :class:`repro.spatial.gridfile.GridFile` over the 2k-dim
  *point* representation (the Figure 3 reduction: one orthogonal range
  query per BoxQuery);
* ``"scan"`` — sequential scan (the baseline every bench compares to).

The table records probe statistics uniformly so benchmarks can compare
backends.  For partitioned execution, :meth:`SpatialTable.partitioning`
caches an STR tiling of the rows (see :mod:`repro.spatial.partition`),
invalidated — like the statistics cache and every
:class:`ProbeCache` entry — by the table's mutation counter.

Incremental maintenance (MVCC-lite): once a mutation is *staged* (via
:meth:`SpatialTable.stage_insert` / :meth:`SpatialTable.stage_delete`,
or any :meth:`SpatialTable.insert` / :meth:`SpatialTable.delete` while a
delta is open) the packed base structures stay frozen and the write
lands in a :class:`~repro.spatial.delta.TableDelta`.  Every read path
merges the delta transparently; ``(base_version, delta_watermark)``
identifies the logical snapshot, and :meth:`SpatialTable.repack` folds
the delta into freshly built base structures (bumping the base version).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..algebra.regions import Region
from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box
from ..errors import DimensionMismatchError
from . import columnar
from .columnar import ColumnStore
from .delta import TableDelta
from .gridfile import GridFile
from .rangequery import compile_range
from .rtree import RTree

#: Staged mutations past which an (unshared) table repacks itself inline.
#: The query service repacks off-thread instead (see repro.service).
DEFAULT_DELTA_THRESHOLD = 64


@dataclass(frozen=True)
class SpatialObject:
    """One row: an identifier, its exact region, and the derived box."""

    oid: object
    region: Region
    box: Box

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SpatialObject({self.oid!r})"


class _TableHandle:
    """Per-table bookkeeping inside a :class:`ProbeCache`.

    Holds a unique ``token`` (the cache key stands in for the table so
    keys never reference it), the last-seen table version, and a weak
    reference whose callback purges the table's entries on collection.
    """

    __slots__ = ("token", "version", "ref")

    def __init__(self, token: int, version: int):
        self.token = token
        self.version = version
        self.ref: Optional[weakref.ref] = None


class ProbeCache:
    """A bounded LRU cache of range-query results.

    Keys are ``(table token, table version, box query)`` where the token
    is a cache-local stand-in for the table — the cache holds **no
    strong reference** to any table, so a long-lived cache never pins a
    dropped table (or its rows) in memory.  The table's mutation counter
    is part of the key, and entries for superseded versions are dropped
    *proactively* the next time the table is seen (not merely left to
    LRU churn); entries of a garbage-collected table are purged by a
    weakref callback.  The cached row lists are shared — callers must
    not mutate them.

    The version component of the key is the table's *base* version:
    while a write delta is open, :meth:`SpatialTable.range_query_cached`
    stores base-only probe results here and overlays the delta per
    lookup, so cached entries survive delta-only writes (the delta
    watermark never invalidates them; only a repack's base-version bump
    does).

    A cache may outlive a single execution (that is the point: repeated
    queries over unchanged tables skip the index entirely), so it keeps
    lifetime ``hits``/``misses`` counters of its own; per-execution
    counters live in :class:`~repro.engine.stats.ExecutionStats`.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        # guarded-by: _lock
        self._entries: "OrderedDict[tuple, List[SpatialObject]]" = (
            OrderedDict()
        )
        # table -> handle; weak keys, so the cache never keeps a table
        # alive.  The handle's weakref callback purges entries when the
        # table is collected.
        # guarded-by: _lock
        self._handles: "weakref.WeakKeyDictionary[SpatialTable, _TableHandle]" = (
            weakref.WeakKeyDictionary()
        )
        self._next_token = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        # The query service shares one cache across concurrent reader
        # threads; reentrant because a GC-triggered weakref purge can
        # fire inside a locked section of the same thread.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def _purge_token(self, token: int, keep_version: Optional[int] = None):
        """Drop entries of one table (optionally keeping one version)."""
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key[0] == token
                and (keep_version is None or key[1] != keep_version)
            ]
            for key in stale:
                # pop(): a GC-triggered purge callback may race this loop.
                self._entries.pop(key, None)

    def _key_locked(self, table: "SpatialTable", query: BoxQuery) -> tuple:
        handle = self._handles.get(table)
        if handle is None:
            handle = _TableHandle(self._next_token, table._version)
            self._next_token += 1
            token = handle.token
            # The callback must not reference the table (it is being
            # collected) nor keep a strong path back to it; closing over
            # self is fine — the resulting cycle is ordinary GC fodder.
            handle.ref = weakref.ref(
                table, lambda _r, token=token: self._purge_token(token)
            )
            self._handles[table] = handle
        elif handle.version != table._version:
            # Version superseded: drop the stale entries now instead of
            # waiting for LRU churn.
            self._purge_token(handle.token, keep_version=table._version)
            handle.version = table._version
        return (handle.token, table._version, query)

    def lookup(
        self, table: "SpatialTable", query: BoxQuery
    ) -> Optional[List["SpatialObject"]]:
        """Cached rows for ``query`` on ``table``, or ``None`` on miss."""
        with self._lock:
            key = self._key_locked(table, query)
            rows = self._entries.get(key)
            if rows is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return rows

    def store(
        self,
        table: "SpatialTable",
        query: BoxQuery,
        rows: List["SpatialObject"],
    ) -> None:
        """Remember a probe result, evicting least-recently-used entries."""
        with self._lock:
            key = self._key_locked(table, query)
            self._entries[key] = rows
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Lifetime hits as a fraction of lookups (0.0 before any)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def purge_table(
        self, table: "SpatialTable", keep_version: Optional[int] = None
    ) -> None:
        """Proactively drop a table's entries (e.g. at snapshot swap).

        Version bumps purge lazily — the next :meth:`lookup` on the
        *same* table object drops superseded entries — but a snapshot
        swap replaces the table object outright, so the old table is
        never seen again and its entries would linger until LRU churn
        or garbage collection.  The query service calls this for each
        superseded table at swap time.  ``keep_version`` preserves that
        version's entries (default: drop them all).
        """
        with self._lock:
            handle = self._handles.get(table)
            if handle is None:
                return
            self._purge_token(handle.token, keep_version=keep_version)
            if keep_version is None:
                del self._handles[table]

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._entries.clear()
            self._handles.clear()
            self.hits = 0
            self.misses = 0


class SpatialTable:
    """A named collection of regions with a box index.

    Parameters
    ----------
    name:
        Table name (used in plans and stats).
    dim:
        Dimensionality of the stored regions.
    index:
        ``"rtree"`` (default), ``"grid"`` or ``"scan"``.
    universe:
        Universe box.  **Required** for the grid backend — range
        queries over the 2k-dim point representation clip their
        (possibly unbounded) rectangles to it, so constructing a grid
        table without one raises :class:`ValueError` — and recommended
        generally (the planner uses it as the region algebra's
        universe).
    split_method:
        R-tree overflow handling (``"quadratic"``, ``"linear"`` or
        ``"rstar"``); ignored by the other backends.
    node_capacity:
        R-tree node capacity ``M``.
    delta_threshold:
        Staged mutations past which the table repacks itself inline
        (see :meth:`repack`); shared-base clones never self-repack.
    """

    VALID_INDEXES = ("rtree", "grid", "scan")

    def __init__(
        self,
        name: str,
        dim: int,
        index: str = "rtree",
        universe: Optional[Box] = None,
        split_method: str = "quadratic",
        node_capacity: int = 8,
        delta_threshold: int = DEFAULT_DELTA_THRESHOLD,
    ):
        if index not in self.VALID_INDEXES:
            raise ValueError(
                f"unknown index {index!r}; expected one of {self.VALID_INDEXES}"
            )
        if index == "grid" and universe is None:
            raise ValueError(
                "the grid backend requires a universe box (range queries "
                "clip their unbounded rectangles to it); pass universe="
            )
        self.name = name
        self.dim = dim
        self.index_kind = index
        self.universe = universe
        self.split_method = split_method
        self.node_capacity = node_capacity
        self._objects: Dict[object, SpatialObject] = {}
        self._rtree: Optional[RTree] = (
            RTree(max_entries=node_capacity, split_method=split_method)
            if index == "rtree"
            else None
        )
        self._grid: Optional[GridFile] = (
            GridFile(2 * dim) if index == "grid" else None
        )
        # Struct-of-arrays mirror of the rows' bounding boxes, kept
        # index-aligned with the insertion order (the batched kernels'
        # input; see repro.spatial.columnar).
        self._columns = ColumnStore(dim)
        self.probes = 0
        self.candidates_returned = 0
        # How often a vectorized kernel ran, and how many candidate
        # rows/entries it evaluated (reported via ExecutionStats).
        self.vectorized_batches = 0
        self.vectorized_candidates = 0
        # Delta overlay counters: how often a read path merged staged
        # rows, and how many repacks folded a delta into fresh bases.
        self.delta_probes = 0
        self.repacks = 0
        # Mutation counter; invalidates the cached statistics and
        # partitioning below (and every ProbeCache entry for this table).
        self._version = 0
        # Per-parameter statistics cache for the current version: one
        # planning pass may legitimately ask for several parameter sets
        # (e.g. with and without partition summaries).
        self._stats_cache: Dict[Tuple, object] = {}
        self._stats_version: Optional[int] = None
        self._partitioning_cache = None
        self._partitioning_key: Optional[Tuple] = None
        self._sharding_cache = None
        self._sharding_key: Optional[Tuple] = None
        # LSM-style write delta (None until the first staged mutation).
        self._delta: Optional[TableDelta] = None
        self.delta_threshold = delta_threshold
        # True on with_staged() clones: the packed base structures are
        # shared with the parent, so a repack must never mutate them in
        # place (and the clone never self-repacks — the service layer
        # orchestrates its repacks off-thread).
        self._shares_base = False
        # Merged (base + delta) statistics, keyed by watermark + params.
        self._delta_stats_cache: Dict[Tuple, object] = {}

    def __len__(self) -> int:
        d = self._delta
        if d is None or not d.pending_ops:
            return len(self._objects)
        # Tombstones only ever name base rows, so this is exact.
        return len(self._objects) - len(d.tombstones) + len(d.inserts)

    def __iter__(self) -> Iterator[SpatialObject]:
        """Live rows: base order minus tombstones, then staged rows."""
        d = self._delta
        if d is None or not d.pending_ops:
            return iter(self._objects.values())
        return self._live_iter(d)

    def _live_iter(self, d: TableDelta) -> Iterator[SpatialObject]:
        tomb = d.tombstones
        for oid, obj in self._objects.items():
            if oid not in tomb:
                yield obj
        yield from d.inserts.values()

    # -- delta / MVCC-lite --------------------------------------------------------
    @property
    def delta_pending(self) -> bool:
        """Whether any staged mutation awaits a repack."""
        d = self._delta
        return d is not None and d.pending_ops > 0

    @property
    def delta_pending_ops(self) -> int:
        """Staged mutations awaiting a repack."""
        d = self._delta
        return 0 if d is None else d.pending_ops

    @property
    def delta_watermark(self) -> int:
        """Staged-mutation counter since the last repack (0 when clean)."""
        d = self._delta
        return 0 if d is None else d.watermark

    @property
    def mvcc_token(self) -> Tuple[int, int]:
        """The ``(base_version, delta_watermark)`` snapshot identity.

        The base version bumps only at direct (delta-less) mutations and
        repacks; the watermark bumps once per staged mutation.  Two
        equal tokens on the same table object denote bit-identical
        query answers.
        """
        return (self._version, self.delta_watermark)

    def delta_stats(self) -> dict:
        """Delta/MVCC counters for reporting."""
        d = self._delta
        return {
            "pending_inserts": 0 if d is None else len(d.inserts),
            "tombstones": 0 if d is None else len(d.tombstones),
            "watermark": self.delta_watermark,
            "base_version": self._version,
            "threshold": self.delta_threshold,
            "repacks": self.repacks,
            "delta_probes": self.delta_probes,
        }

    # -- updates -----------------------------------------------------------------
    def insert(self, oid, region: Region) -> SpatialObject:
        """Insert a row; the bounding box is derived and indexed.

        While a write delta is open the insert is staged there instead
        of touching the packed base (see :meth:`stage_insert`); on a
        clean table it updates the base structures directly and bumps
        the mutation counter (the bulk-build path).
        """
        if self._delta is not None:
            return self.stage_insert(oid, region)
        if region.dim is not None and region.dim != self.dim:
            raise DimensionMismatchError(
                f"region is {region.dim}-dim, table {self.name!r} is "
                f"{self.dim}-dim"
            )
        if oid in self._objects:
            raise ValueError(f"duplicate oid {oid!r} in table {self.name!r}")
        obj = SpatialObject(oid=oid, region=region, box=region.bounding_box())
        self._objects[oid] = obj
        self._columns.append(obj.box, obj)
        self._version += 1
        if self._rtree is not None and not obj.box.is_empty():
            self._rtree.insert(obj.box, obj)
        if self._grid is not None and not obj.box.is_empty():
            self._grid.insert(obj.box.to_point(), obj)
        return obj

    def stage_insert(self, oid, region: Region) -> SpatialObject:
        """Stage an insert in the write delta — O(delta), no base touch.

        The row is immediately visible to every read path (the delta is
        merged transparently); the packed base structures and the base
        version stay untouched, so version-keyed caches survive.  Past
        ``delta_threshold`` staged mutations an unshared table repacks
        itself inline.
        """
        if region.dim is not None and region.dim != self.dim:
            raise DimensionMismatchError(
                f"region is {region.dim}-dim, table {self.name!r} is "
                f"{self.dim}-dim"
            )
        d = self._ensure_delta()
        if oid in d.inserts or (
            oid in self._objects and oid not in d.tombstones
        ):
            raise ValueError(f"duplicate oid {oid!r} in table {self.name!r}")
        obj = SpatialObject(oid=oid, region=region, box=region.bounding_box())
        d.stage_insert(obj)
        self._maybe_repack()
        return obj

    def stage_delete(self, oid) -> bool:
        """Stage a delete; returns False when ``oid`` is not live.

        A staged insert is unstaged outright; a base row gains a
        tombstone (the base structures keep the row until the next
        repack, every read path filters it).
        """
        d = self._ensure_delta()
        ok = d.stage_delete(oid, base_has=oid in self._objects)
        if ok:
            self._maybe_repack()
        return ok

    def delete(self, oid) -> None:
        """Delete a live row through the delta; KeyError when absent."""
        if not self.stage_delete(oid):
            raise KeyError(oid)

    def _ensure_delta(self) -> TableDelta:
        if self._delta is None:
            self._delta = TableDelta(
                self._version,
                node_capacity=self.node_capacity,
                split_method=self.split_method,
            )
        return self._delta

    def _maybe_repack(self) -> None:
        d = self._delta
        if (
            d is not None
            and not self._shares_base
            and d.pending_ops >= self.delta_threshold
        ):
            self.repack()

    def repack(self) -> bool:
        """Fold the write delta into freshly packed base structures.

        Builds a new row map, column store and index (STR bulk load on
        the r-tree backend) beside the old ones and publishes them by
        plain attribute assignment — a reader holding references to the
        old structures finishes against a consistent snapshot.  The base
        version bump invalidates every version-keyed cache.  As a
        special case, a small pure-delete delta on an unshared r-tree
        applies targeted :meth:`~repro.spatial.rtree.RTree.delete` calls
        instead of rebuilding, preserving the packed structure.

        Returns True when anything was folded (no-op on a clean table).
        """
        d = self._delta
        if d is None:
            return False
        if not d.pending_ops:
            self._delta = None
            return False
        # repr-sort: oids may mix types; a deterministic order keeps the
        # incremental statistics' float folds reproducible across runs.
        removed = [
            self._objects[oid]
            for oid in sorted(d.tombstones, key=repr)
            if oid in self._objects
        ]
        new_objects = {
            oid: obj
            for oid, obj in self._objects.items()
            if oid not in d.tombstones
        }
        new_objects.update(d.inserts)
        columns = ColumnStore(self.dim)
        for obj in new_objects.values():
            columns.append(obj.box, obj)
        rtree = self._rtree
        if self.index_kind == "rtree":
            small_purge = (
                not d.inserts
                and not self._shares_base
                and len(removed) * 8 <= max(1, len(new_objects))
            )
            if small_purge and rtree is not None:
                for obj in removed:
                    if not obj.box.is_empty():
                        rtree.delete(obj.box, obj)
            else:
                rtree = RTree.bulk_load(
                    [
                        (obj.box, obj)
                        for obj in new_objects.values()
                        if not obj.box.is_empty()
                    ],
                    max_entries=self.node_capacity,
                    split_method=self.split_method,
                )
        grid = self._grid
        if self.index_kind == "grid":
            grid = GridFile(2 * self.dim)
            for obj in new_objects.values():
                if not obj.box.is_empty():
                    grid.insert(obj.box.to_point(), obj)
        self._objects = new_objects
        self._columns = columns
        self._rtree = rtree
        self._grid = grid
        self._delta = None
        self._delta_stats_cache = {}
        self._shares_base = False
        self._version += 1
        self.repacks += 1
        return True

    def with_staged(
        self,
        inserts: Sequence[Tuple[object, Region]] = (),
        deletes: Sequence[object] = (),
    ) -> "SpatialTable":
        """An O(delta) MVCC clone with the given writes staged.

        The clone shares the immutable packed base structures (row map,
        r-tree, grid, column store) and the base statistics cache with
        this table and stages the writes in its own copied delta —
        building one costs O(staged mutations), never O(table).  The
        query service's mutation endpoints publish such clones through
        the snapshot store's atomic swap: readers pinned to the old
        snapshot are never blocked or perturbed.

        The clone is marked shared-base: it never repacks in place and
        never self-repacks on threshold (its owner orchestrates that).
        """
        clone = SpatialTable.__new__(SpatialTable)
        clone.name = self.name
        clone.dim = self.dim
        clone.index_kind = self.index_kind
        clone.universe = self.universe
        clone.split_method = self.split_method
        clone.node_capacity = self.node_capacity
        clone.delta_threshold = self.delta_threshold
        clone._objects = self._objects
        clone._rtree = self._rtree
        clone._grid = self._grid
        clone._columns = self._columns
        clone.probes = 0
        clone.candidates_returned = 0
        clone.vectorized_batches = 0
        clone.vectorized_candidates = 0
        clone.delta_probes = self.delta_probes
        clone.repacks = self.repacks
        clone._version = self._version
        clone._stats_cache = dict(self._stats_cache)
        clone._stats_version = self._stats_version
        clone._delta_stats_cache = {}
        clone._partitioning_cache = None
        clone._partitioning_key = None
        clone._sharding_cache = None
        clone._sharding_key = None
        clone._delta = self._delta.clone() if self._delta is not None else None
        clone._shares_base = True
        for oid, region in inserts:
            clone.stage_insert(oid, region)
        for oid in deletes:
            clone.delete(oid)
        return clone

    def bulk_insert(
        self,
        rows: Sequence[Tuple[object, Region]],
        pack: Optional[bool] = None,
    ) -> None:
        """Insert many rows.

        For r-tree tables the index is rebuilt afterwards with STR bulk
        loading (``pack=True``, the default): static workloads get a
        packed tree with near-full nodes and markedly fewer node reads
        per query than one-at-a-time insertion builds.  Pass
        ``pack=False`` for the insertion-built baseline.

        The ``grid`` and ``scan`` backends have no bulk-loading path, so
        an explicit ``pack=True`` raises :class:`ValueError` instead of
        being silently ignored; the default (``pack=None``) resolves to
        plain insertion for them.
        """
        if pack is None:
            pack = self.index_kind == "rtree"
        elif pack and self.index_kind != "rtree":
            raise ValueError(
                f"pack=True is only supported by the rtree backend; the "
                f"{self.index_kind!r} backend builds by insertion "
                f"(pass pack=None or pack=False)"
            )
        if pack and self.index_kind == "rtree":
            saved, self._rtree = self._rtree, None
            try:
                for oid, region in rows:
                    self.insert(oid, region)
            finally:
                # Rebuild even on error so the index covers whatever
                # rows made it in before the failure.
                self._rtree = saved
                self.pack()
        else:
            for oid, region in rows:
                self.insert(oid, region)

    def pack(self) -> None:
        """Rebuild the r-tree with STR bulk loading over current rows.

        No-op for non-r-tree backends.  Index counters start fresh (as
        after :meth:`reset_stats`).
        """
        self.reindex(pack=True)

    def reindex(
        self,
        pack: bool = True,
        split_method: Optional[str] = None,
        node_capacity: Optional[int] = None,
    ) -> None:
        """Rebuild the r-tree index, optionally changing its parameters.

        ``pack=True`` uses STR bulk loading; ``pack=False`` rebuilds by
        repeated insertion (the baseline the benchmarks compare
        against).  No-op for non-r-tree backends.
        """
        if self.index_kind != "rtree":
            return
        # Fold any staged delta first: the rebuild below enumerates the
        # base rows, and silently dropping staged writes would be wrong.
        self.repack()
        if split_method is not None:
            if split_method not in RTree.SPLIT_METHODS:
                raise ValueError(
                    f"unknown split method {split_method!r}; expected one "
                    f"of {RTree.SPLIT_METHODS}"
                )
            self.split_method = split_method
        if node_capacity is not None:
            self.node_capacity = node_capacity
        entries = [
            (obj.box, obj)
            for obj in self._objects.values()
            if not obj.box.is_empty()
        ]
        if pack:
            self._rtree = RTree.bulk_load(
                entries,
                max_entries=self.node_capacity,
                split_method=self.split_method,
            )
        else:
            self._rtree = RTree(
                max_entries=self.node_capacity,
                split_method=self.split_method,
            )
            for box, obj in entries:
                self._rtree.insert(box, obj)
        self._version += 1

    def get(self, oid) -> SpatialObject:
        """Row lookup by id (the live view: staged rows are found,
        tombstoned rows raise KeyError)."""
        d = self._delta
        if d is not None and d.pending_ops:
            obj = d.inserts.get(oid)
            if obj is not None:
                return obj
            if oid in d.tombstones:
                raise KeyError(oid)
        return self._objects[oid]

    # -- queries --------------------------------------------------------------------
    def column_store(
        self, vectorize: Optional[bool] = None
    ) -> Optional[ColumnStore]:
        """The table's :class:`ColumnStore`, or ``None`` when the
        vectorized paths are disabled (see
        :func:`repro.spatial.columnar.resolve`).

        Also ``None`` while a write delta is pending: the column slots
        mirror the *base* rows, so they misalign with the live view
        (tombstones, staged rows) — external batch consumers must fall
        back to their scalar paths until the next repack realigns them.
        The table's own read paths merge the delta internally instead.
        """
        if self.delta_pending:
            return None
        return self._columns if columnar.resolve(vectorize) else None

    def range_query(
        self, query: BoxQuery, vectorize: Optional[bool] = None
    ) -> List[SpatialObject]:
        """All rows whose bounding box satisfies ``query``.

        One index probe per call — the paper's "every retrieval step is a
        single range query".  ``vectorize`` selects the batched columnar
        kernels (``None`` defers to the global backend switch); results
        are bit-identical either way.  While a write delta is pending
        the base probe result is overlaid with it (tombstoned rows
        filtered, matching staged rows appended), billed as one
        ``delta_probe``.
        """
        self.probes += 1
        if query.is_unsatisfiable():
            return []
        out = self._base_range_rows(query, columnar.resolve(vectorize))
        d = self._delta
        if d is not None and d.pending_ops:
            out = self._overlay_rows(out, query, d)
        self.candidates_returned += len(out)
        return out

    def _base_range_rows(
        self, query: BoxQuery, vec: bool
    ) -> List[SpatialObject]:
        """The range probe over the packed base only — a pure function
        of ``(base version, query)``, which is what makes it cacheable
        under the base-version key while deltas come and go.  Counts no
        probe itself (callers bill); vectorized counters are billed here
        because they are a property of the kernel dispatch."""
        out: List[SpatialObject]
        if self.index_kind == "rtree":
            if vec and columnar.active_backend() == "numpy":
                before = self._rtree.stats.entry_tests
                out = [obj for _box, obj in self._rtree.search_columnar(query)]
                self.vectorized_batches += 1
                self.vectorized_candidates += (
                    self._rtree.stats.entry_tests - before
                )
            else:
                out = [obj for _box, obj in self._rtree.search(query)]
        elif self.index_kind == "grid":
            pr = compile_range(query, self.dim)
            if self.universe is not None:
                pr = pr.clip_finite(self.universe)
            if pr.is_empty():
                out = []
            else:
                out = [
                    obj
                    for _p, obj in self._grid.range_search(pr.lo, pr.hi)
                ]
        else:  # scan
            if vec:
                out = self._columns.match_rows(query)
                self.vectorized_batches += 1
                self.vectorized_candidates += len(self._columns)
            else:
                out = [
                    obj
                    for obj in self._objects.values()
                    if not obj.box.is_empty() and query.matches(obj.box)
                ]
        return out

    def _overlay_rows(
        self,
        base_rows: List[SpatialObject],
        query: BoxQuery,
        d: TableDelta,
    ) -> List[SpatialObject]:
        """Merge the write delta into a base probe result: drop
        tombstoned rows, append matching staged rows in insertion order
        (deterministic, and exactly the live-scan order relative to the
        base stream).  Returns a fresh list; ``base_rows`` may be a
        shared cache entry and is never mutated."""
        self.delta_probes += 1
        tomb = d.tombstones
        if tomb:
            out = [obj for obj in base_rows if obj.oid not in tomb]
        else:
            out = list(base_rows)
        out.extend(d.matches(query))
        return out

    def range_query_cached(
        self,
        query: BoxQuery,
        cache: Optional[ProbeCache] = None,
        vectorize: Optional[bool] = None,
    ) -> Tuple[List[SpatialObject], bool]:
        """Range query through an optional :class:`ProbeCache`.

        Returns ``(rows, hit)``.  On a hit the index (and the table's
        probe counter) is not touched at all; the returned list is the
        cached one and must not be mutated.

        While a write delta is pending the cache carries *base-only*
        results under the base-version key and the delta is overlaid on
        every return — so a hit still skips the index probe entirely
        (only the in-memory delta is consulted, billed as a
        ``delta_probe``), and base entries survive delta-only writes.
        """
        if cache is None:
            return self.range_query(query, vectorize=vectorize), False
        d = self._delta
        if d is None or not d.pending_ops:
            rows = cache.lookup(self, query)
            if rows is not None:
                return rows, True
            rows = self.range_query(query, vectorize=vectorize)
            cache.store(self, query, rows)
            return rows, False
        base = cache.lookup(self, query)
        if base is not None:
            return self._overlay_rows(base, query, d), True
        self.probes += 1
        if query.is_unsatisfiable():
            base = []
        else:
            base = self._base_range_rows(query, columnar.resolve(vectorize))
        cache.store(self, query, base)
        out = self._overlay_rows(base, query, d)
        self.candidates_returned += len(out)
        return out, False

    def range_query_batch(
        self,
        queries: Sequence[BoxQuery],
        cache: Optional[ProbeCache] = None,
        vectorize: Optional[bool] = None,
    ) -> List[List[SpatialObject]]:
        """Answer many box queries, probing once per *distinct* query.

        Batching entry point for bulk callers (the operator engine's
        per-probe path is :meth:`range_query_cached`).  Duplicate
        queries inside the batch share a single probe even without a
        cache; with a ``cache`` the deduplicated probes also go through
        it.  Result lists are aligned with ``queries``.
        """
        memo: Dict[BoxQuery, List[SpatialObject]] = {}
        out: List[List[SpatialObject]] = []
        for query in queries:
            rows = memo.get(query)
            if rows is None:
                rows, _hit = self.range_query_cached(
                    query, cache, vectorize=vectorize
                )
                memo[query] = rows
            out.append(rows)
        return out

    # -- nearest neighbors --------------------------------------------------------
    @staticmethod
    def _distance_to(obj: SpatialObject, anchor) -> float:
        if isinstance(anchor, Box):
            return obj.box.mindist(anchor)
        return obj.box.mindist_point(anchor)

    def nearest(
        self,
        anchor,
        k: int,
        access: str = "auto",
        vectorize: Optional[bool] = None,
    ) -> List[Tuple[float, SpatialObject]]:
        """The ``k`` rows nearest to ``anchor`` (a point or a box).

        Distances are bounding-box MINDISTs; rows are returned in
        nondecreasing distance with ties at the ``k``-th distance broken
        by ``repr(oid)``, so every access path returns the *same* list
        (property-tested against :meth:`nearest_bruteforce`):

        * ``"bestfirst"`` — the R-tree's incremental best-first browse
          (r-tree backend only);
        * ``"scan"`` — the brute-force reference;
        * ``"auto"`` — best-first when an r-tree is available, scan
          otherwise (grid files index the 2k-dim point representation,
          where box distances do not reduce to point distances).

        Counts one probe, like a range query.
        """
        if k <= 0:
            return []
        if access not in ("auto", "bestfirst", "scan"):
            raise ValueError(
                f"unknown kNN access {access!r}; expected 'auto', "
                f"'bestfirst' or 'scan'"
            )
        if access == "bestfirst" and self._rtree is None:
            raise ValueError(
                f"best-first kNN needs the rtree backend; table "
                f"{self.name!r} uses {self.index_kind!r}"
            )
        self.probes += 1
        vec = (
            columnar.resolve(vectorize)
            and columnar.active_backend() == "numpy"
        )
        d = self._delta
        pending = d is not None and d.pending_ops > 0
        if self._rtree is not None and access != "scan":
            if pending:
                out = self._nearest_delta_merge(anchor, k, d, vec)
            else:
                before = self._rtree.stats.entry_tests
                out = [
                    (dist, obj)
                    for dist, _box, obj in self._rtree.nearest(
                        anchor,
                        k,
                        tie_key=lambda obj: repr(obj.oid),
                        vectorize=vec,
                    )
                ]
                if vec:
                    self.vectorized_batches += 1
                    self.vectorized_candidates += (
                        self._rtree.stats.entry_tests - before
                    )
        elif vec:
            if pending:
                out = self._nearest_columnar_delta(anchor, k, d)
            else:
                out = self._nearest_columnar(anchor, k)
            self.vectorized_batches += 1
            self.vectorized_candidates += len(self._columns)
        else:
            if pending:
                self.delta_probes += 1
            out = self._nearest_scan(anchor, k)
        self.candidates_returned += len(out)
        return out

    def _nearest_delta_merge(
        self, anchor, k: int, d: TableDelta, vec: bool
    ) -> List[Tuple[float, SpatialObject]]:
        """Two-source kNN merge for a table with a pending delta.

        Source one is the packed base's best-first distance browse,
        widened to ``k + len(tombstones)`` — at most ``len(tombstones)``
        of its results can be dead, so the live survivors provably
        contain the base's true top ``k``.  Source two is a ranked
        sweep of the staged rows.  Both sources and the final merge
        sort by ``(distance, repr(oid))``, the brute-force reference's
        total order, so the result is bit-identical to a live scan.
        """
        self.delta_probes += 1
        k_base = k + len(d.tombstones)
        before = self._rtree.stats.entry_tests
        base = [
            (dist, obj)
            for dist, _box, obj in self._rtree.nearest(
                anchor,
                k_base,
                tie_key=lambda obj: repr(obj.oid),
                vectorize=vec,
            )
        ]
        if vec:
            self.vectorized_batches += 1
            self.vectorized_candidates += (
                self._rtree.stats.entry_tests - before
            )
        tomb = d.tombstones
        live = [pair for pair in base if pair[1].oid not in tomb][:k]
        staged = sorted(
            (
                (self._distance_to(obj, anchor), obj)
                for obj in d.inserts.values()
                if not obj.box.is_empty()
            ),
            key=lambda pair: (pair[0], repr(pair[1].oid)),
        )[:k]
        merged = sorted(
            live + staged, key=lambda pair: (pair[0], repr(pair[1].oid))
        )
        return merged[:k]

    def _nearest_columnar_delta(
        self, anchor, k: int, d: TableDelta
    ) -> List[Tuple[float, SpatialObject]]:
        """:meth:`_nearest_columnar` over the live view: the batched
        kernel ranks the base columns, tombstoned rows drop out, staged
        rows join via the scalar metric (the same doubles, by the
        kernels' bit-identity contract), and one sort settles it."""
        self.delta_probes += 1
        store = self._columns
        dists = store.distances_to(anchor)
        tomb = d.tombstones
        pairs = [
            (float(dists[i]), store.rows[i])
            for i in range(len(store))
            if not store.rows[i].box.is_empty()
            and store.rows[i].oid not in tomb
        ]
        pairs.extend(
            (self._distance_to(obj, anchor), obj)
            for obj in d.inserts.values()
            if not obj.box.is_empty()
        )
        ranked = sorted(pairs, key=lambda pair: (pair[0], repr(pair[1].oid)))
        return ranked[:k]

    def nearest_bruteforce(
        self, anchor, k: int
    ) -> List[Tuple[float, SpatialObject]]:
        """Brute-force kNN reference: scan every row, sort, cut.

        The differential-testing oracle for :meth:`nearest` — same
        distance metric, same deterministic tie-break, no index.  Counts
        one probe (a full scan).
        """
        if k <= 0:
            return []
        self.probes += 1
        if self.delta_pending:
            self.delta_probes += 1
        out = self._nearest_scan(anchor, k)
        self.candidates_returned += len(out)
        return out

    def _nearest_scan(
        self, anchor, k: int
    ) -> List[Tuple[float, SpatialObject]]:
        # Iterates the live view (`self`), so staged rows rank and
        # tombstoned rows do not — the delta oracle for free.
        ranked = sorted(
            (
                (self._distance_to(obj, anchor), obj)
                for obj in self
                if not obj.box.is_empty()
            ),
            key=lambda pair: (pair[0], repr(pair[1].oid)),
        )
        return ranked[:k]

    def _nearest_columnar(
        self, anchor, k: int
    ) -> List[Tuple[float, SpatialObject]]:
        """:meth:`_nearest_scan` over the columnar distance kernel.

        One batched MINDIST evaluation replaces the per-object distance
        calls; the kernels produce the exact same doubles (empty rows at
        ``inf`` are filtered like the oracle's empty-box guard), so the
        sort — ties included — is unchanged.
        """
        store = self._columns
        dists = store.distances_to(anchor)
        ranked = sorted(
            (
                (float(dists[i]), store.rows[i])
                for i in range(len(store))
                if not store.rows[i].box.is_empty()
            ),
            key=lambda pair: (pair[0], repr(pair[1].oid)),
        )
        return ranked[:k]

    # -- counting aggregation ------------------------------------------------------
    def count_range(self, query: BoxQuery) -> int:
        """``len(self.range_query(query))`` without materialising rows.

        On the r-tree backend this is the COUNT pushdown: subtrees whose
        MBR is fully inside a pure containment query contribute their
        cached entry counts without being read (see
        :meth:`repro.spatial.rtree.RTree.count`).  Other backends fall
        back to counting the range query's result.
        """
        if query.is_unsatisfiable():
            self.probes += 1
            return 0
        d = self._delta
        pending = d is not None and d.pending_ops > 0
        if self._rtree is not None:
            self.probes += 1
            total = self._rtree.count(query)
            if pending:
                # The pushdown counted tombstoned base rows too; back
                # them out individually (tombstone sets are small) and
                # add the staged matches.
                self.delta_probes += 1
                for oid in d.tombstones:
                    obj = self._objects.get(oid)
                    if (
                        obj is not None
                        and not obj.box.is_empty()
                        and query.matches(obj.box)
                    ):
                        total -= 1
                total += d.count(query)
            return total
        return len(self.range_query(query))

    def scan(self) -> List[SpatialObject]:
        """All live rows (the naive executor's access path)."""
        self.probes += 1
        d = self._delta
        if d is not None and d.pending_ops:
            self.delta_probes += 1
            out = list(self._live_iter(d))
        else:
            out = list(self._objects.values())
        self.candidates_returned += len(out)
        return out

    def reset_stats(self) -> None:
        """Zero the probe counters (index-internal counters too)."""
        self.probes = 0
        self.candidates_returned = 0
        self.vectorized_batches = 0
        self.vectorized_candidates = 0
        self.delta_probes = 0
        self.repacks = 0
        if self._rtree is not None:
            self._rtree.stats.reset()
        if self._grid is not None:
            self._grid.stats.reset()

    def index_read_count(self) -> int:
        """Backend-neutral cumulative read counter (r-tree node reads,
        grid bucket reads; 0 for the scan backend)."""
        if self._rtree is not None:
            return self._rtree.stats.node_reads
        if self._grid is not None:
            return self._grid.stats.bucket_reads
        return 0

    def index_stats(self) -> dict:
        """Backend-specific counters for reporting."""
        if self._rtree is not None:
            return {
                "kind": "rtree",
                "node_reads": self._rtree.stats.node_reads,
                "splits": self._rtree.stats.splits,
                "reinserts": self._rtree.stats.reinserts,
                "height": self._rtree.height(),
                "split_method": self.split_method,
            }
        if self._grid is not None:
            return {
                "kind": "grid",
                "bucket_reads": self._grid.stats.bucket_reads,
                "cells": self._grid.directory_shape(),
            }
        return {"kind": "scan"}

    # -- partitioning (partitioned execution) -------------------------------------
    def partitioning(self, n_partitions: int):
        """An STR tiling of this table's rows, cached by version.

        Built lazily by :func:`repro.spatial.partition.str_partition`
        over the live rows; the cache key is the ``(base version,
        delta watermark)`` snapshot token, so direct mutations,
        reindexes, staged writes and repacks all invalidate it.  Used
        by the partition-aware physical operators (``PartitionScan``)
        and the statistics catalog.
        """
        key = (self._version, self.delta_watermark, n_partitions)
        if self._partitioning_key != key:
            from .partition import str_partition

            self._partitioning_cache = str_partition(self, n_partitions)
            self._partitioning_key = key
        return self._partitioning_cache

    # -- sharding (scale-out execution) --------------------------------------------
    def sharding(self, n_shards: int):
        """An STR sharding of this table's rows, cached by version.

        Built lazily by :meth:`repro.spatial.shard.ShardedTable.build`
        over the live rows; the cache key is the ``(base version,
        delta watermark)`` snapshot token, so direct mutations,
        reindexes, staged writes and repacks all invalidate it — and
        the superseded sharding is closed (its shared-memory
        publications unlinked) before the rebuild.  Used by the
        shard-aware physical operators (``ShardScan``, ``ShardedJoin``)
        and the planner's shard costing.
        """
        key = (self._version, self.delta_watermark, n_shards)
        if self._sharding_key != key:
            from .shard import ShardedTable

            if self._sharding_cache is not None:
                self._sharding_cache.close()
            self._sharding_cache = ShardedTable.build(self, n_shards)
            self._sharding_key = key
        return self._sharding_cache

    # -- statistics (cost-based planning) -----------------------------------------
    def statistics(
        self,
        bins: int = 16,
        sample_size: int = 24,
        seed: int = 0,
        partitions: int = 0,
    ):
        """Table statistics for the cost-based planner, cached here.

        Any insert or reindex invalidates the cache (it is keyed on the
        mutation counter); within one version, each distinct parameter
        set is computed once — planning passes that mix partitioned and
        unpartitioned statistics do not thrash.  ``partitions > 0``
        also collects per-partition counts and bounding boxes (for
        costing partition pruning).  See :mod:`repro.engine.catalog`
        for the statistics' contents.

        While a write delta is pending the base statistics are *not*
        resampled: the cached base entry (computed over base rows only,
        still keyed by the base version) is adjusted incrementally from
        the staged rows via
        :meth:`~repro.engine.catalog.TableStatistics.apply_delta` —
        count, histograms, average extents and the sample update in
        O(delta), and the result carries ``delta_count`` so the planner
        can price the overlay.  Merged statistics cache per watermark.
        """
        if self._stats_version != self._version:
            self._stats_cache = {}
            self._delta_stats_cache = {}
            self._stats_version = self._version
        from ..engine.catalog import collect_statistics

        d = self._delta
        if d is None or not d.pending_ops:
            key = (bins, sample_size, seed, partitions)
            if key not in self._stats_cache:
                self._stats_cache[key] = collect_statistics(
                    self,
                    bins=bins,
                    sample_size=sample_size,
                    seed=seed,
                    partitions=partitions,
                )
            return self._stats_cache[key]
        # Base statistics come from the base rows alone (the live
        # iterator would leak staged rows into them) and never carry
        # partition summaries — the tiling is rebuilt per watermark.
        base_key = (bins, sample_size, seed, 0)
        if base_key not in self._stats_cache:
            base_rows = [
                obj
                for obj in self._objects.values()
                if not obj.box.is_empty()
            ]
            self._stats_cache[base_key] = collect_statistics(
                self,
                bins=bins,
                sample_size=sample_size,
                seed=seed,
                partitions=0,
                rows=base_rows,
                total=len(self._objects),
            )
        base = self._stats_cache[base_key]
        dkey = (d.watermark, bins, sample_size, seed, partitions)
        if dkey not in self._delta_stats_cache:
            from dataclasses import replace

            from ..engine.catalog import PartitionStatistics

            removed = [
                self._objects[oid]
                for oid in sorted(d.tombstones, key=repr)
                if oid in self._objects
            ]
            stats = base.apply_delta(
                inserted=tuple(d.inserts.values()),
                removed=tuple(removed),
                sample_size=sample_size,
            )
            if partitions > 0:
                stats = replace(
                    stats,
                    partitions=tuple(
                        PartitionStatistics(
                            pid=part.pid, count=len(part), mbr=part.mbr
                        )
                        for part in self.partitioning(partitions).partitions
                    ),
                )
            self._delta_stats_cache[dkey] = stats
        return self._delta_stats_cache[dkey]
