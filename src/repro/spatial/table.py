"""Spatial tables: the database the query engine retrieves from.

A :class:`SpatialTable` stores identified :class:`~repro.algebra.regions.
Region` rows and maintains a derived index over their bounding boxes.
Three interchangeable index backends implement the same range-query
contract (and are property-tested to agree):

* ``"rtree"`` — :class:`repro.spatial.rtree.RTree` over the boxes;
* ``"grid"`` — :class:`repro.spatial.gridfile.GridFile` over the 2k-dim
  *point* representation (the Figure 3 reduction: one orthogonal range
  query per BoxQuery);
* ``"scan"`` — sequential scan (the baseline every bench compares to).

The table records probe statistics uniformly so benchmarks can compare
backends.  For partitioned execution, :meth:`SpatialTable.partitioning`
caches an STR tiling of the rows (see :mod:`repro.spatial.partition`),
invalidated — like the statistics cache and every
:class:`ProbeCache` entry — by the table's mutation counter.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..algebra.regions import Region
from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box
from ..errors import DimensionMismatchError
from . import columnar
from .columnar import ColumnStore
from .gridfile import GridFile
from .rangequery import compile_range
from .rtree import RTree


@dataclass(frozen=True)
class SpatialObject:
    """One row: an identifier, its exact region, and the derived box."""

    oid: object
    region: Region
    box: Box

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SpatialObject({self.oid!r})"


class _TableHandle:
    """Per-table bookkeeping inside a :class:`ProbeCache`.

    Holds a unique ``token`` (the cache key stands in for the table so
    keys never reference it), the last-seen table version, and a weak
    reference whose callback purges the table's entries on collection.
    """

    __slots__ = ("token", "version", "ref")

    def __init__(self, token: int, version: int):
        self.token = token
        self.version = version
        self.ref: Optional[weakref.ref] = None


class ProbeCache:
    """A bounded LRU cache of range-query results.

    Keys are ``(table token, table version, box query)`` where the token
    is a cache-local stand-in for the table — the cache holds **no
    strong reference** to any table, so a long-lived cache never pins a
    dropped table (or its rows) in memory.  The table's mutation counter
    is part of the key, and entries for superseded versions are dropped
    *proactively* the next time the table is seen (not merely left to
    LRU churn); entries of a garbage-collected table are purged by a
    weakref callback.  The cached row lists are shared — callers must
    not mutate them.

    A cache may outlive a single execution (that is the point: repeated
    queries over unchanged tables skip the index entirely), so it keeps
    lifetime ``hits``/``misses`` counters of its own; per-execution
    counters live in :class:`~repro.engine.stats.ExecutionStats`.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        # guarded-by: _lock
        self._entries: "OrderedDict[tuple, List[SpatialObject]]" = (
            OrderedDict()
        )
        # table -> handle; weak keys, so the cache never keeps a table
        # alive.  The handle's weakref callback purges entries when the
        # table is collected.
        # guarded-by: _lock
        self._handles: "weakref.WeakKeyDictionary[SpatialTable, _TableHandle]" = (
            weakref.WeakKeyDictionary()
        )
        self._next_token = 0  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        # The query service shares one cache across concurrent reader
        # threads; reentrant because a GC-triggered weakref purge can
        # fire inside a locked section of the same thread.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._entries)

    def _purge_token(self, token: int, keep_version: Optional[int] = None):
        """Drop entries of one table (optionally keeping one version)."""
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key[0] == token
                and (keep_version is None or key[1] != keep_version)
            ]
            for key in stale:
                # pop(): a GC-triggered purge callback may race this loop.
                self._entries.pop(key, None)

    def _key_locked(self, table: "SpatialTable", query: BoxQuery) -> tuple:
        handle = self._handles.get(table)
        if handle is None:
            handle = _TableHandle(self._next_token, table._version)
            self._next_token += 1
            token = handle.token
            # The callback must not reference the table (it is being
            # collected) nor keep a strong path back to it; closing over
            # self is fine — the resulting cycle is ordinary GC fodder.
            handle.ref = weakref.ref(
                table, lambda _r, token=token: self._purge_token(token)
            )
            self._handles[table] = handle
        elif handle.version != table._version:
            # Version superseded: drop the stale entries now instead of
            # waiting for LRU churn.
            self._purge_token(handle.token, keep_version=table._version)
            handle.version = table._version
        return (handle.token, table._version, query)

    def lookup(
        self, table: "SpatialTable", query: BoxQuery
    ) -> Optional[List["SpatialObject"]]:
        """Cached rows for ``query`` on ``table``, or ``None`` on miss."""
        with self._lock:
            key = self._key_locked(table, query)
            rows = self._entries.get(key)
            if rows is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return rows

    def store(
        self,
        table: "SpatialTable",
        query: BoxQuery,
        rows: List["SpatialObject"],
    ) -> None:
        """Remember a probe result, evicting least-recently-used entries."""
        with self._lock:
            key = self._key_locked(table, query)
            self._entries[key] = rows
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        """Lifetime hits as a fraction of lookups (0.0 before any)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def purge_table(
        self, table: "SpatialTable", keep_version: Optional[int] = None
    ) -> None:
        """Proactively drop a table's entries (e.g. at snapshot swap).

        Version bumps purge lazily — the next :meth:`lookup` on the
        *same* table object drops superseded entries — but a snapshot
        swap replaces the table object outright, so the old table is
        never seen again and its entries would linger until LRU churn
        or garbage collection.  The query service calls this for each
        superseded table at swap time.  ``keep_version`` preserves that
        version's entries (default: drop them all).
        """
        with self._lock:
            handle = self._handles.get(table)
            if handle is None:
                return
            self._purge_token(handle.token, keep_version=keep_version)
            if keep_version is None:
                del self._handles[table]

    def clear(self) -> None:
        """Drop all entries and zero the counters."""
        with self._lock:
            self._entries.clear()
            self._handles.clear()
            self.hits = 0
            self.misses = 0


class SpatialTable:
    """A named collection of regions with a box index.

    Parameters
    ----------
    name:
        Table name (used in plans and stats).
    dim:
        Dimensionality of the stored regions.
    index:
        ``"rtree"`` (default), ``"grid"`` or ``"scan"``.
    universe:
        Universe box.  **Required** for the grid backend — range
        queries over the 2k-dim point representation clip their
        (possibly unbounded) rectangles to it, so constructing a grid
        table without one raises :class:`ValueError` — and recommended
        generally (the planner uses it as the region algebra's
        universe).
    split_method:
        R-tree overflow handling (``"quadratic"``, ``"linear"`` or
        ``"rstar"``); ignored by the other backends.
    node_capacity:
        R-tree node capacity ``M``.
    """

    VALID_INDEXES = ("rtree", "grid", "scan")

    def __init__(
        self,
        name: str,
        dim: int,
        index: str = "rtree",
        universe: Optional[Box] = None,
        split_method: str = "quadratic",
        node_capacity: int = 8,
    ):
        if index not in self.VALID_INDEXES:
            raise ValueError(
                f"unknown index {index!r}; expected one of {self.VALID_INDEXES}"
            )
        if index == "grid" and universe is None:
            raise ValueError(
                "the grid backend requires a universe box (range queries "
                "clip their unbounded rectangles to it); pass universe="
            )
        self.name = name
        self.dim = dim
        self.index_kind = index
        self.universe = universe
        self.split_method = split_method
        self.node_capacity = node_capacity
        self._objects: Dict[object, SpatialObject] = {}
        self._rtree: Optional[RTree] = (
            RTree(max_entries=node_capacity, split_method=split_method)
            if index == "rtree"
            else None
        )
        self._grid: Optional[GridFile] = (
            GridFile(2 * dim) if index == "grid" else None
        )
        # Struct-of-arrays mirror of the rows' bounding boxes, kept
        # index-aligned with the insertion order (the batched kernels'
        # input; see repro.spatial.columnar).
        self._columns = ColumnStore(dim)
        self.probes = 0
        self.candidates_returned = 0
        # How often a vectorized kernel ran, and how many candidate
        # rows/entries it evaluated (reported via ExecutionStats).
        self.vectorized_batches = 0
        self.vectorized_candidates = 0
        # Mutation counter; invalidates the cached statistics and
        # partitioning below (and every ProbeCache entry for this table).
        self._version = 0
        # Per-parameter statistics cache for the current version: one
        # planning pass may legitimately ask for several parameter sets
        # (e.g. with and without partition summaries).
        self._stats_cache: Dict[Tuple, object] = {}
        self._stats_version: Optional[int] = None
        self._partitioning_cache = None
        self._partitioning_key: Optional[Tuple] = None
        self._sharding_cache = None
        self._sharding_key: Optional[Tuple] = None

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._objects.values())

    # -- updates -----------------------------------------------------------------
    def insert(self, oid, region: Region) -> SpatialObject:
        """Insert a row; the bounding box is derived and indexed."""
        if region.dim is not None and region.dim != self.dim:
            raise DimensionMismatchError(
                f"region is {region.dim}-dim, table {self.name!r} is "
                f"{self.dim}-dim"
            )
        if oid in self._objects:
            raise ValueError(f"duplicate oid {oid!r} in table {self.name!r}")
        obj = SpatialObject(oid=oid, region=region, box=region.bounding_box())
        self._objects[oid] = obj
        self._columns.append(obj.box, obj)
        self._version += 1
        if self._rtree is not None and not obj.box.is_empty():
            self._rtree.insert(obj.box, obj)
        if self._grid is not None and not obj.box.is_empty():
            self._grid.insert(obj.box.to_point(), obj)
        return obj

    def bulk_insert(
        self,
        rows: Sequence[Tuple[object, Region]],
        pack: Optional[bool] = None,
    ) -> None:
        """Insert many rows.

        For r-tree tables the index is rebuilt afterwards with STR bulk
        loading (``pack=True``, the default): static workloads get a
        packed tree with near-full nodes and markedly fewer node reads
        per query than one-at-a-time insertion builds.  Pass
        ``pack=False`` for the insertion-built baseline.

        The ``grid`` and ``scan`` backends have no bulk-loading path, so
        an explicit ``pack=True`` raises :class:`ValueError` instead of
        being silently ignored; the default (``pack=None``) resolves to
        plain insertion for them.
        """
        if pack is None:
            pack = self.index_kind == "rtree"
        elif pack and self.index_kind != "rtree":
            raise ValueError(
                f"pack=True is only supported by the rtree backend; the "
                f"{self.index_kind!r} backend builds by insertion "
                f"(pass pack=None or pack=False)"
            )
        if pack and self.index_kind == "rtree":
            saved, self._rtree = self._rtree, None
            try:
                for oid, region in rows:
                    self.insert(oid, region)
            finally:
                # Rebuild even on error so the index covers whatever
                # rows made it in before the failure.
                self._rtree = saved
                self.pack()
        else:
            for oid, region in rows:
                self.insert(oid, region)

    def pack(self) -> None:
        """Rebuild the r-tree with STR bulk loading over current rows.

        No-op for non-r-tree backends.  Index counters start fresh (as
        after :meth:`reset_stats`).
        """
        self.reindex(pack=True)

    def reindex(
        self,
        pack: bool = True,
        split_method: Optional[str] = None,
        node_capacity: Optional[int] = None,
    ) -> None:
        """Rebuild the r-tree index, optionally changing its parameters.

        ``pack=True`` uses STR bulk loading; ``pack=False`` rebuilds by
        repeated insertion (the baseline the benchmarks compare
        against).  No-op for non-r-tree backends.
        """
        if self.index_kind != "rtree":
            return
        if split_method is not None:
            if split_method not in RTree.SPLIT_METHODS:
                raise ValueError(
                    f"unknown split method {split_method!r}; expected one "
                    f"of {RTree.SPLIT_METHODS}"
                )
            self.split_method = split_method
        if node_capacity is not None:
            self.node_capacity = node_capacity
        entries = [
            (obj.box, obj)
            for obj in self._objects.values()
            if not obj.box.is_empty()
        ]
        if pack:
            self._rtree = RTree.bulk_load(
                entries,
                max_entries=self.node_capacity,
                split_method=self.split_method,
            )
        else:
            self._rtree = RTree(
                max_entries=self.node_capacity,
                split_method=self.split_method,
            )
            for box, obj in entries:
                self._rtree.insert(box, obj)
        self._version += 1

    def get(self, oid) -> SpatialObject:
        """Row lookup by id."""
        return self._objects[oid]

    # -- queries --------------------------------------------------------------------
    def column_store(
        self, vectorize: Optional[bool] = None
    ) -> Optional[ColumnStore]:
        """The table's :class:`ColumnStore`, or ``None`` when the
        vectorized paths are disabled (see
        :func:`repro.spatial.columnar.resolve`)."""
        return self._columns if columnar.resolve(vectorize) else None

    def range_query(
        self, query: BoxQuery, vectorize: Optional[bool] = None
    ) -> List[SpatialObject]:
        """All rows whose bounding box satisfies ``query``.

        One index probe per call — the paper's "every retrieval step is a
        single range query".  ``vectorize`` selects the batched columnar
        kernels (``None`` defers to the global backend switch); results
        are bit-identical either way.
        """
        self.probes += 1
        if query.is_unsatisfiable():
            return []
        vec = columnar.resolve(vectorize)
        out: List[SpatialObject]
        if self.index_kind == "rtree":
            if vec and columnar.active_backend() == "numpy":
                before = self._rtree.stats.entry_tests
                out = [obj for _box, obj in self._rtree.search_columnar(query)]
                self.vectorized_batches += 1
                self.vectorized_candidates += (
                    self._rtree.stats.entry_tests - before
                )
            else:
                out = [obj for _box, obj in self._rtree.search(query)]
        elif self.index_kind == "grid":
            pr = compile_range(query, self.dim)
            if self.universe is not None:
                pr = pr.clip_finite(self.universe)
            if pr.is_empty():
                out = []
            else:
                out = [
                    obj
                    for _p, obj in self._grid.range_search(pr.lo, pr.hi)
                ]
        else:  # scan
            if vec:
                out = self._columns.match_rows(query)
                self.vectorized_batches += 1
                self.vectorized_candidates += len(self._columns)
            else:
                out = [
                    obj
                    for obj in self._objects.values()
                    if not obj.box.is_empty() and query.matches(obj.box)
                ]
        self.candidates_returned += len(out)
        return out

    def range_query_cached(
        self,
        query: BoxQuery,
        cache: Optional[ProbeCache] = None,
        vectorize: Optional[bool] = None,
    ) -> Tuple[List[SpatialObject], bool]:
        """Range query through an optional :class:`ProbeCache`.

        Returns ``(rows, hit)``.  On a hit the index (and the table's
        probe counter) is not touched at all; the returned list is the
        cached one and must not be mutated.
        """
        if cache is None:
            return self.range_query(query, vectorize=vectorize), False
        rows = cache.lookup(self, query)
        if rows is not None:
            return rows, True
        rows = self.range_query(query, vectorize=vectorize)
        cache.store(self, query, rows)
        return rows, False

    def range_query_batch(
        self,
        queries: Sequence[BoxQuery],
        cache: Optional[ProbeCache] = None,
        vectorize: Optional[bool] = None,
    ) -> List[List[SpatialObject]]:
        """Answer many box queries, probing once per *distinct* query.

        Batching entry point for bulk callers (the operator engine's
        per-probe path is :meth:`range_query_cached`).  Duplicate
        queries inside the batch share a single probe even without a
        cache; with a ``cache`` the deduplicated probes also go through
        it.  Result lists are aligned with ``queries``.
        """
        memo: Dict[BoxQuery, List[SpatialObject]] = {}
        out: List[List[SpatialObject]] = []
        for query in queries:
            rows = memo.get(query)
            if rows is None:
                rows, _hit = self.range_query_cached(
                    query, cache, vectorize=vectorize
                )
                memo[query] = rows
            out.append(rows)
        return out

    # -- nearest neighbors --------------------------------------------------------
    @staticmethod
    def _distance_to(obj: SpatialObject, anchor) -> float:
        if isinstance(anchor, Box):
            return obj.box.mindist(anchor)
        return obj.box.mindist_point(anchor)

    def nearest(
        self,
        anchor,
        k: int,
        access: str = "auto",
        vectorize: Optional[bool] = None,
    ) -> List[Tuple[float, SpatialObject]]:
        """The ``k`` rows nearest to ``anchor`` (a point or a box).

        Distances are bounding-box MINDISTs; rows are returned in
        nondecreasing distance with ties at the ``k``-th distance broken
        by ``repr(oid)``, so every access path returns the *same* list
        (property-tested against :meth:`nearest_bruteforce`):

        * ``"bestfirst"`` — the R-tree's incremental best-first browse
          (r-tree backend only);
        * ``"scan"`` — the brute-force reference;
        * ``"auto"`` — best-first when an r-tree is available, scan
          otherwise (grid files index the 2k-dim point representation,
          where box distances do not reduce to point distances).

        Counts one probe, like a range query.
        """
        if k <= 0:
            return []
        if access not in ("auto", "bestfirst", "scan"):
            raise ValueError(
                f"unknown kNN access {access!r}; expected 'auto', "
                f"'bestfirst' or 'scan'"
            )
        if access == "bestfirst" and self._rtree is None:
            raise ValueError(
                f"best-first kNN needs the rtree backend; table "
                f"{self.name!r} uses {self.index_kind!r}"
            )
        self.probes += 1
        vec = (
            columnar.resolve(vectorize)
            and columnar.active_backend() == "numpy"
        )
        if self._rtree is not None and access != "scan":
            before = self._rtree.stats.entry_tests
            out = [
                (dist, obj)
                for dist, _box, obj in self._rtree.nearest(
                    anchor,
                    k,
                    tie_key=lambda obj: repr(obj.oid),
                    vectorize=vec,
                )
            ]
            if vec:
                self.vectorized_batches += 1
                self.vectorized_candidates += (
                    self._rtree.stats.entry_tests - before
                )
        elif vec:
            out = self._nearest_columnar(anchor, k)
            self.vectorized_batches += 1
            self.vectorized_candidates += len(self._columns)
        else:
            out = self._nearest_scan(anchor, k)
        self.candidates_returned += len(out)
        return out

    def nearest_bruteforce(
        self, anchor, k: int
    ) -> List[Tuple[float, SpatialObject]]:
        """Brute-force kNN reference: scan every row, sort, cut.

        The differential-testing oracle for :meth:`nearest` — same
        distance metric, same deterministic tie-break, no index.  Counts
        one probe (a full scan).
        """
        if k <= 0:
            return []
        self.probes += 1
        out = self._nearest_scan(anchor, k)
        self.candidates_returned += len(out)
        return out

    def _nearest_scan(
        self, anchor, k: int
    ) -> List[Tuple[float, SpatialObject]]:
        ranked = sorted(
            (
                (self._distance_to(obj, anchor), obj)
                for obj in self._objects.values()
                if not obj.box.is_empty()
            ),
            key=lambda pair: (pair[0], repr(pair[1].oid)),
        )
        return ranked[:k]

    def _nearest_columnar(
        self, anchor, k: int
    ) -> List[Tuple[float, SpatialObject]]:
        """:meth:`_nearest_scan` over the columnar distance kernel.

        One batched MINDIST evaluation replaces the per-object distance
        calls; the kernels produce the exact same doubles (empty rows at
        ``inf`` are filtered like the oracle's empty-box guard), so the
        sort — ties included — is unchanged.
        """
        store = self._columns
        dists = store.distances_to(anchor)
        ranked = sorted(
            (
                (float(dists[i]), store.rows[i])
                for i in range(len(store))
                if not store.rows[i].box.is_empty()
            ),
            key=lambda pair: (pair[0], repr(pair[1].oid)),
        )
        return ranked[:k]

    # -- counting aggregation ------------------------------------------------------
    def count_range(self, query: BoxQuery) -> int:
        """``len(self.range_query(query))`` without materialising rows.

        On the r-tree backend this is the COUNT pushdown: subtrees whose
        MBR is fully inside a pure containment query contribute their
        cached entry counts without being read (see
        :meth:`repro.spatial.rtree.RTree.count`).  Other backends fall
        back to counting the range query's result.
        """
        if query.is_unsatisfiable():
            self.probes += 1
            return 0
        if self._rtree is not None:
            self.probes += 1
            return self._rtree.count(query)
        return len(self.range_query(query))

    def scan(self) -> List[SpatialObject]:
        """All rows (the naive executor's access path)."""
        self.probes += 1
        out = list(self._objects.values())
        self.candidates_returned += len(out)
        return out

    def reset_stats(self) -> None:
        """Zero the probe counters (index-internal counters too)."""
        self.probes = 0
        self.candidates_returned = 0
        self.vectorized_batches = 0
        self.vectorized_candidates = 0
        if self._rtree is not None:
            self._rtree.stats.reset()
        if self._grid is not None:
            self._grid.stats.reset()

    def index_read_count(self) -> int:
        """Backend-neutral cumulative read counter (r-tree node reads,
        grid bucket reads; 0 for the scan backend)."""
        if self._rtree is not None:
            return self._rtree.stats.node_reads
        if self._grid is not None:
            return self._grid.stats.bucket_reads
        return 0

    def index_stats(self) -> dict:
        """Backend-specific counters for reporting."""
        if self._rtree is not None:
            return {
                "kind": "rtree",
                "node_reads": self._rtree.stats.node_reads,
                "splits": self._rtree.stats.splits,
                "reinserts": self._rtree.stats.reinserts,
                "height": self._rtree.height(),
                "split_method": self.split_method,
            }
        if self._grid is not None:
            return {
                "kind": "grid",
                "bucket_reads": self._grid.stats.bucket_reads,
                "cells": self._grid.directory_shape(),
            }
        return {"kind": "scan"}

    # -- partitioning (partitioned execution) -------------------------------------
    def partitioning(self, n_partitions: int):
        """An STR tiling of this table's rows, cached by version.

        Built lazily by :func:`repro.spatial.partition.str_partition`;
        the cache key includes the mutation counter, so any insert or
        reindex invalidates it.  Used by the partition-aware physical
        operators (``PartitionScan``) and the statistics catalog.
        """
        key = (self._version, n_partitions)
        if self._partitioning_key != key:
            from .partition import str_partition

            self._partitioning_cache = str_partition(self, n_partitions)
            self._partitioning_key = key
        return self._partitioning_cache

    # -- sharding (scale-out execution) --------------------------------------------
    def sharding(self, n_shards: int):
        """An STR sharding of this table's rows, cached by version.

        Built lazily by :meth:`repro.spatial.shard.ShardedTable.build`;
        the cache key includes the mutation counter, so any insert or
        reindex invalidates it — and the superseded sharding is closed
        (its shared-memory publications unlinked) before the rebuild.
        Used by the shard-aware physical operators (``ShardScan``,
        ``ShardedJoin``) and the planner's shard costing.
        """
        key = (self._version, n_shards)
        if self._sharding_key != key:
            from .shard import ShardedTable

            if self._sharding_cache is not None:
                self._sharding_cache.close()
            self._sharding_cache = ShardedTable.build(self, n_shards)
            self._sharding_key = key
        return self._sharding_cache

    # -- statistics (cost-based planning) -----------------------------------------
    def statistics(
        self,
        bins: int = 16,
        sample_size: int = 24,
        seed: int = 0,
        partitions: int = 0,
    ):
        """Table statistics for the cost-based planner, cached here.

        Any insert or reindex invalidates the cache (it is keyed on the
        mutation counter); within one version, each distinct parameter
        set is computed once — planning passes that mix partitioned and
        unpartitioned statistics do not thrash.  ``partitions > 0``
        also collects per-partition counts and bounding boxes (for
        costing partition pruning).  See :mod:`repro.engine.catalog`
        for the statistics' contents.
        """
        if self._stats_version != self._version:
            self._stats_cache = {}
            self._stats_version = self._version
        key = (bins, sample_size, seed, partitions)
        if key not in self._stats_cache:
            from ..engine.catalog import collect_statistics

            self._stats_cache[key] = collect_statistics(
                self,
                bins=bins,
                sample_size=sample_size,
                seed=seed,
                partitions=partitions,
            )
        return self._stats_cache[key]
