"""Spatial tables: the database the query engine retrieves from.

A :class:`SpatialTable` stores identified :class:`~repro.algebra.regions.
Region` rows and maintains a derived index over their bounding boxes.
Three interchangeable index backends implement the same range-query
contract (and are property-tested to agree):

* ``"rtree"`` — :class:`repro.spatial.rtree.RTree` over the boxes;
* ``"grid"`` — :class:`repro.spatial.gridfile.GridFile` over the 2k-dim
  *point* representation (the Figure 3 reduction: one orthogonal range
  query per BoxQuery);
* ``"scan"`` — sequential scan (the baseline every bench compares to).

The table records probe statistics uniformly so benchmarks can compare
backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..algebra.regions import Region
from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box
from ..errors import DimensionMismatchError
from .gridfile import GridFile
from .rangequery import compile_range
from .rtree import RTree


@dataclass(frozen=True)
class SpatialObject:
    """One row: an identifier, its exact region, and the derived box."""

    oid: object
    region: Region
    box: Box

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"SpatialObject({self.oid!r})"


class SpatialTable:
    """A named collection of regions with a box index.

    Parameters
    ----------
    name:
        Table name (used in plans and stats).
    dim:
        Dimensionality of the stored regions.
    index:
        ``"rtree"`` (default), ``"grid"`` or ``"scan"``.
    universe:
        Universe box; required for the grid backend (to bound the point
        space) and recommended generally.
    """

    VALID_INDEXES = ("rtree", "grid", "scan")

    def __init__(
        self,
        name: str,
        dim: int,
        index: str = "rtree",
        universe: Optional[Box] = None,
    ):
        if index not in self.VALID_INDEXES:
            raise ValueError(
                f"unknown index {index!r}; expected one of {self.VALID_INDEXES}"
            )
        self.name = name
        self.dim = dim
        self.index_kind = index
        self.universe = universe
        self._objects: Dict[object, SpatialObject] = {}
        self._rtree: Optional[RTree] = RTree() if index == "rtree" else None
        self._grid: Optional[GridFile] = (
            GridFile(2 * dim) if index == "grid" else None
        )
        self.probes = 0
        self.candidates_returned = 0

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SpatialObject]:
        return iter(self._objects.values())

    # -- updates -----------------------------------------------------------------
    def insert(self, oid, region: Region) -> SpatialObject:
        """Insert a row; the bounding box is derived and indexed."""
        if region.dim is not None and region.dim != self.dim:
            raise DimensionMismatchError(
                f"region is {region.dim}-dim, table {self.name!r} is "
                f"{self.dim}-dim"
            )
        if oid in self._objects:
            raise ValueError(f"duplicate oid {oid!r} in table {self.name!r}")
        obj = SpatialObject(oid=oid, region=region, box=region.bounding_box())
        self._objects[oid] = obj
        if self._rtree is not None and not obj.box.is_empty():
            self._rtree.insert(obj.box, obj)
        if self._grid is not None and not obj.box.is_empty():
            self._grid.insert(obj.box.to_point(), obj)
        return obj

    def bulk_insert(self, rows: Sequence[Tuple[object, Region]]) -> None:
        """Insert many rows."""
        for oid, region in rows:
            self.insert(oid, region)

    def get(self, oid) -> SpatialObject:
        """Row lookup by id."""
        return self._objects[oid]

    # -- queries --------------------------------------------------------------------
    def range_query(self, query: BoxQuery) -> List[SpatialObject]:
        """All rows whose bounding box satisfies ``query``.

        One index probe per call — the paper's "every retrieval step is a
        single range query".
        """
        self.probes += 1
        if query.is_unsatisfiable():
            return []
        out: List[SpatialObject]
        if self.index_kind == "rtree":
            out = [obj for _box, obj in self._rtree.search(query)]
        elif self.index_kind == "grid":
            pr = compile_range(query, self.dim)
            if self.universe is not None:
                pr = pr.clip_finite(self.universe)
            if pr.is_empty():
                out = []
            else:
                out = [
                    obj
                    for _p, obj in self._grid.range_search(pr.lo, pr.hi)
                ]
        else:  # scan
            out = [
                obj
                for obj in self._objects.values()
                if not obj.box.is_empty() and query.matches(obj.box)
            ]
        self.candidates_returned += len(out)
        return out

    def scan(self) -> List[SpatialObject]:
        """All rows (the naive executor's access path)."""
        self.probes += 1
        out = list(self._objects.values())
        self.candidates_returned += len(out)
        return out

    def reset_stats(self) -> None:
        """Zero the probe counters (index-internal counters too)."""
        self.probes = 0
        self.candidates_returned = 0
        if self._rtree is not None:
            self._rtree.stats.reset()
        if self._grid is not None:
            self._grid.stats.reset()

    def index_stats(self) -> dict:
        """Backend-specific counters for reporting."""
        if self._rtree is not None:
            return {
                "kind": "rtree",
                "node_reads": self._rtree.stats.node_reads,
                "height": self._rtree.height(),
            }
        if self._grid is not None:
            return {
                "kind": "grid",
                "bucket_reads": self._grid.stats.bucket_reads,
                "cells": self._grid.directory_shape(),
            }
        return {"kind": "scan"}
